#include "src/serving/shard_router.h"

#include <algorithm>

#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_([&] {
        ShardRouterOptions o = options;
        o.num_shards = std::max<size_t>(1, o.num_shards);
        return o;
      }()) {
  if (options_.intern_scope == ShardRouterOptions::InternScope::kGlobal) {
    global_store_ = std::make_unique<ObjectStore>(options_.store);
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->segment = global_store_ != nullptr
                         ? std::make_unique<ObjectStore>(options_.store,
                                                         global_store_.get())
                         : std::make_unique<ObjectStore>(options_.store);
    shard->runtime =
        std::make_unique<Runtime>(shard->segment.get(), options_.runtime);
    shards_.push_back(std::move(shard));
  }
}

uint32_t ShardRouter::JumpConsistentHash(uint64_t key, uint32_t num_buckets) {
  int64_t bucket = -1;
  int64_t next = 0;
  while (next < static_cast<int64_t>(num_buckets)) {
    bucket = next;
    key = key * 2862933555777941757ULL + 1;
    next = static_cast<int64_t>(
        static_cast<double>(bucket + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<uint32_t>(bucket);
}

uint64_t ShardRouter::HashName(const std::string& name) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis.
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

size_t ShardRouter::ShardForKey(uint64_t key) const {
  return JumpConsistentHash(key, static_cast<uint32_t>(shards_.size()));
}

size_t ShardRouter::ShardFor(const std::string& name) const {
  return ShardForKey(HashName(name));
}

// Placement entries claim their name BEFORE the compile, marked pending
// with this sentinel, so a racing Place of the same name fails fast instead
// of registering a duplicate, orphaned plan with the shard's Runtime.
static constexpr Runtime::PlanId kPendingPlan =
    static_cast<Runtime::PlanId>(-1);

Result<ShardPlacement> ShardRouter::Place(const PipelineSpec& spec,
                                          const PlanRegistration& registration) {
  const size_t shard = ShardFor(spec.name);
  {
    WriterMutexLock lock(mu_);
    auto [it, inserted] =
        placements_.emplace(spec.name, ShardPlacement{shard, kPendingPlan});
    if (!inserted) {
      return Status::InvalidArgument("plan '" + spec.name +
                                     "' already placed");
    }
  }
  // Compile against the owning shard's segment — outside the lock; the
  // pending entry holds the name. Flour interns the params into the segment
  // (or through it into the global store), Oven binds there.
  const auto fail = [&](Status status) -> Result<ShardPlacement> {
    WriterMutexLock lock(mu_);
    placements_.erase(spec.name);
    return status;
  };
  FlourContext flour(shards_[shard]->segment.get());
  auto program = flour.FromPipeline(spec);
  if (program == nullptr) {
    return fail(Status::InvalidArgument("pipeline '" + spec.name +
                                        "' did not lower"));
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
  if (!plan.ok()) {
    return fail(plan.status());
  }
  Result<Runtime::PlanId> id =
      shards_[shard]->runtime->Register(std::move(*plan), registration);
  if (!id.ok()) {
    return fail(id.status());
  }
  ShardPlacement placement{shard, *id};
  WriterMutexLock lock(mu_);
  placements_[spec.name] = placement;
  return placement;
}

Result<ShardPlacement> ShardRouter::Placement(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  auto it = placements_.find(name);
  if (it == placements_.end() || it->second.plan_id == kPendingPlan) {
    return Status::NotFound("plan '" + name + "'");
  }
  return it->second;
}

Result<float> ShardRouter::Predict(const std::string& name,
                                   const std::string& input) {
  Result<ShardPlacement> placement = Placement(name);
  if (!placement.ok()) {
    return placement.status();
  }
  return shards_[placement->shard]->runtime->Predict(placement->plan_id, input);
}

Result<float> ShardRouter::PredictBinary(const std::string& name,
                                         std::span<const uint8_t> record) {
  Result<ShardPlacement> placement = Placement(name);
  if (!placement.ok()) {
    return placement.status();
  }
  return shards_[placement->shard]->runtime->PredictBinary(placement->plan_id,
                                                           record);
}

Status ShardRouter::PredictAsync(const std::string& name, std::string input,
                                 Runtime::SingleCallback callback) {
  Result<ShardPlacement> placement = Placement(name);
  if (!placement.ok()) {
    return placement.status();
  }
  return shards_[placement->shard]->runtime->PredictAsync(
      placement->plan_id, std::move(input), std::move(callback));
}

Result<std::vector<float>> ShardRouter::PredictBatch(
    const std::string& name, const std::vector<std::string>& inputs,
    size_t max_batch) {
  Result<ShardPlacement> placement = Placement(name);
  if (!placement.ok()) {
    return placement.status();
  }
  return shards_[placement->shard]->runtime->PredictBatch(placement->plan_id,
                                                          inputs, max_batch);
}

ShardedMetrics ShardRouter::GetMetrics() const {
  ShardedMetrics metrics;
  metrics.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardMetrics shard;
    shard.shard = i;
    shard.runtime = shards_[i]->runtime->GetMetrics();
    shard.store_objects = shards_[i]->segment->NumObjects();
    shard.store_bytes = shards_[i]->segment->TotalBytes();
    MergeRuntimeMetrics(metrics.merged, shard.runtime);
    metrics.store_objects += shard.store_objects;
    metrics.store_bytes += shard.store_bytes;
    metrics.shards.push_back(std::move(shard));
  }
  if (global_store_ != nullptr) {
    // Delegating segments hold nothing; the uniques live here.
    metrics.store_objects = global_store_->NumObjects();
    metrics.store_bytes = global_store_->TotalBytes();
  }
  // Load imbalance: fold each shard's plan queue-delay EWMAs into one
  // event-weighted number per shard, then compare the hottest shard to the
  // mean (the hot-shard bound bench_shard reports under Zipf skew).
  metrics.shard_queue_delay_us.reserve(metrics.shards.size());
  double sum = 0.0;
  for (const ShardMetrics& shard : metrics.shards) {
    double weighted = 0.0;
    double events = 0.0;
    for (const PlanMetrics& pm : shard.runtime.plans) {
      const double weight = static_cast<double>(pm.enqueued_events);
      weighted += static_cast<double>(pm.queue_delay_ewma_us) * weight;
      events += weight;
    }
    const double load = events > 0.0 ? weighted / events : 0.0;
    metrics.shard_queue_delay_us.push_back(load);
    sum += load;
    if (load > metrics.max_shard_queue_delay_us) {
      metrics.max_shard_queue_delay_us = load;
      metrics.hottest_shard = metrics.shard_queue_delay_us.size() - 1;
    }
  }
  if (!metrics.shard_queue_delay_us.empty()) {
    metrics.mean_shard_queue_delay_us =
        sum / static_cast<double>(metrics.shard_queue_delay_us.size());
  }
  if (metrics.mean_shard_queue_delay_us > 0.0) {
    metrics.queue_delay_imbalance =
        metrics.max_shard_queue_delay_us / metrics.mean_shard_queue_delay_us;
  }
  return metrics;
}

}  // namespace pretzel
