#include "src/serving/shard_router.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <functional>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {

namespace {

constexpr double kEwmaAlpha = 1.0 / 16.0;

double LoadEwma(const std::atomic<uint64_t>& bits) {
  return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

void UpdateEwma(std::atomic<uint64_t>& bits, double sample) {
  uint64_t current = bits.load(std::memory_order_relaxed);
  const double prev = std::bit_cast<double>(current);
  const double next = prev + (sample - prev) * kEwmaAlpha;
  // Single-shot CAS: a lost race under contention drops one smoothing step,
  // never corrupts the value.
  bits.compare_exchange_weak(current, std::bit_cast<uint64_t>(next),
                             std::memory_order_relaxed,
                             std::memory_order_relaxed);
}

// Per-thread xorshift for the p2c sample — routing needs cheap, not
// cryptographic, and a shared RNG would put a contended line on every
// predict.
uint64_t NextRand() {
  thread_local uint64_t state =
      std::hash<std::thread::id>()(std::this_thread::get_id()) | 1;
  uint64_t x = state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  state = x;
  return x;
}

// The ObjectStore pins a compile took: one per op param; released against
// the compiling shard's segment when the version retires.
std::vector<uint64_t> CollectChecksums(const LogicalProgram& program) {
  std::vector<uint64_t> checksums;
  checksums.reserve(program.ops.size());
  for (const auto& op : program.ops) {
    checksums.push_back(op.params->ContentChecksum());
  }
  return checksums;
}

// Unwinds an aborted compile: drops the pins the lowering's interning took
// and sweeps the segment, so a failed Plan/Register (including an armed
// oven.compile_fail) leaves the store exactly as it found it. Leaked pins
// would keep retired blobs resident forever.
void ReleaseProgramPins(ObjectStore* segment, const LogicalProgram& program) {
  for (const uint64_t checksum : CollectChecksums(program)) {
    (void)segment->Release(checksum);
  }
  (void)segment->Sweep();
}

}  // namespace

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_([&] {
        ShardRouterOptions o = options;
        o.num_shards = std::max<size_t>(1, o.num_shards);
        return o;
      }()),
      table_(new RoutingTable()) {
  if (options_.intern_scope == ShardRouterOptions::InternScope::kGlobal) {
    global_store_ = std::make_unique<ObjectStore>(options_.store);
  }
  health_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    health_.push_back(std::make_unique<ShardHealth>(options_.breaker));
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->segment = global_store_ != nullptr
                         ? std::make_unique<ObjectStore>(options_.store,
                                                         global_store_.get())
                         : std::make_unique<ObjectStore>(options_.store);
    shard->runtime =
        std::make_unique<Runtime>(shard->segment.get(), options_.runtime);
    shards_.push_back(std::move(shard));
  }
  if (options_.replication.scan_interval_us > 0) {
    maintenance_thread_ = std::thread([this] {
      const auto period =
          std::chrono::microseconds(options_.replication.scan_interval_us);
      std::unique_lock<std::mutex> lock(maintenance_mu_);
      while (!stop_maintenance_) {
        maintenance_cv_.wait_for(lock, period);
        if (stop_maintenance_) {
          break;
        }
        lock.unlock();
        MaintainReplication();
        lock.lock();
      }
    });
  }
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    stop_maintenance_ = true;
  }
  maintenance_cv_.notify_all();
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
}

uint32_t ShardRouter::JumpConsistentHash(uint64_t key, uint32_t num_buckets) {
  int64_t bucket = -1;
  int64_t next = 0;
  while (next < static_cast<int64_t>(num_buckets)) {
    bucket = next;
    key = key * 2862933555777941757ULL + 1;
    next = static_cast<int64_t>(
        static_cast<double>(bucket + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<uint32_t>(bucket);
}

uint64_t ShardRouter::HashName(const std::string& name) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis.
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

size_t ShardRouter::ShardForKey(uint64_t key) const {
  return JumpConsistentHash(key, static_cast<uint32_t>(shards_.size()));
}

size_t ShardRouter::ShardFor(const std::string& name) const {
  return ShardForKey(HashName(name));
}

// ---------------------------------------------------------------------------
// Snapshot publication.

void ShardRouter::PublishLocked() {
  auto* table = new RoutingTable();
  table->plans.reserve(plans_.size());
  for (const auto& [name, st] : plans_) {
    if (st.pending) {
      continue;  // Claimed name, compile still in flight: not routable.
    }
    PlanRouting routing;
    routing.traffic = st.traffic.get();
    routing.version = st.active_version;
    routing.gate = st.gate;
    routing.stats = st.vstats;
    if (st.rollout != nullptr) {
      const ReplicaState& c = st.rollout->replica;
      routing.has_canary = true;
      routing.canary_version = st.rollout->version;
      routing.canary =
          ReplicaRef{c.shard, c.plan_id, c.queue_delay_us, c.stats.get()};
      routing.canary_gate = st.rollout->gate;
      routing.canary_stats = st.rollout->stats;
      routing.split = st.rollout->split;
    }
    const ReplicaState& primary = st.replicas[st.primary];
    routing.replicas.push_back(ReplicaRef{primary.shard, primary.plan_id,
                                          primary.queue_delay_us,
                                          primary.stats.get()});
    for (size_t i = 0; i < st.replicas.size(); ++i) {
      if (i == st.primary || !st.replicas[i].active) {
        continue;
      }
      const ReplicaState& r = st.replicas[i];
      routing.replicas.push_back(
          ReplicaRef{r.shard, r.plan_id, r.queue_delay_us, r.stats.get()});
    }
    table->plans.emplace(name, std::move(routing));
  }
  // The grace wait cannot deadlock against readers: route-path read
  // sections never acquire mu_ (or any lock), so holding mu_ here is safe.
  delete table_.Exchange(table);
}

// ---------------------------------------------------------------------------
// Placement.

Result<ShardPlacement> ShardRouter::Place(const PipelineSpec& spec,
                                          const PlanRegistration& registration) {
  const size_t shard = ShardFor(spec.name);
  {
    // Claim the name BEFORE the compile (entry stays pending, unpublished),
    // so a racing Place of the same name fails fast instead of registering
    // a duplicate, orphaned plan with the shard's Runtime.
    WriterMutexLock lock(mu_);
    auto [it, inserted] = plans_.try_emplace(spec.name);
    if (!inserted) {
      return Status::InvalidArgument("plan '" + spec.name +
                                     "' already placed");
    }
    it->second.pending = true;
  }
  // Compile against the owning shard's segment — outside the lock; the
  // pending entry holds the name. Flour interns the params into the segment
  // (or through it into the global store), Oven binds there.
  const auto fail = [&](Status status) -> Result<ShardPlacement> {
    WriterMutexLock lock(mu_);
    plans_.erase(spec.name);  // Pending, never published: plain erase.
    return status;
  };
  FlourContext flour(shards_[shard]->segment.get());
  auto program = flour.FromPipeline(spec);
  if (program == nullptr) {
    return fail(Status::InvalidArgument("pipeline '" + spec.name +
                                        "' did not lower"));
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
  if (!plan.ok()) {
    ReleaseProgramPins(shards_[shard]->segment.get(), *program);
    return fail(plan.status());
  }
  Result<Runtime::PlanId> id =
      shards_[shard]->runtime->Register(std::move(*plan), registration);
  if (!id.ok()) {
    ReleaseProgramPins(shards_[shard]->segment.get(), *program);
    return fail(id.status());
  }
  ShardPlacement placement{shard, *id};
  VersionGate* gate = NewGate();
  VersionStats* vstats = NewVersionStats();
  WriterMutexLock lock(mu_);
  PlanState& st = plans_.at(spec.name);
  st.spec = spec;  // Retained for replica / failover recompiles.
  st.registration = registration;
  st.traffic = std::make_unique<PlanTraffic>();
  st.active_version = 1;
  st.next_version = 2;
  st.gate = gate;
  st.vstats = vstats;
  ReplicaState replica;
  replica.shard = shard;
  replica.plan_id = *id;
  replica.queue_delay_us = shards_[shard]->runtime->QueueDelayCounter(*id);
  replica.stats = std::make_unique<ReplicaStats>();
  replica.active = true;
  replica.checksums = CollectChecksums(*program);
  st.replicas.push_back(std::move(replica));
  st.primary = 0;
  st.pending = false;
  PublishLocked();
  return placement;
}

// ---------------------------------------------------------------------------
// Versioned lifecycle.

VersionGate* ShardRouter::NewGate() {
  std::lock_guard<std::mutex> lock(lifecycle_.mu);
  lifecycle_.gates.push_back(std::make_unique<VersionGate>());
  return lifecycle_.gates.back().get();
}

ShardRouter::VersionStats* ShardRouter::NewVersionStats() {
  std::lock_guard<std::mutex> lock(lifecycle_.mu);
  lifecycle_.stats.push_back(std::make_unique<VersionStats>());
  return lifecycle_.stats.back().get();
}

CanarySplit* ShardRouter::NewSplit() {
  std::lock_guard<std::mutex> lock(lifecycle_.mu);
  lifecycle_.splits.push_back(std::make_unique<CanarySplit>());
  return lifecycle_.splits.back().get();
}

Result<uint64_t> ShardRouter::Deploy(const PipelineSpec& spec) {
  std::lock_guard<std::mutex> control(control_mu_);
  size_t shard = 0;
  uint64_t version = 0;
  PlanRegistration registration;
  {
    ReaderMutexLock lock(mu_);
    auto it = plans_.find(spec.name);
    if (it == plans_.end() || it->second.pending) {
      return Status::NotFound("plan '" + spec.name +
                              "' not placed (Deploy upgrades; Place first)");
    }
    const PlanState& st = it->second;
    if (st.rollout != nullptr) {
      return Status::InvalidArgument("rollout already in flight for '" +
                                     spec.name + "'");
    }
    // Compile where the active version lives: its params are interned in
    // that shard's segment, so v(n+1)'s unchanged blobs resolve to hits.
    shard = st.replicas[st.primary].shard;
    version = st.next_version;
    registration = st.registration;
  }
  // Compile + register outside every router lock (mu_ is a leaf; the
  // control mutex serializes lifecycle ops only). A failure — including an
  // armed oven.compile_fail — returns here with the live version untouched.
  FlourContext flour(shards_[shard]->segment.get());
  auto program = flour.FromPipeline(spec);
  if (program == nullptr) {
    return Status::InvalidArgument("pipeline '" + spec.name +
                                   "' did not lower");
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
  if (!plan.ok()) {
    ReleaseProgramPins(shards_[shard]->segment.get(), *program);
    return plan.status();
  }
  Result<Runtime::PlanId> id =
      shards_[shard]->runtime->Register(std::move(*plan), registration);
  if (!id.ok()) {
    ReleaseProgramPins(shards_[shard]->segment.get(), *program);
    return id.status();
  }
  auto rollout = std::make_unique<Rollout>();
  rollout->version = version;
  rollout->initial_fraction_bp = options_.rollout.canary_fraction_bp;
  rollout->spec = spec;
  rollout->replica.shard = shard;
  rollout->replica.plan_id = *id;
  rollout->replica.queue_delay_us =
      shards_[shard]->runtime->QueueDelayCounter(*id);
  rollout->replica.stats = std::make_unique<ReplicaStats>();
  rollout->replica.active = true;
  rollout->replica.checksums = CollectChecksums(*program);
  rollout->gate = NewGate();
  rollout->stats = NewVersionStats();
  rollout->split = NewSplit();
  rollout->split->Publish(rollout->initial_fraction_bp, version);
  {
    WriterMutexLock lock(mu_);
    PlanState& st = plans_.at(spec.name);
    st.next_version = version + 1;
    st.rollout = std::move(rollout);
    PublishLocked();
  }
  deploys_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

Status ShardRouter::Promote(const std::string& name) {
  std::lock_guard<std::mutex> control(control_mu_);
  std::vector<ReplicaState> old_replicas;
  VersionGate* old_gate = nullptr;
  uint64_t killed_version = 0;
  {
    WriterMutexLock lock(mu_);
    auto it = plans_.find(name);
    if (it == plans_.end() || it->second.pending) {
      return Status::NotFound("plan '" + name + "'");
    }
    PlanState& st = it->second;
    if (st.rollout == nullptr) {
      return Status::NotFound("no rollout in flight for '" + name + "'");
    }
    if (st.rollout->initial_fraction_bp != 0 &&
        st.rollout->split->Load().fraction_bp == 0) {
      // The data path's kill switch fired but nothing has completed the
      // teardown yet (async completions only flip the switch; the sync and
      // maintenance paths may not have run since). Promoting a canary the
      // health gate condemned would defeat the controller, so finish the
      // rollback instead and tell the caller why.
      killed_version = st.rollout->version;
    } else {
      std::unique_ptr<Rollout> rollout = std::move(st.rollout);
      old_replicas = std::move(st.replicas);
      old_gate = st.gate;
      st.replicas.clear();
      st.replicas.push_back(std::move(rollout->replica));
      st.primary = 0;
      st.spec = std::move(rollout->spec);
      st.active_version = rollout->version;
      st.gate = rollout->gate;
      st.vstats = rollout->stats;
      // One swap: all traffic moves to the new version, the canary split
      // disappears from the snapshot. The RCU grace inside guarantees no
      // reader still routes to the old version when we return.
      PublishLocked();
    }
  }
  if (killed_version != 0) {
    (void)RollbackLocked(name, killed_version, /*auto_trigger=*/true);
    return Status::Error("canary for '" + name +
                         "' was killed by the health gate; rolled back");
  }
  promotes_.fetch_add(1, std::memory_order_relaxed);
  ReclaimVersion(old_gate, std::move(old_replicas));
  return Status::OK();
}

Status ShardRouter::Rollback(const std::string& name) {
  std::lock_guard<std::mutex> control(control_mu_);
  return RollbackLocked(name, /*expect_version=*/0, /*auto_trigger=*/false);
}

Status ShardRouter::RollbackLocked(const std::string& name,
                                   uint64_t expect_version,
                                   bool auto_trigger) {
  std::unique_ptr<Rollout> rollout;
  {
    WriterMutexLock lock(mu_);
    auto it = plans_.find(name);
    if (it == plans_.end() || it->second.rollout == nullptr) {
      return Status::NotFound("no rollout in flight for '" + name + "'");
    }
    if (expect_version != 0 &&
        it->second.rollout->version != expect_version) {
      return Status::NotFound("rollout for '" + name + "' superseded");
    }
    rollout = std::move(it->second.rollout);
    PublishLocked();  // Snapshot without the canary: no new canary routes.
  }
  // Belt and braces: the kill switch may already have fired from the data
  // path; republish 0 so every observer agrees before the teardown.
  rollout->split->Publish(0, rollout->version);
  std::vector<ReplicaState> replicas;
  replicas.push_back(std::move(rollout->replica));
  ReclaimVersion(rollout->gate, std::move(replicas));
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  if (auto_trigger) {
    auto_rollbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void ShardRouter::TryAutoRollback(const std::string& name, uint64_t version) {
  std::unique_lock<std::mutex> control(control_mu_, std::try_to_lock);
  if (!control.owns_lock()) {
    // Another lifecycle/control op is running. The kill switch has already
    // stopped canary traffic; the MaintainReplication backstop (or the next
    // sync request) completes the teardown.
    return;
  }
  (void)RollbackLocked(name, version, /*auto_trigger=*/true);
}

void ShardRouter::ReclaimVersion(VersionGate* gate,
                                 std::vector<ReplicaState> replicas) {
  // Chaos site: the swap commit stalls (slow store, straggling drain). The
  // armed latency lands HERE — on the control plane, after the new snapshot
  // is live — so a stalled reclaim can never block the route path. That
  // separation is the invariant the chaos scenario asserts.
  PRETZEL_FAULT_STALL("store.swap_stall", static_cast<int64_t>(0));
  // Epoch order: the table swap's RCU grace already passed (PublishLocked),
  // so no new request can reach this gate; close it and wait out the
  // stragglers that routed before the swap.
  gate->Close();
  gate->AwaitDrain();
  for (const ReplicaState& r : replicas) {
    (void)shards_[r.shard]->runtime->Retire(r.plan_id);
    for (const uint64_t checksum : r.checksums) {
      shards_[r.shard]->segment->Release(checksum);
    }
  }
  // Sweep once per distinct segment (global scope delegates, so any one
  // sweep clears the shared store's zero-pin entries).
  std::vector<bool> swept(shards_.size(), false);
  for (const ReplicaState& r : replicas) {
    if (!swept[r.shard]) {
      swept[r.shard] = true;
      shards_[r.shard]->segment->Sweep();
    }
  }
}

bool ShardRouter::FinishVersion(const RouteDecision& decision,
                                const Status& status, int64_t start_ns) {
  bool want_rollback = false;
  if (decision.stats != nullptr) {
    // Mirror RecordOutcome's verdict taxonomy: backpressure, caller errors,
    // and admission-expired requests say nothing about the version either.
    const bool fault =
        (status.IsDeadlineExceeded() &&
         status.deadline_stage() != DeadlineStage::kAdmission) ||
        status.code() == StatusCode::kError;
    if (status.ok()) {
      decision.stats->successes.fetch_add(1, std::memory_order_relaxed);
    } else if (fault) {
      decision.stats->faults.fetch_add(1, std::memory_order_relaxed);
    }
    if (status.ok() || fault) {
      UpdateEwma(decision.stats->failure_ewma_bits, fault ? 1.0 : 0.0);
      UpdateEwma(decision.stats->latency_ewma_bits,
                 static_cast<double>(NowNs() - start_ns) / 1000.0);
    }
    if (decision.canary && options_.rollout.auto_rollback &&
        decision.split != nullptr && decision.baseline != nullptr) {
      // Verdict is evaluated INSIDE the gate: the rollout (and these stats)
      // cannot be reclaimed until we exit.
      const RolloutOptions& ro = options_.rollout;
      // relaxed: monotone counter; a stale read only delays the verdict by
      // a request or two.
      const uint64_t seen =
          decision.stats->routed.load(std::memory_order_relaxed);
      if (seen >= ro.min_canary_requests) {
        const double fail = LoadEwma(decision.stats->failure_ewma_bits);
        const double canary_lat = LoadEwma(decision.stats->latency_ewma_bits);
        const double stable_lat = LoadEwma(decision.baseline->latency_ewma_bits);
        if (fail >= ro.rollback_failure_ewma ||
            (stable_lat > 0.0 && canary_lat > stable_lat * ro.rollback_latency_x)) {
          // Kill switch first — lock-free, stops canary traffic NOW; the
          // heavyweight teardown follows outside the gate.
          decision.split->Publish(0, decision.version);
          want_rollback = true;
        }
      }
    }
  }
  if (decision.gate != nullptr) {
    decision.gate->Exit();
  }
  return want_rollback;
}

// ---------------------------------------------------------------------------
// Health, breaker gate, and failover.

void ShardRouter::RecordOutcome(size_t shard, const Status& status) {
  ShardHealth& health = *health_[shard];
  bool fault = false;
  if (status.ok()) {
    health.successes.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded() &&
             status.deadline_stage() != DeadlineStage::kAdmission) {
    // Expired inside the shard — its queues or execution burned the budget
    // (kQueue / kExecution; untagged kUnspecified counts conservatively).
    health.timeouts.fetch_add(1, std::memory_order_relaxed);
    fault = true;
  } else if (status.code() == StatusCode::kError) {
    health.errors.fetch_add(1, std::memory_order_relaxed);
    fault = true;
  } else {
    // Backpressure (ResourceExhausted), caller errors (NotFound /
    // InvalidArgument), and admission-time deadline expiry (the request
    // arrived already dead — the budget was burned upstream, the shard did
    // no work) say nothing about the shard's health: counting them would
    // let an overload or a flood of doomed clients trip the breaker and
    // amplify the very outage it guards against. A verdictless outcome
    // still owes the breaker its probe token back, or half-open wedges
    // with every token burned and no verdict ever coming.
    health.breaker.OnProbeAbandoned(NowNs() / 1000);
    return;
  }
  UpdateEwma(health.failure_ewma_bits, fault ? 1.0 : 0.0);
  const int64_t now_us = NowNs() / 1000;
  if (fault) {
    health.breaker.OnFailure(now_us);
  } else {
    health.breaker.OnSuccess(now_us);
  }
}

Status ShardRouter::InjectedShardFault(size_t shard) {
  // Chaos site: the owning shard has gone unresponsive — the request burns
  // the armed latency, then fails as a shard fault so the breaker sees it.
  if (PRETZEL_FAULT_POINT("serving.shard_unresponsive",
                          static_cast<int64_t>(shard))) {
    SleepUs(fault::LatencyUs("serving.shard_unresponsive"));
    Status down = Status::Error("shard " + std::to_string(shard) +
                                " unresponsive (fault-injected)");
    RecordOutcome(shard, down);
    return down;
  }
  return Status::OK();
}

Result<ShardPlacement> ShardRouter::Failover(const std::string& name,
                                             size_t from) {
  std::lock_guard<std::mutex> control(control_mu_);
  // Re-check under the control lock: a racing request may already have
  // moved the plan while this one waited.
  Result<ShardPlacement> current = Placement(name);
  if (!current.ok()) {
    return current.status();
  }
  if (current->shard != from) {
    return *current;
  }
  ShardHealth& health = *health_[from];
  // relaxed: failovers is only ever advanced under control_mu_ (held
  // here), so this read cannot race another budget check.
  if (health.failovers.load(std::memory_order_relaxed) >=
      options_.max_failover_placements) {
    return Status::ResourceExhausted("shard " + std::to_string(from) +
                                     " failover budget spent");
  }
  PipelineSpec spec;
  PlanRegistration registration;
  std::vector<bool> hosted(shards_.size(), false);
  {
    // Cheapest exit first: a replica already materialized on a healthy
    // shard becomes the new primary with zero compiles — replication work
    // doubles as pre-staged failover capacity. The sick replica leaves the
    // route set but stays registered so in-flight work drains; movement is
    // additive, never a teardown.
    WriterMutexLock lock(mu_);
    auto it = plans_.find(name);
    if (it == plans_.end() || it->second.pending) {
      return Status::NotFound("plan '" + name + "'");
    }
    PlanState& st = it->second;
    for (size_t i = 0; i < st.replicas.size(); ++i) {
      ReplicaState& r = st.replicas[i];
      hosted[r.shard] = true;
      if (r.shard == from ||
          health_[r.shard]->breaker.state() !=
              CircuitBreaker::State::kClosed) {
        continue;
      }
      r.active = true;
      st.replicas[st.primary].active = false;
      st.primary = i;
      PublishLocked();
      health.failovers.fetch_add(1, std::memory_order_relaxed);
      return ShardPlacement{r.shard, r.plan_id};
    }
    spec = st.spec;
    registration = st.registration;
  }
  // No usable replica: candidate scan starts at a name-keyed offset so one
  // sick shard's plans spread over the survivors instead of piling onto a
  // single neighbor.
  const size_t n = shards_.size();
  size_t target = from;
  if (n > 1) {
    const size_t start = (from + 1 + HashName(name) % (n - 1)) % n;
    for (size_t k = 0; k < n; ++k) {
      const size_t candidate = (start + k) % n;
      if (candidate == from || hosted[candidate]) {
        continue;
      }
      if (health_[candidate]->breaker.state() ==
          CircuitBreaker::State::kClosed) {
        target = candidate;
        break;
      }
    }
  }
  if (target == from) {
    return Status::Error("no healthy shard to fail '" + name + "' over to");
  }
  // Same compile path as Place, against the target shard's segment; mu_
  // stays dropped around the compile (it is a leaf lock).
  FlourContext flour(shards_[target]->segment.get());
  auto program = flour.FromPipeline(spec);
  if (program == nullptr) {
    return Status::Error("pipeline '" + name + "' did not re-lower");
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
  if (!plan.ok()) {
    ReleaseProgramPins(shards_[target]->segment.get(), *program);
    return plan.status();
  }
  Result<Runtime::PlanId> id =
      shards_[target]->runtime->Register(std::move(*plan), registration);
  if (!id.ok()) {
    ReleaseProgramPins(shards_[target]->segment.get(), *program);
    return id.status();
  }
  ShardPlacement placement{target, *id};
  {
    WriterMutexLock lock(mu_);
    PlanState& st = plans_.at(name);
    ReplicaState replica;
    replica.shard = target;
    replica.plan_id = *id;
    replica.queue_delay_us = shards_[target]->runtime->QueueDelayCounter(*id);
    replica.stats = std::make_unique<ReplicaStats>();
    replica.active = true;
    replica.checksums = CollectChecksums(*program);
    st.replicas[st.primary].active = false;
    st.replicas.push_back(std::move(replica));
    st.primary = st.replicas.size() - 1;
    PublishLocked();
  }
  health.failovers.fetch_add(1, std::memory_order_relaxed);
  return placement;
}

// ---------------------------------------------------------------------------
// Replication control plane.

Result<int> ShardRouter::SetActiveReplicas(const std::string& name,
                                           size_t target) {
  const size_t cap = std::max<size_t>(
      1, std::min(options_.replication.max_replicas_per_plan,
                  shards_.size()));
  target = std::min(std::max<size_t>(1, target), cap);
  size_t active = 0;
  std::vector<bool> hosted(shards_.size(), false);
  PipelineSpec spec;
  PlanRegistration registration;
  {
    ReaderMutexLock lock(mu_);
    auto it = plans_.find(name);
    if (it == plans_.end() || it->second.pending) {
      return Status::NotFound("plan '" + name + "'");
    }
    spec = it->second.spec;
    registration = it->second.registration;
    for (const ReplicaState& r : it->second.replicas) {
      hosted[r.shard] = true;
      if (r.active) {
        ++active;
      }
    }
  }
  if (target == active) {
    return 0;
  }
  if (target < active) {
    // Cooling: deactivate non-primary extras, newest first. Registrations
    // stay materialized — a re-heated plan re-activates with zero compiles,
    // and residency was already bounded by the cap at materialize time.
    WriterMutexLock lock(mu_);
    PlanState& st = plans_.at(name);
    int removed = 0;
    for (size_t i = st.replicas.size(); i-- > 0 && active > target;) {
      if (i == st.primary || !st.replicas[i].active) {
        continue;
      }
      st.replicas[i].active = false;
      --active;
      ++removed;
    }
    if (removed > 0) {
      dereplications_.fetch_add(removed, std::memory_order_relaxed);
      PublishLocked();
    }
    return -removed;
  }
  // Heating. Free step first: re-activate materialized replicas. The
  // activation flips are committed now (under mu_) but published together
  // with the materialized remainder below — one snapshot swap for the
  // whole heat-up.
  int added = 0;
  {
    WriterMutexLock lock(mu_);
    PlanState& st = plans_.at(name);
    for (size_t i = 0; i < st.replicas.size() && active < target; ++i) {
      if (st.replicas[i].active) {
        continue;
      }
      st.replicas[i].active = true;
      ++active;
      ++added;
    }
  }
  // Materialize the remainder onto healthy, not-yet-hosting shards walking
  // the ring from the plan's home — deterministic, and different plans'
  // homes stagger so replicas spread. Compiles run with no router lock
  // held; the fresh replicas are collected locally and committed in ONE
  // publish after the loop. Per-replica activation visibility mid-loop is
  // not load-bearing, and PublishLocked blocks in the RCU grace wait while
  // holding mu_ — publishing per replica would charge a K-replica heat-up
  // K table copies and K grace waits, stalling other control-plane
  // writers.
  std::vector<ReplicaState> fresh;
  const size_t home = ShardFor(name);
  for (size_t k = 1; k < shards_.size() && active < target; ++k) {
    const size_t candidate = (home + k) % shards_.size();
    if (hosted[candidate] ||
        health_[candidate]->breaker.state() !=
            CircuitBreaker::State::kClosed) {
      continue;
    }
    FlourContext flour(shards_[candidate]->segment.get());
    auto program = flour.FromPipeline(spec);
    if (program == nullptr) {
      break;  // Spec no longer lowers; nothing later will either.
    }
    Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
    if (!plan.ok()) {
      ReleaseProgramPins(shards_[candidate]->segment.get(), *program);
      break;
    }
    Result<Runtime::PlanId> id =
        shards_[candidate]->runtime->Register(std::move(*plan), registration);
    if (!id.ok()) {
      ReleaseProgramPins(shards_[candidate]->segment.get(), *program);
      continue;  // This shard is full; the next candidate may not be.
    }
    ReplicaState replica;
    replica.shard = candidate;
    replica.plan_id = *id;
    replica.queue_delay_us =
        shards_[candidate]->runtime->QueueDelayCounter(*id);
    replica.stats = std::make_unique<ReplicaStats>();
    replica.active = true;
    replica.checksums = CollectChecksums(*program);
    fresh.push_back(std::move(replica));
    ++active;
    ++added;
  }
  if (added > 0) {
    WriterMutexLock lock(mu_);
    PlanState& st = plans_.at(name);
    for (ReplicaState& replica : fresh) {
      st.replicas.push_back(std::move(replica));
    }
    PublishLocked();
    replications_.fetch_add(static_cast<uint64_t>(added),
                            std::memory_order_relaxed);
  }
  return added;
}

Status ShardRouter::Replicate(const std::string& name,
                              size_t target_replicas) {
  std::lock_guard<std::mutex> control(control_mu_);
  Result<int> delta = SetActiveReplicas(name, target_replicas);
  return delta.ok() ? Status::OK() : delta.status();
}

MaintenanceReport ShardRouter::MaintainReplication() {
  std::lock_guard<std::mutex> control(control_mu_);
  MaintenanceReport report;
  // Lifecycle backstop: a canary whose kill switch fired on a thread that
  // could not run the blocking teardown (async completions book outcomes on
  // executor threads, and TryAutoRollback yields when the control plane is
  // busy) is finished here. "Killed" = live fraction reached 0 while the
  // configured split was nonzero — a dark deploy (configured 0) is not a
  // kill.
  {
    std::vector<std::string> killed;
    {
      ReaderMutexLock lock(mu_);
      for (const auto& [name, st] : plans_) {
        if (st.rollout != nullptr && st.rollout->initial_fraction_bp != 0 &&
            st.rollout->split->Load().fraction_bp == 0) {
          killed.push_back(name);
        }
      }
    }
    for (const std::string& name : killed) {
      (void)RollbackLocked(name, /*expect_version=*/0, /*auto_trigger=*/true);
    }
  }
  struct Row {
    std::string name;
    uint64_t interval = 0;
    size_t active = 0;
  };
  std::vector<Row> rows;
  uint64_t total = 0;
  {
    ReaderMutexLock lock(mu_);
    rows.reserve(plans_.size());
    for (auto& [name, st] : plans_) {
      if (st.pending) {
        continue;
      }
      // relaxed: cumulative routed count read for an interval diff; the
      // scan needs no ordering against the routes it counts — a straggling
      // increment simply lands in the next interval.
      const uint64_t cum = st.traffic->routed.load(std::memory_order_relaxed);
      Row row;
      row.name = name;
      row.interval = cum - st.traffic->last_scan_routed;
      st.traffic->last_scan_routed = cum;  // Guarded by control_mu_.
      for (const ReplicaState& r : st.replicas) {
        row.active += r.active ? 1 : 0;
      }
      total += row.interval;
      rows.push_back(std::move(row));
    }
  }
  report.plans_scanned = rows.size();
  report.interval_requests = total;
  if (!options_.replication.enabled ||
      total < options_.replication.min_interval_requests) {
    return report;  // Disabled, or the interval carried no signal.
  }
  const size_t cap = std::max<size_t>(
      1, std::min(options_.replication.max_replicas_per_plan,
                  shards_.size()));
  for (const Row& row : rows) {
    const double share =
        static_cast<double>(row.interval) / static_cast<double>(total);
    size_t target = row.active;
    if (share >= options_.replication.hot_share_threshold) {
      // Replica count proportional to the plan's traffic share of the
      // fleet (at least 2 — it is hot), bounded by the residency cap.
      target = std::min(
          cap, std::max<size_t>(
                   2, static_cast<size_t>(std::ceil(
                          share * static_cast<double>(shards_.size())))));
    } else if (share <= options_.replication.cool_share_threshold) {
      target = 1;
    }
    // Between the thresholds: hysteresis — keep whatever it has.
    if (target == row.active) {
      continue;
    }
    Result<int> delta = SetActiveReplicas(row.name, target);
    if (!delta.ok()) {
      continue;  // Unhealthy candidates etc.; the next scan retries.
    }
    if (*delta > 0) {
      report.replications += static_cast<size_t>(*delta);
    } else {
      report.dereplications += static_cast<size_t>(-*delta);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Request routing.

Result<ShardRouter::RouteDecision> ShardRouter::Route(
    const std::string& name) {
  size_t blocked_shard = 0;
  // A successful failover republishes the table, so the route is retried
  // against the fresh snapshot (the new primary enters its version gate
  // like any other route). Bounded: each extra pass requires a failover
  // that succeeded, and the budget caps those.
  for (int attempt = 0; attempt < 3; ++attempt) {
    {
      // The common case runs entirely inside this read section: no mutex,
      // just the RCU enter/exit counters around a snapshot lookup, the
      // canary split, the p2c pick, and the breaker gate.
      auto guard = table_.Read();
      auto it = guard->plans.find(name);
      if (it == guard->plans.end()) {
        return Status::NotFound("plan '" + name + "'");
      }
      const PlanRouting& routing = it->second;
      const uint64_t seq =
          routing.traffic->routed.fetch_add(1, std::memory_order_relaxed);
      const int64_t now_us = NowNs() / 1000;
      // ---- Canary split. Deterministic in the count domain: request seq
      // hashes against the live fraction, so a 5% canary sees 5% exactly,
      // reproducibly. The split's target token must match the snapshot's
      // canary version — a reader can never send traffic to a canary whose
      // fraction it observed without its identity.
      if (routing.has_canary) {
        const CanarySplit::Split split = routing.split->Load();
        if (split.fraction_bp != 0 &&
            split.target == routing.canary_version &&
            CanarySplit::InCanary(seq, split.fraction_bp) &&
            health_[routing.canary.shard]->breaker.Allow(now_us)) {
          // Gate entry INSIDE the read section: the snapshot holding this
          // gate is what keeps it un-reclaimed until we are counted. A
          // closed gate (rollout tearing down) falls through to stable —
          // the request is never lost.
          if (routing.canary_gate->Enter()) {
            routing.canary.stats->routed.fetch_add(1,
                                                   std::memory_order_relaxed);
            routing.canary_stats->routed.fetch_add(1,
                                                   std::memory_order_relaxed);
            RouteDecision decision;
            decision.shard = routing.canary.shard;
            decision.plan_id = routing.canary.plan_id;
            decision.version = routing.canary_version;
            decision.canary = true;
            decision.gate = routing.canary_gate;
            decision.stats = routing.canary_stats;
            decision.baseline = routing.stats;
            decision.split = routing.split;
            return decision;
          }
        }
      }
      const size_t n = routing.replicas.size();
      size_t first = 0;
      size_t second = 0;
      if (n > 1) {
        // Power-of-two-choices: sample two distinct replicas, prefer the one
        // with the shorter live queue delay (balanced allocations: max load
        // drops from ~log n/log log n to ~log log n versus random).
        const uint64_t r = NextRand();
        first = static_cast<size_t>(r >> 32) % n;
        second = static_cast<size_t>(r & 0xffffffffULL) % (n - 1);
        if (second >= first) {
          ++second;
        }
        // relaxed: live queue-delay EWMAs are advisory p2c samples — any
        // coherent value is acceptable; staleness costs pick quality only,
        // never safety (the breaker gate below decides admissibility).
        const int64_t delay_first =
            routing.replicas[first].queue_delay_us->load(
                std::memory_order_relaxed);
        const int64_t delay_second =
            routing.replicas[second].queue_delay_us->load(
                std::memory_order_relaxed);
        if (delay_second < delay_first) {
          std::swap(first, second);
        }
      }
      // Breaker-gate the chosen replica, then the runner-up, then sweep the
      // rest — Allow() is called per attempted replica only (it claims
      // half-open probe tokens; probing replicas we will not use would burn
      // them).
      for (size_t i = 0; i < n + 2; ++i) {
        const size_t idx = i == 0 ? first : (i == 1 ? second : i - 2);
        if ((i >= 2 && (idx == first || idx == second)) ||
            (i == 1 && second == first)) {
          continue;
        }
        const ReplicaRef& replica = routing.replicas[idx];
        if (health_[replica.shard]->breaker.Allow(now_us)) {
          // The active version's gate closes only after a snapshot without
          // it has published and its grace passed, so inside this read
          // section entry cannot fail; the check is defense in depth (a
          // rejection falls to the blocked path like an open breaker).
          if (!routing.gate->Enter()) {
            break;
          }
          replica.stats->routed.fetch_add(1, std::memory_order_relaxed);
          routing.stats->routed.fetch_add(1, std::memory_order_relaxed);
          RouteDecision decision;
          decision.shard = replica.shard;
          decision.plan_id = replica.plan_id;
          decision.version = routing.version;
          decision.gate = routing.gate;
          decision.stats = routing.stats;
          return decision;
        }
      }
      blocked_shard = routing.replicas[0].shard;  // Primary owns the slow path.
    }
    // Guard dropped before the control plane: a thread inside an RCU read
    // section must never publish (Failover swaps the table and would wait on
    // its own read guard).
    health_[blocked_shard]->rejected.fetch_add(1, std::memory_order_relaxed);
    if (!options_.failover_enabled) {
      break;
    }
    Result<ShardPlacement> moved = Failover(name, blocked_shard);
    if (!moved.ok()) {
      break;
    }
    // Loop: re-route through the republished snapshot.
  }
  const int64_t now_us = NowNs() / 1000;
  const int64_t reopen_us = health_[blocked_shard]->breaker.reopen_at_us();
  return Status::ResourceExhausted("shard " + std::to_string(blocked_shard) +
                                   " circuit open")
      .WithRetryAfterUs(std::max<int64_t>(1, reopen_us - now_us));
}

Result<PlanVersionInfo> ShardRouter::VersionInfo(
    const std::string& name) const {
  ReaderMutexLock lock(mu_);
  auto it = plans_.find(name);
  if (it == plans_.end() || it->second.pending) {
    return Status::NotFound("plan '" + name + "'");
  }
  const PlanState& st = it->second;
  PlanVersionInfo info;
  info.active_version = st.active_version;
  info.next_version = st.next_version;
  if (st.vstats != nullptr) {
    info.stable_latency_ewma_us = LoadEwma(st.vstats->latency_ewma_bits);
  }
  if (st.gate != nullptr) {
    info.stable_inflight = st.gate->inflight();
  }
  if (st.rollout != nullptr) {
    info.rollout_in_flight = true;
    info.rollout_version = st.rollout->version;
    info.canary_fraction_bp = st.rollout->split->Load().fraction_bp;
    // relaxed: point-in-time snapshot for tests/benches; no decision rides
    // on cross-counter consistency.
    info.canary_routed =
        st.rollout->stats->routed.load(std::memory_order_relaxed);
    info.canary_faults =
        st.rollout->stats->faults.load(std::memory_order_relaxed);
    info.canary_failure_ewma = LoadEwma(st.rollout->stats->failure_ewma_bits);
    info.canary_latency_ewma_us =
        LoadEwma(st.rollout->stats->latency_ewma_bits);
  }
  return info;
}

Result<ShardPlacement> ShardRouter::Placement(const std::string& name) const {
  auto guard = table_.Read();
  auto it = guard->plans.find(name);
  if (it == guard->plans.end()) {
    return Status::NotFound("plan '" + name + "'");
  }
  const ReplicaRef& primary = it->second.replicas.front();
  return ShardPlacement{primary.shard, primary.plan_id};
}

std::vector<ShardPlacement> ShardRouter::Replicas(
    const std::string& name) const {
  std::vector<ShardPlacement> replicas;
  auto guard = table_.Read();
  auto it = guard->plans.find(name);
  if (it == guard->plans.end()) {
    return replicas;
  }
  replicas.reserve(it->second.replicas.size());
  for (const ReplicaRef& r : it->second.replicas) {
    replicas.push_back(ShardPlacement{r.shard, r.plan_id});
  }
  return replicas;
}

Result<float> ShardRouter::Predict(const std::string& name,
                                   const std::string& input,
                                   int64_t deadline_ns) {
  Result<RouteDecision> route = Route(name);
  if (!route.ok()) {
    return route.status();
  }
  const RouteDecision decision = *route;
  const int64_t start_ns = NowNs();
  if (Status fault = InjectedShardFault(decision.shard); !fault.ok()) {
    if (FinishVersion(decision, fault, start_ns)) {
      TryAutoRollback(name, decision.version);
    }
    return fault;
  }
  Result<float> result = shards_[decision.shard]->runtime->Predict(
      decision.plan_id, input, deadline_ns);
  RecordOutcome(decision.shard, result.status());
  if (FinishVersion(decision, result.status(), start_ns)) {
    TryAutoRollback(name, decision.version);
  }
  return result;
}

Result<float> ShardRouter::PredictBinary(const std::string& name,
                                         std::span<const uint8_t> record,
                                         int64_t deadline_ns) {
  Result<RouteDecision> route = Route(name);
  if (!route.ok()) {
    return route.status();
  }
  const RouteDecision decision = *route;
  const int64_t start_ns = NowNs();
  if (Status fault = InjectedShardFault(decision.shard); !fault.ok()) {
    if (FinishVersion(decision, fault, start_ns)) {
      TryAutoRollback(name, decision.version);
    }
    return fault;
  }
  Result<float> result = shards_[decision.shard]->runtime->PredictBinary(
      decision.plan_id, record, deadline_ns);
  RecordOutcome(decision.shard, result.status());
  if (FinishVersion(decision, result.status(), start_ns)) {
    TryAutoRollback(name, decision.version);
  }
  return result;
}

Status ShardRouter::PredictAsync(const std::string& name, std::string input,
                                 Runtime::SingleCallback callback,
                                 int64_t deadline_ns) {
  Result<RouteDecision> route = Route(name);
  if (!route.ok()) {
    return route.status();
  }
  const RouteDecision decision = *route;
  const int64_t start_ns = NowNs();
  if (Status fault = InjectedShardFault(decision.shard); !fault.ok()) {
    FinishVersion(decision, fault, start_ns);
    return fault;
  }
  // Outcome books from the completion, not the submit: `this` outlives the
  // callback because shards_ (joined first, reverse declaration order)
  // drains its executors before health_ and the lifecycle pool go away.
  // The completion runs on an executor thread, so FinishVersion's rollback
  // verdict is NOT acted on here — the kill switch it fires stops canary
  // traffic, and a sync caller or the maintenance backstop finishes the
  // teardown (Runtime::Retire must never run on an executor).
  Status status = shards_[decision.shard]->runtime->PredictAsync(
      decision.plan_id, std::move(input),
      [this, decision, start_ns,
       done = std::move(callback)](Result<float> result) mutable {
        RecordOutcome(decision.shard, result.status());
        FinishVersion(decision, result.status(), start_ns);
        done(std::move(result));
      },
      deadline_ns);
  if (!status.ok()) {
    // Admission failed synchronously: the callback never fires, so the
    // gate exits here, exactly once.
    RecordOutcome(decision.shard, status);
    FinishVersion(decision, status, start_ns);
  }
  return status;
}

Result<std::vector<float>> ShardRouter::PredictBatch(
    const std::string& name, const std::vector<std::string>& inputs,
    size_t max_batch, int64_t deadline_ns) {
  Result<RouteDecision> route = Route(name);
  if (!route.ok()) {
    return route.status();
  }
  const RouteDecision decision = *route;
  const int64_t start_ns = NowNs();
  if (Status fault = InjectedShardFault(decision.shard); !fault.ok()) {
    if (FinishVersion(decision, fault, start_ns)) {
      TryAutoRollback(name, decision.version);
    }
    return fault;
  }
  Result<std::vector<float>> result =
      shards_[decision.shard]->runtime->PredictBatch(decision.plan_id, inputs,
                                                     max_batch, deadline_ns);
  RecordOutcome(decision.shard, result.status());
  if (FinishVersion(decision, result.status(), start_ns)) {
    TryAutoRollback(name, decision.version);
  }
  return result;
}

ShardedMetrics ShardRouter::GetMetrics() const {
  ShardedMetrics metrics;
  metrics.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardMetrics shard;
    shard.shard = i;
    shard.runtime = shards_[i]->runtime->GetMetrics();
    shard.store_objects = shards_[i]->segment->NumObjects();
    shard.store_bytes = shards_[i]->segment->TotalBytes();
    // The fold dedups by plan name, so a replicated plan contributes one
    // logical row with summed counters — never K rows for K replicas.
    MergeRuntimeMetrics(metrics.merged, shard.runtime);
    metrics.store_objects += shard.store_objects;
    metrics.store_bytes += shard.store_bytes;
    metrics.shards.push_back(std::move(shard));
  }
  metrics.unique_plans = metrics.merged.plans.size();
  metrics.replications = replications_.load(std::memory_order_relaxed);
  metrics.dereplications = dereplications_.load(std::memory_order_relaxed);
  metrics.deploys = deploys_.load(std::memory_order_relaxed);
  metrics.promotes = promotes_.load(std::memory_order_relaxed);
  metrics.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  metrics.auto_rollbacks = auto_rollbacks_.load(std::memory_order_relaxed);
  if (global_store_ != nullptr) {
    // Delegating segments hold nothing; the uniques live here.
    metrics.store_objects = global_store_->NumObjects();
    metrics.store_bytes = global_store_->TotalBytes();
  }
  // Load imbalance: fold each shard's plan queue-delay EWMAs into one
  // event-weighted number per shard, then compare the hottest shard to the
  // mean (the hot-shard bound bench_shard reports under Zipf skew).
  metrics.shard_queue_delay_us.reserve(metrics.shards.size());
  double sum = 0.0;
  for (const ShardMetrics& shard : metrics.shards) {
    double weighted = 0.0;
    double events = 0.0;
    for (const PlanMetrics& pm : shard.runtime.plans) {
      const double weight = static_cast<double>(pm.enqueued_events);
      weighted += static_cast<double>(pm.queue_delay_ewma_us) * weight;
      events += weight;
    }
    const double load = events > 0.0 ? weighted / events : 0.0;
    metrics.shard_queue_delay_us.push_back(load);
    sum += load;
    if (load > metrics.max_shard_queue_delay_us) {
      metrics.max_shard_queue_delay_us = load;
      metrics.hottest_shard = metrics.shard_queue_delay_us.size() - 1;
    }
  }
  if (!metrics.shard_queue_delay_us.empty()) {
    metrics.mean_shard_queue_delay_us =
        sum / static_cast<double>(metrics.shard_queue_delay_us.size());
  }
  if (metrics.mean_shard_queue_delay_us > 0.0) {
    metrics.queue_delay_imbalance =
        metrics.max_shard_queue_delay_us / metrics.mean_shard_queue_delay_us;
  }
  {
    // Per-replica breakdown: where each logical plan's traffic landed.
    // Brief reader-side mu_ — control-plane state, not the route path.
    ReaderMutexLock lock(mu_);
    metrics.plan_replicas.reserve(plans_.size());
    for (const auto& [name, st] : plans_) {
      if (st.pending) {
        continue;
      }
      PlanReplicaMetrics plan;
      plan.name = name;
      plan.replicas.reserve(st.replicas.size());
      size_t active = 0;
      const auto snapshot = [](const ReplicaState& r) {
        ReplicaMetrics m;
        m.shard = r.shard;
        m.plan_id = r.plan_id;
        m.active = r.active;
        m.routed = r.stats->routed.load(std::memory_order_relaxed);
        m.queue_delay_ewma_us =
            r.queue_delay_us->load(std::memory_order_relaxed);
        return m;
      };
      plan.replicas.push_back(snapshot(st.replicas[st.primary]));
      active += st.replicas[st.primary].active ? 1 : 0;
      for (size_t i = 0; i < st.replicas.size(); ++i) {
        if (i == st.primary) {
          continue;
        }
        plan.replicas.push_back(snapshot(st.replicas[i]));
        active += st.replicas[i].active ? 1 : 0;
      }
      if (active > 1) {
        ++metrics.replicated_plans;
      }
      metrics.plan_replicas.push_back(std::move(plan));
    }
  }
  metrics.shard_health.reserve(health_.size());
  for (const auto& health : health_) {
    ShardHealthSnapshot snapshot;
    snapshot.breaker_state = health->breaker.state();
    snapshot.successes = health->successes.load(std::memory_order_relaxed);
    snapshot.errors = health->errors.load(std::memory_order_relaxed);
    snapshot.timeouts = health->timeouts.load(std::memory_order_relaxed);
    snapshot.rejected = health->rejected.load(std::memory_order_relaxed);
    snapshot.failovers = health->failovers.load(std::memory_order_relaxed);
    snapshot.trips = health->breaker.trips();
    snapshot.failure_ewma = LoadEwma(health->failure_ewma_bits);
    metrics.shard_health.push_back(snapshot);
  }
  return metrics;
}

}  // namespace pretzel
