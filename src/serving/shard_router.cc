#include "src/serving/shard_router.h"

#include <algorithm>
#include <bit>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {

namespace {

constexpr double kEwmaAlpha = 1.0 / 16.0;

double LoadEwma(const std::atomic<uint64_t>& bits) {
  return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

void UpdateEwma(std::atomic<uint64_t>& bits, double sample) {
  uint64_t current = bits.load(std::memory_order_relaxed);
  const double prev = std::bit_cast<double>(current);
  const double next = prev + (sample - prev) * kEwmaAlpha;
  // Single-shot CAS: a lost race under contention drops one smoothing step,
  // never corrupts the value.
  bits.compare_exchange_weak(current, std::bit_cast<uint64_t>(next),
                             std::memory_order_relaxed,
                             std::memory_order_relaxed);
}

}  // namespace

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_([&] {
        ShardRouterOptions o = options;
        o.num_shards = std::max<size_t>(1, o.num_shards);
        return o;
      }()) {
  if (options_.intern_scope == ShardRouterOptions::InternScope::kGlobal) {
    global_store_ = std::make_unique<ObjectStore>(options_.store);
  }
  health_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    health_.push_back(std::make_unique<ShardHealth>(options_.breaker));
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->segment = global_store_ != nullptr
                         ? std::make_unique<ObjectStore>(options_.store,
                                                         global_store_.get())
                         : std::make_unique<ObjectStore>(options_.store);
    shard->runtime =
        std::make_unique<Runtime>(shard->segment.get(), options_.runtime);
    shards_.push_back(std::move(shard));
  }
}

uint32_t ShardRouter::JumpConsistentHash(uint64_t key, uint32_t num_buckets) {
  int64_t bucket = -1;
  int64_t next = 0;
  while (next < static_cast<int64_t>(num_buckets)) {
    bucket = next;
    key = key * 2862933555777941757ULL + 1;
    next = static_cast<int64_t>(
        static_cast<double>(bucket + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<uint32_t>(bucket);
}

uint64_t ShardRouter::HashName(const std::string& name) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis.
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

size_t ShardRouter::ShardForKey(uint64_t key) const {
  return JumpConsistentHash(key, static_cast<uint32_t>(shards_.size()));
}

size_t ShardRouter::ShardFor(const std::string& name) const {
  return ShardForKey(HashName(name));
}

// Placement entries claim their name BEFORE the compile, marked pending
// with this sentinel, so a racing Place of the same name fails fast instead
// of registering a duplicate, orphaned plan with the shard's Runtime.
static constexpr Runtime::PlanId kPendingPlan =
    static_cast<Runtime::PlanId>(-1);

Result<ShardPlacement> ShardRouter::Place(const PipelineSpec& spec,
                                          const PlanRegistration& registration) {
  const size_t shard = ShardFor(spec.name);
  {
    WriterMutexLock lock(mu_);
    auto [it, inserted] =
        placements_.emplace(spec.name, ShardPlacement{shard, kPendingPlan});
    if (!inserted) {
      return Status::InvalidArgument("plan '" + spec.name +
                                     "' already placed");
    }
  }
  // Compile against the owning shard's segment — outside the lock; the
  // pending entry holds the name. Flour interns the params into the segment
  // (or through it into the global store), Oven binds there.
  const auto fail = [&](Status status) -> Result<ShardPlacement> {
    WriterMutexLock lock(mu_);
    placements_.erase(spec.name);
    return status;
  };
  FlourContext flour(shards_[shard]->segment.get());
  auto program = flour.FromPipeline(spec);
  if (program == nullptr) {
    return fail(Status::InvalidArgument("pipeline '" + spec.name +
                                        "' did not lower"));
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, spec.name);
  if (!plan.ok()) {
    return fail(plan.status());
  }
  Result<Runtime::PlanId> id =
      shards_[shard]->runtime->Register(std::move(*plan), registration);
  if (!id.ok()) {
    return fail(id.status());
  }
  ShardPlacement placement{shard, *id};
  WriterMutexLock lock(mu_);
  placements_[spec.name] = placement;
  // Retained so Failover can re-compile this plan on a healthy shard.
  specs_[spec.name] = PlacedSpec{spec, registration};
  return placement;
}

// ---------------------------------------------------------------------------
// Health, breaker gate, and failover.

void ShardRouter::RecordOutcome(size_t shard, const Status& status) {
  ShardHealth& health = *health_[shard];
  bool fault = false;
  if (status.ok()) {
    health.successes.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded() &&
             status.deadline_stage() != DeadlineStage::kAdmission) {
    // Expired inside the shard — its queues or execution burned the budget
    // (kQueue / kExecution; untagged kUnspecified counts conservatively).
    health.timeouts.fetch_add(1, std::memory_order_relaxed);
    fault = true;
  } else if (status.code() == StatusCode::kError) {
    health.errors.fetch_add(1, std::memory_order_relaxed);
    fault = true;
  } else {
    // Backpressure (ResourceExhausted), caller errors (NotFound /
    // InvalidArgument), and admission-time deadline expiry (the request
    // arrived already dead — the budget was burned upstream, the shard did
    // no work) say nothing about the shard's health: counting them would
    // let an overload or a flood of doomed clients trip the breaker and
    // amplify the very outage it guards against. A verdictless outcome
    // still owes the breaker its probe token back, or half-open wedges
    // with every token burned and no verdict ever coming.
    health.breaker.OnProbeAbandoned(NowNs() / 1000);
    return;
  }
  UpdateEwma(health.failure_ewma_bits, fault ? 1.0 : 0.0);
  const int64_t now_us = NowNs() / 1000;
  if (fault) {
    health.breaker.OnFailure(now_us);
  } else {
    health.breaker.OnSuccess(now_us);
  }
}

Status ShardRouter::InjectedShardFault(size_t shard) {
  // Chaos site: the owning shard has gone unresponsive — the request burns
  // the armed latency, then fails as a shard fault so the breaker sees it.
  if (PRETZEL_FAULT_POINT("serving.shard_unresponsive",
                          static_cast<int64_t>(shard))) {
    SleepUs(fault::LatencyUs("serving.shard_unresponsive"));
    Status down = Status::Error("shard " + std::to_string(shard) +
                                " unresponsive (fault-injected)");
    RecordOutcome(shard, down);
    return down;
  }
  return Status::OK();
}

Result<ShardPlacement> ShardRouter::Failover(const std::string& name,
                                             size_t from) {
  std::lock_guard<std::mutex> failover_lock(failover_mu_);
  // Re-check under the failover lock: a racing request may already have
  // moved the plan while this one waited.
  Result<ShardPlacement> current = Placement(name);
  if (!current.ok()) {
    return current.status();
  }
  if (current->shard != from) {
    return *current;
  }
  ShardHealth& health = *health_[from];
  // relaxed: failovers is only ever advanced under failover_mu_ (held
  // here), so this read cannot race another budget check.
  if (health.failovers.load(std::memory_order_relaxed) >=
      options_.max_failover_placements) {
    return Status::ResourceExhausted("shard " + std::to_string(from) +
                                     " failover budget spent");
  }
  // Candidate scan starts at a name-keyed offset so one sick shard's plans
  // spread over the survivors instead of piling onto a single neighbor.
  const size_t n = shards_.size();
  size_t target = from;
  if (n > 1) {
    const size_t start = (from + 1 + HashName(name) % (n - 1)) % n;
    for (size_t k = 0; k < n; ++k) {
      const size_t candidate = (start + k) % n;
      if (candidate == from) {
        continue;
      }
      if (health_[candidate]->breaker.state() ==
          CircuitBreaker::State::kClosed) {
        target = candidate;
        break;
      }
    }
  }
  if (target == from) {
    return Status::Error("no healthy shard to fail '" + name + "' over to");
  }
  PlacedSpec placed;
  {
    ReaderMutexLock lock(mu_);
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      return Status::NotFound("spec for plan '" + name + "'");
    }
    placed = it->second;
  }
  // Same compile path as Place, against the target shard's segment. The
  // replica on the sick shard stays registered so in-flight work can drain;
  // movement is additive and bounded, never a teardown.
  FlourContext flour(shards_[target]->segment.get());
  auto program = flour.FromPipeline(placed.spec);
  if (program == nullptr) {
    return Status::Error("pipeline '" + name + "' did not re-lower");
  }
  Result<std::shared_ptr<ModelPlan>> plan = Plan(*program, placed.spec.name);
  if (!plan.ok()) {
    return plan.status();
  }
  Result<Runtime::PlanId> id =
      shards_[target]->runtime->Register(std::move(*plan), placed.registration);
  if (!id.ok()) {
    return id.status();
  }
  ShardPlacement placement{target, *id};
  {
    WriterMutexLock lock(mu_);
    placements_[name] = placement;
  }
  health.failovers.fetch_add(1, std::memory_order_relaxed);
  return placement;
}

Result<ShardPlacement> ShardRouter::Route(const std::string& name) {
  Result<ShardPlacement> placement = Placement(name);
  if (!placement.ok()) {
    return placement;
  }
  const size_t shard = placement->shard;
  const int64_t now_us = NowNs() / 1000;
  if (health_[shard]->breaker.Allow(now_us)) {
    return placement;
  }
  health_[shard]->rejected.fetch_add(1, std::memory_order_relaxed);
  if (options_.failover_enabled) {
    Result<ShardPlacement> moved = Failover(name, shard);
    if (moved.ok()) {
      return moved;
    }
  }
  const int64_t reopen_us = health_[shard]->breaker.reopen_at_us();
  return Status::ResourceExhausted("shard " + std::to_string(shard) +
                                   " circuit open")
      .WithRetryAfterUs(std::max<int64_t>(1, reopen_us - now_us));
}

Result<ShardPlacement> ShardRouter::Placement(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  auto it = placements_.find(name);
  if (it == placements_.end() || it->second.plan_id == kPendingPlan) {
    return Status::NotFound("plan '" + name + "'");
  }
  return it->second;
}

Result<float> ShardRouter::Predict(const std::string& name,
                                   const std::string& input,
                                   int64_t deadline_ns) {
  Result<ShardPlacement> placement = Route(name);
  if (!placement.ok()) {
    return placement.status();
  }
  const size_t shard = placement->shard;
  if (Status fault = InjectedShardFault(shard); !fault.ok()) {
    return fault;
  }
  Result<float> result = shards_[shard]->runtime->Predict(placement->plan_id,
                                                          input, deadline_ns);
  RecordOutcome(shard, result.status());
  return result;
}

Result<float> ShardRouter::PredictBinary(const std::string& name,
                                         std::span<const uint8_t> record,
                                         int64_t deadline_ns) {
  Result<ShardPlacement> placement = Route(name);
  if (!placement.ok()) {
    return placement.status();
  }
  const size_t shard = placement->shard;
  if (Status fault = InjectedShardFault(shard); !fault.ok()) {
    return fault;
  }
  Result<float> result = shards_[shard]->runtime->PredictBinary(
      placement->plan_id, record, deadline_ns);
  RecordOutcome(shard, result.status());
  return result;
}

Status ShardRouter::PredictAsync(const std::string& name, std::string input,
                                 Runtime::SingleCallback callback,
                                 int64_t deadline_ns) {
  Result<ShardPlacement> placement = Route(name);
  if (!placement.ok()) {
    return placement.status();
  }
  const size_t shard = placement->shard;
  if (Status fault = InjectedShardFault(shard); !fault.ok()) {
    return fault;
  }
  // Outcome books from the completion, not the submit: `this` outlives the
  // callback because shards_ (joined first, reverse declaration order)
  // drains its executors before health_ goes away.
  Status status = shards_[shard]->runtime->PredictAsync(
      placement->plan_id, std::move(input),
      [this, shard, done = std::move(callback)](Result<float> result) mutable {
        RecordOutcome(shard, result.status());
        done(std::move(result));
      },
      deadline_ns);
  if (!status.ok()) {
    RecordOutcome(shard, status);
  }
  return status;
}

Result<std::vector<float>> ShardRouter::PredictBatch(
    const std::string& name, const std::vector<std::string>& inputs,
    size_t max_batch, int64_t deadline_ns) {
  Result<ShardPlacement> placement = Route(name);
  if (!placement.ok()) {
    return placement.status();
  }
  const size_t shard = placement->shard;
  if (Status fault = InjectedShardFault(shard); !fault.ok()) {
    return fault;
  }
  Result<std::vector<float>> result = shards_[shard]->runtime->PredictBatch(
      placement->plan_id, inputs, max_batch, deadline_ns);
  RecordOutcome(shard, result.status());
  return result;
}

ShardedMetrics ShardRouter::GetMetrics() const {
  ShardedMetrics metrics;
  metrics.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardMetrics shard;
    shard.shard = i;
    shard.runtime = shards_[i]->runtime->GetMetrics();
    shard.store_objects = shards_[i]->segment->NumObjects();
    shard.store_bytes = shards_[i]->segment->TotalBytes();
    MergeRuntimeMetrics(metrics.merged, shard.runtime);
    metrics.store_objects += shard.store_objects;
    metrics.store_bytes += shard.store_bytes;
    metrics.shards.push_back(std::move(shard));
  }
  if (global_store_ != nullptr) {
    // Delegating segments hold nothing; the uniques live here.
    metrics.store_objects = global_store_->NumObjects();
    metrics.store_bytes = global_store_->TotalBytes();
  }
  // Load imbalance: fold each shard's plan queue-delay EWMAs into one
  // event-weighted number per shard, then compare the hottest shard to the
  // mean (the hot-shard bound bench_shard reports under Zipf skew).
  metrics.shard_queue_delay_us.reserve(metrics.shards.size());
  double sum = 0.0;
  for (const ShardMetrics& shard : metrics.shards) {
    double weighted = 0.0;
    double events = 0.0;
    for (const PlanMetrics& pm : shard.runtime.plans) {
      const double weight = static_cast<double>(pm.enqueued_events);
      weighted += static_cast<double>(pm.queue_delay_ewma_us) * weight;
      events += weight;
    }
    const double load = events > 0.0 ? weighted / events : 0.0;
    metrics.shard_queue_delay_us.push_back(load);
    sum += load;
    if (load > metrics.max_shard_queue_delay_us) {
      metrics.max_shard_queue_delay_us = load;
      metrics.hottest_shard = metrics.shard_queue_delay_us.size() - 1;
    }
  }
  if (!metrics.shard_queue_delay_us.empty()) {
    metrics.mean_shard_queue_delay_us =
        sum / static_cast<double>(metrics.shard_queue_delay_us.size());
  }
  if (metrics.mean_shard_queue_delay_us > 0.0) {
    metrics.queue_delay_imbalance =
        metrics.max_shard_queue_delay_us / metrics.mean_shard_queue_delay_us;
  }
  metrics.shard_health.reserve(health_.size());
  for (const auto& health : health_) {
    ShardHealthSnapshot snapshot;
    snapshot.breaker_state = health->breaker.state();
    snapshot.successes = health->successes.load(std::memory_order_relaxed);
    snapshot.errors = health->errors.load(std::memory_order_relaxed);
    snapshot.timeouts = health->timeouts.load(std::memory_order_relaxed);
    snapshot.rejected = health->rejected.load(std::memory_order_relaxed);
    snapshot.failovers = health->failovers.load(std::memory_order_relaxed);
    snapshot.trips = health->breaker.trips();
    snapshot.failure_ewma = LoadEwma(health->failure_ewma_bits);
    metrics.shard_health.push_back(snapshot);
  }
  return metrics;
}

}  // namespace pretzel
