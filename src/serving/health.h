// Per-shard circuit breaker: closed -> open -> half-open -> closed.
//
// The entire state machine lives in ONE atomic 64-bit control word —
// state tag, consecutive-failure count, outstanding probe tokens, and probe
// successes — mutated only by CAS, so a transition can never tear: no
// interleaving can observe half of a trip (e.g. state=open with the closed
// state's failure count, or half-open with yesterday's token quota).
//
// The one piece that does NOT fit in the word is the cooldown deadline
// `reopen_at_us_`. It is stored (relaxed) BEFORE the trip CAS and published
// by that CAS's release; readers acquire the word first, so observing
// state=open implies the matching reopen deadline is visible. This ordering
// is load-bearing and model-checked: weakening the trip CAS (mutation tag
// `brk_trip_cas`) lets a reader see kOpen with a stale reopen_at and grant a
// probe before the cooldown — tests/model_check/model_check_test.cc detects
// exactly that.
//
// Callers pass `now_us` into every method (the breaker never reads a clock)
// so tests and the model checker drive time deterministically.
#ifndef PRETZEL_SERVING_HEALTH_H_
#define PRETZEL_SERVING_HEALTH_H_

#include <cstdint>

#include "src/common/lockfree.h"  // PRETZEL_ATOMIC / PRETZEL_MO / mutation seam.

namespace pretzel {

struct CircuitBreakerOptions {
  // Consecutive shard faults (errors/timeouts; backpressure and caller
  // errors don't count) that trip closed -> open.
  uint32_t failure_threshold = 5;
  // How long open rejects everything before admitting probes.
  int64_t cooldown_us = 50'000;
  // Probes granted per half-open episode; all must succeed to close.
  uint32_t probe_quota = 3;
};

class CircuitBreaker {
 public:
  enum class State : uint64_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(const CircuitBreakerOptions& options = {})
      : options_(options) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // Admission: may this request proceed at `now_us`? Closed admits
  // everything. Open rejects until the cooldown elapses, then the first
  // caller flips to half-open and hands out `probe_quota` tokens; in
  // half-open only token holders pass (true == this request is a probe).
  bool Allow(int64_t now_us) {
    uint64_t word = word_.load(PRETZEL_MO(brk_word_load, acquire));
    for (;;) {
      switch (UnpackState(word)) {
        case State::kClosed:
          return true;
        case State::kOpen: {
          // relaxed: the acquire load of word_ above synchronizes with the
          // trip CAS's release, so a reader that saw kOpen also sees the
          // reopen deadline stored just before that CAS.
          if (now_us < reopen_at_us_.load(PRETZEL_MO(brk_reopen_load, relaxed))) {
            return false;
          }
          // Mutation: a half-open transition that forgets to grant tokens
          // starves every probe — the breaker can never close (liveness).
          const uint64_t tokens = PRETZEL_LF_MUTATION(brk_halfopen_keep_tokens)
                                      ? 0
                                      : options_.probe_quota;
          const uint64_t next = Pack(State::kHalfOpen, 0, tokens, 0);
          if (word_.compare_exchange_weak(
                  word, next, PRETZEL_MO(brk_halfopen_cas, acq_rel),
                  PRETZEL_MO(brk_halfopen_cas_fail, acquire))) {
            word = next;  // Fall through the loop to claim a token.
          }
          break;
        }
        case State::kHalfOpen: {
          const uint64_t tokens = UnpackTokens(word);
          if (tokens == 0) {
            return false;  // Probes all claimed; wait for their verdicts.
          }
          const uint64_t next =
              Pack(State::kHalfOpen, 0, tokens - 1, UnpackSuccesses(word));
          if (word_.compare_exchange_weak(
                  word, next, PRETZEL_MO(brk_probe_cas, acq_rel),
                  PRETZEL_MO(brk_probe_cas_fail, acquire))) {
            return true;
          }
          break;
        }
      }
    }
  }

  // An admitted request ended without a shard-health verdict (backpressure,
  // caller error, arrived-already-expired — RecordOutcome's neutral
  // statuses). The outcome says nothing about the shard, but if the request
  // was holding a half-open probe token the token MUST come back: probes
  // that end verdictless would otherwise burn the whole quota, after which
  // Allow() returns false forever with no verdict ever in flight — the
  // shard is blackholed (Failover only selects kClosed shards). That is
  // exactly how a recovering shard dies: its queue-delay EWMA is still
  // high, so deadline admission sheds the probes with ResourceExhausted.
  //
  // The caller cannot know whether THIS request was a probe (requests
  // admitted while closed can finish after a trip, and land here too), so
  // the re-grant is capped at the quota: the worst case is a refreshed
  // probe episode, never a wedge, and closing still requires `probe_quota`
  // genuine successes. Mutation brk_abandon_drop_token models the
  // pre-fix bug (verdictless probes swallow their token).
  void OnProbeAbandoned(int64_t now_us) {
    (void)now_us;
    if (PRETZEL_LF_MUTATION(brk_abandon_drop_token)) {
      return;
    }
    uint64_t word = word_.load(PRETZEL_MO(brk_word_load, acquire));
    for (;;) {
      if (UnpackState(word) != State::kHalfOpen) {
        return;  // Tokens only exist in half-open; nothing to return.
      }
      const uint64_t tokens = UnpackTokens(word);
      if (tokens >= options_.probe_quota) {
        return;  // Full quota outstanding: a closed-era straggler.
      }
      const uint64_t next =
          Pack(State::kHalfOpen, 0, tokens + 1, UnpackSuccesses(word));
      if (word_.compare_exchange_weak(
              word, next, PRETZEL_MO(brk_regrant_cas, acq_rel),
              PRETZEL_MO(brk_regrant_cas_fail, acquire))) {
        return;
      }
    }
  }

  // Outcome of an admitted request. In half-open, `probe_quota` successes
  // close the breaker; in closed, any success resets the failure streak.
  void OnSuccess(int64_t now_us) {
    (void)now_us;
    uint64_t word = word_.load(PRETZEL_MO(brk_word_load, acquire));
    for (;;) {
      switch (UnpackState(word)) {
        case State::kClosed: {
          if (UnpackFailures(word) == 0) {
            return;
          }
          const uint64_t next = Pack(State::kClosed, 0, 0, 0);
          if (word_.compare_exchange_weak(
                  word, next, PRETZEL_MO(brk_reset_cas, acq_rel),
                  PRETZEL_MO(brk_reset_cas_fail, acquire))) {
            return;
          }
          break;
        }
        case State::kHalfOpen: {
          const uint64_t successes = UnpackSuccesses(word) + 1;
          const uint64_t next =
              successes >= options_.probe_quota
                  ? Pack(State::kClosed, 0, 0, 0)
                  : Pack(State::kHalfOpen, 0, UnpackTokens(word), successes);
          if (word_.compare_exchange_weak(
                  word, next, PRETZEL_MO(brk_close_cas, acq_rel),
                  PRETZEL_MO(brk_close_cas_fail, acquire))) {
            return;
          }
          break;
        }
        case State::kOpen:
          return;  // Straggler from before the trip; no state to update.
      }
    }
  }

  void OnFailure(int64_t now_us) {
    uint64_t word = word_.load(PRETZEL_MO(brk_word_load, acquire));
    for (;;) {
      switch (UnpackState(word)) {
        case State::kClosed: {
          const uint64_t failures = UnpackFailures(word) + 1;
          if (failures >= options_.failure_threshold) {
            // Publish the cooldown BEFORE the trip: the CAS's release makes
            // this store visible to anyone who acquires the open word.
            reopen_at_us_.store(now_us + options_.cooldown_us,
                                PRETZEL_MO(brk_reopen_store, relaxed));
            const uint64_t next = Pack(State::kOpen, 0, 0, 0);
            if (word_.compare_exchange_weak(
                    word, next, PRETZEL_MO(brk_trip_cas, acq_rel),
                    PRETZEL_MO(brk_trip_cas_fail, acquire))) {
              trips_.fetch_add(1, PRETZEL_MO(brk_trips_add, relaxed));
              return;
            }
          } else {
            const uint64_t next = Pack(State::kClosed, failures, 0, 0);
            if (word_.compare_exchange_weak(
                    word, next, PRETZEL_MO(brk_count_cas, acq_rel),
                    PRETZEL_MO(brk_count_cas_fail, acquire))) {
              return;
            }
          }
          break;
        }
        case State::kHalfOpen: {
          // Failed probe: back to open, cooldown restarted from now.
          // Mutation: skipping the refresh leaves the OLD (already elapsed)
          // deadline in place, so the very next Allow() grants a probe with
          // no cooldown at all.
          if (!PRETZEL_LF_MUTATION(brk_reopen_refresh_skip)) {
            reopen_at_us_.store(now_us + options_.cooldown_us,
                                PRETZEL_MO(brk_reopen_store, relaxed));
          }
          const uint64_t next = Pack(State::kOpen, 0, 0, 0);
          if (word_.compare_exchange_weak(
                  word, next, PRETZEL_MO(brk_trip_cas, acq_rel),
                  PRETZEL_MO(brk_trip_cas_fail, acquire))) {
            trips_.fetch_add(1, PRETZEL_MO(brk_trips_add, relaxed));
            return;
          }
          break;
        }
        case State::kOpen:
          return;  // Already tripped; the cooldown is whoever tripped it.
      }
    }
  }

  State state() const {
    return UnpackState(word_.load(PRETZEL_MO(brk_word_load, acquire)));
  }
  uint64_t consecutive_failures() const {
    return UnpackFailures(word_.load(PRETZEL_MO(brk_word_load, acquire)));
  }
  int64_t reopen_at_us() const {
    return reopen_at_us_.load(PRETZEL_MO(brk_reopen_load, relaxed));
  }
  uint64_t trips() const {
    return trips_.load(PRETZEL_MO(brk_trips_load, relaxed));
  }
  const CircuitBreakerOptions& options() const { return options_; }

 private:
  // Word layout: state in bits [0,2), consecutive failures in [2,18),
  // probe tokens in [18,26), probe successes in [26,34).
  static constexpr uint64_t kStateMask = 0x3;
  static constexpr int kFailShift = 2;
  static constexpr uint64_t kFailMask = 0xFFFF;
  static constexpr int kTokenShift = 18;
  static constexpr uint64_t kTokenMask = 0xFF;
  static constexpr int kSuccShift = 26;
  static constexpr uint64_t kSuccMask = 0xFF;

  static constexpr uint64_t Pack(State state, uint64_t failures,
                                 uint64_t tokens, uint64_t successes) {
    return static_cast<uint64_t>(state) |
           ((failures & kFailMask) << kFailShift) |
           ((tokens & kTokenMask) << kTokenShift) |
           ((successes & kSuccMask) << kSuccShift);
  }
  static constexpr State UnpackState(uint64_t word) {
    return static_cast<State>(word & kStateMask);
  }
  static constexpr uint64_t UnpackFailures(uint64_t word) {
    return (word >> kFailShift) & kFailMask;
  }
  static constexpr uint64_t UnpackTokens(uint64_t word) {
    return (word >> kTokenShift) & kTokenMask;
  }
  static constexpr uint64_t UnpackSuccesses(uint64_t word) {
    return (word >> kSuccShift) & kSuccMask;
  }

  const CircuitBreakerOptions options_;
  PRETZEL_ATOMIC(uint64_t) word_{0};  // Pack(kClosed, 0, 0, 0).
  PRETZEL_ATOMIC(int64_t) reopen_at_us_{0};
  PRETZEL_ATOMIC(uint64_t) trips_{0};
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_HEALTH_H_
