// Serving layer: scale-out across Runtimes. The white-box layers below
// (Flour/Oven/ObjectStore/Runtime) share state *within* one Runtime; this
// layer multiplies independent Runtimes — shards — behind a thin routing
// tier so nothing (no lock, cache, registry, or executor group) is shared
// cross-shard.
//
// ShardRouter owns N shards, each a {ObjectStore segment, Runtime} pair,
// and maps plan names to shards with a jump consistent hash (Lamping &
// Veach), whose defining property drives the deploy story: growing the
// shard count from S to S+1 remaps only ~1/(S+1) of the keys, and every
// remapped key lands on the NEW shard — resize never reshuffles traffic
// between surviving shards.
//
// Placement is the routing function: Place() compiles the pipeline against
// the owning shard's segment (Flour intern + Oven compile) and registers it
// with that shard's Runtime, so a plan's parameters are resident exactly
// where its requests land. The segment intern scope decides what "resident"
// shares: per-segment keeps checksum-dedup local to the shard (zero
// cross-shard coupling, duplicated hot dictionaries), router-global
// delegates dedup to one shared store (one resident copy system-wide, at
// the cost of a shared deploy-time intern point). Serving never touches the
// store either way — plans hold their params.
//
// GetMetrics() folds every shard's RuntimeMetrics into one cross-shard
// snapshot (MergeRuntimeMetrics) while retaining the per-shard breakdown.
#ifndef PRETZEL_SERVING_SHARD_ROUTER_H_
#define PRETZEL_SERVING_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/ops/params.h"
#include "src/runtime/runtime.h"
#include "src/store/object_store.h"

namespace pretzel {

struct ShardRouterOptions {
  size_t num_shards = 1;
  // Applied to every shard's Runtime (shards are symmetric; executors,
  // caches, and backpressure caps are per-shard).
  RuntimeOptions runtime;
  // Where checksum-dedup happens at deploy time.
  enum class InternScope {
    kPerSegment,  // Each shard dedups privately; shards share no bytes.
    kGlobal,      // Segments delegate to one router-global store.
  };
  InternScope intern_scope = InternScope::kPerSegment;
  // Dedup policy for each segment (per-segment scope) or the global store.
  ObjectStore::Options store;
};

// Where a deployed plan lives.
struct ShardPlacement {
  size_t shard = 0;
  Runtime::PlanId plan_id = 0;
};

// One shard's slice of a cross-shard snapshot.
struct ShardMetrics {
  size_t shard = 0;
  RuntimeMetrics runtime;
  size_t store_objects = 0;  // Objects resident in this shard's segment.
  size_t store_bytes = 0;
};

struct ShardedMetrics {
  std::vector<ShardMetrics> shards;  // Per-shard breakdown, index == shard.
  RuntimeMetrics merged;             // Cross-shard fold of the above.
  // Resident parameter state: sum of the segments (per-segment scope) or
  // the global store's uniques (global scope).
  size_t store_objects = 0;
  size_t store_bytes = 0;
  // Per-shard load (index == shard): the event-weighted mean of the shard's
  // plan queue-delay EWMAs — hot plans dominate their shard's number, which
  // is exactly the hot-shard bound Zipf skew produces. `imbalance` is
  // max/mean across shards (1.0 = perfectly balanced; meaningless — and
  // left at 1.0 — when no shard has observed queue delay).
  std::vector<double> shard_queue_delay_us;
  double max_shard_queue_delay_us = 0.0;
  double mean_shard_queue_delay_us = 0.0;
  double queue_delay_imbalance = 1.0;
  size_t hottest_shard = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(const ShardRouterOptions& options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Jump consistent hash (Lamping & Veach 2014): uniform over buckets, and
  // raising num_buckets moves a key only into the newly added buckets.
  static uint32_t JumpConsistentHash(uint64_t key, uint32_t num_buckets);
  // FNV-1a, the stable name->key step in front of the jump hash.
  static uint64_t HashName(const std::string& name);

  size_t ShardForKey(uint64_t key) const;
  size_t ShardFor(const std::string& name) const;

  // Compiles `spec` against the owning shard's segment and registers the
  // plan with that shard's Runtime. Names must be unique across the router.
  Result<ShardPlacement> Place(const PipelineSpec& spec,
                               const PlanRegistration& registration = {});

  // Request routing: one placement lookup, then the owning shard's Runtime.
  Result<float> Predict(const std::string& name, const std::string& input);
  // Binary wire record, borrowed: routed to the owning shard's zero-parse
  // entry point without copy or conversion.
  Result<float> PredictBinary(const std::string& name,
                              std::span<const uint8_t> record);
  Status PredictAsync(const std::string& name, std::string input,
                      Runtime::SingleCallback callback);
  Result<std::vector<float>> PredictBatch(const std::string& name,
                                          const std::vector<std::string>& inputs,
                                          size_t max_batch);

  Result<ShardPlacement> Placement(const std::string& name) const;

  // Cross-shard snapshot: per-shard breakdown plus the merged fold.
  ShardedMetrics GetMetrics() const;

  size_t num_shards() const { return shards_.size(); }
  Runtime* runtime(size_t shard) const { return shards_[shard]->runtime.get(); }
  ObjectStore* segment(size_t shard) const {
    return shards_[shard]->segment.get();
  }
  // Null in per-segment scope.
  ObjectStore* global_store() const { return global_store_.get(); }
  const ShardRouterOptions& options() const { return options_; }

 private:
  struct Shard {
    std::unique_ptr<ObjectStore> segment;
    std::unique_ptr<Runtime> runtime;
  };

  const ShardRouterOptions options_;
  std::unique_ptr<ObjectStore> global_store_;  // kGlobal scope only.
  // Shards are constructed once in the constructor and never added, removed,
  // or reseated afterwards, so the vector itself needs no guard; each
  // shard's Runtime/ObjectStore do their own internal locking. GetMetrics
  // deliberately reads the shards WITHOUT mu_ — per-shard snapshots and the
  // cross-shard merge touch only Runtime/segment state, never placements_,
  // so a snapshot cannot stall (or deadlock behind) a concurrent Place
  // holding mu_ while it compiles a pipeline.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Deploy-time writes only; Predict paths take the shared side. Lock
  // order: mu_ is a leaf — never acquired while holding any Runtime or
  // ObjectStore lock, and Place drops it around the compile+register step.
  mutable SharedMutex mu_;
  std::unordered_map<std::string, ShardPlacement> placements_ GUARDED_BY(mu_);
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_SHARD_ROUTER_H_
