// Serving layer: scale-out across Runtimes. The white-box layers below
// (Flour/Oven/ObjectStore/Runtime) share state *within* one Runtime; this
// layer multiplies independent Runtimes — shards — behind a thin routing
// tier so nothing (no lock, cache, registry, or executor group) is shared
// cross-shard.
//
// ShardRouter owns N shards, each a {ObjectStore segment, Runtime} pair,
// and maps plan names to shards with a jump consistent hash (Lamping &
// Veach), whose defining property drives the deploy story: growing the
// shard count from S to S+1 remaps only ~1/(S+1) of the keys, and every
// remapped key lands on the NEW shard — resize never reshuffles traffic
// between surviving shards.
//
// Placement is the routing function: Place() compiles the pipeline against
// the owning shard's segment (Flour intern + Oven compile) and registers it
// with that shard's Runtime, so a plan's parameters are resident exactly
// where its requests land. The segment intern scope decides what "resident"
// shares: per-segment keeps checksum-dedup local to the shard (zero
// cross-shard coupling, duplicated hot dictionaries), router-global
// delegates dedup to one shared store (one resident copy system-wide, at
// the cost of a shared deploy-time intern point). Serving never touches the
// store either way — plans hold their params.
//
// Hot-plan replication: jump hash pins each plan to ONE shard, so under
// Zipf-skewed traffic the shard owning the head of the distribution
// saturates while siblings idle. MaintainReplication() watches each plan's
// routed-traffic share, replicates plans above a hotness threshold onto
// extra shards (the same Flour/Oven compile path as Place, once per
// replica), and routes replicated plans with power-of-two-choices over the
// replicas' live queue-delay EWMAs — the balanced-allocations result:
// sampling two queues and taking the shorter collapses max load from
// Θ(log n / log log n) to Θ(log log n). Plans that cool are de-replicated
// (deactivated, not torn down: the Runtime registration stays materialized
// so re-heating re-activates for free, and residency stays bounded by
// max_replicas_per_plan).
//
// Versioned lifecycle (zero-downtime model swaps): Deploy() compiles v(n+1)
// of an already-placed plan against the shard where v(n) lives, so the
// ObjectStore intern resolves every unchanged parameter to the resident
// blob — the swap costs O(changed params) bytes, not O(model). The new
// version starts as a CANARY taking a deterministic hash-fraction of the
// plan's traffic (exact in the count domain, like the fault layer's
// probabilities), watched by per-version failure/latency EWMAs; a degraded
// canary flips its CanarySplit kill switch from the data path and rolls
// back, a healthy one is Promote()d. Retiring the losing version is
// epoch-ordered: publish a table that no longer routes to it (RCU grace),
// close its VersionGate and wait out the stragglers that routed before the
// swap, drain its Runtime registrations (Runtime::Retire), then Release its
// ObjectStore pins and Sweep — resident bytes return to the pre-deploy
// baseline, and no request can ever observe a torn or retired version.
//
// The routing table is an immutable snapshot behind an RcuCell: the predict
// path takes NO mutex — one RCU read (two counter RMWs + a pointer load)
// covers the name lookup, the p2c pick, and the breaker gate. Writers
// (Place / Replicate / Failover / maintenance) copy-update under mu_ and
// swap the snapshot, with an epoch grace period before reclaiming the old
// table. See src/common/rcu.h for the memory-order argument.
//
// GetMetrics() folds every shard's RuntimeMetrics into one cross-shard
// snapshot (MergeRuntimeMetrics) while retaining the per-shard breakdown;
// the fold merges replicas of one plan BY NAME so a replicated plan is
// counted once, and the per-replica load breakdown is reported separately.
#ifndef PRETZEL_SERVING_SHARD_ROUTER_H_
#define PRETZEL_SERVING_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rcu.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/ops/params.h"
#include "src/runtime/runtime.h"
#include "src/serving/health.h"
#include "src/serving/lifecycle_gate.h"
#include "src/store/object_store.h"

namespace pretzel {

// Hot-plan replication policy. Shares are fractions of the router's routed
// requests since the previous maintenance scan.
struct ReplicationOptions {
  bool enabled = false;
  // Residency bound: a plan's parameters are materialized on at most this
  // many shards, ever (de-replication deactivates but keeps the
  // registration, so the bound is what ObjectStore residency pays).
  size_t max_replicas_per_plan = 4;
  // A plan at or above this traffic share is hot: replicate to
  // clamp(ceil(share * num_shards), 2, max). Hysteresis gap to
  // cool_share_threshold prevents flapping at the boundary.
  double hot_share_threshold = 0.08;
  // A replicated plan at or below this share has cooled: drop back to 1
  // active replica. Must be < hot_share_threshold.
  double cool_share_threshold = 0.04;
  // A maintenance scan is a no-op (no signal) until the router has routed
  // at least this many requests since the previous scan.
  uint64_t min_interval_requests = 256;
  // > 0 starts a background thread calling MaintainReplication() at this
  // period; 0 leaves maintenance to explicit calls (benches, tests).
  int64_t scan_interval_us = 0;
};

// Canary rollout policy for Deploy()ed plan versions.
struct RolloutOptions {
  // Canary share of the plan's traffic while a rollout is in flight, in
  // basis points (of 10000). 0 deploys dark: the version is compiled and
  // registered but takes no traffic until Promote().
  uint32_t canary_fraction_bp = 500;
  // The auto-rollback verdict needs at least this many canary-routed
  // requests of signal before it may fire.
  uint64_t min_canary_requests = 64;
  // Canary failure EWMA at or above this triggers auto-rollback.
  double rollback_failure_ewma = 0.5;
  // Canary latency EWMA above this multiple of the stable version's
  // triggers auto-rollback (inert until the stable EWMA is nonzero).
  double rollback_latency_x = 8.0;
  // false disables the controller: rollouts end only by explicit
  // Promote()/Rollback() calls.
  bool auto_rollback = true;
};

struct ShardRouterOptions {
  size_t num_shards = 1;
  // Applied to every shard's Runtime (shards are symmetric; executors,
  // caches, and backpressure caps are per-shard).
  RuntimeOptions runtime;
  // Where checksum-dedup happens at deploy time.
  enum class InternScope {
    kPerSegment,  // Each shard dedups privately; shards share no bytes.
    kGlobal,      // Segments delegate to one router-global store.
  };
  InternScope intern_scope = InternScope::kPerSegment;
  // Dedup policy for each segment (per-segment scope) or the global store.
  ObjectStore::Options store;
  // Per-shard circuit breaker (trips on consecutive shard faults — errors
  // and deadline blowouts inside the shard; backpressure, caller errors,
  // and requests that arrived already expired never count).
  CircuitBreakerOptions breaker;
  // When a shard's breaker is open, re-Place its plans onto healthy shards
  // through the normal Flour/Oven compile path instead of failing fast.
  bool failover_enabled = true;
  // Bounded movement: at most this many plans ever migrate off one shard,
  // so a flapping breaker cannot churn the whole placement map.
  size_t max_failover_placements = 4;
  // Hot-plan replication + power-of-two-choices routing.
  ReplicationOptions replication;
  // Versioned-deploy canary policy.
  RolloutOptions rollout;
};

// Where a deployed plan lives.
struct ShardPlacement {
  size_t shard = 0;
  Runtime::PlanId plan_id = 0;
};

// One shard's slice of a cross-shard snapshot.
struct ShardMetrics {
  size_t shard = 0;
  RuntimeMetrics runtime;
  size_t store_objects = 0;  // Objects resident in this shard's segment.
  size_t store_bytes = 0;
};

// One shard's health as seen by the routing tier.
struct ShardHealthSnapshot {
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t successes = 0;
  uint64_t errors = 0;    // Shard faults (unresponsive, internal).
  uint64_t timeouts = 0;  // Deadline blowouts attributed to the shard.
  uint64_t rejected = 0;  // Fast-failed while the breaker was open.
  uint64_t failovers = 0; // Plans migrated off this shard.
  uint64_t trips = 0;
  double failure_ewma = 0.0;  // Smoothed fault indicator in [0,1].
};

// One replica's slice of a plan's load breakdown.
struct ReplicaMetrics {
  size_t shard = 0;
  Runtime::PlanId plan_id = 0;
  bool active = false;           // Inactive = cooled, kept materialized.
  uint64_t routed = 0;           // Requests this replica was chosen for.
  int64_t queue_delay_ewma_us = 0;  // Live p2c signal at snapshot time.
};

// A logical plan's replica set (primary first).
struct PlanReplicaMetrics {
  std::string name;
  std::vector<ReplicaMetrics> replicas;
};

struct ShardedMetrics {
  std::vector<ShardMetrics> shards;  // Per-shard breakdown, index == shard.
  // Cross-shard fold of the above. Replicas of one plan merge BY NAME into
  // a single logical row (counters summed, EWMAs event-weighted) — a plan
  // replicated onto K shards is one plan, not K.
  RuntimeMetrics merged;
  size_t unique_plans = 0;       // == merged.plans.size(), deduplicated.
  size_t replicated_plans = 0;   // Plans with > 1 active replica.
  uint64_t replications = 0;     // Replica activations, lifetime.
  uint64_t dereplications = 0;   // Replica deactivations, lifetime.
  // Per-plan, per-replica load breakdown (primary first): where each
  // logical plan's traffic actually landed.
  std::vector<PlanReplicaMetrics> plan_replicas;
  // Resident parameter state: sum of the segments (per-segment scope) or
  // the global store's uniques (global scope).
  size_t store_objects = 0;
  size_t store_bytes = 0;
  // Versioned-lifecycle counters, lifetime.
  uint64_t deploys = 0;         // Canary versions registered.
  uint64_t promotes = 0;        // Canaries promoted to active.
  uint64_t rollbacks = 0;       // Rollouts aborted (manual + auto).
  uint64_t auto_rollbacks = 0;  // Subset fired by the health controller.
  // Per-shard load (index == shard): the event-weighted mean of the shard's
  // plan queue-delay EWMAs — hot plans dominate their shard's number, which
  // is exactly the hot-shard bound Zipf skew produces. `imbalance` is
  // max/mean across shards (1.0 = perfectly balanced; meaningless — and
  // left at 1.0 — when no shard has observed queue delay).
  std::vector<double> shard_queue_delay_us;
  double max_shard_queue_delay_us = 0.0;
  double mean_shard_queue_delay_us = 0.0;
  double queue_delay_imbalance = 1.0;
  size_t hottest_shard = 0;
  // Routing-tier health (index == shard).
  std::vector<ShardHealthSnapshot> shard_health;
};

// What one MaintainReplication() scan did.
struct MaintenanceReport {
  size_t plans_scanned = 0;
  uint64_t interval_requests = 0;  // Routed since the previous scan.
  size_t replications = 0;         // Replicas activated this scan.
  size_t dereplications = 0;       // Replicas deactivated this scan.
};

// One plan's lifecycle state, for tests and benches.
struct PlanVersionInfo {
  uint64_t active_version = 0;
  uint64_t next_version = 0;
  bool rollout_in_flight = false;
  uint64_t rollout_version = 0;
  // Live canary split; 0 once the kill switch fired (or a dark deploy).
  uint32_t canary_fraction_bp = 0;
  uint64_t canary_routed = 0;
  uint64_t canary_faults = 0;
  double canary_failure_ewma = 0.0;
  double canary_latency_ewma_us = 0.0;
  double stable_latency_ewma_us = 0.0;
  int64_t stable_inflight = 0;  // Requests currently inside the version gate.
};

class ShardRouter {
 public:
  explicit ShardRouter(const ShardRouterOptions& options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Jump consistent hash (Lamping & Veach 2014): uniform over buckets, and
  // raising num_buckets moves a key only into the newly added buckets.
  static uint32_t JumpConsistentHash(uint64_t key, uint32_t num_buckets);
  // FNV-1a, the stable name->key step in front of the jump hash.
  static uint64_t HashName(const std::string& name);

  size_t ShardForKey(uint64_t key) const;
  size_t ShardFor(const std::string& name) const;

  // Compiles `spec` against the owning shard's segment and registers the
  // plan with that shard's Runtime. Names must be unique across the router.
  Result<ShardPlacement> Place(const PipelineSpec& spec,
                               const PlanRegistration& registration = {});

  // Request routing: one snapshot lookup (no mutex), breaker-gated; a
  // replicated plan picks its replica by power-of-two-choices over live
  // queue delay. `deadline_ns` (absolute, NowNs() domain; 0 = none) is
  // forwarded so expiry is enforced inside the shard's queues, not just at
  // the edge.
  Result<float> Predict(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0);
  // Binary wire record, borrowed: routed to the owning shard's zero-parse
  // entry point without copy or conversion.
  Result<float> PredictBinary(const std::string& name,
                              std::span<const uint8_t> record,
                              int64_t deadline_ns = 0);
  Status PredictAsync(const std::string& name, std::string input,
                      Runtime::SingleCallback callback,
                      int64_t deadline_ns = 0);
  Result<std::vector<float>> PredictBatch(const std::string& name,
                                          const std::vector<std::string>& inputs,
                                          size_t max_batch,
                                          int64_t deadline_ns = 0);

  // ---- Versioned lifecycle ----------------------------------------------
  // Begins a canary rollout of a new version of the already-placed plan
  // named `spec.name`: compiles against the shard where the active version
  // lives (so the ObjectStore intern shares every unchanged parameter —
  // the swap moves O(changed params) bytes), registers it with that shard's
  // Runtime, and splits rollout.canary_fraction_bp of the plan's traffic
  // onto it. One rollout per plan at a time. A compile or registration
  // failure surfaces here and leaves the active version untouched. Returns
  // the new version number.
  Result<uint64_t> Deploy(const PipelineSpec& spec);
  // Commits the rollout: the canary becomes the active version in one
  // snapshot swap, then the old version is epoch-reclaimed — its gate
  // drains, its Runtime registrations retire, and its ObjectStore pins are
  // released and swept. Blocking, control-plane only.
  Status Promote(const std::string& name);
  // Aborts the rollout: canary traffic stops in one snapshot swap and the
  // canary version is epoch-reclaimed. The active version never moved.
  Status Rollback(const std::string& name);
  // Lifecycle snapshot of one plan.
  Result<PlanVersionInfo> VersionInfo(const std::string& name) const;

  // The plan's primary replica (replica 0 — its jump-hash home until a
  // failover moves it).
  Result<ShardPlacement> Placement(const std::string& name) const;
  // Every ACTIVE replica, primary first.
  std::vector<ShardPlacement> Replicas(const std::string& name) const;

  // Pins `name`'s active replica count to `target_replicas` (clamped to
  // [1, min(max_replicas_per_plan, num_shards)]), compiling onto new shards
  // or re-activating materialized ones as needed. The admin/test face of
  // the machinery MaintainReplication() drives from traffic.
  Status Replicate(const std::string& name, size_t target_replicas);

  // One hotness scan: computes each plan's share of requests routed since
  // the previous scan, replicates plans above hot_share_threshold, and
  // de-replicates plans at or below cool_share_threshold. Cheap no-op when
  // the interval carried fewer than min_interval_requests. Runs inline on
  // the caller (or on the background thread when scan_interval_us > 0).
  MaintenanceReport MaintainReplication();

  // Cross-shard snapshot: per-shard breakdown plus the merged fold.
  ShardedMetrics GetMetrics() const;

  size_t num_shards() const { return shards_.size(); }
  Runtime* runtime(size_t shard) const { return shards_[shard]->runtime.get(); }
  ObjectStore* segment(size_t shard) const {
    return shards_[shard]->segment.get();
  }
  // Null in per-segment scope.
  ObjectStore* global_store() const { return global_store_.get(); }
  const ShardRouterOptions& options() const { return options_; }

  // Routing-tier view of one shard's health. Exposed for tests.
  const CircuitBreaker& breaker(size_t shard) const {
    return health_[shard]->breaker;
  }

 private:
  struct Shard {
    std::unique_ptr<ObjectStore> segment;
    std::unique_ptr<Runtime> runtime;
  };

  // Health is written on every request (lock-free counters + breaker) and
  // folded into GetMetrics. Heap-allocated so entries never move.
  struct ShardHealth {
    explicit ShardHealth(const CircuitBreakerOptions& options)
        : breaker(options) {}
    CircuitBreaker breaker;
    std::atomic<uint64_t> successes{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> failovers{0};
    // EWMA over the per-request fault indicator, alpha = 1/16; stored as
    // double bits, advanced by CAS (losing an update under contention only
    // softens the smoothing, never corrupts the value).
    std::atomic<uint64_t> failure_ewma_bits{0};
  };

  // Per-replica routing counters. Heap-allocated, owned by the PlanState
  // and never reclaimed while the router lives, so published snapshots can
  // hold raw pointers across table swaps.
  struct ReplicaStats {
    std::atomic<uint64_t> routed{0};
  };
  // Per-logical-plan traffic, the hotness signal. Same lifetime rule.
  struct PlanTraffic {
    std::atomic<uint64_t> routed{0};
    // Maintenance bookkeeping (cumulative count at the previous scan).
    // Touched only under control_mu_.
    uint64_t last_scan_routed = 0;
  };

  // Per-version health/latency signal for the canary controller. Same
  // lifetime rule (pool-owned, never freed while the router lives).
  struct VersionStats {
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> successes{0};
    std::atomic<uint64_t> faults{0};  // Errors + shard-attributed timeouts.
    // EWMAs, alpha = 1/16, stored as double bits advanced by CAS.
    std::atomic<uint64_t> failure_ewma_bits{0};
    std::atomic<uint64_t> latency_ewma_bits{0};
  };

  // One materialized registration of a plan on a shard. Control-plane
  // record, under mu_; the published table carries flat ReplicaRef copies.
  struct ReplicaState {
    size_t shard = 0;
    Runtime::PlanId plan_id = 0;
    // Borrowed from the shard's Runtime (valid for its lifetime): the live
    // queue-delay EWMA p2c compares.
    const std::atomic<int64_t>* queue_delay_us = nullptr;
    std::unique_ptr<ReplicaStats> stats;
    bool active = true;
    // ObjectStore pins this registration's compile took, released against
    // its shard's segment when the version retires.
    std::vector<uint64_t> checksums;
  };

  // An in-flight canary rollout: one registration of the new version on the
  // active primary's shard. gate/stats/split are lifecycle_-pool pointers.
  struct Rollout {
    uint64_t version = 0;
    uint32_t initial_fraction_bp = 0;  // Configured split at Deploy time.
    PipelineSpec spec;
    ReplicaState replica;
    VersionGate* gate = nullptr;
    VersionStats* stats = nullptr;
    CanarySplit* split = nullptr;
  };

  struct PlanState {
    PipelineSpec spec;              // Kept for replica/failover recompiles.
    PlanRegistration registration;
    std::vector<ReplicaState> replicas;  // Every materialized registration.
    size_t primary = 0;             // Index into replicas.
    bool pending = true;            // Claimed, compile still in flight.
    std::unique_ptr<PlanTraffic> traffic;
    // Versioned lifecycle. The gate and stats belong to the ACTIVE version
    // (replicas above are its materializations); a non-null rollout is the
    // one in-flight canary of the next version.
    uint64_t active_version = 1;
    uint64_t next_version = 2;
    VersionGate* gate = nullptr;     // Pool-owned.
    VersionStats* vstats = nullptr;  // Pool-owned.
    std::unique_ptr<Rollout> rollout;
  };

  // The immutable snapshot the predict path reads. Rebuilt (copied) by
  // every control-plane mutation, swapped through table_.
  struct ReplicaRef {
    size_t shard = 0;
    Runtime::PlanId plan_id = 0;
    const std::atomic<int64_t>* queue_delay_us = nullptr;
    ReplicaStats* stats = nullptr;
  };
  struct PlanRouting {
    std::vector<ReplicaRef> replicas;  // ACTIVE replicas, primary first.
    PlanTraffic* traffic = nullptr;
    // Active-version lifecycle handles (pool-owned, always valid).
    uint64_t version = 0;
    VersionGate* gate = nullptr;
    VersionStats* stats = nullptr;
    // Canary (rollout in flight when has_canary).
    bool has_canary = false;
    uint64_t canary_version = 0;
    ReplicaRef canary;
    VersionGate* canary_gate = nullptr;
    VersionStats* canary_stats = nullptr;
    CanarySplit* split = nullptr;
  };
  struct RoutingTable {
    std::unordered_map<std::string, PlanRouting> plans;
  };

  // What Route hands a predict wrapper: where to send the request, plus the
  // version bookkeeping the wrapper must settle. A returned decision holds
  // an Enter() on `gate`; FinishVersion() exits it.
  struct RouteDecision {
    size_t shard = 0;
    Runtime::PlanId plan_id = 0;
    uint64_t version = 0;
    bool canary = false;
    VersionGate* gate = nullptr;
    VersionStats* stats = nullptr;
    VersionStats* baseline = nullptr;  // Stable-version stats (canary only).
    CanarySplit* split = nullptr;      // Kill switch (canary only).
  };

  // The breaker gate + canary split + p2c pick + failover step shared by
  // every predict entry point. Mutex-free in the common (routed) case.
  Result<RouteDecision> Route(const std::string& name);
  // Books a finished request's outcome into the owning shard's health.
  void RecordOutcome(size_t shard, const Status& status);
  // Books the outcome into the decision's per-version stats, evaluates the
  // canary auto-rollback verdict (firing the kill switch while still inside
  // the gate), and exits the gate. Returns true when the caller should
  // complete the rollback via TryAutoRollback — callers on executor threads
  // (async completions) must NOT: Runtime::Retire blocks there, so they
  // leave completion to a sync caller or the next maintenance scan.
  bool FinishVersion(const RouteDecision& decision, const Status& status,
                     int64_t start_ns);
  // Completes a kill-switched rollback if the control plane is free; a held
  // control_mu_ means another lifecycle op is already running and the
  // backstop in MaintainReplication will finish the job.
  void TryAutoRollback(const std::string& name, uint64_t version);
  // Rollback body. REQUIRES control_mu_. expect_version 0 matches any.
  Status RollbackLocked(const std::string& name, uint64_t expect_version,
                        bool auto_trigger);
  // Epoch-reclaims one retired version: closes and drains its gate (every
  // straggler that routed before the swap exits), retires each
  // materialized registration with its shard's Runtime, releases the
  // version's ObjectStore pins, and sweeps the affected segments. REQUIRES
  // control_mu_; must not hold mu_.
  void ReclaimVersion(VersionGate* gate, std::vector<ReplicaState> replicas);
  // Injected shard-unresponsive fault (chaos builds only): stalls, books a
  // failure, and yields the error the caller should return.
  Status InjectedShardFault(size_t shard);
  // Moves `name`'s primary off tripped shard `from`: re-activates a
  // materialized replica on a healthy shard if one exists, else re-compiles
  // through the normal Place path. Serialized by control_mu_.
  Result<ShardPlacement> Failover(const std::string& name, size_t from);
  // Pins the active replica count; REQUIRES control_mu_ (compiles outside
  // mu_, commits + publishes under it). Returns net change in active
  // replicas (negative = deactivated).
  Result<int> SetActiveReplicas(const std::string& name, size_t target);
  // Rebuilds the snapshot from plans_ and swaps it in, reclaiming the old
  // table after the RCU grace period. Readers never block this (they hold
  // no lock), and holding mu_ across the grace wait is safe because read
  // sections never acquire mu_.
  void PublishLocked() REQUIRES(mu_);

  const ShardRouterOptions options_;
  std::unique_ptr<ObjectStore> global_store_;  // kGlobal scope only.
  // Version-lifecycle objects (gates, per-version stats, canary splits) are
  // allocated here and never freed while the router lives: published
  // snapshots and in-flight decisions hold raw pointers across table swaps,
  // and async completions book into them on shard executors — the pool is
  // declared before shards_ so it outlives the executor join. Growth is one
  // ~56-byte triple per Deploy; the bytes that matter (parameter blobs) are
  // what ReclaimVersion sweeps.
  struct LifecyclePool {
    std::mutex mu;
    std::vector<std::unique_ptr<VersionGate>> gates;
    std::vector<std::unique_ptr<VersionStats>> stats;
    std::vector<std::unique_ptr<CanarySplit>> splits;
  };
  LifecyclePool lifecycle_;
  VersionGate* NewGate();
  VersionStats* NewVersionStats();
  CanarySplit* NewSplit();
  // Declared before shards_ so it outlives them: async callbacks running on
  // shard executors record outcomes here, and members destroy in reverse
  // declaration order (shards_ joins its executors first).
  std::vector<std::unique_ptr<ShardHealth>> health_;
  // Shards are constructed once in the constructor and never added, removed,
  // or reseated afterwards, so the vector itself needs no guard; each
  // shard's Runtime/ObjectStore do their own internal locking. GetMetrics
  // reads the shards WITHOUT mu_ — per-shard snapshots and the cross-shard
  // merge touch only Runtime/segment state — and takes a brief reader mu_
  // only for the replica breakdown, so a snapshot cannot stall behind a
  // concurrent compile (compiles run with mu_ dropped).
  std::vector<std::unique_ptr<Shard>> shards_;

  // Control-plane state. Predict paths never touch it — they read table_.
  // Lock order: control_mu_ -> mu_; mu_ is a leaf — never acquired while
  // holding any Runtime or ObjectStore lock, and every compile+register
  // step runs with it dropped.
  mutable SharedMutex mu_;
  std::unordered_map<std::string, PlanState> plans_ GUARDED_BY(mu_);
  // The published routing snapshot. Swapped under mu_ (writers), read by
  // predicts with no lock at all.
  RcuCell<RoutingTable> table_;
  // Serializes control-plane multi-step operations (failover, replication,
  // maintenance) so racing requests cannot double-migrate or double-
  // replicate one plan. Cold path only.
  std::mutex control_mu_;

  // Lifetime replication counters (maintenance + explicit Replicate).
  std::atomic<uint64_t> replications_{0};
  std::atomic<uint64_t> dereplications_{0};
  // Lifetime lifecycle counters.
  std::atomic<uint64_t> deploys_{0};
  std::atomic<uint64_t> promotes_{0};
  std::atomic<uint64_t> rollbacks_{0};
  std::atomic<uint64_t> auto_rollbacks_{0};

  // Optional background maintenance (scan_interval_us > 0). Declared last:
  // destroyed (joined) first, before the state it scans.
  std::mutex maintenance_mu_;
  std::condition_variable maintenance_cv_;
  bool stop_maintenance_ = false;
  std::thread maintenance_thread_;
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_SHARD_ROUTER_H_
