// Serving layer: scale-out across Runtimes. The white-box layers below
// (Flour/Oven/ObjectStore/Runtime) share state *within* one Runtime; this
// layer multiplies independent Runtimes — shards — behind a thin routing
// tier so nothing (no lock, cache, registry, or executor group) is shared
// cross-shard.
//
// ShardRouter owns N shards, each a {ObjectStore segment, Runtime} pair,
// and maps plan names to shards with a jump consistent hash (Lamping &
// Veach), whose defining property drives the deploy story: growing the
// shard count from S to S+1 remaps only ~1/(S+1) of the keys, and every
// remapped key lands on the NEW shard — resize never reshuffles traffic
// between surviving shards.
//
// Placement is the routing function: Place() compiles the pipeline against
// the owning shard's segment (Flour intern + Oven compile) and registers it
// with that shard's Runtime, so a plan's parameters are resident exactly
// where its requests land. The segment intern scope decides what "resident"
// shares: per-segment keeps checksum-dedup local to the shard (zero
// cross-shard coupling, duplicated hot dictionaries), router-global
// delegates dedup to one shared store (one resident copy system-wide, at
// the cost of a shared deploy-time intern point). Serving never touches the
// store either way — plans hold their params.
//
// GetMetrics() folds every shard's RuntimeMetrics into one cross-shard
// snapshot (MergeRuntimeMetrics) while retaining the per-shard breakdown.
#ifndef PRETZEL_SERVING_SHARD_ROUTER_H_
#define PRETZEL_SERVING_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/ops/params.h"
#include "src/runtime/runtime.h"
#include "src/serving/health.h"
#include "src/store/object_store.h"

namespace pretzel {

struct ShardRouterOptions {
  size_t num_shards = 1;
  // Applied to every shard's Runtime (shards are symmetric; executors,
  // caches, and backpressure caps are per-shard).
  RuntimeOptions runtime;
  // Where checksum-dedup happens at deploy time.
  enum class InternScope {
    kPerSegment,  // Each shard dedups privately; shards share no bytes.
    kGlobal,      // Segments delegate to one router-global store.
  };
  InternScope intern_scope = InternScope::kPerSegment;
  // Dedup policy for each segment (per-segment scope) or the global store.
  ObjectStore::Options store;
  // Per-shard circuit breaker (trips on consecutive shard faults — errors
  // and deadline blowouts inside the shard; backpressure, caller errors,
  // and requests that arrived already expired never count).
  CircuitBreakerOptions breaker;
  // When a shard's breaker is open, re-Place its plans onto healthy shards
  // through the normal Flour/Oven compile path instead of failing fast.
  bool failover_enabled = true;
  // Bounded movement: at most this many plans ever migrate off one shard,
  // so a flapping breaker cannot churn the whole placement map.
  size_t max_failover_placements = 4;
};

// Where a deployed plan lives.
struct ShardPlacement {
  size_t shard = 0;
  Runtime::PlanId plan_id = 0;
};

// One shard's slice of a cross-shard snapshot.
struct ShardMetrics {
  size_t shard = 0;
  RuntimeMetrics runtime;
  size_t store_objects = 0;  // Objects resident in this shard's segment.
  size_t store_bytes = 0;
};

// One shard's health as seen by the routing tier.
struct ShardHealthSnapshot {
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t successes = 0;
  uint64_t errors = 0;    // Shard faults (unresponsive, internal).
  uint64_t timeouts = 0;  // Deadline blowouts attributed to the shard.
  uint64_t rejected = 0;  // Fast-failed while the breaker was open.
  uint64_t failovers = 0; // Plans migrated off this shard.
  uint64_t trips = 0;
  double failure_ewma = 0.0;  // Smoothed fault indicator in [0,1].
};

struct ShardedMetrics {
  std::vector<ShardMetrics> shards;  // Per-shard breakdown, index == shard.
  RuntimeMetrics merged;             // Cross-shard fold of the above.
  // Resident parameter state: sum of the segments (per-segment scope) or
  // the global store's uniques (global scope).
  size_t store_objects = 0;
  size_t store_bytes = 0;
  // Per-shard load (index == shard): the event-weighted mean of the shard's
  // plan queue-delay EWMAs — hot plans dominate their shard's number, which
  // is exactly the hot-shard bound Zipf skew produces. `imbalance` is
  // max/mean across shards (1.0 = perfectly balanced; meaningless — and
  // left at 1.0 — when no shard has observed queue delay).
  std::vector<double> shard_queue_delay_us;
  double max_shard_queue_delay_us = 0.0;
  double mean_shard_queue_delay_us = 0.0;
  double queue_delay_imbalance = 1.0;
  size_t hottest_shard = 0;
  // Routing-tier health (index == shard).
  std::vector<ShardHealthSnapshot> shard_health;
};

class ShardRouter {
 public:
  explicit ShardRouter(const ShardRouterOptions& options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Jump consistent hash (Lamping & Veach 2014): uniform over buckets, and
  // raising num_buckets moves a key only into the newly added buckets.
  static uint32_t JumpConsistentHash(uint64_t key, uint32_t num_buckets);
  // FNV-1a, the stable name->key step in front of the jump hash.
  static uint64_t HashName(const std::string& name);

  size_t ShardForKey(uint64_t key) const;
  size_t ShardFor(const std::string& name) const;

  // Compiles `spec` against the owning shard's segment and registers the
  // plan with that shard's Runtime. Names must be unique across the router.
  Result<ShardPlacement> Place(const PipelineSpec& spec,
                               const PlanRegistration& registration = {});

  // Request routing: one placement lookup gated by the owning shard's
  // circuit breaker, then that shard's Runtime. `deadline_ns` (absolute,
  // NowNs() domain; 0 = none) is forwarded so expiry is enforced inside the
  // shard's queues, not just at the edge.
  Result<float> Predict(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0);
  // Binary wire record, borrowed: routed to the owning shard's zero-parse
  // entry point without copy or conversion.
  Result<float> PredictBinary(const std::string& name,
                              std::span<const uint8_t> record,
                              int64_t deadline_ns = 0);
  Status PredictAsync(const std::string& name, std::string input,
                      Runtime::SingleCallback callback,
                      int64_t deadline_ns = 0);
  Result<std::vector<float>> PredictBatch(const std::string& name,
                                          const std::vector<std::string>& inputs,
                                          size_t max_batch,
                                          int64_t deadline_ns = 0);

  Result<ShardPlacement> Placement(const std::string& name) const;

  // Cross-shard snapshot: per-shard breakdown plus the merged fold.
  ShardedMetrics GetMetrics() const;

  size_t num_shards() const { return shards_.size(); }
  Runtime* runtime(size_t shard) const { return shards_[shard]->runtime.get(); }
  ObjectStore* segment(size_t shard) const {
    return shards_[shard]->segment.get();
  }
  // Null in per-segment scope.
  ObjectStore* global_store() const { return global_store_.get(); }
  const ShardRouterOptions& options() const { return options_; }

  // Routing-tier view of one shard's health. Exposed for tests.
  const CircuitBreaker& breaker(size_t shard) const {
    return health_[shard]->breaker;
  }

 private:
  struct Shard {
    std::unique_ptr<ObjectStore> segment;
    std::unique_ptr<Runtime> runtime;
  };

  // Health is written on every request (lock-free counters + breaker) and
  // folded into GetMetrics. Heap-allocated so entries never move.
  struct ShardHealth {
    explicit ShardHealth(const CircuitBreakerOptions& options)
        : breaker(options) {}
    CircuitBreaker breaker;
    std::atomic<uint64_t> successes{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> failovers{0};
    // EWMA over the per-request fault indicator, alpha = 1/16; stored as
    // double bits, advanced by CAS (losing an update under contention only
    // softens the smoothing, never corrupts the value).
    std::atomic<uint64_t> failure_ewma_bits{0};
  };

  // The breaker gate + failover step shared by every predict entry point.
  Result<ShardPlacement> Route(const std::string& name);
  // Books a finished request's outcome into the owning shard's health.
  void RecordOutcome(size_t shard, const Status& status);
  // Injected shard-unresponsive fault (chaos builds only): stalls, books a
  // failure, and yields the error the caller should return.
  Status InjectedShardFault(size_t shard);
  // Moves `name` off tripped shard `from` onto a healthy shard by
  // re-compiling through the normal Place path. Serialized by failover_mu_.
  Result<ShardPlacement> Failover(const std::string& name, size_t from);

  const ShardRouterOptions options_;
  std::unique_ptr<ObjectStore> global_store_;  // kGlobal scope only.
  // Declared before shards_ so it outlives them: async callbacks running on
  // shard executors record outcomes here, and members destroy in reverse
  // declaration order (shards_ joins its executors first).
  std::vector<std::unique_ptr<ShardHealth>> health_;
  // Shards are constructed once in the constructor and never added, removed,
  // or reseated afterwards, so the vector itself needs no guard; each
  // shard's Runtime/ObjectStore do their own internal locking. GetMetrics
  // deliberately reads the shards WITHOUT mu_ — per-shard snapshots and the
  // cross-shard merge touch only Runtime/segment state, never placements_,
  // so a snapshot cannot stall (or deadlock behind) a concurrent Place
  // holding mu_ while it compiles a pipeline.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Deploy-time writes only; Predict paths take the shared side. Lock
  // order: mu_ is a leaf — never acquired while holding any Runtime or
  // ObjectStore lock, and Place drops it around the compile+register step.
  mutable SharedMutex mu_;
  std::unordered_map<std::string, ShardPlacement> placements_ GUARDED_BY(mu_);
  // What Place() was given, kept so Failover can re-compile the plan on a
  // different shard. Written only on successful Place.
  struct PlacedSpec {
    PipelineSpec spec;
    PlanRegistration registration;
  };
  std::unordered_map<std::string, PlacedSpec> specs_ GUARDED_BY(mu_);
  // Serializes failovers (cold path — only taken with a breaker open) so
  // racing requests cannot double-migrate one plan.
  std::mutex failover_mu_;
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_SHARD_ROUTER_H_
