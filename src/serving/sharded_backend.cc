#include "src/serving/sharded_backend.h"

#include <utility>

namespace pretzel {

Result<float> ShardedBackend::Predict(const std::string& name,
                                      const std::string& input,
                                      int64_t deadline_ns) {
  Result<float> result = router_->Predict(name, input, deadline_ns);
  if (!result.ok() && result.status().IsResourceExhausted()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<float> ShardedBackend::PredictBinary(const std::string& name,
                                            std::span<const uint8_t> record,
                                            int64_t deadline_ns) {
  Result<float> result = router_->PredictBinary(name, record, deadline_ns);
  if (!result.ok() && result.status().IsResourceExhausted()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void ShardedBackend::PredictAsync(const std::string& name,
                                  const std::string& input,
                                  std::function<void(Result<float>)> callback,
                                  int64_t deadline_ns) {
  // Captured by copy: the outer `callback` must stay callable for the
  // rejected-at-submit path below, where the wrapper never runs.
  Status submitted = router_->PredictAsync(
      name, input,
      [this, callback](Result<float> result) mutable {
        if (!result.ok() && result.status().IsResourceExhausted()) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        callback(std::move(result));
      },
      deadline_ns);
  if (!submitted.ok()) {
    // Rejected before enqueue: the wrapped callback above never runs, so
    // count and complete here (exactly once either way).
    if (submitted.IsResourceExhausted()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    callback(submitted);
  }
}

}  // namespace pretzel
