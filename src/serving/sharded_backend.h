// Backend adapter: puts the sharded serving stack behind the FrontEnd's
// client-facing Backend interface, so the same tier that fronted one
// Runtime (PretzelBackend) or the container cluster (ClipperBackend) can
// front N shards. Routing is one placement lookup in the router; the async
// path rides the owning shard's event scheduler.
//
// The backend also aggregates admission drops across shards: every
// ResourceExhausted outcome — rejected at submit or surfaced through the
// async callback — lands in one dropped() counter, the shard-side analog of
// FrontEnd::dropped(), so operators see total shed load without walking
// per-shard metrics.
#ifndef PRETZEL_SERVING_SHARDED_BACKEND_H_
#define PRETZEL_SERVING_SHARDED_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "src/frontend/frontend.h"
#include "src/serving/shard_router.h"

namespace pretzel {

class ShardedBackend : public Backend {
 public:
  explicit ShardedBackend(ShardRouter* router) : router_(router) {}

  Result<float> Predict(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0) override;

  void PredictAsync(const std::string& name, const std::string& input,
                    std::function<void(Result<float>)> callback,
                    int64_t deadline_ns = 0) override;

  // Zero-copy: the borrowed wire record routes to the owning shard's
  // binary entry point; admission drops land in the same counter.
  Result<float> PredictBinary(const std::string& name,
                              std::span<const uint8_t> record,
                              int64_t deadline_ns = 0) override;

  // Predictions shed by any shard's admission control, summed router-wide.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // ---- Versioned lifecycle passthrough: the client-facing face of the
  // router's zero-downtime deploys. Serving traffic through this backend is
  // never interrupted by any of these (the router swaps snapshots; readers
  // hold no locks).
  Result<uint64_t> Deploy(const PipelineSpec& spec) {
    return router_->Deploy(spec);
  }
  Status Promote(const std::string& name) { return router_->Promote(name); }
  Status Rollback(const std::string& name) { return router_->Rollback(name); }
  Result<PlanVersionInfo> VersionInfo(const std::string& name) const {
    return router_->VersionInfo(name);
  }

 private:
  ShardRouter* router_;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_SHARDED_BACKEND_H_
