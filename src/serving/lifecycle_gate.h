// Versioned-lifecycle primitives for zero-downtime plan swaps, shared by the
// ShardRouter's deploy/canary/retire control plane and the model checker:
//
//  - VersionGate: a per-version inflight gate implementing the epoch side of
//    version reclamation. Requests Enter() the gate of the version they were
//    routed to (inside the routing-table RCU read section, so the gate
//    pointer is valid) and Exit() after booking their outcome; the retirer
//    Close()s the gate once the routing table no longer references the
//    version and AwaitDrain()s before dropping the plan and sweeping its
//    ObjectStore blobs. Enter-then-check and close-then-check form a
//    store-buffering pair (both seq_cst): either the admitting request sees
//    the closed flag and backs out, or the retirer's drain sees its inflight
//    increment — a request can never run against a version whose blobs are
//    being reclaimed.
//
//  - CanarySplit: the mutable canary traffic fraction, updated mid-rollout
//    without republishing the routing table. Publish() stores the target
//    version token first and the fraction with release order second; Load()
//    acquires the fraction before reading the target, so a reader that
//    observes a nonzero fraction is guaranteed to observe the version that
//    fraction was published for. The zero-fraction publish doubles as the
//    auto-rollback kill switch: any request thread can stop canary traffic
//    immediately, before the heavyweight rollback takes the control mutex.
//
// Both live on the PRETZEL_ATOMIC seam, so tests/model_check exercises them
// under the deterministic scheduler. Seeded mutations the checker must
// detect: lc_skip_drain (retirer skips the inflight drain before
// reclamation), lc_fraction_publish (fraction store weakened to relaxed —
// readers can see a fraction without its target), lc_drain_inflight (drain's
// inflight load weakened to relaxed — a stale zero lets reclamation start
// under a live reader).
#ifndef PRETZEL_SERVING_LIFECYCLE_GATE_H_
#define PRETZEL_SERVING_LIFECYCLE_GATE_H_

#include <cstdint>
#include <thread>

#include "src/common/lockfree.h"

namespace pretzel {

class VersionGate {
 public:
  VersionGate() = default;
  VersionGate(const VersionGate&) = delete;
  VersionGate& operator=(const VersionGate&) = delete;

  // Registers an in-flight request against this version. Returns false (and
  // leaves the gate untouched) when the version is already closed for
  // retirement; the caller must route elsewhere. The increment is issued
  // BEFORE the closed-flag load — the store-buffering pairing with
  // Close()/Drained() is what makes "closed" mean "no request inside".
  bool Enter() {
    inflight_.fetch_add(1, PRETZEL_MO(lc_enter_inc, seq_cst));
    if (closed_.load(PRETZEL_MO(lc_enter_closed, seq_cst))) {
      inflight_.fetch_sub(1, PRETZEL_MO(lc_enter_undo, seq_cst));
      return false;
    }
    return true;
  }

  // Ends the request registered by a successful Enter(). Release order: the
  // caller's per-version stat writes happen-before the retirer observes the
  // drain, so stats can be reclaimed with the version.
  void Exit() { inflight_.fetch_sub(1, PRETZEL_MO(lc_exit_dec, release)); }

  // Closes admission. Callers must only Close after the routing table no
  // longer hands out this gate (the RCU grace period of the table swap);
  // Enter() rejections are then a transient impossibility kept as defense.
  void Close() { closed_.store(true, PRETZEL_MO(lc_close_store, seq_cst)); }

  // True once the gate is closed and every admitted request has exited.
  bool Drained() const {
    if (!closed_.load(PRETZEL_MO(lc_drain_closed, seq_cst))) {
      return false;
    }
    return inflight_.load(PRETZEL_MO(lc_drain_inflight, seq_cst)) == 0;
  }

  // Blocks until Drained(). Only after this returns may the version's plan,
  // stats, and ObjectStore pins be reclaimed.
  void AwaitDrain() const {
    if (PRETZEL_LF_MUTATION(lc_skip_drain)) {
      return;
    }
    while (!Drained()) {
      std::this_thread::yield();
    }
  }

  bool closed() const {
    return closed_.load(PRETZEL_MO(lc_closed_peek, seq_cst));
  }
  int64_t inflight() const {
    // relaxed: metrics-only peek; never feeds a reclamation decision.
    return inflight_.load(PRETZEL_MO(lc_inflight_peek, relaxed));
  }

 private:
  PRETZEL_ATOMIC(int64_t) inflight_{0};
  PRETZEL_ATOMIC(bool) closed_{false};
};

class CanarySplit {
 public:
  struct Split {
    uint32_t fraction_bp = 0;  // Canary share in basis points (of 10000).
    uint64_t target = 0;       // Version token the fraction applies to.
  };

  CanarySplit() = default;
  CanarySplit(const CanarySplit&) = delete;
  CanarySplit& operator=(const CanarySplit&) = delete;

  // Publishes `fraction_bp` of traffic for canary version `target`.
  // target-then-fraction with a release fence on the fraction store is the
  // message-passing pattern: a reader that acquires the new fraction also
  // sees its target.
  void Publish(uint32_t fraction_bp, uint64_t target) {
    target_.store(target, PRETZEL_MO(lc_target_store, relaxed));
    fraction_bp_.store(fraction_bp, PRETZEL_MO(lc_fraction_publish, release));
  }

  Split Load() const {
    Split s;
    s.fraction_bp = fraction_bp_.load(PRETZEL_MO(lc_fraction_load, acquire));
    // relaxed: ordered by the acquire on the fraction load above; a reader
    // acting on a nonzero fraction has synchronized with its Publish.
    s.target = target_.load(PRETZEL_MO(lc_target_load, relaxed));
    return s;
  }

  // Deterministic traffic-split decision: hashes the request sequence number
  // (splitmix64) against the fraction, so the canary share is exact in the
  // count domain and reproducible across runs — the same discipline the
  // fault-injection layer uses for probabilities.
  static bool InCanary(uint64_t seq, uint32_t fraction_bp) {
    if (fraction_bp == 0) {
      return false;
    }
    if (fraction_bp >= 10000) {
      return true;
    }
    uint64_t z = seq + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z % 10000 < fraction_bp;
  }

 private:
  PRETZEL_ATOMIC(uint32_t) fraction_bp_{0};
  PRETZEL_ATOMIC(uint64_t) target_{0};
};

}  // namespace pretzel

#endif  // PRETZEL_SERVING_LIFECYCLE_GATE_H_
