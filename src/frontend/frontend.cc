#include "src/frontend/frontend.h"

#include <algorithm>

#include "src/common/clock.h"

namespace pretzel {

FrontEnd::FrontEnd(Backend* backend, const FrontEndOptions& options)
    : backend_(backend), options_(options) {
  const size_t threads = std::max<size_t>(1, options_.num_io_threads);
  io_threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { IoLoop(); });
  }
}

FrontEnd::~FrontEnd() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& thread : io_threads_) {
    thread.join();
  }
}

Result<float> FrontEnd::Request(const std::string& name,
                                const std::string& input) {
  SleepUs(options_.network_delay_us);  // Client -> frontend.
  Result<float> result = backend_->Predict(name, input);
  SleepUs(options_.network_delay_us);  // Frontend -> client.
  return result;
}

void FrontEnd::RequestAsync(const std::string& name, const std::string& input,
                            std::function<void(Result<float>)> callback) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(PendingRequest{name, input, std::move(callback)});
  }
  cv_.notify_one();
}

void FrontEnd::IoLoop() {
  while (true) {
    PendingRequest request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    SleepUs(options_.network_delay_us);
    Result<float> result = backend_->Predict(request.name, request.input);
    SleepUs(options_.network_delay_us);
    request.callback(std::move(result));
  }
}

}  // namespace pretzel
