#include "src/frontend/frontend.h"

#include <algorithm>

#include "src/common/clock.h"

namespace pretzel {

FrontEnd::FrontEnd(Backend* backend, const FrontEndOptions& options)
    : backend_(backend), options_(options) {
  const size_t threads = std::max<size_t>(1, options_.num_io_threads);
  io_threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { IoLoop(); });
  }
}

FrontEnd::~FrontEnd() {
  {
    // Drain first: admitted requests may still be in flight inside an async
    // backend, whose completion will call back into this FrontEnd.
    MutexLock lock(mu_);
    while (pending_ != 0) {
      cv_.wait(lock.native());
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& thread : io_threads_) {
    thread.join();
  }
}

Result<float> FrontEnd::Request(const std::string& name,
                                const std::string& input) {
  SleepUs(options_.network_delay_us);  // Client -> frontend.
  Result<float> result = backend_->Predict(name, input);
  SleepUs(options_.network_delay_us);  // Frontend -> client.
  return result;
}

Result<float> FrontEnd::RequestBinary(const std::string& name,
                                      std::span<const uint8_t> record) {
  SleepUs(options_.network_delay_us);  // Client -> frontend.
  Result<float> result = backend_->PredictBinary(name, record);
  SleepUs(options_.network_delay_us);  // Frontend -> client.
  return result;
}

Status FrontEnd::RequestAsync(const std::string& name, const std::string& input,
                              std::function<void(Result<float>)> callback) {
  {
    MutexLock lock(mu_);
    if (stop_) {
      return Status::Error("frontend shutting down");
    }
    if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
                 "frontend over " + std::to_string(options_.max_pending) +
                 " pending requests")
          .WithRetryAfterUs(retry_after_hint_us());
    }
    ++pending_;
    Work work;
    work.name = name;
    work.input = input;
    work.callback = std::move(callback);
    work.admit_ns = NowNs();
    queue_.push_back(std::move(work));
  }
  // notify_all: the draining destructor waits on this cv too, and a
  // notify_one it consumes (its predicate being false) would strand the
  // queued work with every worker asleep.
  cv_.notify_all();
  return Status::OK();
}

void FrontEnd::EnqueueCompletion(std::function<void(Result<float>)> callback,
                                 Result<float> result, int64_t admit_ns) {
  // Admission -> backend-completion latency feeds the retry-after hint this
  // tier attaches to its own drops. Racy EWMA updates are fine (estimate).
  const int64_t sample_us = (NowNs() - admit_ns) / 1000;
  const int64_t prev = latency_ewma_us_.load(std::memory_order_relaxed);
  latency_ewma_us_.store(prev + (sample_us - prev) / 8,
                         std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    Work work;
    work.is_completion = true;
    work.callback = std::move(callback);
    work.result = std::move(result);
    // Completions jump the queue: finishing in-flight work beats admitting
    // more of the backlog.
    queue_.push_front(std::move(work));
    // Lock order / lifetime note (the PR-4 use-after-free class): notify
    // UNDER the lock. This runs on a backend thread, and the draining
    // destructor may destroy this FrontEnd the moment pending_ hits zero —
    // which can only happen after an IO thread pops this work, i.e. after
    // we release mu_. Notifying after the unlock would touch cv_ beyond
    // that point (use-after-free); see RequestAsync for why it is
    // notify_all (the drain waiter shares this cv).
    cv_.notify_all();
  }
}

void FrontEnd::IoLoop() {
  while (true) {
    Work work;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        cv_.wait(lock.native());
      }
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    if (work.is_completion) {
      SleepUs(options_.network_delay_us);  // Frontend -> client.
      work.callback(std::move(work.result));
      {
        MutexLock lock(mu_);
        --pending_;
      }
      // Admission and the draining destructor both wait on this cv. Unlike
      // EnqueueCompletion, notifying outside the lock is safe HERE only
      // because this is an IO thread: the destructor joins io_threads_
      // before members are destroyed, so cv_ outlives this call even when
      // this notify releases the drain waiter.
      cv_.notify_all();
      continue;
    }
    SleepUs(options_.network_delay_us);  // Client -> frontend.
    // Hand off to the backend's async path; the completion re-enters the IO
    // queue so the response hop never runs on a backend executor thread.
    auto callback = std::move(work.callback);
    backend_->PredictAsync(work.name, work.input,
                           [this, callback = std::move(callback),
                            admit_ns = work.admit_ns](
                               Result<float> result) mutable {
                             EnqueueCompletion(std::move(callback),
                                               std::move(result), admit_ns);
                           });
  }
}

}  // namespace pretzel
