#include "src/frontend/frontend.h"

#include <algorithm>

#include "src/common/clock.h"

namespace pretzel {

namespace {

// splitmix64: cheap, stateless jitter for the retry backoff.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FrontEnd::FrontEnd(Backend* backend, const FrontEndOptions& options)
    : backend_(backend),
      options_(options),
      now_ns_(options.now_ns ? options.now_ns : [] { return NowNs(); }),
      sleep_us_(options.sleep_us ? options.sleep_us
                                 : [](int64_t us) { SleepUs(us); }) {
  const size_t threads = std::max<size_t>(1, options_.num_io_threads);
  io_threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { IoLoop(); });
  }
}

FrontEnd::~FrontEnd() {
  {
    // Drain first: admitted requests may still be in flight inside an async
    // backend, whose completion will call back into this FrontEnd.
    MutexLock lock(mu_);
    while (pending_ != 0) {
      cv_.wait(lock.native());
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& thread : io_threads_) {
    thread.join();
  }
}

int64_t FrontEnd::RetryWaitUs(const Status& status, uint32_t attempt) {
  // Exponential backoff with "equal jitter" ([backoff/2, backoff]) so
  // synchronized rejections don't re-arrive as a synchronized herd.
  const int64_t shift = std::min<uint32_t>(attempt, 20);
  int64_t backoff = std::min(options_.retry_max_us,
                             options_.retry_base_us << shift);
  backoff = std::max<int64_t>(1, backoff);
  const uint64_t nonce =
      retry_nonce_.fetch_add(1, std::memory_order_relaxed);
  const int64_t jittered = backoff / 2 +
      static_cast<int64_t>(Mix64(options_.retry_seed ^ nonce) %
                           static_cast<uint64_t>(backoff / 2 + 1));
  // Never wait less than the rejecting tier's own hint: retrying before the
  // hinted horizon just re-joins the queue it was shed from.
  return std::max(status.retry_after_us(), jittered);
}

Result<float> FrontEnd::Request(const std::string& name,
                                const std::string& input,
                                int64_t deadline_ns) {
  sleep_us_(options_.network_delay_us);  // Client -> frontend.
  Result<float> result = Status::Error("unsent");
  for (uint32_t attempt = 0;; ++attempt) {
    if (deadline_ns > 0 && now_ns_() >= deadline_ns) {
      result = Status::DeadlineExceeded("expired at frontend before send")
                   .WithDeadlineStage(DeadlineStage::kAdmission);
      break;
    }
    result = backend_->Predict(name, input, deadline_ns);
    if (!Retryable(result.status(), attempt)) {
      break;
    }
    const int64_t wait_us = RetryWaitUs(result.status(), attempt);
    if (deadline_ns > 0 && now_ns_() + wait_us * 1000 >= deadline_ns) {
      break;  // The backoff alone would blow the budget; keep the shed.
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    sleep_us_(wait_us);
  }
  if (!result.ok()) {
    if (result.status().IsResourceExhausted()) {
      dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_error_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  sleep_us_(options_.network_delay_us);  // Frontend -> client.
  return result;
}

Result<float> FrontEnd::RequestBinary(const std::string& name,
                                      std::span<const uint8_t> record,
                                      int64_t deadline_ns) {
  sleep_us_(options_.network_delay_us);  // Client -> frontend.
  Result<float> result = Status::Error("unsent");
  for (uint32_t attempt = 0;; ++attempt) {
    if (deadline_ns > 0 && now_ns_() >= deadline_ns) {
      result = Status::DeadlineExceeded("expired at frontend before send")
                   .WithDeadlineStage(DeadlineStage::kAdmission);
      break;
    }
    result = backend_->PredictBinary(name, record, deadline_ns);
    if (!Retryable(result.status(), attempt)) {
      break;
    }
    const int64_t wait_us = RetryWaitUs(result.status(), attempt);
    if (deadline_ns > 0 && now_ns_() + wait_us * 1000 >= deadline_ns) {
      break;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    sleep_us_(wait_us);
  }
  if (!result.ok()) {
    if (result.status().IsResourceExhausted()) {
      dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_error_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  sleep_us_(options_.network_delay_us);  // Frontend -> client.
  return result;
}

Status FrontEnd::RequestAsync(const std::string& name, const std::string& input,
                              std::function<void(Result<float>)> callback,
                              int64_t deadline_ns) {
  if (deadline_ns > 0 && now_ns_() >= deadline_ns) {
    // Shed at the door: admitting work that already missed its deadline
    // only burns IO-thread time producing a late failure.
    expired_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("expired at frontend admission")
        .WithDeadlineStage(DeadlineStage::kAdmission);
  }
  {
    MutexLock lock(mu_);
    if (stop_) {
      return Status::Error("frontend shutting down");
    }
    if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
                 "frontend over " + std::to_string(options_.max_pending) +
                 " pending requests")
          .WithRetryAfterUs(retry_after_hint_us());
    }
    ++pending_;
    Work work;
    work.name = name;
    work.input = input;
    work.callback = std::move(callback);
    work.admit_ns = now_ns_();
    work.deadline_ns = deadline_ns;
    queue_.push_back(std::move(work));
  }
  // notify_all: the draining destructor waits on this cv too, and a
  // notify_one it consumes (its predicate being false) would strand the
  // queued work with every worker asleep.
  cv_.notify_all();
  return Status::OK();
}

void FrontEnd::RetryOrComplete(Work work, Result<float> result) {
  if (Retryable(result.status(), work.attempt)) {
    const int64_t wait_us = RetryWaitUs(result.status(), work.attempt);
    const int64_t now = now_ns_();
    if (work.deadline_ns == 0 || now + wait_us * 1000 < work.deadline_ns) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      work.attempt += 1;
      work.not_before_ns = now + wait_us * 1000;
      work.is_completion = false;
      {
        MutexLock lock(mu_);
        // Retries go to the back: fresher work shouldn't starve behind a
        // request the backend just shed.
        queue_.push_back(std::move(work));
        // Same lifetime rule as EnqueueCompletion: this runs on a backend
        // thread, so notify under the lock.
        cv_.notify_all();
      }
      return;
    }
  }
  EnqueueCompletion(std::move(work.callback), std::move(result),
                    work.admit_ns);
}

void FrontEnd::EnqueueCompletion(std::function<void(Result<float>)> callback,
                                 Result<float> result, int64_t admit_ns) {
  // Final-outcome bookkeeping: why did the async request fail, if it did.
  if (!result.ok()) {
    if (result.status().IsResourceExhausted()) {
      dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_error_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Admission -> backend-completion latency feeds the retry-after hint this
  // tier attaches to its own drops. Racy EWMA updates are fine (estimate).
  const int64_t sample_us = (now_ns_() - admit_ns) / 1000;
  const int64_t prev = latency_ewma_us_.load(std::memory_order_relaxed);
  latency_ewma_us_.store(prev + (sample_us - prev) / 8,
                         std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    Work work;
    work.is_completion = true;
    work.callback = std::move(callback);
    work.result = std::move(result);
    // Completions jump the queue: finishing in-flight work beats admitting
    // more of the backlog.
    queue_.push_front(std::move(work));
    // Lock order / lifetime note (the PR-4 use-after-free class): notify
    // UNDER the lock. This runs on a backend thread, and the draining
    // destructor may destroy this FrontEnd the moment pending_ hits zero —
    // which can only happen after an IO thread pops this work, i.e. after
    // we release mu_. Notifying after the unlock would touch cv_ beyond
    // that point (use-after-free); see RequestAsync for why it is
    // notify_all (the drain waiter shares this cv).
    cv_.notify_all();
  }
}

void FrontEnd::IoLoop() {
  // In-backoff retries must never stall runnable work: with few IO threads,
  // sleeping a popped retry's remaining backoff inline (up to retry_max_us)
  // would block fresh admissions AND completions — which ride this same
  // queue — exactly when overload makes retries common. The pop instead
  // scans for the first DUE item (not_before_ns reached; completions and
  // fresh work are always due), and only when every queued item is a
  // future-dated retry does the thread wait — in short slices through the
  // sleep seam, so newly runnable work is picked up within one slice.
  constexpr int64_t kBackoffSliceUs = 200;
  while (true) {
    Work work;
    int64_t poll_us = 0;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        cv_.wait(lock.native());
      }
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      const int64_t now = now_ns_();
      auto due = queue_.end();
      int64_t earliest_ns = queue_.front().not_before_ns;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->not_before_ns <= now) {
          due = it;
          break;
        }
        earliest_ns = std::min(earliest_ns, it->not_before_ns);
      }
      if (due == queue_.end()) {
        // Every item is a retry still serving out its backoff (the waits
        // honor the rejecting tier's retry-after hint; see RetryWaitUs).
        poll_us = std::min<int64_t>((earliest_ns - now + 999) / 1000,
                                    kBackoffSliceUs);
      } else {
        work = std::move(*due);
        queue_.erase(due);
      }
    }
    if (poll_us > 0) {
      sleep_us_(poll_us);
      continue;
    }
    if (work.is_completion) {
      sleep_us_(options_.network_delay_us);  // Frontend -> client.
      work.callback(std::move(work.result));
      {
        MutexLock lock(mu_);
        --pending_;
      }
      // Admission and the draining destructor both wait on this cv. Unlike
      // EnqueueCompletion, notifying outside the lock is safe HERE only
      // because this is an IO thread: the destructor joins io_threads_
      // before members are destroyed, so cv_ outlives this call even when
      // this notify releases the drain waiter.
      cv_.notify_all();
      continue;
    }
    if (work.attempt == 0) {
      sleep_us_(options_.network_delay_us);  // Client -> frontend.
    }
    // A popped retry is already due: its backoff was served queue-side.
    if (work.deadline_ns > 0 && now_ns_() >= work.deadline_ns) {
      // Expired while queued here: don't burn a backend slot on it.
      EnqueueCompletion(
          std::move(work.callback),
          Status::DeadlineExceeded("expired in frontend queue")
              .WithDeadlineStage(DeadlineStage::kQueue),
          work.admit_ns);
      continue;
    }
    // Hand off to the backend's async path; the completion re-enters the IO
    // queue so the response hop never runs on a backend executor thread.
    // The result hook may instead schedule a retry (RetryOrComplete).
    const std::string name = work.name;
    const std::string input = work.input;
    const int64_t deadline_ns = work.deadline_ns;
    backend_->PredictAsync(
        name, input,
        [this, work = std::move(work)](Result<float> result) mutable {
          RetryOrComplete(std::move(work), std::move(result));
        },
        deadline_ns);
  }
}

}  // namespace pretzel
