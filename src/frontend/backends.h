// Concrete FrontEnd backends: PRETZEL's in-process Runtime and the
// ML.Net+Clipper container cluster, so the two systems are compared behind
// the same client-facing tier (Figures 11 and 14).
#ifndef PRETZEL_FRONTEND_BACKENDS_H_
#define PRETZEL_FRONTEND_BACKENDS_H_

#include <string>
#include <unordered_map>

#include "src/clipper/container.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/frontend/frontend.h"
#include "src/runtime/runtime.h"

namespace pretzel {

class PretzelBackend : public Backend {
 public:
  explicit PretzelBackend(Runtime* runtime) : runtime_(runtime) {}

  // Routes are added during deployment, before serving starts.
  void AddRoute(const std::string& name, Runtime::PlanId id);

  Result<float> Predict(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0) override;

  // Rides the Runtime's event scheduler (coalescible single-prediction
  // event) instead of blocking the calling IO thread. The deadline travels
  // with the event so expiry is enforced inside the scheduler's queues.
  void PredictAsync(const std::string& name, const std::string& input,
                    std::function<void(Result<float>)> callback,
                    int64_t deadline_ns = 0) override;

  // Zero-copy: the borrowed record bytes go straight to
  // Runtime::PredictBinary (validated in place, never converted).
  Result<float> PredictBinary(const std::string& name,
                              std::span<const uint8_t> record,
                              int64_t deadline_ns = 0) override;

 private:
  Result<Runtime::PlanId> Route(const std::string& name) const EXCLUDES(mu_);

  Runtime* runtime_;
  mutable SharedMutex mu_;
  std::unordered_map<std::string, Runtime::PlanId> routes_ GUARDED_BY(mu_);
};

class ClipperBackend : public Backend {
 public:
  explicit ClipperBackend(ClipperCluster* cluster) : cluster_(cluster) {}

  // The container cluster has no deadline plumbing; the parameter is
  // accepted (interface) and ignored — the baseline serves every request.
  Result<float> Predict(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0) override;

 private:
  ClipperCluster* cluster_;
};

}  // namespace pretzel

#endif  // PRETZEL_FRONTEND_BACKENDS_H_
