// FrontEnd: the client-facing serving tier (the paper's ASP.Net front-end).
// Every request pays an emulated client<->frontend network hop each way.
// Asynchronous requests are admitted into a bounded queue (backpressure:
// over max_pending they fail fast with ResourceExhausted instead of growing
// memory without limit), handed to the backend's async path — which for the
// PRETZEL backend rides the Runtime's event scheduler rather than blocking
// an IO thread — and completed by the IO pool, which pays the response hop.
//
// Backpressure composition with the Runtime's bounded event rings: a
// backend enqueue that fails (e.g. the per-plan ResourceExhausted cap,
// enforced ahead of the lock-free rings) surfaces through the async
// callback with that status, so callers see the same fail-fast semantics on
// both admission tiers. Ring-capacity spills inside the Runtime are NOT
// rejections — they only leave the lock-free fast path.
#ifndef PRETZEL_FRONTEND_FRONTEND_H_
#define PRETZEL_FRONTEND_FRONTEND_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace pretzel {

// Anything that can answer a named prediction request.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual Result<float> Predict(const std::string& name,
                                const std::string& input) = 0;
  // Asynchronous entry point. The default blocks the calling thread on the
  // sync path; scheduler-backed backends override it to enqueue instead.
  // `callback` must be invoked exactly once, from any thread.
  virtual void PredictAsync(const std::string& name, const std::string& input,
                            std::function<void(Result<float>)> callback) {
    callback(Predict(name, input));
  }
  // Binary wire record (src/common/serialize.h). The default copies the
  // bytes through the text entry point — zero-parse backends override it to
  // hand the borrowed bytes to the runtime without a copy.
  virtual Result<float> PredictBinary(const std::string& name,
                                      std::span<const uint8_t> record) {
    return Predict(name,
                   std::string(reinterpret_cast<const char*>(record.data()),
                               record.size()));
  }
};

struct FrontEndOptions {
  int64_t network_delay_us = 150;  // One-way client <-> frontend hop.
  size_t num_io_threads = 2;
  // Cap on admitted-but-uncompleted async requests; 0 = unbounded.
  // RequestAsync over the cap fails fast with ResourceExhausted.
  size_t max_pending = 0;
};

class FrontEnd {
 public:
  FrontEnd(Backend* backend, const FrontEndOptions& options);
  // Drains all admitted async requests before stopping the IO pool.
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Synchronous request on the caller's thread (hop + predict + hop).
  Result<float> Request(const std::string& name, const std::string& input);

  // Synchronous binary-wire request: same hops, but the record bytes reach
  // the backend borrowed — a zero-parse backend validates and scores them
  // in place (no text parse, no copy).
  Result<float> RequestBinary(const std::string& name,
                              std::span<const uint8_t> record);

  // Queues the request for the IO pool; the callback fires from an IO
  // thread after the response hop. Fails fast (callback never runs) with
  // ResourceExhausted when max_pending admitted requests are in flight.
  Status RequestAsync(const std::string& name, const std::string& input,
                      std::function<void(Result<float>)> callback);

  // Requests rejected by the max_pending cap since construction.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Current retry-after hint (us): EWMA of admitted requests' admission->
  // completion latency, attached to this tier's ResourceExhausted drops.
  // Backend-tier rejections pass through with the backend's own hint.
  int64_t retry_after_hint_us() const {
    return std::max<int64_t>(1, latency_ewma_us_.load(std::memory_order_relaxed));
  }

 private:
  // IO work: an inbound request awaiting its backend hand-off, or a
  // completed backend response awaiting its response hop + user callback.
  struct Work {
    bool is_completion = false;
    std::string name;
    std::string input;
    std::function<void(Result<float>)> callback;
    Result<float> result = Status::Error("pending");
    int64_t admit_ns = 0;  // Admission stamp, feeds the retry-after EWMA.
  };

  void IoLoop() EXCLUDES(mu_);
  // Runs on backend (executor) threads; see the lock-order note in the .cc:
  // it must notify cv_ while still holding mu_.
  void EnqueueCompletion(std::function<void(Result<float>)> callback,
                         Result<float> result, int64_t admit_ns) EXCLUDES(mu_);

  Backend* backend_;
  const FrontEndOptions options_;
  Mutex mu_;
  // Waiters on cv_: IO threads (work available / stop), the draining
  // destructor (pending_ == 0). Every notify site must use notify_all — a
  // notify_one can be swallowed by a waiter whose predicate is false.
  std::condition_variable cv_;
  std::deque<Work> queue_ GUARDED_BY(mu_);
  // Admitted async requests not yet completed.
  size_t pending_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<int64_t> latency_ewma_us_{0};  // Admission -> completion.
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> io_threads_;
};

}  // namespace pretzel

#endif  // PRETZEL_FRONTEND_FRONTEND_H_
