// FrontEnd: the client-facing serving tier (the paper's ASP.Net front-end).
// Every request pays an emulated client<->frontend network hop each way.
// Asynchronous requests are admitted into a bounded queue (backpressure:
// over max_pending they fail fast with ResourceExhausted instead of growing
// memory without limit), handed to the backend's async path — which for the
// PRETZEL backend rides the Runtime's event scheduler rather than blocking
// an IO thread — and completed by the IO pool, which pays the response hop.
//
// Backpressure composition with the Runtime's bounded event rings: a
// backend enqueue that fails (e.g. the per-plan ResourceExhausted cap,
// enforced ahead of the lock-free rings) surfaces through the async
// callback with that status, so callers see the same fail-fast semantics on
// both admission tiers. Ring-capacity spills inside the Runtime are NOT
// rejections — they only leave the lock-free fast path.
#ifndef PRETZEL_FRONTEND_FRONTEND_H_
#define PRETZEL_FRONTEND_FRONTEND_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace pretzel {

// Anything that can answer a named prediction request. `deadline_ns` is an
// absolute deadline (NowNs() domain, 0 = none) propagated down the stack so
// every tier below can drop work that can no longer make it.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual Result<float> Predict(const std::string& name,
                                const std::string& input,
                                int64_t deadline_ns = 0) = 0;
  // Asynchronous entry point. The default blocks the calling thread on the
  // sync path; scheduler-backed backends override it to enqueue instead.
  // `callback` must be invoked exactly once, from any thread.
  virtual void PredictAsync(const std::string& name, const std::string& input,
                            std::function<void(Result<float>)> callback,
                            int64_t deadline_ns = 0) {
    callback(Predict(name, input, deadline_ns));
  }
  // Binary wire record (src/common/serialize.h). The default copies the
  // bytes through the text entry point — zero-parse backends override it to
  // hand the borrowed bytes to the runtime without a copy.
  virtual Result<float> PredictBinary(const std::string& name,
                                      std::span<const uint8_t> record,
                                      int64_t deadline_ns = 0) {
    return Predict(name,
                   std::string(reinterpret_cast<const char*>(record.data()),
                               record.size()),
                   deadline_ns);
  }
};

struct FrontEndOptions {
  int64_t network_delay_us = 150;  // One-way client <-> frontend hop.
  size_t num_io_threads = 2;
  // Cap on admitted-but-uncompleted async requests; 0 = unbounded.
  // RequestAsync over the cap fails fast with ResourceExhausted.
  size_t max_pending = 0;
  // Retry policy for backpressure rejections (ResourceExhausted) from the
  // backend: up to max_retries re-submissions, waiting
  // max(status.retry_after_us() hint, jittered exponential backoff) between
  // attempts, never past the request's deadline. 0 disables retries.
  size_t max_retries = 0;
  int64_t retry_base_us = 500;
  int64_t retry_max_us = 50'000;
  uint64_t retry_seed = 1;
  // Test seams: every clock read / wait the retry-and-hop machinery performs
  // goes through these, so tests can pin wait behavior on fake time.
  // Defaults (unset) are the real NowNs / SleepUs.
  std::function<int64_t()> now_ns;
  std::function<void(int64_t)> sleep_us;
};

// Final-outcome counters for the tier, split by why requests failed.
struct FrontEndMetrics {
  uint64_t dropped_backpressure = 0;  // Admission cap + backend sheds (final).
  uint64_t dropped_error = 0;         // Non-retryable failures.
  uint64_t expired = 0;               // Deadline-exceeded outcomes.
  uint64_t retries = 0;               // Re-submissions scheduled.
  int64_t latency_ewma_us = 0;        // Admission -> completion estimate.
};

class FrontEnd {
 public:
  FrontEnd(Backend* backend, const FrontEndOptions& options);
  // Drains all admitted async requests before stopping the IO pool.
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Synchronous request on the caller's thread (hop + predict + hop), with
  // the retry policy applied inline. `deadline_ns`: absolute, 0 = none.
  Result<float> Request(const std::string& name, const std::string& input,
                        int64_t deadline_ns = 0);

  // Synchronous binary-wire request: same hops, but the record bytes reach
  // the backend borrowed — a zero-parse backend validates and scores them
  // in place (no text parse, no copy).
  Result<float> RequestBinary(const std::string& name,
                              std::span<const uint8_t> record,
                              int64_t deadline_ns = 0);

  // Queues the request for the IO pool; the callback fires from an IO
  // thread after the response hop. Fails fast (callback never runs) with
  // ResourceExhausted when max_pending admitted requests are in flight, or
  // DeadlineExceeded when the deadline already passed at admission.
  Status RequestAsync(const std::string& name, const std::string& input,
                      std::function<void(Result<float>)> callback,
                      int64_t deadline_ns = 0);

  // Requests rejected or shed by backpressure since construction (the
  // backward-compatible view; GetMetrics splits the full breakdown).
  uint64_t dropped() const {
    return dropped_backpressure_.load(std::memory_order_relaxed);
  }

  FrontEndMetrics GetMetrics() const {
    FrontEndMetrics m;
    m.dropped_backpressure =
        dropped_backpressure_.load(std::memory_order_relaxed);
    m.dropped_error = dropped_error_.load(std::memory_order_relaxed);
    m.expired = expired_.load(std::memory_order_relaxed);
    m.retries = retries_.load(std::memory_order_relaxed);
    m.latency_ewma_us = latency_ewma_us_.load(std::memory_order_relaxed);
    return m;
  }

  // Current retry-after hint (us): EWMA of admitted requests' admission->
  // completion latency, attached to this tier's ResourceExhausted drops.
  // Backend-tier rejections pass through with the backend's own hint.
  int64_t retry_after_hint_us() const {
    return std::max<int64_t>(1, latency_ewma_us_.load(std::memory_order_relaxed));
  }

 private:
  // IO work: an inbound request awaiting its backend hand-off (possibly a
  // scheduled retry), or a completed backend response awaiting its response
  // hop + user callback.
  struct Work {
    bool is_completion = false;
    std::string name;
    std::string input;
    std::function<void(Result<float>)> callback;
    Result<float> result = Status::Error("pending");
    int64_t admit_ns = 0;  // Admission stamp, feeds the retry-after EWMA.
    int64_t deadline_ns = 0;
    uint32_t attempt = 0;       // 0 = first hand-off, >0 = retry.
    int64_t not_before_ns = 0;  // Retry backoff target; 0 = immediately.
  };

  void IoLoop() EXCLUDES(mu_);
  // Runs on backend (executor) threads; see the lock-order note in the .cc:
  // it must notify cv_ while still holding mu_. Books the final-outcome
  // counters (backpressure / error / expired split).
  void EnqueueCompletion(std::function<void(Result<float>)> callback,
                         Result<float> result, int64_t admit_ns) EXCLUDES(mu_);
  // Backend-result hook for async requests: schedules a retry when the
  // status is a retryable shed and budget remains, else completes.
  void RetryOrComplete(Work work, Result<float> result) EXCLUDES(mu_);
  // max(retry-after hint, jittered exponential backoff) for `attempt`.
  int64_t RetryWaitUs(const Status& status, uint32_t attempt);
  bool Retryable(const Status& status, uint32_t attempt) const {
    return !status.ok() && status.IsResourceExhausted() &&
           attempt < options_.max_retries;
  }

  Backend* backend_;
  const FrontEndOptions options_;
  // Resolved clock/wait seams (options_ hooks or the real clock).
  const std::function<int64_t()> now_ns_;
  const std::function<void(int64_t)> sleep_us_;
  Mutex mu_;
  // Waiters on cv_: IO threads (work available / stop), the draining
  // destructor (pending_ == 0). Every notify site must use notify_all — a
  // notify_one can be swallowed by a waiter whose predicate is false.
  std::condition_variable cv_;
  std::deque<Work> queue_ GUARDED_BY(mu_);
  // Admitted async requests not yet completed.
  size_t pending_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> dropped_backpressure_{0};
  std::atomic<uint64_t> dropped_error_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retry_nonce_{0};  // Jitter stream position.
  std::atomic<int64_t> latency_ewma_us_{0};  // Admission -> completion.
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> io_threads_;
};

}  // namespace pretzel

#endif  // PRETZEL_FRONTEND_FRONTEND_H_
