// FrontEnd: the client-facing serving tier (the paper's ASP.Net front-end).
// Every request pays an emulated client<->frontend network hop each way;
// asynchronous requests are handled by a small IO thread pool, which is the
// concurrency limit a real HTTP tier would impose.
#ifndef PRETZEL_FRONTEND_FRONTEND_H_
#define PRETZEL_FRONTEND_FRONTEND_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace pretzel {

// Anything that can answer a named prediction request.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual Result<float> Predict(const std::string& name,
                                const std::string& input) = 0;
};

struct FrontEndOptions {
  int64_t network_delay_us = 150;  // One-way client <-> frontend hop.
  size_t num_io_threads = 2;
};

class FrontEnd {
 public:
  FrontEnd(Backend* backend, const FrontEndOptions& options);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Synchronous request on the caller's thread (hop + predict + hop).
  Result<float> Request(const std::string& name, const std::string& input);

  // Queues the request for the IO pool; the callback fires from an IO
  // thread after the response hop.
  void RequestAsync(const std::string& name, const std::string& input,
                    std::function<void(Result<float>)> callback);

 private:
  struct PendingRequest {
    std::string name;
    std::string input;
    std::function<void(Result<float>)> callback;
  };

  void IoLoop();

  Backend* backend_;
  const FrontEndOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool stop_ = false;
  std::vector<std::thread> io_threads_;
};

}  // namespace pretzel

#endif  // PRETZEL_FRONTEND_FRONTEND_H_
