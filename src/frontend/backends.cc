#include "src/frontend/backends.h"

namespace pretzel {

void PretzelBackend::AddRoute(const std::string& name, Runtime::PlanId id) {
  std::unique_lock lock(mu_);
  routes_[name] = id;
}

Result<float> PretzelBackend::Predict(const std::string& name,
                                      const std::string& input) {
  Runtime::PlanId id;
  {
    std::shared_lock lock(mu_);
    auto it = routes_.find(name);
    if (it == routes_.end()) {
      return Status::NotFound(name);
    }
    id = it->second;
  }
  return runtime_->Predict(id, input);
}

Result<float> ClipperBackend::Predict(const std::string& name,
                                      const std::string& input) {
  return cluster_->Predict(name, input);
}

}  // namespace pretzel
