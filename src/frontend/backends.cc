#include "src/frontend/backends.h"

namespace pretzel {

void PretzelBackend::AddRoute(const std::string& name, Runtime::PlanId id) {
  WriterMutexLock lock(mu_);
  routes_[name] = id;
}

Result<Runtime::PlanId> PretzelBackend::Route(const std::string& name) const {
  ReaderMutexLock lock(mu_);
  auto it = routes_.find(name);
  if (it == routes_.end()) {
    return Status::NotFound(name);
  }
  return it->second;
}

Result<float> PretzelBackend::Predict(const std::string& name,
                                      const std::string& input,
                                      int64_t deadline_ns) {
  Result<Runtime::PlanId> id = Route(name);
  if (!id.ok()) {
    return id.status();
  }
  return runtime_->Predict(*id, input, deadline_ns);
}

void PretzelBackend::PredictAsync(const std::string& name,
                                  const std::string& input,
                                  std::function<void(Result<float>)> callback,
                                  int64_t deadline_ns) {
  Result<Runtime::PlanId> id = Route(name);
  if (!id.ok()) {
    callback(id.status());
    return;
  }
  Status submitted = runtime_->PredictAsync(*id, input, callback, deadline_ns);
  if (!submitted.ok()) {
    callback(submitted);
  }
}

Result<float> PretzelBackend::PredictBinary(const std::string& name,
                                            std::span<const uint8_t> record,
                                            int64_t deadline_ns) {
  Result<Runtime::PlanId> id = Route(name);
  if (!id.ok()) {
    return id.status();
  }
  return runtime_->PredictBinary(*id, record, deadline_ns);
}

Result<float> ClipperBackend::Predict(const std::string& name,
                                      const std::string& input,
                                      int64_t deadline_ns) {
  (void)deadline_ns;  // No deadline plumbing in the container baseline.
  return cluster_->Predict(name, input);
}

}  // namespace pretzel
