// Minimal Status / Result<T> error plumbing shared by every layer. Modeled
// on absl::Status but header-only and dependency-free: a Status is either OK
// or carries a message; a Result<T> is a Status or a value.
#ifndef PRETZEL_COMMON_STATUS_H_
#define PRETZEL_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace pretzel {

enum class StatusCode {
  kOk,
  kError,
  kNotFound,
  kInvalidArgument,
  kResourceExhausted,
  kDeadlineExceeded,
};

// Where a DeadlineExceeded was detected, attached by the dropping tier.
// Health accounting upstream needs the distinction: work that ARRIVED
// already expired burned its budget upstream (network hops, frontend
// queues, a tiny client deadline) and says nothing about the server that
// refused it, while work that expired in the server's own queues or
// execution is that server's fault.
enum class DeadlineStage {
  kUnspecified = 0,  // Not attributed (or not a deadline status).
  kAdmission,        // Already expired on arrival; the tier did no work.
  kQueue,            // Expired waiting in the tier's queues.
  kExecution,        // Expired mid-execution (e.g. between batch quanta).
};

class Status {
 public:
  Status() = default;  // OK.

  static Status OK() { return Status(); }
  static Status Error(std::string message) {
    return Make(StatusCode::kError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Make(StatusCode::kNotFound, "not found: " + std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Make(StatusCode::kInvalidArgument,
                "invalid argument: " + std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Make(StatusCode::kResourceExhausted,
                "resource exhausted: " + std::move(message));
  }
  // Expired work: the message should attribute where the budget went (queue
  // wait vs overrun) — the dropping tier knows, the caller cannot.
  static Status DeadlineExceeded(std::string message) {
    return Make(StatusCode::kDeadlineExceeded,
                "deadline exceeded: " + std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  const std::string& message() const { return message_; }
  std::string ToString() const { return ok() ? "OK" : message_; }

  // Retry-after hint, attached by the rejecting tier to ResourceExhausted:
  // its current queue-delay estimate in microseconds (floored at 1 so a
  // caller can test `retry_after_us() > 0` for "a hint is present"). 0 on
  // every other status.
  Status WithRetryAfterUs(int64_t us) const {
    Status s = *this;
    s.retry_after_us_ = us;
    return s;
  }
  int64_t retry_after_us() const { return retry_after_us_; }

  // Deadline-expiry attribution (see DeadlineStage). kUnspecified on
  // statuses that never carried one; consumers should treat kUnspecified
  // conservatively (as if the server burned the budget).
  Status WithDeadlineStage(DeadlineStage stage) const {
    Status s = *this;
    s.deadline_stage_ = stage;
    return s;
  }
  DeadlineStage deadline_stage() const { return deadline_stage_; }

 private:
  static Status Make(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int64_t retry_after_us_ = 0;
  DeadlineStage deadline_stage_ = DeadlineStage::kUnspecified;
};

template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

  T& operator*() & { return value_; }
  const T& operator*() const& { return value_; }
  T&& operator*() && { return std::move(value_); }

  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace pretzel

#endif  // PRETZEL_COMMON_STATUS_H_
