// Lock-free scheduler primitives (unit-tested in isolation by
// tests/lockfree_test.cc):
//
//  - BoundedMpmcRing<T>: Vyukov's bounded queue with per-cell sequence
//    numbers. One type serves both hot-path roles in the Runtime: as an
//    MPSC ring it carries a plan's events (producers = caller/FrontEnd
//    threads, consumer = the executor holding the plan's dispatch quantum),
//    and as an MPMC ring it carries the runnable PlanQueue* rotation.
//  - IndexStack: a Treiber stack over small indices with the ABA tag packed
//    beside the index in one 64-bit word, so push/pop are single
//    pointer-width CASes (the constant-time free-list scheme of Blelloch &
//    Wei, arXiv:2008.04296 / arXiv:1911.09671, specialized to bounded
//    pools). Backs the VectorPool / ExecContextPool free lists.
//  - MpscIntrusiveQueue: Vyukov's intrusive unbounded MPSC queue — push is
//    wait-free (one exchange), pop is single-consumer. Carries the FIFO
//    chain of spill segments behind each plan's bounded event ring, so even
//    burst overflow never takes a mutex.
//  - EventCount: futex-style sleep/wake for executor parking. Producers pay
//    one atomic bump and skip the kernel entirely while every consumer is
//    busy; mutex+condvar survive only on the park/unpark slow path.
#ifndef PRETZEL_COMMON_LOCKFREE_H_
#define PRETZEL_COMMON_LOCKFREE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Model-check instrumentation seam. Under PRETZEL_MODEL_CHECK the
// deterministic model checker (tests/model_check/mc_runtime.h, which must be
// included BEFORE this header) substitutes its own atomics, mutex, and
// condvar for the std ones: every atomic access becomes a scheduler yield
// point, relaxed/acquire loads may return coherence-permitted stale values,
// and the PRETZEL_MO tag names let the checker's regression suite weaken
// individual memory orders at runtime (seeded mutations the checker must
// detect). PRETZEL_LF_MUTATION gates seeded *structural* bugs (e.g. a
// dropped epoch bump) the same way. In normal builds everything below
// compiles to the plain std forms with zero overhead: PRETZEL_MO(tag, o) is
// std::memory_order_o and the mutation hook is a constant false the
// optimizer deletes.
#if defined(PRETZEL_MODEL_CHECK) && !defined(PRETZEL_ATOMIC)
#error \
    "PRETZEL_MODEL_CHECK builds must include tests/model_check/mc_runtime.h before src/common/lockfree.h"
#endif
#ifndef PRETZEL_ATOMIC
#define PRETZEL_ATOMIC(T) std::atomic<T>
#define PRETZEL_MC_VAR(T) T
#define PRETZEL_MO(tag, order) std::memory_order_##order
#define PRETZEL_LF_MUTEX std::mutex
#define PRETZEL_LF_CONDVAR std::condition_variable
#define PRETZEL_LF_UNIQUE_LOCK std::unique_lock<std::mutex>
#define PRETZEL_LF_LOCK_GUARD std::lock_guard<std::mutex>
#define PRETZEL_LF_MUTATION(name) false
// A destructor that performs instrumented atomic ops (e.g. an RAII read
// guard's exit bump) must be allowed to propagate the model checker's
// run-abort exception; in normal builds destructors stay noexcept.
#define PRETZEL_LF_DTOR_NOEXCEPT noexcept
#endif

namespace pretzel {

// Bounded multi-producer/multi-consumer ring (Dmitry Vyukov's design). Each
// cell carries a sequence number that encodes whether it is ready to be
// written (seq == pos) or read (seq == pos + 1); producers and consumers
// claim positions with one CAS each and never block one another behind a
// lock. TryPush/TryPop fail (without consuming the argument) when the ring
// is full/empty instead of waiting.
template <typename T>
class BoundedMpmcRing {
 public:
  // Capacity is rounded up to a power of two, minimum 2.
  explicit BoundedMpmcRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) {
      cap <<= 1;
    }
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, PRETZEL_MO(ring_init_seq, relaxed));
    }
  }

  BoundedMpmcRing(const BoundedMpmcRing&) = delete;
  BoundedMpmcRing& operator=(const BoundedMpmcRing&) = delete;

  size_t capacity() const { return capacity_; }

  // False when full; `value` is left intact so the caller can divert it.
  bool TryPush(T&& value) {
    Cell* cell;
    uint64_t pos = enqueue_pos_.load(PRETZEL_MO(ring_push_pos_load, relaxed));
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the consumer's seq release in TryPop, so on
      // wrap-around the consumer's read of the old value happens-before the
      // write below.
      const uint64_t seq = cell->seq.load(PRETZEL_MO(ring_push_seq_load, acquire));
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // relaxed: the position counter only arbitrates claims; all
        // publication ordering rides the per-cell seq.
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1, PRETZEL_MO(ring_push_pos_cas, relaxed))) {
          break;
        }
      } else if (dif < 0) {
        return false;  // Full.
      } else {
        pos = enqueue_pos_.load(PRETZEL_MO(ring_push_pos_reload, relaxed));
      }
    }
    cell->value = std::move(value);
    // release: publishes the value write above to the consumer's seq acquire.
    cell->seq.store(pos + 1, PRETZEL_MO(ring_push_seq_store, release));
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    uint64_t pos = dequeue_pos_.load(PRETZEL_MO(ring_pop_pos_load, relaxed));
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the producer's seq release above, ordering the
      // value read below after the producer's value write.
      const uint64_t seq = cell->seq.load(PRETZEL_MO(ring_pop_seq_load, acquire));
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        // relaxed: see the push-side CAS.
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1, PRETZEL_MO(ring_pop_pos_cas, relaxed))) {
          break;
        }
      } else if (dif < 0) {
        return false;  // Empty.
      } else {
        pos = dequeue_pos_.load(PRETZEL_MO(ring_pop_pos_reload, relaxed));
      }
    }
    *out = std::move(cell->value);
    // release: hands the emptied cell back to producers (see push acquire).
    cell->seq.store(pos + mask_ + 1, PRETZEL_MO(ring_pop_seq_store, release));
    return true;
  }

 private:
  struct Cell {
    PRETZEL_ATOMIC(uint64_t) seq{0};
    PRETZEL_MC_VAR(T) value{};
  };

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  // Producers and consumers advance independent counters; keep them on
  // separate cache lines.
  alignas(64) PRETZEL_ATOMIC(uint64_t) enqueue_pos_{0};
  alignas(64) PRETZEL_ATOMIC(uint64_t) dequeue_pos_{0};
};

// Treiber stack over indices [0, capacity). The head word packs
// {tag:32 | index:32}; the tag increments on every successful push or pop,
// so a pointer-width CAS is ABA-safe even when indices recycle rapidly
// (pool free lists do exactly that). An index may be in the stack at most
// once; the caller owns an index from the moment TryPop returns it until it
// pushes it back.
class IndexStack {
 public:
  explicit IndexStack(uint32_t capacity) : next_(capacity) {}

  IndexStack(const IndexStack&) = delete;
  IndexStack& operator=(const IndexStack&) = delete;

  void Push(uint32_t idx) {
    uint64_t head = head_.load(PRETZEL_MO(stack_push_head_load, acquire));
    for (;;) {
      // relaxed: published by the CAS release below; poppers reach this
      // write only through an acquire of that (or a later) head.
      next_[idx].store(static_cast<uint32_t>(head & 0xFFFFFFFFull),
                       PRETZEL_MO(stack_push_next_store, relaxed));
      const uint64_t next_head = Pack(idx, Tag(head) + 1);
      // release on success: publishes the next_ link write above.
      if (head_.compare_exchange_weak(head, next_head,
                                      PRETZEL_MO(stack_push_cas_ok, release),
                                      PRETZEL_MO(stack_push_cas_fail, acquire))) {
        return;
      }
    }
  }

  bool TryPop(uint32_t* out) {
    // acquire: synchronizes with the pushing CAS release (continued through
    // intermediate RMWs as a release sequence), so the next_ read below sees
    // the pusher's link write.
    uint64_t head = head_.load(PRETZEL_MO(stack_pop_head_load, acquire));
    for (;;) {
      const uint32_t top = static_cast<uint32_t>(head & 0xFFFFFFFFull);
      if (top == kNil) {
        return false;
      }
      // relaxed: ordered by the head acquire above (or the CAS failure
      // acquire below on retry).
      const uint32_t next = next_[top].load(PRETZEL_MO(stack_pop_next_load, relaxed));
      const uint64_t next_head = Pack(next, Tag(head) + 1);
      // acquire on failure: the refreshed head is the HB source for the
      // next_ read on the retry iteration.
      if (head_.compare_exchange_weak(head, next_head,
                                      PRETZEL_MO(stack_pop_cas_ok, acq_rel),
                                      PRETZEL_MO(stack_pop_cas_fail, acquire))) {
        *out = top;
        return true;
      }
    }
  }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  static uint64_t Pack(uint32_t idx, uint32_t tag) {
    return (static_cast<uint64_t>(tag) << 32) | idx;
  }
  static uint32_t Tag(uint64_t head) { return static_cast<uint32_t>(head >> 32); }

  std::vector<PRETZEL_ATOMIC(uint32_t)> next_;
  PRETZEL_ATOMIC(uint64_t) head_{Pack(kNil, 0)};
};

// Node base for MpscIntrusiveQueue: derive the queued type from it and
// static_cast the popped pointer back.
struct MpscNode {
  PRETZEL_ATOMIC(MpscNode*) next{nullptr};
};

// Vyukov's intrusive unbounded MPSC queue. Push is wait-free from any
// thread: one exchange on the head plus one release store linking the
// predecessor. Pop is single-consumer (the owner of the plan's dispatch
// quantum in the Runtime) and may return nullptr transiently while a
// producer sits between its exchange and its link store — callers treat
// that exactly like "empty" and retry on their next visit; nothing is ever
// lost. Nodes are caller-owned: the queue never allocates or frees.
class MpscIntrusiveQueue {
 public:
  MpscIntrusiveQueue() : head_(&stub_), tail_(&stub_) {}

  MpscIntrusiveQueue(const MpscIntrusiveQueue&) = delete;
  MpscIntrusiveQueue& operator=(const MpscIntrusiveQueue&) = delete;

  void Push(MpscNode* node) {
    // relaxed: ordered before the exchange below in this thread's program
    // order; the next pusher's store to node->next lands after the exchange
    // hands it our node. Skipping the clear (seeded mutation
    // mpsc_push_skip_clear) leaves a recycled node's stale link live, so the
    // consumer can walk into nodes that were never re-pushed.
    if (!PRETZEL_LF_MUTATION(mpsc_push_skip_clear)) {
      node->next.store(nullptr, PRETZEL_MO(mpsc_push_next_clear, relaxed));
    }
    MpscNode* prev = head_.exchange(node, PRETZEL_MO(mpsc_push_xchg, acq_rel));
    // The queue is momentarily split here; pop reports empty until the link
    // lands, which is the transient nullptr documented above. release:
    // publishes the node's payload to the consumer's next acquire.
    prev->next.store(node, PRETZEL_MO(mpsc_push_link, release));
  }

  // Single consumer only. The stub node may travel through the chain (it is
  // re-pushed when the last real node is popped), so a popped node is always
  // a caller node, never the stub.
  MpscNode* TryPop() {
    MpscNode* tail = tail_;
    // acquire: pairs with the pusher's link release, carrying the popped
    // node's payload writes.
    MpscNode* next = tail->next.load(PRETZEL_MO(mpsc_pop_next_load, acquire));
    if (tail == &stub_) {
      if (next == nullptr) {
        return nullptr;  // Empty (or a producer mid-push).
      }
      tail_ = next;
      tail = next;
      next = next->next.load(PRETZEL_MO(mpsc_pop_stub_adv_load, acquire));
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    if (tail != head_.load(PRETZEL_MO(mpsc_pop_head_load, acquire))) {
      return nullptr;  // Producer mid-push behind `tail`; retry later.
    }
    // `tail` is the last real node: recycle the stub behind it so the chain
    // stays non-empty, then detach `tail`.
    Push(&stub_);
    next = tail->next.load(PRETZEL_MO(mpsc_pop_tail_next_load, acquire));
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;  // A producer raced the stub re-push; retry later.
  }

 private:
  alignas(64) PRETZEL_ATOMIC(MpscNode*) head_;
  alignas(64) MpscNode* tail_;  // Consumer-private cursor.
  MpscNode stub_;
};

// Eventcount: decouples "is there work" (checked lock-free by the waiter)
// from "how do I sleep" (mutex+condvar, touched only when actually
// parking). Protocol for a waiter:
//
//   uint64_t t = ec.PrepareWait();
//   if (WorkAvailable()) { ec.CancelWait(); ... }  // never sleeps
//   else ec.Wait(t);                               // sleeps unless notified
//
// A notifier bumps the epoch first, so a waiter whose PrepareWait predates
// the notification falls straight through Wait — no lost wakeups — and
// skips the mutex+condvar entirely while no one is parked (waiters_ == 0),
// which is the common case with busy executors.
class EventCount {
 public:
  uint64_t PrepareWait() {
    waiters_.fetch_add(1, PRETZEL_MO(ec_prep_waiters_add, seq_cst));
    return epoch_.load(PRETZEL_MO(ec_prep_epoch_load, seq_cst));
  }

  void CancelWait() {
    waiters_.fetch_sub(1, PRETZEL_MO(ec_cancel_waiters_sub, seq_cst));
  }

  void Wait(uint64_t ticket) {
    PRETZEL_LF_UNIQUE_LOCK lock(mu_);
    cv_.wait(lock, [&] {
      return epoch_.load(PRETZEL_MO(ec_wait_epoch_load, seq_cst)) != ticket;
    });
    waiters_.fetch_sub(1, PRETZEL_MO(ec_wait_waiters_sub, seq_cst));
  }

  // False on timeout (the epoch never moved past `ticket` by `deadline`).
  bool WaitUntil(uint64_t ticket,
                 std::chrono::steady_clock::time_point deadline) {
    PRETZEL_LF_UNIQUE_LOCK lock(mu_);
    const bool notified = cv_.wait_until(lock, deadline, [&] {
      return epoch_.load(PRETZEL_MO(ec_waituntil_epoch_load, seq_cst)) != ticket;
    });
    waiters_.fetch_sub(1, PRETZEL_MO(ec_waituntil_waiters_sub, seq_cst));
    return notified;
  }

  void NotifyOne() { Notify(false); }
  void NotifyAll() { Notify(true); }

 private:
  void Notify(bool all) {
    // The bump must precede the waiters check: a waiter whose PrepareWait
    // predates this notification then falls straight through Wait's
    // predicate. Dropping it (seeded mutation ec_notify_skip_bump) loses
    // exactly the wakeup racing the check-then-sleep window.
    if (!PRETZEL_LF_MUTATION(ec_notify_skip_bump)) {
      epoch_.fetch_add(1, PRETZEL_MO(ec_notify_bump, seq_cst));
    }
    if (waiters_.load(PRETZEL_MO(ec_notify_waiters_load, seq_cst)) == 0) {
      return;  // Every consumer is busy: no syscall, no lock.
    }
    if (PRETZEL_LF_MUTATION(ec_notify_skip_mutex)) {
      // Seeded mutation: notify WITHOUT the mutex — reopens the window where
      // a waiter has evaluated its predicate but not yet slept, so the
      // notify lands on an empty waitlist and the waiter sleeps forever.
      if (all) {
        cv_.notify_all();
      } else {
        cv_.notify_one();
      }
      return;
    }
    // Taking the mutex orders this notify after any in-flight waiter's
    // predicate check, closing the check-then-sleep window.
    PRETZEL_LF_LOCK_GUARD lock(mu_);
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  PRETZEL_ATOMIC(uint64_t) epoch_{0};
  PRETZEL_ATOMIC(uint32_t) waiters_{0};
  PRETZEL_LF_MUTEX mu_;
  PRETZEL_LF_CONDVAR cv_;
};

}  // namespace pretzel

#endif  // PRETZEL_COMMON_LOCKFREE_H_
