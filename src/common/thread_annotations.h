// Clang thread-safety annotation macros (no-ops on other compilers). These
// make lock/guard relationships machine-checked: the CI clang job builds
// with -Werror=thread-safety, so an access to a GUARDED_BY field without its
// capability held, a REQUIRES function called unlocked, or an EXCLUDES
// violation is a build break, not a TSan roll of the dice.
//
// Convention (see README "Correctness toolchain"): every long-lived
// mutex-guarded structure uses the annotated wrappers in
// src/common/mutex.h and carries GUARDED_BY on its fields. Suppressions
// (NO_THREAD_SAFETY_ANALYSIS) are allowed only with an inline justification
// comment explaining why the analysis cannot see the invariant.
#ifndef PRETZEL_COMMON_THREAD_ANNOTATIONS_H_
#define PRETZEL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define PRETZEL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PRETZEL_THREAD_ANNOTATION__(x)  // no-op
#endif

// Type annotations: a class that is a lockable capability, and an RAII type
// that holds one for its scope.
#define CAPABILITY(x) PRETZEL_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY PRETZEL_THREAD_ANNOTATION__(scoped_lockable)

// Data annotations: the declared field may only be touched with the given
// capability held (directly, or through the pointee for PT_GUARDED_BY).
#define GUARDED_BY(x) PRETZEL_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) PRETZEL_THREAD_ANNOTATION__(pt_guarded_by(x))

// Function annotations: capabilities the caller must hold (REQUIRES*), must
// NOT hold (EXCLUDES), or that the function itself acquires/releases.
#define REQUIRES(...) \
  PRETZEL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PRETZEL_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) PRETZEL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) \
  PRETZEL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PRETZEL_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  PRETZEL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PRETZEL_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PRETZEL_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PRETZEL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  PRETZEL_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) PRETZEL_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch. Every use must carry an inline comment justifying why the
// static analysis cannot express the invariant (e.g. single-threaded
// destructor contract).
#define NO_THREAD_SAFETY_ANALYSIS \
  PRETZEL_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // PRETZEL_COMMON_THREAD_ANNOTATIONS_H_
