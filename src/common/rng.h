// Deterministic, fast PRNG (splitmix64 core). Workload generation and the
// benches need repeatable streams across runs and platforms, so std::mt19937
// distributions (implementation-defined sequences for some distributions) are
// avoided in favour of explicit arithmetic.
#ifndef PRETZEL_COMMON_RNG_H_
#define PRETZEL_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace pretzel {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(SplitMix64(seed ^ 0x1234567890abcdefull)) {}

  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  // Uniform in [0, 1).
  double Uniform01() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  // Standard normal via Box-Muller (one value per call; the spare is kept).
  double Normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = Uniform01();
    double u2 = Uniform01();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pretzel

#endif  // PRETZEL_COMMON_RNG_H_
