// Deterministic fault injection seam. Chaos tests arm named sites with a
// probability / latency / budget spec; production code marks the sites with
// the PRETZEL_FAULT_* macros. Two properties drive the design:
//
//  1. Zero overhead unless compiled in. Without -DPRETZEL_FAULT_INJECT the
//     macros expand to constant false / nothing, so the hot paths carry no
//     extra loads, branches, or symbols (the acceptance bar: bench_scheduler
//     / bench_shard SHAPE-CHECKs unchanged vs the plain build). With it, an
//     unarmed site costs one relaxed load of a global armed-count.
//
//  2. Determinism. Decisions come from a splitmix64 stream keyed on
//     (global seed ^ site hash ^ per-site hit index), where the index is an
//     atomic counter — so for a fixed seed the k-th evaluation of a site
//     decides the same way regardless of which thread performs it or how
//     threads interleave. Runs are reproducible in the count domain, which
//     is what the chaos invariants (exactly-once, bounded in-flight,
//     recovery) are stated over.
//
// Sites are string literals, e.g. PRETZEL_FAULT_POINT("runtime.ring_full").
// tools/lint_invariants.py enforces that every site named in src/ appears in
// tests/chaos_test.cc. The registry is a small fixed table guarded by a
// mutex on the (cold) Arm/Disarm/SetSeed path; Hit() walks it lock-free via
// a published count, reading per-site knobs as individual relaxed atomics —
// so re-ARMING a live site while worker threads hit it is a safe knob
// update, never a data race. The one remaining constraint: DisarmAll()
// frees slots for reuse by later Arms of NEW site names (a non-atomic name
// write), so disarm only between scenarios, with traffic quiesced — which
// is how the chaos tests use it.
#ifndef PRETZEL_COMMON_FAULT_H_
#define PRETZEL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "src/common/clock.h"

namespace pretzel {
namespace fault {

// Per-site knobs. A site fires when armed AND probability admits this hit
// AND the budget (max fires; 0 = unlimited) is not spent AND `arg` matches
// (spec.arg < 0 matches any; sites pass a site-specific discriminator such
// as a shard index).
struct Spec {
  double probability = 1.0;
  int64_t latency_us = 0;  // Stall applied by PRETZEL_FAULT_STALL sites.
  uint64_t budget = 0;     // Max fires; 0 = unlimited.
  int64_t arg = -1;        // Discriminator filter; -1 matches any.
};

#if defined(PRETZEL_FAULT_INJECT)

namespace internal {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t HashSite(std::string_view site) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a.
  for (const char c : site) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

struct Site {
  std::string_view name;
  // The Spec knobs, stored as individual relaxed atomics: Hit() reads them
  // lock-free while Arm() may be rewriting them (re-arming a live site).
  std::atomic<double> probability{1.0};
  std::atomic<int64_t> latency_us{0};
  std::atomic<uint64_t> budget{0};
  std::atomic<int64_t> arg{-1};
  std::atomic<uint64_t> evals{0};  // Hit-index counter (decision stream).
  std::atomic<uint64_t> fires{0};

  void StoreSpec(const Spec& spec) {
    probability.store(spec.probability, std::memory_order_relaxed);
    latency_us.store(spec.latency_us, std::memory_order_relaxed);
    budget.store(spec.budget, std::memory_order_relaxed);
    arg.store(spec.arg, std::memory_order_relaxed);
  }
};

constexpr size_t kMaxSites = 32;

struct Registry {
  // armed is the fast-path gate: 0 means every macro is one relaxed load.
  std::atomic<size_t> armed{0};
  std::atomic<uint64_t> seed{0x5EEDF00Dull};
  // Serializes the cold control path (Arm/DisarmAll/SetSeed): concurrent
  // Arms of distinct new sites would otherwise race on the same slot.
  std::mutex arm_mu;
  Site sites[kMaxSites];
};

inline Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace internal

// Arms (or re-arms) a site. Sites are identified by literal name; the table
// slot persists until DisarmAll so hit counters survive re-arming.
inline void Arm(std::string_view site, const Spec& spec) {
  auto& reg = internal::registry();
  std::lock_guard<std::mutex> lock(reg.arm_mu);
  const size_t n = reg.armed.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (reg.sites[i].name == site) {
      reg.sites[i].StoreSpec(spec);  // Live knob update; Hit keeps reading.
      return;
    }
  }
  if (n >= internal::kMaxSites) {
    return;  // Table full; chaos tests never get close.
  }
  // New slot: fill it completely, THEN publish via the armed count — a
  // racing Hit only walks into the slot after the release/acquire pair.
  reg.sites[n].name = site;
  reg.sites[n].StoreSpec(spec);
  reg.sites[n].evals.store(0, std::memory_order_relaxed);
  reg.sites[n].fires.store(0, std::memory_order_relaxed);
  reg.armed.store(n + 1, std::memory_order_release);
}

// Disarms every site and resets counters. (Individual disarm is just
// re-arming with probability 0; the chaos tests reset wholesale between
// scenarios.) Must not run concurrently with traffic: it recycles slots
// whose names a later Arm rewrites non-atomically (see header comment).
inline void DisarmAll() {
  auto& reg = internal::registry();
  std::lock_guard<std::mutex> lock(reg.arm_mu);
  const size_t n = reg.armed.load(std::memory_order_acquire);
  reg.armed.store(0, std::memory_order_release);
  for (size_t i = 0; i < n; ++i) {
    reg.sites[i].StoreSpec(Spec{});
    reg.sites[i].evals.store(0, std::memory_order_relaxed);
    reg.sites[i].fires.store(0, std::memory_order_relaxed);
  }
}

inline void SetSeed(uint64_t seed) {
  auto& reg = internal::registry();
  std::lock_guard<std::mutex> lock(reg.arm_mu);
  reg.seed.store(seed, std::memory_order_relaxed);
}

// Fires recorded for `site` since it was (last) armed.
inline uint64_t Fires(std::string_view site) {
  auto& reg = internal::registry();
  const size_t n = reg.armed.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (reg.sites[i].name == site) {
      return reg.sites[i].fires.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

// Decision point: true iff the armed spec admits this hit. Deterministic in
// the count domain (see header comment).
inline bool Hit(std::string_view site, int64_t arg = 0) {
  auto& reg = internal::registry();
  const size_t n = reg.armed.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    internal::Site& s = reg.sites[i];
    if (s.name != site) {
      continue;
    }
    const double probability = s.probability.load(std::memory_order_relaxed);
    if (probability <= 0.0) {
      return false;
    }
    const int64_t want_arg = s.arg.load(std::memory_order_relaxed);
    if (want_arg >= 0 && want_arg != arg) {
      return false;
    }
    const uint64_t index = s.evals.fetch_add(1, std::memory_order_relaxed);
    if (probability < 1.0) {
      // relaxed: the seed is set once before the scenario arms its sites;
      // the decision only needs a stable value, not ordering with them.
      const uint64_t word =
          internal::Mix64(reg.seed.load(std::memory_order_relaxed) ^
                          internal::HashSite(site) ^ index);
      const double u =
          static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
      if (u >= probability) {
        return false;
      }
    }
    const uint64_t budget = s.budget.load(std::memory_order_relaxed);
    if (budget > 0) {
      // Budget claims by CAS so concurrent hits never overshoot the cap.
      uint64_t fired = s.fires.load(std::memory_order_relaxed);
      for (;;) {
        if (fired >= budget) {
          return false;
        }
        if (s.fires.compare_exchange_weak(fired, fired + 1,
                                          std::memory_order_relaxed)) {
          return true;
        }
      }
    }
    s.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

// Latency a firing site should apply (0 when unarmed).
inline int64_t LatencyUs(std::string_view site) {
  auto& reg = internal::registry();
  const size_t n = reg.armed.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (reg.sites[i].name == site) {
      return reg.sites[i].latency_us.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

#else  // !PRETZEL_FAULT_INJECT — inert stubs so callers need no #ifdefs.

inline void Arm(std::string_view, const Spec&) {}
inline void DisarmAll() {}
inline void SetSeed(uint64_t) {}
inline uint64_t Fires(std::string_view) { return 0; }
inline bool Hit(std::string_view, int64_t = 0) { return false; }
inline int64_t LatencyUs(std::string_view) { return 0; }

#endif  // PRETZEL_FAULT_INJECT

}  // namespace fault
}  // namespace pretzel

// Site macros. PRETZEL_FAULT_POINT evaluates to a bool (did the fault
// fire?); PRETZEL_FAULT_STALL sleeps the armed latency when it fires.
// Compiled out, both are constants the optimizer deletes — no load, no
// branch, no site string in the binary.
#if defined(PRETZEL_FAULT_INJECT)
#define PRETZEL_FAULT_POINT(site, arg) (::pretzel::fault::Hit((site), (arg)))
#define PRETZEL_FAULT_STALL(site, arg)                      \
  do {                                                      \
    if (::pretzel::fault::Hit((site), (arg))) {             \
      ::pretzel::SleepUs(::pretzel::fault::LatencyUs(site)); \
    }                                                       \
  } while (0)
#else
#define PRETZEL_FAULT_POINT(site, arg) false
#define PRETZEL_FAULT_STALL(site, arg) \
  do {                                 \
  } while (0)
#endif

#endif  // PRETZEL_COMMON_FAULT_H_
