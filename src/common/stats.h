// SampleStats: an exact sample reservoir with percentile/CDF queries, plus
// human-readable duration/byte formatting. All the figure harnesses funnel
// their measurements through this type, so queries are exact (sorted sample
// vector), not streaming sketches.
#ifndef PRETZEL_COMMON_STATS_H_
#define PRETZEL_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pretzel {

class SampleStats {
 public:
  SampleStats() = default;

  void Add(double value);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Median() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }

  // Nearest-rank percentile, pct in [0, 100]. Returns 0 on an empty sample.
  double Percentile(double pct) const;

  // `points` evenly spaced CDF points as (value, cumulative_fraction), ending
  // at (max, 1.0). Empty result on an empty sample.
  std::vector<std::pair<double, double>> Cdf(size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;  // Lazily (re)built query cache.
  mutable bool sorted_valid_ = false;
};

// "412ns", "3.18us", "7.42ms", "1.25s".
std::string FormatDurationNs(double ns);

// "512B", "64.0KB", "1.50MB", "2.25GB".
std::string FormatBytes(size_t bytes);

}  // namespace pretzel

#endif  // PRETZEL_COMMON_STATS_H_
