#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pretzel {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleStats::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleStats::Percentile(double pct) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  pct = std::min(100.0, std::max(0.0, pct));
  // Nearest-rank: smallest value with at least pct% of the sample at or
  // below it.
  const double rank = pct / 100.0 * static_cast<double>(sorted_.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  if (idx > 0) {
    --idx;
  }
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::vector<std::pair<double, double>> SampleStats::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> cdf;
  EnsureSorted();
  if (sorted_.empty() || points == 0) {
    return cdf;
  }
  cdf.reserve(points);
  for (size_t j = 1; j <= points; ++j) {
    const double frac = static_cast<double>(j) / static_cast<double>(points);
    cdf.emplace_back(Percentile(frac * 100.0), frac);
  }
  return cdf;
}

std::string FormatDurationNs(double ns) {
  char buf[64];
  const double abs = std::fabs(ns);
  if (abs < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  } else if (bytes < (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / (1ull << 10));
  } else if (bytes < (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", b / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / (1ull << 30));
  }
  return buf;
}

}  // namespace pretzel
