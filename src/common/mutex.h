// Annotated mutex wrappers: thin shells over std::mutex / std::shared_mutex
// that carry Clang capability attributes (src/common/thread_annotations.h),
// so GUARDED_BY fields and REQUIRES functions are statically enforced by
// the -Werror=thread-safety CI job. Zero-cost: every method is a single
// forwarded call; the std primitives underneath are unchanged, so ASan/
// TSan/UBSan instrumentation sees exactly the locking it always saw.
//
// Condition variables keep using std::condition_variable against
// Mutex::native(); annotated code writes waits as explicit predicate loops
// (`while (!pred) cv.wait(lock.native());`) inside a REQUIRES function so
// the analysis tracks the guarded reads without lambda suppressions.
#ifndef PRETZEL_COMMON_MUTEX_H_
#define PRETZEL_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace pretzel {

// Exclusive lockable capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The raw mutex, for std::condition_variable waits. A wait releases and
  // reacquires the same capability, so code holding this Mutex across the
  // wait stays consistent from the analysis's point of view.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Reader/writer lockable capability (deploy-time writes, serving reads).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex, condvar-compatible via native().
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For std::condition_variable::wait; see header comment.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace pretzel

#endif  // PRETZEL_COMMON_MUTEX_H_
