// POD framing helpers shared by the params and model-image serializers,
// plus the BinaryRecord zero-parse wire format for prediction inputs.
#ifndef PRETZEL_COMMON_SERIALIZE_H_
#define PRETZEL_COMMON_SERIALIZE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/fault.h"
#include "src/common/status.h"

namespace pretzel {

// The one sanctioned way to reinterpret wire bytes as typed words. Asserts
// the alignment precondition that makes the in-place load defined — the
// same property UBSan's -fsanitize=alignment checks on every dereference —
// so a misaligned slice trips immediately in debug/sanitizer builds instead
// of faulting (or silently degrading) on a stricter target.
// tools/lint_invariants.py rejects reinterpret_casts in the serialize and
// kernel alias paths that bypass this helper.
template <typename T>
inline const T* AlignedAliasCast(const char* p) {
  assert(reinterpret_cast<uintptr_t>(p) % alignof(T) == 0 &&  // alias-ok: helper
         "misaligned alias cast: stage through a memcpy copy instead");
  return reinterpret_cast<const T*>(p);  // alias-ok: alignment asserted above
}

template <typename T>
inline void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Advances *p past the value on success; leaves it untouched on truncation.
template <typename T>
inline bool ReadPod(const char** p, const char* end, T* out) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) {
    return false;
  }
  std::memcpy(out, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

// ---------------------------------------------------------------------------
// BinaryRecord: the zero-parse prediction-input wire format. A record is a
// 16-byte little-endian header followed by a raw payload:
//
//   offset  size  field
//        0     4  magic      0x525A50F5 ({0xF5,'P','Z','R'} on the wire; the
//                            lead byte is never valid ASCII/UTF-8 text, so
//                            text and binary inputs share one entry point)
//        4     1  format     1 = dense float32, 2 = sparse id/value pairs
//        5     1  flags      bit 0: record is valid (validity bit); all
//                            other bits must be zero
//        6     2  reserved   must be zero
//        8     4  dim        dense: float count; sparse: feature-space dim
//       12     4  nnz        dense: == dim; sparse: id/value pair count
//
// Dense payload: dim float32 values. Sparse payload: nnz uint32 ids
// (strictly ascending, each < dim) followed by nnz float32 values. All
// fields and payload words are little-endian.
//
// The header is 16 bytes so a record that starts on an aligned boundary has
// a 4-byte-aligned payload; ParseBinaryRecord reports (rather than assumes)
// payload alignment, and consumers fall back to a memcpy staging copy for
// records sliced at odd offsets out of a larger buffer. Validation is
// bounded by the buffer length everywhere — a truncated, oversized, or
// corrupt record is rejected without reading past the input span — and
// payload floats are checked finite (NaN/Inf rejected) by bit pattern, so
// a validated record feeds the kernels with no per-field conversion.

inline constexpr uint32_t kBinaryRecordMagic = 0x525A50F5u;
inline constexpr uint8_t kBinaryRecordFlagValid = 0x01;
// Defensive cap: keeps dim/nnz arithmetic far from size_t overflow and
// rejects absurd headers before any payload walk.
inline constexpr uint32_t kBinaryRecordMaxDim = 1u << 24;

enum class BinaryRecordFormat : uint8_t { kDense = 1, kSparse = 2 };

// Which wire encoding a generator or bench driver emits.
enum class WireFormat { kText, kBinary };

struct BinaryRecordHeader {
  uint32_t magic = kBinaryRecordMagic;
  uint8_t format = 0;
  uint8_t flags = 0;
  uint16_t reserved = 0;
  uint32_t dim = 0;
  uint32_t nnz = 0;
};
static_assert(sizeof(BinaryRecordHeader) == 16,
              "wire header must stay 16 bytes (payload alignment)");

// Validated zero-copy view of one record. `values`/`ids` alias the wire
// bytes when `aligned` is true; otherwise they are null and the consumer
// must stage the payload through CopyDenseValues/CopySparsePayload.
struct BinaryRecordView {
  BinaryRecordFormat format = BinaryRecordFormat::kDense;
  bool valid = false;    // The header validity bit.
  bool aligned = false;  // Payload pointers usable in place.
  uint32_t dim = 0;
  uint32_t nnz = 0;
  const float* values = nullptr;  // dim (dense) or nnz (sparse) floats.
  const uint32_t* ids = nullptr;  // nnz sorted ids (sparse only).
  const char* payload = nullptr;  // Raw payload bytes (any alignment).
  size_t record_size = 0;         // Header + payload, for buffer walking.
};

// True when the buffer leads with the wire magic — the cheap text/binary
// fork every input entry point takes before any validation.
inline bool IsBinaryRecord(std::string_view bytes) {
  uint32_t magic;
  if (bytes.size() < sizeof(magic)) {
    return false;
  }
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kBinaryRecordMagic;
}

inline void AppendDenseRecord(std::string* out, const float* values,
                              size_t dim, bool valid = true) {
  BinaryRecordHeader header;
  header.format = static_cast<uint8_t>(BinaryRecordFormat::kDense);
  header.flags = valid ? kBinaryRecordFlagValid : 0;
  header.dim = static_cast<uint32_t>(dim);
  header.nnz = static_cast<uint32_t>(dim);
  AppendPod(out, header);
  out->append(reinterpret_cast<const char*>(values), dim * sizeof(float));
}

inline std::string EncodeDenseRecord(const float* values, size_t dim,
                                     bool valid = true) {
  std::string out;
  out.reserve(sizeof(BinaryRecordHeader) + dim * sizeof(float));
  AppendDenseRecord(&out, values, dim, valid);
  return out;
}

// `ids` must be strictly ascending and < dim (ParseBinaryRecord enforces
// it on the read side; encoding unsorted ids produces a rejected record).
inline void AppendSparseRecord(std::string* out, const uint32_t* ids,
                               const float* values, size_t nnz, uint32_t dim,
                               bool valid = true) {
  BinaryRecordHeader header;
  header.format = static_cast<uint8_t>(BinaryRecordFormat::kSparse);
  header.flags = valid ? kBinaryRecordFlagValid : 0;
  header.dim = dim;
  header.nnz = static_cast<uint32_t>(nnz);
  AppendPod(out, header);
  out->append(reinterpret_cast<const char*>(ids), nnz * sizeof(uint32_t));
  out->append(reinterpret_cast<const char*>(values), nnz * sizeof(float));
}

inline std::string EncodeSparseRecord(const uint32_t* ids, const float* values,
                                      size_t nnz, uint32_t dim,
                                      bool valid = true) {
  std::string out;
  out.reserve(sizeof(BinaryRecordHeader) + nnz * 8);
  AppendSparseRecord(&out, ids, values, nnz, dim, valid);
  return out;
}

namespace wire_internal {

// Alignment-blind little-endian word loads (compile to plain loads on x86).
inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Finite check by bit pattern: exponent all-ones is NaN or Inf. No float
// arithmetic, no conversion — this is the whole per-value validation cost.
inline bool FiniteBits(uint32_t bits) {
  return (bits & 0x7F800000u) != 0x7F800000u;
}

inline bool PayloadFinite(const char* p, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (!FiniteBits(LoadU32(p + i * sizeof(uint32_t)))) {
      return false;
    }
  }
  return true;
}

}  // namespace wire_internal

// Validates one record at the head of `bytes` and fills `*view`. With
// `allow_trailing` false (single-record entry points) the buffer must be
// exactly one record; true lets batch walkers slice concatenated records.
// Never reads past bytes.size(); a structurally broken record is rejected
// with InvalidArgument. A record whose validity bit is clear parses OK —
// masking it out (with attribution) is the execution layer's job.
inline Status ParseBinaryRecord(std::string_view bytes, BinaryRecordView* view,
                                bool allow_trailing = false) {
  if (bytes.size() < sizeof(BinaryRecordHeader)) {
    return Status::InvalidArgument("binary record truncated before header");
  }
  // Chaos site: the record arrived corrupted on the wire. Modeled as a
  // validation failure (not a bit flip) so the rejection path is exercised
  // without depending on which field a real flip would land in.
  if (PRETZEL_FAULT_POINT("serialize.corrupt_record", 0)) {
    return Status::InvalidArgument("binary record corrupted (fault-injected)");
  }
  BinaryRecordHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kBinaryRecordMagic) {
    return Status::InvalidArgument("binary record magic mismatch");
  }
  if (header.reserved != 0 ||
      (header.flags & ~kBinaryRecordFlagValid) != 0) {
    return Status::InvalidArgument("binary record unknown header bits");
  }
  if (header.dim > kBinaryRecordMaxDim || header.nnz > kBinaryRecordMaxDim) {
    return Status::InvalidArgument("binary record dim beyond wire cap");
  }
  const auto format = static_cast<BinaryRecordFormat>(header.format);
  size_t payload_bytes = 0;
  if (format == BinaryRecordFormat::kDense) {
    if (header.nnz != header.dim) {
      return Status::InvalidArgument("dense binary record nnz != dim");
    }
    payload_bytes = size_t{header.dim} * sizeof(float);
  } else if (format == BinaryRecordFormat::kSparse) {
    if (header.nnz > header.dim) {
      return Status::InvalidArgument("sparse binary record nnz > dim");
    }
    payload_bytes = size_t{header.nnz} * (sizeof(uint32_t) + sizeof(float));
  } else {
    return Status::InvalidArgument("binary record unknown format tag");
  }
  const size_t record_size = sizeof(BinaryRecordHeader) + payload_bytes;
  if (bytes.size() < record_size) {
    return Status::InvalidArgument("binary record payload truncated");
  }
  if (!allow_trailing && bytes.size() != record_size) {
    return Status::InvalidArgument("binary record oversized buffer");
  }
  const char* payload = bytes.data() + sizeof(BinaryRecordHeader);
  view->format = format;
  view->valid = (header.flags & kBinaryRecordFlagValid) != 0;
  view->dim = header.dim;
  view->nnz = header.nnz;
  view->payload = payload;
  view->record_size = record_size;
  view->aligned =
      reinterpret_cast<uintptr_t>(payload) % alignof(float) == 0;
  view->values = nullptr;
  view->ids = nullptr;
  if (format == BinaryRecordFormat::kDense) {
    if (!wire_internal::PayloadFinite(payload, header.dim)) {
      return Status::InvalidArgument("dense binary record non-finite value");
    }
    if (view->aligned) {
      view->values = AlignedAliasCast<float>(payload);
    }
  } else {
    const char* vals = payload + size_t{header.nnz} * sizeof(uint32_t);
    uint32_t prev = 0;
    for (uint32_t i = 0; i < header.nnz; ++i) {
      const uint32_t id = wire_internal::LoadU32(payload + i * 4);
      if (id >= header.dim || (i > 0 && id <= prev)) {
        return Status::InvalidArgument("sparse binary record ids not "
                                       "strictly ascending below dim");
      }
      prev = id;
    }
    if (!wire_internal::PayloadFinite(vals, header.nnz)) {
      return Status::InvalidArgument("sparse binary record non-finite value");
    }
    if (view->aligned) {
      view->ids = AlignedAliasCast<uint32_t>(payload);
      view->values = AlignedAliasCast<float>(vals);
    }
  }
  return Status::OK();
}

// Misaligned-record staging: copy the dense payload into caller storage
// (dst must hold view.dim floats). Works for aligned records too.
inline void CopyDenseValues(const BinaryRecordView& view, float* dst) {
  std::memcpy(dst, view.payload, size_t{view.dim} * sizeof(float));
}

// Sparse staging counterpart: ids into `ids`, values into `vals` (view.nnz
// elements each).
inline void CopySparsePayload(const BinaryRecordView& view, uint32_t* ids,
                              float* vals) {
  std::memcpy(ids, view.payload, size_t{view.nnz} * sizeof(uint32_t));
  std::memcpy(vals, view.payload + size_t{view.nnz} * sizeof(uint32_t),
              size_t{view.nnz} * sizeof(float));
}

// Slices a buffer of concatenated records into per-record views (the
// PredictBinary batch entry point rides the borrowed-span PredictBatch on
// these). Each record is re-validated by the executor; this walk only needs
// the structural sizes, but still rejects any record the full parse would.
inline Status SplitBinaryBatch(std::string_view buffer,
                               std::vector<std::string_view>* records) {
  records->clear();
  while (!buffer.empty()) {
    BinaryRecordView view;
    Status status = ParseBinaryRecord(buffer, &view, /*allow_trailing=*/true);
    if (!status.ok()) {
      return status;
    }
    records->push_back(buffer.substr(0, view.record_size));
    buffer.remove_prefix(view.record_size);
  }
  return Status::OK();
}

}  // namespace pretzel

#endif  // PRETZEL_COMMON_SERIALIZE_H_
