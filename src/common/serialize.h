// POD framing helpers shared by the params and model-image serializers.
#ifndef PRETZEL_COMMON_SERIALIZE_H_
#define PRETZEL_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstring>
#include <string>

namespace pretzel {

template <typename T>
inline void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Advances *p past the value on success; leaves it untouched on truncation.
template <typename T>
inline bool ReadPod(const char** p, const char* end, T* out) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) {
    return false;
  }
  std::memcpy(out, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

}  // namespace pretzel

#endif  // PRETZEL_COMMON_SERIALIZE_H_
