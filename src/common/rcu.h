// RcuCell<T>: an immutable-snapshot pointer with epoch-based grace-period
// reclamation — the RCU-style swap discipline the serving tier's routing
// table rides (and the first concrete step toward versioned plan hot-swap).
//
// Readers NEVER take a mutex or spin: entering a read section is one
// fetch_add on a sharded epoch counter plus one pointer load; leaving is one
// fetch_add. Writers publish a replacement snapshot, then wait until every
// reader that could be holding the retired snapshot has left its read
// section before reclaiming it. std::atomic<std::shared_ptr> was rejected
// for this role deliberately: libstdc++ implements it through a spinlock
// pool, which would put a lock back on every predict — the very cost the
// snapshot design removes.
//
// Scheme (the classic two-generation passive reader count, with reader
// validation — the standard userspace-RCU discipline):
//  - `kSlots` cache-line-padded slots, each holding enter/exit counters for
//    TWO generations (index = epoch parity). A reader picks a slot by
//    thread identity, reads the epoch, bumps in[epoch & 1], then RE-READS
//    the epoch: if the parity moved between the first read and the bump, a
//    writer may already have quiesced that generation, so the reader
//    retires the registration (bumps out[same parity]) and retries under
//    the current parity. Once validation passes it loads the pointer, and
//    on exit bumps out[epoch & 1] of the SAME generation it registered in.
//  - A writer exchanges the pointer, bumps the epoch, then waits per slot
//    until in[old parity] == out[old parity]. New readers land in the new
//    parity, so the old generation quiesces even under continuous traffic.
//
// Why the validation step is load-bearing: without it, a straggler that
// read the epoch (parity 0), stalled, and resumed after a writer's swap +
// grace wait would register under parity 0 UNOBSERVED (the writer already
// saw in[0]==out[0]) while loading the new pointer — and the NEXT exchange
// waits only on parity 1, so it would reclaim the pointer that straggler
// still holds. Two back-to-back exchanges are routine (a replication
// maintenance scan publishes repeatedly), so this is a real-traffic
// interleaving, not a curiosity. With validation the straggler notices the
// parity moved, retires, and re-registers under the current parity.
//
// Memory-order argument (model-checked, incl. a two-exchange straggler
// scenario; mutations rcu_skip_grace, rcu_sync_in_load, rcu_skip_validate
// in tests/model_check): the reader's enter bump,
// validation load, pointer load, and the writer's publish + epoch bump +
// counter reads are all seq_cst because correctness is a Dekker-style
// total-order claim, not a simple release/acquire pairing. Let E be the
// epoch value the reader's validation load returns (parity(E) == its
// registered generation g). That load follows the in[g] bump in program
// order, so in the seq_cst total order the bump precedes every writer
// epoch-bump the validation load did NOT observe. Hence writer W_{E+1}
// (the one that retires generation g next) bumps the epoch AFTER the
// reader's registration, and its wait-loop reads observe in[g] > out[g]
// until the reader exits. The pointer the reader then loads is either the
// one W_{E+1} retires (covered by that wait) or W_{E+1}'s own newly
// published one — whose retirer W_{E+2} is serialized behind W_{E+1}'s
// grace wait and so cannot even begin until the reader exits. (The load
// cannot return anything OLDER: the validation load reads-from the epoch
// RMW chain — each fetch_add is also a release store — so the reader
// happens-after exchange E's pointer store, and coherence forbids a later
// load of the same location returning an earlier value. That makes the
// pointer load's declared order no longer load-bearing post-validation;
// it stays seq_cst for uniformity, and its weakening joins rcu_read_enter
// as analyzed-benign rather than seeded in the mutation suite.) Weaken
// the genuinely load-bearing legs and the chain breaks: a relaxed
// wait-loop read can serve a stale pre-bump counter (early reclaim under
// a live reader); skipping validation reintroduces the straggler reclaim
// above. Acquire/release alone cannot express the claim — neither side
// writes the location the other decides on, so there is no pairing edge
// to lean on; this is the store-buffering shape, and it needs seq_cst.
// The exit bump is release-only: it must order the reader's snapshot
// accesses before the writer's acquire-side observation of the count,
// nothing more; the retry-path retire bump matches it (no snapshot was
// accessed under the abandoned registration, and sequencing after the
// seq_cst enter bump means a writer observing the retire also observes
// the registration).
//
// On x86 the reader cost is two `lock xadd` + three plain loads (epoch,
// validation re-read, pointer) — the same order of cost as the uncontended
// shared-mutex acquire it replaces, but with no writer-blocking, no
// cache-line writeback on the pointer, and no possibility of a reader
// convoy behind a writer.
//
// Writers are serialized by an internal mutex (publication is control-plane:
// placements, replication changes). A thread inside a read section MUST NOT
// publish (the grace wait would wait on its own guard) — keep read guards
// scoped tightly around the lookup.
#ifndef PRETZEL_COMMON_RCU_H_
#define PRETZEL_COMMON_RCU_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "src/common/lockfree.h"  // PRETZEL_ATOMIC / PRETZEL_MO seam.

namespace pretzel {

template <typename T, size_t kSlots = 8>
class RcuCell {
  static_assert((kSlots & (kSlots - 1)) == 0, "kSlots must be a power of two");

  struct Slot;  // Declared up front so ReadGuard can hold a typed pointer.

 public:
  // Takes ownership of `initial` (reclaimed by the destructor, or returned
  // from Exchange when replaced).
  explicit RcuCell(const T* initial) {
    ptr_.store(initial, PRETZEL_MO(rcu_init_store, seq_cst));
  }

  ~RcuCell() {
    delete ptr_.load(PRETZEL_MO(rcu_dtor_load, relaxed));
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : ptr_(other.ptr_), slot_(other.slot_), gen_(other.gen_) {
      other.slot_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    ~ReadGuard() PRETZEL_LF_DTOR_NOEXCEPT {
      if (slot_ != nullptr) {
        // release: the reader's snapshot accesses must be ordered before the
        // writer's (acquire) observation of this exit count — after that
        // observation the snapshot may be reclaimed.
        slot_->out[gen_].fetch_add(1, PRETZEL_MO(rcu_read_exit, release));
      }
    }

    const T* get() const { return ptr_; }
    const T* operator->() const { return ptr_; }
    const T& operator*() const { return *ptr_; }

   private:
    friend class RcuCell;
    ReadGuard(const T* ptr, Slot* slot, size_t gen)
        : ptr_(ptr), slot_(slot), gen_(gen) {}

    const T* ptr_;
    Slot* slot_;
    size_t gen_;
  };

  // Enters a read section and returns a guard pinning the current snapshot.
  // Lock-free: one epoch load, one counter RMW, one validating epoch
  // re-read, one pointer load (the retry loop only spins if a writer bumps
  // the epoch inside that four-instruction window — writers are serialized
  // control-plane operations with grace waits between them, so in practice
  // it runs once).
  ReadGuard Read() const {
    Slot& slot = slots_[SlotIndex()];
    for (;;) {
      // seq_cst on every leg: see the header Dekker argument.
      const size_t gen =
          static_cast<size_t>(
              epoch_.load(PRETZEL_MO(rcu_read_epoch_load, seq_cst))) &
          1;
      slot.in[gen].fetch_add(1, PRETZEL_MO(rcu_read_enter, seq_cst));
      // Validate AFTER the registration: if the parity still matches, any
      // writer retiring generation `gen` after this point must observe the
      // registration and wait for our exit. Without this re-read a
      // straggler could register under a parity a writer already quiesced
      // while holding the new pointer — which the NEXT exchange reclaims
      // without waiting on us (mutation rcu_skip_validate restores that
      // bug; the two-exchange model-check scenario catches it).
      if (PRETZEL_LF_MUTATION(rcu_skip_validate) ||
          (static_cast<size_t>(
               epoch_.load(PRETZEL_MO(rcu_read_validate, seq_cst))) &
           1) == gen) {
        const T* ptr = ptr_.load(PRETZEL_MO(rcu_read_ptr_load, seq_cst));
        return ReadGuard(ptr, &slot, gen);
      }
      // Parity moved inside the window: this registration may be invisible
      // to the writer that retired `gen`. Retire it (no snapshot was
      // touched under it) and re-register under the current parity.
      slot.out[gen].fetch_add(1, PRETZEL_MO(rcu_read_retire, release));
    }
  }

  // Publishes `next` (ownership transferred in), waits until no reader can
  // still hold the previous snapshot, and returns it — the caller reclaims.
  // Blocking, control-plane only; serialized internally.
  const T* Exchange(const T* next) {
    PRETZEL_LF_LOCK_GUARD writer_lock(writer_mu_);
    const T* old = ptr_.exchange(next, PRETZEL_MO(rcu_publish_xchg, seq_cst));
    const uint64_t epoch =
        epoch_.fetch_add(1, PRETZEL_MO(rcu_epoch_bump, seq_cst));
    const size_t retired_gen = static_cast<size_t>(epoch) & 1;
    // Mutation rcu_skip_grace: reclaiming without the grace wait hands the
    // caller a snapshot a live reader still dereferences.
    if (!PRETZEL_LF_MUTATION(rcu_skip_grace)) {
      for (size_t s = 0; s < kSlots; ++s) {
        // The retired generation quiesces: post-bump readers validate into
        // the new parity (a straggler that registered here against a stale
        // epoch read retires itself and retries), and every reader that
        // VALIDATED in this generation registered before our wait-loop
        // reads (seq_cst order), so we observe in > out until it exits.
        // Re-reading `in` each iteration covers registrations that land
        // while we spin.
        for (;;) {
          const uint64_t in = slots_[s].in[retired_gen].load(
              PRETZEL_MO(rcu_sync_in_load, seq_cst));
          const uint64_t out = slots_[s].out[retired_gen].load(
              PRETZEL_MO(rcu_sync_out_load, seq_cst));
          if (in == out) {
            break;
          }
          std::this_thread::yield();
        }
      }
    }
    return old;
  }

 private:
  struct Slot {
    alignas(64) PRETZEL_ATOMIC(uint64_t) in[2]{};
    PRETZEL_ATOMIC(uint64_t) out[2]{};
  };

  static size_t SlotIndex() {
    // Hashed thread identity, cached: readers on different threads spread
    // over the slots so the enter/exit RMWs don't all ping one line.
    thread_local const size_t slot =
        std::hash<std::thread::id>()(std::this_thread::get_id()) &
        (kSlots - 1);
    return slot;
  }

  PRETZEL_ATOMIC(const T*) ptr_{nullptr};
  PRETZEL_ATOMIC(uint64_t) epoch_{0};
  mutable Slot slots_[kSlots]{};
  PRETZEL_LF_MUTEX writer_mu_;
};

}  // namespace pretzel

#endif  // PRETZEL_COMMON_RCU_H_
