// Monotonic nanosecond clock used by every measurement path.
#ifndef PRETZEL_COMMON_CLOCK_H_
#define PRETZEL_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace pretzel {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sleep helper for the emulated network/RPC hops. sleep_for overshoots by the
// scheduler quantum on loaded hosts, which both emulated systems pay equally.
inline void SleepUs(int64_t us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace pretzel

#endif  // PRETZEL_COMMON_CLOCK_H_
