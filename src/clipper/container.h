// Clipper-style container emulation: one black-box model per container,
// reached over an in-cluster RPC hop, handled by the container's single
// request thread. The per-container memory overhead and the serialized
// request handling are the two structural costs the paper's ML.Net+Clipper
// baseline pays (Figures 8, 11, 14).
#ifndef PRETZEL_CLIPPER_CONTAINER_H_
#define PRETZEL_CLIPPER_CONTAINER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/blackbox/blackbox_model.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace pretzel {

struct ContainerOptions {
  // One-way in-cluster RPC latency between the serving tier and the
  // container (the paper's second network boundary).
  int64_t rpc_delay_us = 100;
  // Per-container image/runtime overhead (Docker + serving shim).
  size_t container_overhead_bytes = 0;
  BlackBoxOptions blackbox;
};

// A deployed model container. Requests serialize through the container's
// single handler thread: the RPC read, the prediction, and the RPC write
// are all handled by that one thread, which is what saturates under a
// skewed load.
class Container {
 public:
  static Result<std::unique_ptr<Container>> Deploy(std::string name,
                                                   const std::string& image,
                                                   const ContainerOptions& options);

  Result<float> Predict(const std::string& input);

  size_t MemoryBytes() const {
    return model_->MemoryBytes() + options_.container_overhead_bytes;
  }
  const std::string& name() const { return name_; }

 private:
  Container(std::string name, std::unique_ptr<BlackBoxModel> model,
            const ContainerOptions& options)
      : name_(std::move(name)), model_(std::move(model)), options_(options) {}

  const std::string name_;
  std::unique_ptr<BlackBoxModel> model_;
  const ContainerOptions options_;
  Mutex handler_mu_;  // The container's single request handler.
};

// The container fleet: one container per deployed model.
class ClipperCluster {
 public:
  explicit ClipperCluster(const ContainerOptions& options) : options_(options) {}

  Status Deploy(const std::string& name, const std::string& image);
  Result<float> Predict(const std::string& name, const std::string& input);

  size_t NumContainers() const;
  size_t TotalMemoryBytes() const;

 private:
  const ContainerOptions options_;
  mutable Mutex mu_;  // Guards the route table, not request handling.
  std::unordered_map<std::string, std::unique_ptr<Container>> containers_
      GUARDED_BY(mu_);
};

}  // namespace pretzel

#endif  // PRETZEL_CLIPPER_CONTAINER_H_
