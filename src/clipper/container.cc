#include "src/clipper/container.h"

#include "src/common/clock.h"

namespace pretzel {

Result<std::unique_ptr<Container>> Container::Deploy(
    std::string name, const std::string& image, const ContainerOptions& options) {
  auto model = BlackBoxModel::Load(image, options.blackbox);
  if (!model.ok()) {
    return model.status();
  }
  return std::unique_ptr<Container>(
      new Container(std::move(name), std::move(*model), options));
}

Result<float> Container::Predict(const std::string& input) {
  // The container's single handler thread reads the RPC, predicts, and
  // writes the reply — all serialized.
  MutexLock lock(handler_mu_);
  SleepUs(options_.rpc_delay_us);
  Result<float> result = model_->Predict(input);
  SleepUs(options_.rpc_delay_us);
  return result;
}

Status ClipperCluster::Deploy(const std::string& name, const std::string& image) {
  auto container = Container::Deploy(name, image, options_);
  if (!container.ok()) {
    return container.status();
  }
  MutexLock lock(mu_);
  auto [it, inserted] = containers_.try_emplace(name, std::move(*container));
  if (!inserted) {
    return Status::InvalidArgument("container already deployed: " + name);
  }
  return Status::OK();
}

Result<float> ClipperCluster::Predict(const std::string& name,
                                      const std::string& input) {
  Container* container = nullptr;
  {
    MutexLock lock(mu_);
    auto it = containers_.find(name);
    if (it == containers_.end()) {
      return Status::NotFound(name);
    }
    container = it->second.get();
  }
  return container->Predict(input);
}

size_t ClipperCluster::NumContainers() const {
  MutexLock lock(mu_);
  return containers_.size();
}

size_t ClipperCluster::TotalMemoryBytes() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, container] : containers_) {
    total += container->MemoryBytes();
  }
  return total;
}

}  // namespace pretzel
