#include "src/workload/load_gen.h"

#include <cmath>

#include "src/common/rng.h"

namespace pretzel {

std::vector<LoadEvent> GenerateLoadSchedule(size_t num_models, double rps,
                                            double duration_s, double zipf_alpha,
                                            uint64_t seed) {
  std::vector<LoadEvent> schedule;
  if (num_models == 0 || rps <= 0.0 || duration_s <= 0.0) {
    return schedule;
  }
  Rng rng(seed);

  // Zipf CDF over model ranks.
  std::vector<double> cdf(num_models);
  double total = 0.0;
  for (size_t i = 0; i < num_models; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha);
    cdf[i] = total;
  }
  for (double& c : cdf) {
    c /= total;
  }

  schedule.reserve(static_cast<size_t>(rps * duration_s * 1.1) + 8);
  double t = 0.0;
  while (true) {
    double u = rng.Uniform01();
    if (u < 1e-12) {
      u = 1e-12;
    }
    t += -std::log(u) / rps;  // Exponential inter-arrival.
    if (t >= duration_s) {
      break;
    }
    const double z = rng.Uniform01();
    size_t lo = 0, hi = num_models - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < z) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    schedule.push_back(LoadEvent{t, lo});
  }
  return schedule;
}

}  // namespace pretzel
