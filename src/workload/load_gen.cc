#include "src/workload/load_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace pretzel {

namespace {

// Zipf CDF over model ranks.
std::vector<double> ZipfCdf(size_t num_models, double zipf_alpha) {
  std::vector<double> cdf(num_models);
  double total = 0.0;
  for (size_t i = 0; i < num_models; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha);
    cdf[i] = total;
  }
  for (double& c : cdf) {
    c /= total;
  }
  return cdf;
}

size_t SampleCdf(const std::vector<double>& cdf, double z) {
  size_t lo = 0, hi = cdf.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf[mid] < z) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::vector<LoadEvent> GenerateLoadSchedule(size_t num_models, double rps,
                                            double duration_s, double zipf_alpha,
                                            uint64_t seed) {
  std::vector<LoadEvent> schedule;
  if (num_models == 0 || rps <= 0.0 || duration_s <= 0.0) {
    return schedule;
  }
  Rng rng(seed);
  const std::vector<double> cdf = ZipfCdf(num_models, zipf_alpha);

  schedule.reserve(static_cast<size_t>(rps * duration_s * 1.1) + 8);
  double t = 0.0;
  while (true) {
    double u = rng.Uniform01();
    if (u < 1e-12) {
      u = 1e-12;
    }
    t += -std::log(u) / rps;  // Exponential inter-arrival.
    if (t >= duration_s) {
      break;
    }
    schedule.push_back(LoadEvent{t, SampleCdf(cdf, rng.Uniform01())});
  }
  return schedule;
}

std::vector<LoadEvent> GenerateFlashCrowdSchedule(
    const FlashCrowdOptions& options) {
  std::vector<LoadEvent> schedule;
  if (options.num_models == 0 || options.base_rps <= 0.0 ||
      options.duration_s <= 0.0) {
    return schedule;
  }
  Rng rng(options.seed);
  const std::vector<double> cdf = ZipfCdf(options.num_models, options.zipf_alpha);
  const double burst_end = options.burst_start_s + options.burst_duration_s;
  schedule.reserve(static_cast<size_t>(options.base_rps * options.duration_s *
                                       std::max(1.0, options.burst_x)) +
                   8);
  double t = 0.0;
  while (true) {
    const bool in_burst = t >= options.burst_start_s && t < burst_end;
    const double rate =
        options.base_rps * (in_burst ? std::max(1.0, options.burst_x) : 1.0);
    double u = rng.Uniform01();
    if (u < 1e-12) {
      u = 1e-12;
    }
    // Piecewise-homogeneous Poisson: the rate is constant between window
    // edges, and the exponential's memorylessness makes restarting the
    // inter-arrival draw at each step harmless.
    t += -std::log(u) / rate;
    if (t >= options.duration_s) {
      break;
    }
    const bool landed_in_burst = t >= options.burst_start_s && t < burst_end;
    size_t model;
    if (landed_in_burst && rng.Uniform01() < options.crowd_fraction) {
      model = options.crowd_model % options.num_models;
    } else {
      model = SampleCdf(cdf, rng.Uniform01());
    }
    schedule.push_back(LoadEvent{t, model});
  }
  return schedule;
}

std::vector<size_t> ZipfModelSequence(size_t num_models, size_t count,
                                      double zipf_alpha, uint64_t seed) {
  std::vector<size_t> sequence;
  if (num_models == 0) {
    return sequence;
  }
  Rng rng(seed);
  const std::vector<double> cdf = ZipfCdf(num_models, zipf_alpha);
  sequence.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    sequence.push_back(SampleCdf(cdf, rng.Uniform01()));
  }
  return sequence;
}

std::vector<double> ZipfExpectedShares(size_t num_models, double zipf_alpha) {
  std::vector<double> shares(num_models);
  double total = 0.0;
  for (size_t i = 0; i < num_models; ++i) {
    shares[i] = 1.0 / std::pow(static_cast<double>(i + 1), zipf_alpha);
    total += shares[i];
  }
  for (double& s : shares) {
    s /= total;
  }
  return shares;
}

}  // namespace pretzel
