// Open-loop load schedules: Poisson arrivals at a target rate with model
// popularity drawn from a Zipf distribution (the paper's heavy-load setup:
// Zipf(2) over the pipeline suite).
#ifndef PRETZEL_WORKLOAD_LOAD_GEN_H_
#define PRETZEL_WORKLOAD_LOAD_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pretzel {

struct LoadEvent {
  double arrival_seconds = 0.0;  // Offset from schedule start.
  size_t model_index = 0;
};

// Events sorted by arrival time covering [0, duration_s).
std::vector<LoadEvent> GenerateLoadSchedule(size_t num_models, double rps,
                                            double duration_s, double zipf_alpha,
                                            uint64_t seed);

// Just the Zipf-popularity model sequence, no arrival times: for
// closed-loop drivers that pace themselves (bench_shard's windowed drive of
// the sharded serving stack).
std::vector<size_t> ZipfModelSequence(size_t num_models, size_t count,
                                      double zipf_alpha, uint64_t seed);

}  // namespace pretzel

#endif  // PRETZEL_WORKLOAD_LOAD_GEN_H_
