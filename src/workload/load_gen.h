// Open-loop load schedules: Poisson arrivals at a target rate with model
// popularity drawn from a Zipf distribution (the paper's heavy-load setup:
// Zipf(2) over the pipeline suite).
#ifndef PRETZEL_WORKLOAD_LOAD_GEN_H_
#define PRETZEL_WORKLOAD_LOAD_GEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialize.h"

namespace pretzel {

struct LoadEvent {
  double arrival_seconds = 0.0;  // Offset from schedule start.
  size_t model_index = 0;
};

// Events sorted by arrival time covering [0, duration_s).
std::vector<LoadEvent> GenerateLoadSchedule(size_t num_models, double rps,
                                            double duration_s, double zipf_alpha,
                                            uint64_t seed);

// Flash crowd: steady Poisson base load, except that inside
// [burst_start_s, burst_start_s + burst_duration_s) arrivals multiply by
// burst_x and `crowd_fraction` of them pile onto one model — the overload
// shape the resilience bench drives (SLO-aware shedding vs. queue collapse).
// Outside the window (and for the non-crowd share inside it) popularity is
// the usual Zipf draw.
struct FlashCrowdOptions {
  size_t num_models = 1;
  double base_rps = 1000.0;
  double duration_s = 1.0;
  double burst_start_s = 0.33;
  double burst_duration_s = 0.33;
  double burst_x = 4.0;          // Arrival-rate multiplier in the window.
  double crowd_fraction = 0.7;   // Burst arrivals aimed at crowd_model.
  size_t crowd_model = 0;
  double zipf_alpha = 2.0;
  uint64_t seed = 1;
};
std::vector<LoadEvent> GenerateFlashCrowdSchedule(const FlashCrowdOptions& options);

// Just the Zipf-popularity model sequence, no arrival times: for
// closed-loop drivers that pace themselves (bench_shard's windowed drive of
// the sharded serving stack).
std::vector<size_t> ZipfModelSequence(size_t num_models, size_t count,
                                      double zipf_alpha, uint64_t seed);

// The hot set the samplers above draw from, exact rather than sampled:
// expected traffic share per model rank (share[i] = (1/(i+1)^alpha) / H).
// Benches and tests assert a hotness detector found the TRUE head of the
// distribution against this, instead of eyeballing routed counters.
// alpha = 0 degenerates to uniform (every share == 1/num_models).
std::vector<double> ZipfExpectedShares(size_t num_models, double zipf_alpha);

// Pre-sampled input pool for one model in either wire format. Works with
// any workload exposing SampleInput(Rng&, WireFormat, size_t) — AC and SA
// both do — so drivers toggle text vs. binary ingestion with one flag
// instead of format-specific sampling loops.
template <typename Workload>
std::vector<std::string> GenerateInputPool(const Workload& workload,
                                           size_t model_index, size_t count,
                                           WireFormat format, uint64_t seed) {
  Rng rng(seed ^ (0x1290ull + model_index));
  std::vector<std::string> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pool.push_back(workload.SampleInput(rng, format, model_index));
  }
  return pool;
}

}  // namespace pretzel

#endif  // PRETZEL_WORKLOAD_LOAD_GEN_H_
