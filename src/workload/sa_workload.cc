#include "src/workload/sa_workload.h"

#include <algorithm>
#include <memory>

namespace pretzel {
namespace {

// The dictionaries must key the exact hashes the scan kernels compute, so
// versions are built by scanning a synthetic corpus the same way the
// tokenizer + scan pipeline would.
std::string BuildCorpus(const std::vector<std::string>& vocabulary,
                        size_t start_word) {
  std::string corpus;
  corpus.reserve(vocabulary.size() * 8);
  for (size_t i = 0; i < vocabulary.size(); ++i) {
    const std::string& word = vocabulary[(start_word + i) % vocabulary.size()];
    if (!corpus.empty()) {
      corpus.push_back(' ');
    }
    corpus.append(word);
  }
  return corpus;
}

std::shared_ptr<CharNgramParams> BuildCharDict(
    const std::vector<std::string>& vocabulary, size_t entries, size_t version) {
  auto params = std::make_shared<CharNgramParams>();
  const std::string corpus = BuildCorpus(vocabulary, version * 997);
  params->dict.Reserve(entries);
  uint32_t next_id = 0;
  for (size_t begin = 0; begin < corpus.size() && next_id < entries; ++begin) {
    for (uint32_t n = params->scan.min_n;
         n <= params->scan.max_n && begin + n <= corpus.size() && next_id < entries;
         ++n) {
      if (params->dict.Insert(CharNgramKey(corpus, begin, n), next_id)) {
        ++next_id;
      }
    }
  }
  params->Finalize();
  return params;
}

std::shared_ptr<WordNgramParams> BuildWordDict(
    const std::vector<std::string>& vocabulary, size_t entries, size_t version) {
  auto params = std::make_shared<WordNgramParams>();
  const std::string corpus = BuildCorpus(vocabulary, version * 1499);
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  TokenizeText(corpus, &text, &spans);
  params->dict.Reserve(entries);
  uint32_t next_id = 0;
  uint64_t prev_key = 0;
  for (size_t t = 0; t < spans.size() && next_id < entries; ++t) {
    const uint64_t key = WordKey(text, spans[t].first, spans[t].second);
    // Unigrams for three quarters of the budget, bigrams for the rest, so
    // both orders appear in every version.
    if (next_id < entries * 3 / 4) {
      if (params->dict.Insert(key, next_id)) {
        ++next_id;
      }
    } else if (t > 0) {
      if (params->dict.Insert(WordBigramKey(prev_key, key), next_id)) {
        ++next_id;
      }
    }
    prev_key = key;
  }
  params->Finalize();
  return params;
}

}  // namespace

SaWorkload SaWorkload::Generate(const SaWorkloadOptions& options) {
  SaWorkload workload;
  Rng rng(options.seed);

  workload.vocabulary_.reserve(options.vocabulary_size);
  for (size_t i = 0; i < options.vocabulary_size; ++i) {
    const size_t len = 3 + rng.UniformInt(7);
    std::string word;
    word.reserve(len);
    for (size_t c = 0; c < len; ++c) {
      word.push_back(static_cast<char>('a' + rng.UniformInt(26)));
    }
    workload.vocabulary_.push_back(std::move(word));
  }

  const size_t char_versions =
      std::max<size_t>(1, std::min(options.char_versions, options.num_pipelines));
  const size_t word_versions =
      std::max<size_t>(1, std::min(options.word_versions, options.num_pipelines));

  auto tokenizer = std::make_shared<TokenizerParams>();
  auto concat = std::make_shared<ConcatParams>();
  std::vector<std::shared_ptr<CharNgramParams>> char_dicts;
  for (size_t v = 0; v < char_versions; ++v) {
    char_dicts.push_back(
        BuildCharDict(workload.vocabulary_, options.char_dict_entries, v));
  }
  std::vector<std::shared_ptr<WordNgramParams>> word_dicts;
  for (size_t v = 0; v < word_versions; ++v) {
    word_dicts.push_back(
        BuildWordDict(workload.vocabulary_, options.word_dict_entries, v));
  }

  workload.pipelines_.reserve(options.num_pipelines);
  for (size_t i = 0; i < options.num_pipelines; ++i) {
    const auto& char_dict = char_dicts[i % char_versions];
    const auto& word_dict = word_dicts[i % word_versions];
    auto linear = std::make_shared<LinearBinaryParams>();
    // One weight per concatenated feature; unique per pipeline (the paper:
    // model weights are never shared).
    const size_t dim = char_dict->dict.size() + word_dict->dict.size();
    linear->weights.resize(dim);
    Rng wrng(options.seed ^ (0xBEEF0000ull + i));
    for (float& w : linear->weights) {
      w = static_cast<float>(wrng.Normal()) * 0.05f;
    }
    linear->bias = static_cast<float>(wrng.Normal()) * 0.1f;
    linear->Finalize();

    PipelineSpec spec;
    spec.name = "sa_" + std::to_string(i);
    spec.nodes = {{tokenizer}, {char_dict}, {word_dict}, {concat}, {linear}};
    workload.pipelines_.push_back(std::move(spec));
  }
  return workload;
}

std::string SaWorkload::SampleInput(Rng& rng) const {
  const size_t num_words = 8 + rng.UniformInt(23);
  std::string input;
  input.reserve(num_words * 8);
  for (size_t i = 0; i < num_words; ++i) {
    if (!input.empty()) {
      input.push_back(' ');
    }
    input.append(vocabulary_[rng.UniformInt(vocabulary_.size())]);
  }
  return input;
}

std::string SaWorkload::SampleInput(Rng& rng, WireFormat format,
                                    size_t model_index) const {
  std::string text = SampleInput(rng);
  if (format == WireFormat::kText) {
    return text;
  }
  return BinaryFromText(text, model_index);
}

std::string SaWorkload::BinaryFromText(std::string_view text,
                                       size_t pipeline_index) const {
  const PipelineSpec& spec = pipelines_[pipeline_index % pipelines_.size()];
  // Pipeline layout is fixed at generation time:
  // {tokenizer, char_dict, word_dict, concat, linear}.
  const auto* char_params =
      static_cast<const CharNgramParams*>(spec.nodes[1].params.get());
  const auto* word_params =
      static_cast<const WordNgramParams*>(spec.nodes[2].params.get());
  const uint32_t char_dim = static_cast<uint32_t>(char_params->dict.size());
  const uint32_t word_dim = static_cast<uint32_t>(word_params->dict.size());

  std::string tokenized;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  TokenizeText(text, &tokenized, &spans);

  // Raw hits, char branch first with word ids rebased into the concat
  // space, then coalesced into sorted (id, count) pairs — exactly the
  // count vector the unpushed operator path materializes.
  std::vector<uint32_t> hits;
  ScanCharNgrams(tokenized, char_params->dict, char_params->scan,
                 [&](uint32_t id) { hits.push_back(id); });
  ScanWordNgrams(tokenized, spans, word_params->dict, word_params->scan,
                 [&](uint32_t id) { hits.push_back(id + char_dim); });
  std::sort(hits.begin(), hits.end());
  std::vector<uint32_t> ids;
  std::vector<float> counts;
  for (size_t i = 0; i < hits.size();) {
    size_t j = i;
    while (j < hits.size() && hits[j] == hits[i]) {
      ++j;
    }
    ids.push_back(hits[i]);
    counts.push_back(static_cast<float>(j - i));
    i = j;
  }
  return EncodeSparseRecord(ids.data(), counts.data(), ids.size(),
                            char_dim + word_dim);
}

}  // namespace pretzel
