// Attendee-Count pipeline suite (the paper's 250 AC pipelines): structured
// 40-dimension input, Pca | KMeans | TreeFeaturizer -> Concat -> Forest.
// Featurizers are shared across a few versions; the final tree ensemble is
// unique per pipeline.
#ifndef PRETZEL_WORKLOAD_AC_WORKLOAD_H_
#define PRETZEL_WORKLOAD_AC_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialize.h"
#include "src/ops/params.h"

namespace pretzel {

struct AcWorkloadOptions {
  size_t num_pipelines = 250;
  size_t featurizer_trees = 48;
  size_t featurizer_depth = 7;
  size_t final_trees = 24;
  size_t final_depth = 5;
  size_t input_dim = 40;
  size_t pca_dim = 16;
  size_t kmeans_k = 8;
  size_t pca_versions = 3;
  size_t kmeans_versions = 3;
  size_t featurizer_versions = 5;
  uint64_t seed = 0xAC2024;
};

class AcWorkload {
 public:
  static AcWorkload Generate(const AcWorkloadOptions& options);

  const std::vector<PipelineSpec>& pipelines() const { return pipelines_; }

  // A structured input: input_dim comma-separated floats.
  std::string SampleInput(Rng& rng) const;

  // Wire-format-aware sampling: kText emits the comma-separated record
  // above, kBinary a dense BinaryRecord (zero-parse path). `model_index` is
  // accepted for driver uniformity with SaWorkload; every AC pipeline
  // shares one input schema, so it is unused.
  std::string SampleInput(Rng& rng, WireFormat format,
                          size_t model_index = 0) const;

  // Re-encodes a text record as a dense BinaryRecord — the parity harness:
  // both encodings of one sample must score identically.
  static std::string BinaryFromText(std::string_view text);

 private:
  size_t input_dim_ = 40;
  std::vector<PipelineSpec> pipelines_;
};

}  // namespace pretzel

#endif  // PRETZEL_WORKLOAD_AC_WORKLOAD_H_
