#include "src/workload/ac_workload.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/ops/kernels.h"

namespace pretzel {

AcWorkload AcWorkload::Generate(const AcWorkloadOptions& options) {
  AcWorkload workload;
  workload.input_dim_ = options.input_dim;

  const auto versions = [&](size_t v) {
    return std::max<size_t>(1, std::min(v, options.num_pipelines));
  };
  const size_t pca_versions = versions(options.pca_versions);
  const size_t kmeans_versions = versions(options.kmeans_versions);
  const size_t featurizer_versions = versions(options.featurizer_versions);

  std::vector<std::shared_ptr<PcaParams>> pcas;
  for (size_t v = 0; v < pca_versions; ++v) {
    auto pca = std::make_shared<PcaParams>();
    pca->in_dim = static_cast<uint32_t>(options.input_dim);
    pca->out_dim = static_cast<uint32_t>(options.pca_dim);
    pca->matrix.resize(options.pca_dim * options.input_dim);
    Rng rng(options.seed ^ (0xACA10000ull + v));
    for (float& m : pca->matrix) {
      m = static_cast<float>(rng.Normal()) * 0.2f;
    }
    pca->Finalize();
    pcas.push_back(std::move(pca));
  }
  std::vector<std::shared_ptr<KMeansParams>> kmeanses;
  for (size_t v = 0; v < kmeans_versions; ++v) {
    auto km = std::make_shared<KMeansParams>();
    km->dim = static_cast<uint32_t>(options.input_dim);
    km->k = static_cast<uint32_t>(options.kmeans_k);
    km->centroids.resize(options.kmeans_k * options.input_dim);
    Rng rng(options.seed ^ (0xACA20000ull + v));
    for (float& c : km->centroids) {
      c = static_cast<float>(rng.Normal());
    }
    km->Finalize();
    kmeanses.push_back(std::move(km));
  }
  std::vector<std::shared_ptr<TreeFeaturizerParams>> featurizers;
  for (size_t v = 0; v < featurizer_versions; ++v) {
    auto tf = std::make_shared<TreeFeaturizerParams>();
    Rng rng(options.seed ^ (0xACA30000ull + v));
    tf->forest = BuildRandomForest(options.featurizer_trees, options.input_dim,
                                   options.featurizer_depth, rng);
    tf->Finalize();
    featurizers.push_back(std::move(tf));
  }
  auto concat = std::make_shared<ConcatParams>();

  const size_t feature_dim =
      options.pca_dim + options.kmeans_k + options.featurizer_trees;
  workload.pipelines_.reserve(options.num_pipelines);
  for (size_t i = 0; i < options.num_pipelines; ++i) {
    auto final_forest = std::make_shared<ForestParams>();
    Rng rng(options.seed ^ (0xACF00000ull + i));
    final_forest->forest = BuildRandomForest(options.final_trees, feature_dim,
                                             options.final_depth, rng);
    final_forest->Finalize();

    PipelineSpec spec;
    spec.name = "ac_" + std::to_string(i);
    spec.nodes = {{pcas[i % pca_versions]},
                  {kmeanses[i % kmeans_versions]},
                  {featurizers[i % featurizer_versions]},
                  {concat},
                  {std::move(final_forest)}};
    workload.pipelines_.push_back(std::move(spec));
  }
  return workload;
}

std::string AcWorkload::SampleInput(Rng& rng) const {
  std::string input;
  input.reserve(input_dim_ * 8);
  char buf[32];
  for (size_t i = 0; i < input_dim_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.3f", rng.Normal());
    if (!input.empty()) {
      input.push_back(',');
    }
    input.append(buf);
  }
  return input;
}

std::string AcWorkload::SampleInput(Rng& rng, WireFormat format,
                                    size_t /*model_index*/) const {
  if (format == WireFormat::kText) {
    return SampleInput(rng);
  }
  std::vector<float> values(input_dim_);
  for (float& v : values) {
    v = static_cast<float>(rng.Normal());
  }
  return EncodeDenseRecord(values.data(), values.size());
}

std::string AcWorkload::BinaryFromText(std::string_view text) {
  std::vector<float> values;
  ParseDenseInput(text, &values);
  return EncodeDenseRecord(values.data(), values.size());
}

}  // namespace pretzel
