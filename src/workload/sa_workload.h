// Sentiment-Analysis pipeline suite (the paper's 250 SA pipelines): text
// input, Tokenizer -> CharNgram -> WordNgram -> Concat -> LinearBinary.
// Sharing structure mirrors Figure 3: one tokenizer version everywhere, a
// handful of char/word dictionary versions (A/B-tested variants of one
// service), and per-pipeline linear weights that are never shared.
#ifndef PRETZEL_WORKLOAD_SA_WORKLOAD_H_
#define PRETZEL_WORKLOAD_SA_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ops/params.h"

namespace pretzel {

struct SaWorkloadOptions {
  size_t num_pipelines = 250;
  size_t char_dict_entries = 8000;  // Paper scale: millions; see EXPERIMENTS.md.
  size_t word_dict_entries = 2000;
  size_t vocabulary_size = 4000;
  size_t char_versions = 7;  // Distinct dictionary versions (paper: 7).
  size_t word_versions = 6;  // (paper: 6).
  uint64_t seed = 0x5A5A2024;
};

class SaWorkload {
 public:
  static SaWorkload Generate(const SaWorkloadOptions& options);

  const std::vector<PipelineSpec>& pipelines() const { return pipelines_; }

  // A plain-text input: a variable-length sentence over the vocabulary.
  std::string SampleInput(Rng& rng) const;

 private:
  std::vector<PipelineSpec> pipelines_;
  std::vector<std::string> vocabulary_;
};

}  // namespace pretzel

#endif  // PRETZEL_WORKLOAD_SA_WORKLOAD_H_
