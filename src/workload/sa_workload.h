// Sentiment-Analysis pipeline suite (the paper's 250 SA pipelines): text
// input, Tokenizer -> CharNgram -> WordNgram -> Concat -> LinearBinary.
// Sharing structure mirrors Figure 3: one tokenizer version everywhere, a
// handful of char/word dictionary versions (A/B-tested variants of one
// service), and per-pipeline linear weights that are never shared.
#ifndef PRETZEL_WORKLOAD_SA_WORKLOAD_H_
#define PRETZEL_WORKLOAD_SA_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialize.h"
#include "src/ops/params.h"

namespace pretzel {

struct SaWorkloadOptions {
  size_t num_pipelines = 250;
  size_t char_dict_entries = 8000;  // Paper scale: millions; see EXPERIMENTS.md.
  size_t word_dict_entries = 2000;
  size_t vocabulary_size = 4000;
  size_t char_versions = 7;  // Distinct dictionary versions (paper: 7).
  size_t word_versions = 6;  // (paper: 6).
  uint64_t seed = 0x5A5A2024;
};

class SaWorkload {
 public:
  static SaWorkload Generate(const SaWorkloadOptions& options);

  const std::vector<PipelineSpec>& pipelines() const { return pipelines_; }

  // A plain-text input: a variable-length sentence over the vocabulary.
  std::string SampleInput(Rng& rng) const;

  // Wire-format-aware sampling: kText emits the sentence above; kBinary
  // pre-featurizes a sampled sentence with pipeline `model_index`'s own
  // dictionaries into a sparse BinaryRecord over that plan's concat space
  // (a binary record is dictionary-specific — SA inputs are only
  // pre-featurizable against the pipeline that will score them).
  std::string SampleInput(Rng& rng, WireFormat format,
                          size_t model_index) const;

  // Featurizes `text` exactly as pipeline `pipeline_index` would (tokenize,
  // char/word n-gram scans against its dictionary versions, hit counts)
  // and encodes the counts as a sparse BinaryRecord: char ids as-is, word
  // ids offset by the char dictionary's size. The parity harness: the
  // record must score identically to the text under every optimizer config.
  std::string BinaryFromText(std::string_view text,
                             size_t pipeline_index) const;

 private:
  std::vector<PipelineSpec> pipelines_;
  std::vector<std::string> vocabulary_;
};

}  // namespace pretzel

#endif  // PRETZEL_WORKLOAD_SA_WORKLOAD_H_
