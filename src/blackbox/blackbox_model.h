// BlackBoxModel: the ML.Net-style baseline. Each model is loaded from a
// serialized image with NO cross-model sharing (every load deserializes
// every dictionary), executes operator-at-a-time with per-operator boxed
// buffers, and carries a per-model runtime overhead. The numeric kernels
// are the same ones PRETZEL plans call, so figure comparisons isolate the
// execution model, not kernel quality.
#ifndef PRETZEL_BLACKBOX_BLACKBOX_MODEL_H_
#define PRETZEL_BLACKBOX_BLACKBOX_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ops/params.h"
#include "src/store/model_loader.h"

namespace pretzel {

struct BlackBoxOptions {
  // Emulated per-model runtime footprint (the managed runtime + model host
  // ML.Net keeps resident per loaded model); see EXPERIMENTS.md.
  size_t per_model_runtime_bytes = 0;
  // Record per-operator wall time (Figure 5's latency breakdown).
  bool record_op_breakdown = false;
};

class BlackBoxModel {
 public:
  // Full deserialization of every operator in the image — the black-box
  // cold-start cost.
  static Result<std::unique_ptr<BlackBoxModel>> Load(const std::string& image,
                                                     const BlackBoxOptions& options);

  // Operator-at-a-time execution with freshly allocated (boxed) buffers per
  // operator, as a runtime without whole-pipeline visibility must run.
  Result<float> Predict(const std::string& input);

  // Explicit byte accounting: private parameters + per-model runtime.
  size_t MemoryBytes() const {
    return spec_.ParameterBytes() + options_.per_model_runtime_bytes;
  }

  const PipelineSpec& spec() const { return spec_; }
  // Cumulative per-node execution time, index-aligned with spec().nodes.
  const std::vector<int64_t>& op_times_ns() const { return op_times_ns_; }

 private:
  BlackBoxModel(PipelineSpec spec, const BlackBoxOptions& options);

  Result<float> PredictText(const std::string& input);
  Result<float> PredictDense(const std::string& input);

  PipelineSpec spec_;
  BlackBoxOptions options_;
  std::vector<int64_t> op_times_ns_;
};

}  // namespace pretzel

#endif  // PRETZEL_BLACKBOX_BLACKBOX_MODEL_H_
