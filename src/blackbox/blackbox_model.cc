#include "src/blackbox/blackbox_model.h"

#include <unordered_map>

#include "src/common/clock.h"
#include "src/ops/kernels.h"

namespace pretzel {

BlackBoxModel::BlackBoxModel(PipelineSpec spec, const BlackBoxOptions& options)
    : spec_(std::move(spec)), options_(options) {
  op_times_ns_.assign(spec_.nodes.size(), 0);
}

Result<std::unique_ptr<BlackBoxModel>> BlackBoxModel::Load(
    const std::string& image, const BlackBoxOptions& options) {
  auto spec = LoadModelImage(image);  // Always a full deserialization.
  if (!spec.ok()) {
    return spec.status();
  }
  return std::unique_ptr<BlackBoxModel>(
      new BlackBoxModel(std::move(*spec), options));
}

Result<float> BlackBoxModel::Predict(const std::string& input) {
  if (spec_.nodes.empty()) {
    return Status::InvalidArgument("empty pipeline");
  }
  return spec_.nodes.front().params->kind() == OpKind::kTokenizer
             ? PredictText(input)
             : PredictDense(input);
}

namespace {

// ML.Net-style sparse feature value: parallel index/count arrays (VBuffer).
struct SparseValue {
  std::vector<uint32_t> ids;
  std::vector<float> values;
};

// ML.Net's NgramExtractingTransformer aggregates per-row ngram COUNTS
// through a dictionary (FindOrAdd) before emitting the sparse vector; the
// per-row hash map is part of the baseline's boxed execution cost.
template <typename Scan>
std::unique_ptr<SparseValue> AggregateCounts(Scan&& scan) {
  auto out = std::make_unique<SparseValue>();
  std::unordered_map<uint32_t, size_t> slot_of_id;
  scan([&](uint32_t id) {
    auto [it, inserted] = slot_of_id.try_emplace(id, out->ids.size());
    if (inserted) {
      out->ids.push_back(id);
      out->values.push_back(1.0f);
    } else {
      out->values[it->second] += 1.0f;
    }
  });
  return out;
}

}  // namespace

// Both families run node-at-a-time: every operator allocates its boxed
// output value, the next operator consumes it — the per-op buffer traffic
// and Concat materialization PRETZEL's fused stages avoid.
Result<float> BlackBoxModel::PredictText(const std::string& input) {
  std::unique_ptr<std::string> text;
  std::unique_ptr<std::vector<std::pair<uint32_t, uint32_t>>> spans;
  // ML.Net's tokenizer materializes each token as its own boxed string.
  std::unique_ptr<std::vector<std::string>> tokens;
  std::unique_ptr<SparseValue> char_features;
  std::unique_ptr<SparseValue> word_features;
  std::unique_ptr<SparseValue> concat_features;
  const CharNgramParams* char_params = nullptr;
  float score = 0.0f;

  for (size_t i = 0; i < spec_.nodes.size(); ++i) {
    const OpParams& params = *spec_.nodes[i].params;
    const int64_t t0 = options_.record_op_breakdown ? NowNs() : 0;
    switch (params.kind()) {
      case OpKind::kTokenizer: {
        text = std::make_unique<std::string>();
        spans = std::make_unique<std::vector<std::pair<uint32_t, uint32_t>>>();
        TokenizeText(input, text.get(), spans.get());
        tokens = std::make_unique<std::vector<std::string>>();
        tokens->reserve(spans->size());
        for (const auto& [begin, end] : *spans) {
          tokens->emplace_back(text->substr(begin, end - begin));
        }
        break;
      }
      case OpKind::kCharNgram: {
        char_params = static_cast<const CharNgramParams*>(&params);
        char_features = AggregateCounts([&](auto&& emit) {
          ScanCharNgrams(*text, char_params->dict, char_params->scan, emit);
        });
        break;
      }
      case OpKind::kWordNgram: {
        const auto& word_params = static_cast<const WordNgramParams&>(params);
        // Consumes the boxed token strings (hashing each token value), with
        // the same hit sequence ScanWordNgrams produces from spans.
        word_features = AggregateCounts([&](auto&& emit) {
          uint64_t prev_key = 0;
          for (size_t t = 0; t < tokens->size(); ++t) {
            const std::string& token = (*tokens)[t];
            const uint64_t key =
                ContentHash64(token.data(), token.size(), /*seed=*/0x77);
            int64_t id = word_params.dict.Find(key);
            if (id >= 0) {
              emit(static_cast<uint32_t>(id));
            }
            if (word_params.scan.word_orders >= 2 && t > 0) {
              id = word_params.dict.Find(WordBigramKey(prev_key, key));
              if (id >= 0) {
                emit(static_cast<uint32_t>(id));
              }
            }
            prev_key = key;
          }
        });
        break;
      }
      case OpKind::kConcat: {
        // Copies both parallel arrays into the combined feature space.
        concat_features = std::make_unique<SparseValue>();
        concat_features->ids = char_features->ids;
        concat_features->values = char_features->values;
        const uint32_t offset = static_cast<uint32_t>(
            char_params != nullptr ? char_params->dict.size() : 0);
        for (size_t w = 0; w < word_features->ids.size(); ++w) {
          concat_features->ids.push_back(word_features->ids[w] + offset);
          concat_features->values.push_back(word_features->values[w]);
        }
        break;
      }
      case OpKind::kLinearBinary: {
        const auto& linear = static_cast<const LinearBinaryParams&>(params);
        double acc = 0.0;
        for (size_t f = 0; f < concat_features->ids.size(); ++f) {
          const uint32_t id = concat_features->ids[f];
          if (id < linear.weights.size()) {
            acc += static_cast<double>(linear.weights[id]) *
                   concat_features->values[f];
          }
        }
        score = Sigmoid(static_cast<float>(acc) + linear.bias);
        break;
      }
      default:
        return Status::InvalidArgument("unexpected op in text pipeline");
    }
    if (options_.record_op_breakdown) {
      op_times_ns_[i] += NowNs() - t0;
    }
  }
  return score;
}

Result<float> BlackBoxModel::PredictDense(const std::string& input) {
  std::unique_ptr<std::vector<float>> dense_in;
  std::unique_ptr<std::vector<float>> pca_out;
  std::unique_ptr<std::vector<float>> kmeans_out;
  std::unique_ptr<std::vector<float>> tree_out;
  std::unique_ptr<std::vector<float>> features;
  float score = 0.0f;

  const auto parse_once = [&]() -> bool {
    if (dense_in == nullptr) {
      dense_in = std::make_unique<std::vector<float>>();
      ParseDenseInput(input, dense_in.get());
    }
    return !dense_in->empty();
  };

  for (size_t i = 0; i < spec_.nodes.size(); ++i) {
    const OpParams& params = *spec_.nodes[i].params;
    const int64_t t0 = options_.record_op_breakdown ? NowNs() : 0;
    switch (params.kind()) {
      case OpKind::kPca: {
        const auto& pca = static_cast<const PcaParams&>(params);
        if (!parse_once() || dense_in->size() < pca.in_dim) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        pca_out = std::make_unique<std::vector<float>>(pca.out_dim);
        MatVec(pca.matrix.data(), pca.out_dim, pca.in_dim, dense_in->data(),
               pca_out->data());
        break;
      }
      case OpKind::kKMeans: {
        const auto& km = static_cast<const KMeansParams&>(params);
        if (!parse_once() || dense_in->size() < km.dim) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        kmeans_out = std::make_unique<std::vector<float>>(km.k);
        KMeansTransform(km.centroids.data(), km.k, km.dim, dense_in->data(),
                        kmeans_out->data());
        break;
      }
      case OpKind::kTreeFeaturizer: {
        const auto& tf = static_cast<const TreeFeaturizerParams&>(params);
        if (!parse_once() || dense_in->size() < tf.forest.num_features) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        tree_out = std::make_unique<std::vector<float>>(tf.forest.roots.size());
        for (size_t t = 0; t < tf.forest.roots.size(); ++t) {
          (*tree_out)[t] = tf.forest.EvalTree(t, dense_in->data());
        }
        break;
      }
      case OpKind::kConcat: {
        features = std::make_unique<std::vector<float>>();
        if (pca_out != nullptr) {
          features->insert(features->end(), pca_out->begin(), pca_out->end());
        }
        if (kmeans_out != nullptr) {
          features->insert(features->end(), kmeans_out->begin(), kmeans_out->end());
        }
        if (tree_out != nullptr) {
          features->insert(features->end(), tree_out->begin(), tree_out->end());
        }
        break;
      }
      case OpKind::kForest: {
        const auto& forest = static_cast<const ForestParams&>(params);
        score = forest.forest.Eval(features->data());
        break;
      }
      default:
        return Status::InvalidArgument("unexpected op in dense pipeline");
    }
    if (options_.record_op_breakdown) {
      op_times_ns_[i] += NowNs() - t0;
    }
  }
  return score;
}

}  // namespace pretzel
