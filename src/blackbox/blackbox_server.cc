#include "src/blackbox/blackbox_server.h"

namespace pretzel {

Status BlackBoxServer::AddModelImage(const std::string& name, std::string image) {
  MutexLock lock(mu_);
  auto [it, inserted] = models_.try_emplace(name);
  if (!inserted) {
    return Status::InvalidArgument("model already registered: " + name);
  }
  it->second.image = std::move(image);
  names_.push_back(name);
  return Status::OK();
}

Result<float> BlackBoxServer::Predict(const std::string& name,
                                      const std::string& input, bool* was_cold) {
  MutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound(name);
  }
  Entry& entry = it->second;
  if (was_cold != nullptr) {
    *was_cold = entry.model == nullptr;
  }
  if (entry.model == nullptr) {
    auto model = BlackBoxModel::Load(entry.image, options_);
    if (!model.ok()) {
      return model.status();
    }
    entry.model = std::move(*model);
  }
  return entry.model->Predict(input);
}

std::vector<std::string> BlackBoxServer::ModelNames() const {
  MutexLock lock(mu_);
  return names_;
}

Result<std::unique_ptr<BlackBoxModel>> BlackBoxServer::CreateReplica(
    const std::string& name) const {
  std::string image;
  {
    MutexLock lock(mu_);
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound(name);
    }
    image = it->second.image;
  }
  return BlackBoxModel::Load(image, options_);
}

size_t BlackBoxServer::LoadedMemoryBytes() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, entry] : models_) {
    if (entry.model != nullptr) {
      total += entry.model->MemoryBytes();
    }
  }
  return total;
}

}  // namespace pretzel
