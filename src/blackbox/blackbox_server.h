// BlackBoxServer: the ML.Net-style serving host. Models are registered as
// images and loaded lazily on first prediction (the cold-start Figure 4
// measures); every loaded model is private, and per-thread scaling requires
// explicit replicas (private parameter copies — the baseline Figure 12
// shows failing to share cache).
#ifndef PRETZEL_BLACKBOX_BLACKBOX_SERVER_H_
#define PRETZEL_BLACKBOX_BLACKBOX_SERVER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/blackbox/blackbox_model.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace pretzel {

class BlackBoxServer {
 public:
  explicit BlackBoxServer(const BlackBoxOptions& options) : options_(options) {}

  Status AddModelImage(const std::string& name, std::string image);

  // Lazily loads on first use; *was_cold reports whether this call paid the
  // load.
  Result<float> Predict(const std::string& name, const std::string& input,
                        bool* was_cold = nullptr);

  std::vector<std::string> ModelNames() const;

  // A fresh private copy of the model (deserialized from the image), for
  // per-thread replication.
  Result<std::unique_ptr<BlackBoxModel>> CreateReplica(const std::string& name) const;

  // Explicit byte accounting over all currently loaded models.
  size_t LoadedMemoryBytes() const;

 private:
  struct Entry {
    std::string image;
    std::unique_ptr<BlackBoxModel> model;  // Null until first prediction.
  };

  const BlackBoxOptions options_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> models_ GUARDED_BY(mu_);
  std::vector<std::string> names_ GUARDED_BY(mu_);  // Registration order.
};

}  // namespace pretzel

#endif  // PRETZEL_BLACKBOX_BLACKBOX_SERVER_H_
