#include "src/runtime/exec_context.h"

#include <algorithm>

#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/oven/subplan_cache.h"

namespace pretzel {

VectorPool::VectorPool(const Options& options) : options_(options) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::vector<float> VectorPool::AcquireFloats(size_t size) {
  if (options_.pooling_enabled) {
    uint32_t slot;
    if (free_.TryPop(&slot)) {
      std::vector<float> v = std::move(slots_[slot]);
      empty_.Push(slot);
      v.resize(size);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::vector<float>(size);
}

void VectorPool::ReleaseFloats(std::vector<float> v) {
  if (!options_.pooling_enabled) {
    return;  // Dropped; the next acquire allocates.
  }
  released_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_cached_floats > 0 &&
      v.capacity() > options_.max_cached_floats) {
    // Capacity cap: don't let one oversized prediction pin its high-water
    // mark in the pool forever.
    dropped_oversized_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    dropped_full_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot] = std::move(v);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

VectorPool::Stats VectorPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.dropped_oversized = dropped_oversized_.load(std::memory_order_relaxed);
  s.dropped_full = dropped_full_.load(std::memory_order_relaxed);
  return s;
}

void ExecContext::ReleaseScratch() {
  std::string().swap(text);
  std::vector<std::pair<uint32_t, uint32_t>>().swap(spans);
  std::vector<uint32_t>().swap(char_ids);
  std::vector<uint32_t>().swap(word_ids);
  std::vector<uint32_t>().swap(concat_ids);
  std::vector<uint32_t>().swap(cache_ids);
  std::vector<float>().swap(char_vals);
  std::vector<float>().swap(word_vals);
  std::vector<float>().swap(concat_vals);
  std::vector<uint32_t>().swap(raw_hits);
  std::vector<float>().swap(dense_in);
  std::vector<float>().swap(pca_out);
  std::vector<float>().swap(kmeans_out);
  std::vector<float>().swap(tree_out);
  std::vector<float>().swap(features);
}

ExecContextPool::ExecContextPool(VectorPool* pool, bool reuse_enabled)
    : pool_(pool), reuse_enabled_(reuse_enabled) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::unique_ptr<ExecContext> ExecContextPool::Acquire() {
  if (reuse_enabled_) {
    uint32_t slot;
    if (free_.TryPop(&slot)) {
      std::unique_ptr<ExecContext> ctx = std::move(slots_[slot]);
      empty_.Push(slot);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return ctx;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_unique<ExecContext>(pool_);
}

void ExecContextPool::Release(std::unique_ptr<ExecContext> ctx) {
  if (!reuse_enabled_ || ctx == nullptr) {
    return;  // Destroyed: the next acquire builds a cold context.
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    return;  // Pool full: drop the context.
  }
  slots_[slot] = std::move(ctx);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

namespace {

// Cache keys tie a materialized scan to (input content, dictionary version).
inline uint64_t InputHash(const std::string& input) {
  return ContentHash64(input.data(), input.size(), 0xF00D);
}

// Builds the operator-contract output of a scan: a sparse feature vector
// with count values (sorted ids + parallel counts). Unpushed plans must pay
// this materialization; the linear-push rewrite removes it entirely.
void MaterializeCounts(std::vector<uint32_t>& raw_hits,
                       std::vector<uint32_t>* ids, std::vector<float>* vals) {
  std::sort(raw_hits.begin(), raw_hits.end());
  ids->clear();
  vals->clear();
  for (size_t i = 0; i < raw_hits.size();) {
    size_t j = i;
    while (j < raw_hits.size() && raw_hits[j] == raw_hits[i]) {
      ++j;
    }
    ids->push_back(raw_hits[i]);
    vals->push_back(static_cast<float>(j - i));
    i = j;
  }
}

Result<float> ExecuteText(const ModelPlan& plan, const std::string& input,
                          ExecContext& ctx) {
  const ModelPlan::BoundText& b = plan.bound_text();
  SubPlanCache* cache = ctx.subplan_cache;
  const uint64_t input_hash = cache != nullptr ? InputHash(input) : 0;

  bool tokenized = false;
  const auto tokenize_once = [&] {
    if (!tokenized) {
      TokenizeText(input, &ctx.text, &ctx.spans);
      tokenized = true;
    }
  };

  // Runs one scan branch. With the weights pushed, returns the partial dot
  // product; otherwise materializes hit ids into *ids_out. Either way the
  // sub-plan cache (when attached) short-circuits tokenize + scan for
  // (input, dictionary) pairs another pipeline already materialized.
  const auto run_branch = [&](bool is_char, bool pushed, double* acc,
                              std::vector<uint32_t>* ids_out) {
    const uint64_t key =
        is_char ? input_hash ^ b.char_ngram->ContentChecksum()
                : input_hash ^ b.word_ngram->ContentChecksum();
    const float* weights =
        is_char ? b.char_weights.data() : b.word_weights.data();
    if (pushed && cache == nullptr) {
      // Fully fused: accumulate during the scan, no ids materialized.
      tokenize_once();
      if (is_char) {
        ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      } else {
        ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                       b.word_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      }
      return;
    }
    if (cache != nullptr) {
      if (SubPlanCache::EntryRef hit = cache->Lookup(key)) {
        if (pushed) {
          // Copy-free: accumulate straight out of the shared entry.
          for (const uint32_t id : *hit) {
            *acc += weights[id];
          }
        } else {
          // MaterializeCounts sorts in place, so unpushed consumers need a
          // private copy of the cached scan.
          ids_out->assign(hit->begin(), hit->end());
        }
        return;
      }
    }
    std::vector<uint32_t>* ids = pushed ? &ctx.cache_ids : ids_out;
    tokenize_once();
    ids->clear();
    if (is_char) {
      ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    } else {
      ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                     b.word_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    }
    if (cache != nullptr) {
      cache->Insert(key, *ids);
    }
    if (pushed) {
      for (const uint32_t id : *ids) {
        *acc += weights[id];
      }
    }
  };

  double acc = 0.0;
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kTokenize:
        tokenize_once();
        break;
      case StageKind::kCharScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          run_branch(/*is_char=*/true, /*pushed=*/false, &acc, &ctx.raw_hits);
          MaterializeCounts(ctx.raw_hits, &ctx.char_ids, &ctx.char_vals);
        }
        break;
      case StageKind::kWordScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          run_branch(/*is_char=*/false, /*pushed=*/false, &acc, &ctx.raw_hits);
          MaterializeCounts(ctx.raw_hits, &ctx.word_ids, &ctx.word_vals);
        }
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedSaScore:
        run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedFeaturize:
        run_branch(/*is_char=*/true, /*pushed=*/false, &acc, &ctx.raw_hits);
        MaterializeCounts(ctx.raw_hits, &ctx.char_ids, &ctx.char_vals);
        run_branch(/*is_char=*/false, /*pushed=*/false, &acc, &ctx.raw_hits);
        MaterializeCounts(ctx.raw_hits, &ctx.word_ids, &ctx.word_vals);
        break;
      case StageKind::kConcat: {
        // Materialize the concatenated sparse feature vector — both
        // parallel arrays (the copy the linear push removes).
        ctx.concat_ids.clear();
        ctx.concat_vals.clear();
        ctx.concat_ids.reserve(ctx.char_ids.size() + ctx.word_ids.size());
        ctx.concat_vals.reserve(ctx.char_ids.size() + ctx.word_ids.size());
        ctx.concat_ids.insert(ctx.concat_ids.end(), ctx.char_ids.begin(),
                              ctx.char_ids.end());
        ctx.concat_vals.insert(ctx.concat_vals.end(), ctx.char_vals.begin(),
                               ctx.char_vals.end());
        const uint32_t offset = static_cast<uint32_t>(b.char_dim);
        for (size_t w = 0; w < ctx.word_ids.size(); ++w) {
          ctx.concat_ids.push_back(ctx.word_ids[w] + offset);
          ctx.concat_vals.push_back(ctx.word_vals[w]);
        }
        break;
      }
      case StageKind::kLinear: {
        const std::vector<float>& w = b.linear->weights;
        for (size_t f = 0; f < ctx.concat_ids.size(); ++f) {
          const uint32_t id = ctx.concat_ids[f];
          if (id < w.size()) {
            acc += static_cast<double>(w[id]) * ctx.concat_vals[f];
          }
        }
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      }
      case StageKind::kBias:
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      default:
        return Status::Error("unexpected stage in text plan");
    }
  }
  return score;
}

Result<float> ExecuteDense(const ModelPlan& plan, const std::string& input,
                           ExecContext& ctx) {
  const ModelPlan::BoundDense& b = plan.bound_dense();
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kParse:
        ParseDenseInput(input, &ctx.dense_in);
        // Every featurizer branch reads the parsed vector; validate against
        // the widest consumer once, up front.
        if (ctx.dense_in.size() < b.pca->in_dim ||
            ctx.dense_in.size() < b.kmeans->dim ||
            ctx.dense_in.size() < b.tree_feat->forest.num_features) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        break;
      case StageKind::kPca:
        ctx.pca_out.resize(b.pca->out_dim);
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               ctx.dense_in.data(), ctx.pca_out.data());
        break;
      case StageKind::kKMeans:
        ctx.kmeans_out.resize(b.kmeans->k);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        ctx.dense_in.data(), ctx.kmeans_out.data());
        break;
      case StageKind::kTreeFeaturize: {
        const Forest& forest = b.tree_feat->forest;
        ctx.tree_out.resize(forest.roots.size());
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          ctx.tree_out[t] = forest.EvalTree(t, ctx.dense_in.data());
        }
        break;
      }
      case StageKind::kConcat:
        ctx.features.clear();
        ctx.features.reserve(b.feature_dim);
        ctx.features.insert(ctx.features.end(), ctx.pca_out.begin(),
                            ctx.pca_out.end());
        ctx.features.insert(ctx.features.end(), ctx.kmeans_out.begin(),
                            ctx.kmeans_out.end());
        ctx.features.insert(ctx.features.end(), ctx.tree_out.begin(),
                            ctx.tree_out.end());
        break;
      case StageKind::kForest:
        score = b.bound_final.Eval(ctx.features.data());
        break;
      case StageKind::kFusedAcFeaturize: {
        // Branches write disjoint slices of one buffer: no Concat copy.
        ctx.features.resize(b.feature_dim);
        float* out = ctx.features.data();
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               ctx.dense_in.data(), out + b.pca_off);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        ctx.dense_in.data(), out + b.kmeans_off);
        const Forest& forest = b.tree_feat->forest;
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          out[b.tree_off + t] = forest.EvalTree(t, ctx.dense_in.data());
        }
        if (stage.inlined_forest) {
          score = b.bound_final.Eval(ctx.features.data());
        }
        break;
      }
      default:
        return Status::Error("unexpected stage in dense plan");
    }
  }
  return score;
}

}  // namespace

Result<float> ExecutePlan(const ModelPlan& plan, const std::string& input,
                          ExecContext& ctx) {
  plan.EnsureBound();
  Result<float> result = plan.family() == ModelPlan::Family::kText
                             ? ExecuteText(plan, input, ctx)
                             : ExecuteDense(plan, input, ctx);
  if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
    ctx.ReleaseScratch();
  }
  return result;
}

}  // namespace pretzel
