#include "src/runtime/exec_context.h"

#include <algorithm>

#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/oven/subplan_cache.h"

namespace pretzel {

VectorPool::VectorPool(const Options& options) : options_(options) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::vector<float> VectorPool::AcquireFloats(size_t size) {
  if (options_.pooling_enabled) {
    uint32_t slot;
    if (free_.TryPop(&slot)) {
      std::vector<float> v = std::move(slots_[slot]);
      empty_.Push(slot);
      v.resize(size);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::vector<float>(size);
}

void VectorPool::ReleaseFloats(std::vector<float>&& v) {
  if (!options_.pooling_enabled) {
    return;  // Dropped; the next acquire allocates.
  }
  released_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_cached_floats > 0 &&
      v.capacity() > options_.max_cached_floats) {
    // Capacity cap: don't let one oversized prediction pin its high-water
    // mark in the pool forever.
    dropped_oversized_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    dropped_full_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot] = std::move(v);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

VectorPool::Stats VectorPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.dropped_oversized = dropped_oversized_.load(std::memory_order_relaxed);
  s.dropped_full = dropped_full_.load(std::memory_order_relaxed);
  return s;
}

void ExecContext::ReleaseScratch() {
  std::string().swap(text);
  std::vector<std::pair<uint32_t, uint32_t>>().swap(spans);
  std::vector<uint32_t>().swap(cache_ids);
  std::vector<uint32_t>().swap(raw_hits);
  char_features.ReleaseStorage();
  word_features.ReleaseStorage();
  concat_features.ReleaseStorage();
  dense_features.ReleaseStorage();
  std::vector<float>().swap(dense_in);
  std::vector<float>().swap(pca_out);
  std::vector<float>().swap(kmeans_out);
  std::vector<float>().swap(tree_out);
  std::vector<float>().swap(batch_rows);
  std::vector<float>().swap(batch_soa);
  std::vector<float>().swap(batch_stage);
  std::vector<float>().swap(batch_features);
}

ExecContextPool::ExecContextPool(VectorPool* pool, bool reuse_enabled)
    : pool_(pool), reuse_enabled_(reuse_enabled) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::unique_ptr<ExecContext> ExecContextPool::Acquire() {
  if (reuse_enabled_) {
    uint32_t slot;
    if (free_.TryPop(&slot)) {
      std::unique_ptr<ExecContext> ctx = std::move(slots_[slot]);
      empty_.Push(slot);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return ctx;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_unique<ExecContext>(pool_);
}

void ExecContextPool::Release(std::unique_ptr<ExecContext> ctx) {
  if (!reuse_enabled_ || ctx == nullptr) {
    return;  // Destroyed: the next acquire builds a cold context.
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    return;  // Pool full: drop the context.
  }
  slots_[slot] = std::move(ctx);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

namespace {

// Cache keys tie a materialized scan to (input content, dictionary version).
inline uint64_t InputHash(const std::string& input) {
  return ContentHash64(input.data(), input.size(), 0xF00D);
}

Result<float> ExecuteText(const ModelPlan& plan, const std::string& input,
                          ExecContext& ctx) {
  const ModelPlan::BoundText& b = plan.bound_text();
  SubPlanCache* cache = ctx.subplan_cache;
  const uint64_t input_hash = cache != nullptr ? InputHash(input) : 0;

  bool tokenized = false;
  const auto tokenize_once = [&] {
    if (!tokenized) {
      TokenizeText(input, &ctx.text, &ctx.spans);
      tokenized = true;
    }
  };

  // Runs one scan branch. With the weights pushed, returns the partial dot
  // product; otherwise materializes raw hit ids into *raw_out (the staging
  // buffer a FeatureVector coalesces into counts). Either way the sub-plan
  // cache (when attached) short-circuits tokenize + scan for (input,
  // dictionary) pairs another pipeline already materialized.
  const auto run_branch = [&](bool is_char, bool pushed, double* acc,
                              std::vector<uint32_t>* raw_out) {
    const uint64_t key =
        is_char ? input_hash ^ b.char_ngram->ContentChecksum()
                : input_hash ^ b.word_ngram->ContentChecksum();
    const float* weights = is_char ? b.char_weights() : b.word_weights();
    if (pushed && cache == nullptr) {
      // Fully fused: accumulate during the scan, no ids materialized.
      tokenize_once();
      if (is_char) {
        ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      } else {
        ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                       b.word_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      }
      return;
    }
    if (cache != nullptr) {
      if (SubPlanCache::EntryRef hit = cache->Lookup(key)) {
        if (pushed) {
          // Copy-free: accumulate straight out of the shared entry.
          for (const uint32_t id : *hit) {
            *acc += weights[id];
          }
        } else {
          // AssignCounts sorts the staging buffer in place, so unpushed
          // consumers need a private copy of the cached scan.
          raw_out->assign(hit->begin(), hit->end());
        }
        return;
      }
    }
    std::vector<uint32_t>* ids = pushed ? &ctx.cache_ids : raw_out;
    tokenize_once();
    ids->clear();
    if (is_char) {
      ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    } else {
      ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                     b.word_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    }
    if (cache != nullptr) {
      cache->Insert(key, *ids);
    }
    if (pushed) {
      for (const uint32_t id : *ids) {
        *acc += weights[id];
      }
    }
  };

  // The unpushed operator contract: scan, then coalesce the raw hits into
  // the branch's sparse count FeatureVector.
  const auto featurize_branch = [&](bool is_char, FeatureVector& out) {
    run_branch(is_char, /*pushed=*/false, nullptr, &ctx.raw_hits);
    out.AssignCounts(ctx.raw_hits, is_char ? b.char_dim : b.word_dim);
  };

  double acc = 0.0;
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kTokenize:
        tokenize_once();
        break;
      case StageKind::kCharScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          featurize_branch(/*is_char=*/true, ctx.char_features);
        }
        break;
      case StageKind::kWordScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          featurize_branch(/*is_char=*/false, ctx.word_features);
        }
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedSaScore:
        run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedFeaturize:
        featurize_branch(/*is_char=*/true, ctx.char_features);
        featurize_branch(/*is_char=*/false, ctx.word_features);
        break;
      case StageKind::kConcat:
        // Materialize the concatenated sparse feature vector (the copy the
        // linear-push and sparse-fuse rewrites both remove).
        ctx.concat_features.AssignConcat(ctx.char_features, ctx.word_features,
                                         static_cast<uint32_t>(b.char_dim));
        break;
      case StageKind::kLinear: {
        const std::vector<float>& w = b.linear->weights;
        acc += ctx.concat_features.Dot(w.data(), w.size());
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      }
      case StageKind::kSparseLinear:
        // Concat + Linear fused: per-source sparse dots at the Flour layout
        // offsets — the concatenated vector never exists.
        acc += ctx.char_features.Dot(b.char_weights(), b.char_dim);
        acc += ctx.word_features.Dot(b.word_weights(), b.word_dim);
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      case StageKind::kBias:
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      default:
        return Status::Error("unexpected stage in text plan");
    }
  }
  return score;
}

Result<float> ExecuteDense(const ModelPlan& plan, const std::string& input,
                           ExecContext& ctx) {
  const ModelPlan::BoundDense& b = plan.bound_dense();
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kParse:
        ParseDenseInput(input, &ctx.dense_in);
        // Every featurizer branch reads the parsed vector; validate against
        // the widest consumer once, up front.
        if (ctx.dense_in.size() < b.pca->in_dim ||
            ctx.dense_in.size() < b.kmeans->dim ||
            ctx.dense_in.size() < b.tree_feat->forest.num_features) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        break;
      case StageKind::kPca:
        ctx.pca_out.resize(b.pca->out_dim);
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               ctx.dense_in.data(), ctx.pca_out.data());
        break;
      case StageKind::kKMeans:
        ctx.kmeans_out.resize(b.kmeans->k);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        ctx.dense_in.data(), ctx.kmeans_out.data());
        break;
      case StageKind::kTreeFeaturize: {
        const Forest& forest = b.tree_feat->forest;
        ctx.tree_out.resize(forest.roots.size());
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          ctx.tree_out[t] = forest.EvalTree(t, ctx.dense_in.data());
        }
        break;
      }
      case StageKind::kConcat: {
        // The branch slices cover every slot; no zero-fill needed.
        float* out =
            ctx.dense_features.MutableDense(b.feature_dim, /*zero_fill=*/false);
        std::copy(ctx.pca_out.begin(), ctx.pca_out.end(), out + b.pca_off);
        std::copy(ctx.kmeans_out.begin(), ctx.kmeans_out.end(),
                  out + b.kmeans_off);
        std::copy(ctx.tree_out.begin(), ctx.tree_out.end(), out + b.tree_off);
        break;
      }
      case StageKind::kForest:
        score = b.bound_final.Eval(ctx.dense_features.dense_data());
        break;
      case StageKind::kFusedAcFeaturize: {
        // Branches write disjoint slices of one buffer: no Concat copy (and
        // the slices cover every slot, so no zero-fill either).
        float* out =
            ctx.dense_features.MutableDense(b.feature_dim, /*zero_fill=*/false);
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               ctx.dense_in.data(), out + b.pca_off);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        ctx.dense_in.data(), out + b.kmeans_off);
        const Forest& forest = b.tree_feat->forest;
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          out[b.tree_off + t] = forest.EvalTree(t, ctx.dense_in.data());
        }
        if (stage.inlined_forest) {
          score = b.bound_final.Eval(ctx.dense_features.dense_data());
        }
        break;
      }
      default:
        return Status::Error("unexpected stage in dense plan");
    }
  }
  return score;
}

}  // namespace

Result<float> ExecutePlan(const ModelPlan& plan, const std::string& input,
                          ExecContext& ctx) {
  plan.EnsureBound();
  Result<float> result = plan.family() == ModelPlan::Family::kText
                             ? ExecuteText(plan, input, ctx)
                             : ExecuteDense(plan, input, ctx);
  if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
    ctx.ReleaseScratch();
  }
  return result;
}

size_t ExecutePlanPerRecord(const ModelPlan& plan, const std::string* inputs,
                            size_t n, float* scores, ExecContext& ctx,
                            Status* first_error) {
  size_t failed = 0;
  for (size_t i = 0; i < n; ++i) {
    Result<float> r = ExecutePlan(plan, inputs[i], ctx);
    if (r.ok()) {
      scores[i] = *r;
    } else {
      scores[i] = 0.0f;
      if (failed++ == 0 && first_error != nullptr) {
        *first_error = r.status();
      }
    }
  }
  return failed;
}

size_t ExecutePlanBatch(const ModelPlan& plan, const std::string* inputs,
                        size_t n, float* scores, ExecContext& ctx,
                        Status* first_error) {
  plan.EnsureBound();
  if (plan.family() != ModelPlan::Family::kDense || n < 2) {
    return ExecutePlanPerRecord(plan, inputs, n, scores, ctx, first_error);
  }
  const ModelPlan::BoundDense& b = plan.bound_dense();
  const size_t row_dim =
      std::max<size_t>(std::max<size_t>(b.pca->in_dim, b.kmeans->dim),
                       b.tree_feat->forest.num_features);

  // Parse every record into an AoS staging row (trees branch on it). Any
  // invalid record sends the whole quantum down the per-record path so its
  // error is attributed exactly as the unbatched executor would.
  ctx.batch_rows.resize(n * row_dim);
  float* rows = ctx.batch_rows.data();
  for (size_t i = 0; i < n; ++i) {
    ParseDenseInput(inputs[i], &ctx.dense_in);
    if (ctx.dense_in.size() < row_dim) {
      return ExecutePlanPerRecord(plan, inputs, n, scores, ctx, first_error);
    }
    std::copy(ctx.dense_in.begin(),
              ctx.dense_in.begin() + static_cast<ptrdiff_t>(row_dim),
              rows + i * row_dim);
  }

  // Batch-major dense stages: transpose to structure-of-arrays (the 8x8
  // blocked kernel on AVX2 builds), then one blocked matrix-matrix kernel
  // per stage instead of n matvecs. This is where the adaptive batcher's
  // coalescing buys compute throughput.
  ctx.batch_soa.resize(row_dim * n);
  TransposeToSoA(rows, n, row_dim, row_dim, ctx.batch_soa.data());
  const size_t pca_dim = b.pca->out_dim;
  const size_t km_k = b.kmeans->k;
  ctx.batch_stage.resize((pca_dim + km_k) * n);
  float* pca_soa = ctx.batch_stage.data();
  float* km_soa = pca_soa + pca_dim * n;
  MatVecBatchSoA(b.pca->matrix.data(), pca_dim, b.pca->in_dim,
                 ctx.batch_soa.data(), n, pca_soa);
  KMeansTransformBatchSoA(b.kmeans->centroids.data(), km_k, b.kmeans->dim,
                          ctx.batch_soa.data(), n, km_soa);

  // Trees and the final forest branch per record; gather each record's
  // feature row from the SoA stage outputs.
  const Forest& trees = b.tree_feat->forest;
  ctx.batch_features.resize(b.feature_dim);
  float* feats = ctx.batch_features.data();
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < pca_dim; ++r) {
      feats[b.pca_off + r] = pca_soa[r * n + i];
    }
    for (size_t r = 0; r < km_k; ++r) {
      feats[b.kmeans_off + r] = km_soa[r * n + i];
    }
    const float* row = ctx.batch_rows.data() + i * row_dim;
    for (size_t t = 0; t < trees.roots.size(); ++t) {
      feats[b.tree_off + t] = trees.EvalTree(t, row);
    }
    scores[i] = b.bound_final.Eval(feats);
  }
  if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
    ctx.ReleaseScratch();
  }
  return 0;
}

}  // namespace pretzel
