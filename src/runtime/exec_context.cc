#include "src/runtime/exec_context.h"

#include <algorithm>
#include <cstring>

#include "src/common/fault.h"
#include "src/common/serialize.h"
#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/oven/subplan_cache.h"

namespace pretzel {

VectorPool::VectorPool(const Options& options) : options_(options) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::vector<float> VectorPool::AcquireFloats(size_t size) {
  if (options_.pooling_enabled) {
    uint32_t slot;
    // Chaos site: the free list reads as empty — the acquire takes the
    // allocation miss path, as if the pool were exhausted under burst load.
    if (!PRETZEL_FAULT_POINT("runtime.pool_exhausted", 0) &&
        free_.TryPop(&slot)) {
      std::vector<float> v = std::move(slots_[slot]);
      empty_.Push(slot);
      v.resize(size);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::vector<float>(size);
}

void VectorPool::ReleaseFloats(std::vector<float>&& v) {
  if (!options_.pooling_enabled) {
    return;  // Dropped; the next acquire allocates.
  }
  released_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_cached_floats > 0 &&
      v.capacity() > options_.max_cached_floats) {
    // Capacity cap: don't let one oversized prediction pin its high-water
    // mark in the pool forever.
    dropped_oversized_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    dropped_full_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot] = std::move(v);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

VectorPool::Stats VectorPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.dropped_oversized = dropped_oversized_.load(std::memory_order_relaxed);
  s.dropped_full = dropped_full_.load(std::memory_order_relaxed);
  return s;
}

void ExecContext::ReleaseScratch() {
  std::string().swap(text);
  std::vector<std::pair<uint32_t, uint32_t>>().swap(spans);
  std::vector<uint32_t>().swap(cache_ids);
  std::vector<uint32_t>().swap(raw_hits);
  char_features.ReleaseStorage();
  word_features.ReleaseStorage();
  concat_features.ReleaseStorage();
  dense_features.ReleaseStorage();
  std::vector<float>().swap(dense_in);
  std::vector<float>().swap(pca_out);
  std::vector<float>().swap(kmeans_out);
  std::vector<float>().swap(tree_out);
  std::vector<uint32_t>().swap(sparse_ids);
  std::vector<float>().swap(sparse_vals);
  std::vector<float>().swap(batch_rows);
  std::vector<const float*>().swap(batch_row_ptrs);
  std::vector<uint32_t>().swap(batch_valid);
  std::vector<float>().swap(batch_soa);
  std::vector<float>().swap(batch_stage);
  std::vector<float>().swap(batch_features);
  std::vector<std::string_view>().swap(batch_views);
  std::vector<float>().swap(batch_scores);
  std::vector<uint8_t>().swap(batch_failed);
}

ExecContextPool::ExecContextPool(VectorPool* pool, bool reuse_enabled)
    : pool_(pool), reuse_enabled_(reuse_enabled) {
  for (uint32_t i = 0; i < kSlots; ++i) {
    empty_.Push(i);
  }
}

std::unique_ptr<ExecContext> ExecContextPool::Acquire() {
  if (reuse_enabled_) {
    uint32_t slot;
    if (free_.TryPop(&slot)) {
      std::unique_ptr<ExecContext> ctx = std::move(slots_[slot]);
      empty_.Push(slot);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return ctx;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_unique<ExecContext>(pool_);
}

void ExecContextPool::Release(std::unique_ptr<ExecContext> ctx) {
  if (!reuse_enabled_ || ctx == nullptr) {
    return;  // Destroyed: the next acquire builds a cold context.
  }
  uint32_t slot;
  if (!empty_.TryPop(&slot)) {
    return;  // Pool full: drop the context.
  }
  slots_[slot] = std::move(ctx);
  free_.Push(slot);  // Release-CAS publishes the slot write.
}

namespace {

// Cache keys tie a materialized scan to (input content, dictionary version).
inline uint64_t InputHash(std::string_view input) {
  return ContentHash64(input.data(), input.size(), 0xF00D);
}

// Pre-featurized sparse wire record on a text-family plan: the record's ids
// live in the plan's concat space (char ids first, word ids offset by
// char_dim), so scoring is two sparse dots against the bound fused weight
// layout plus the bias — featurization (tokenize + scans) is skipped
// entirely. Every optimizer config of a text plan computes
// sigmoid(w . x + bias) over that space, so one scoring path serves all of
// them, validated, never converted.
Result<float> ExecuteSparseWireRecord(const ModelPlan::BoundText& b,
                                      std::string_view input,
                                      ExecContext& ctx) {
  BinaryRecordView view;
  Status status = ParseBinaryRecord(input, &view);
  if (!status.ok()) {
    return status;
  }
  if (!view.valid) {
    return Status::InvalidArgument("binary record marked invalid");
  }
  if (view.format != BinaryRecordFormat::kSparse) {
    return Status::InvalidArgument("dense binary record on text plan");
  }
  if (view.dim != b.char_dim + b.word_dim) {
    return Status::InvalidArgument("sparse record dim != plan concat space");
  }
  if (b.fused_weights.empty() && view.dim > 0) {
    return Status::InvalidArgument("text plan has no bound linear weights");
  }
  const uint32_t* ids = view.ids;
  const float* vals = view.values;
  if (!view.aligned) {
    // Odd-offset slice of a batch buffer: stage the payload once.
    ctx.sparse_ids.resize(view.nnz);
    ctx.sparse_vals.resize(view.nnz);
    CopySparsePayload(view, ctx.sparse_ids.data(), ctx.sparse_vals.data());
    ids = ctx.sparse_ids.data();
    vals = ctx.sparse_vals.data();
  }
  // Ids are strictly ascending (wire invariant), so the char/word boundary
  // is one partition point.
  const uint32_t char_dim = static_cast<uint32_t>(b.char_dim);
  const size_t split =
      std::lower_bound(ids, ids + view.nnz, char_dim) - ids;
  double acc = SparseDot(ids, vals, split, b.char_weights(), b.char_dim);
  const size_t word_n = view.nnz - split;
  if (word_n > 0) {
    // Rebase word ids to the word-weight slice's origin.
    ctx.sparse_ids.resize(word_n);
    for (size_t j = 0; j < word_n; ++j) {
      ctx.sparse_ids[j] = ids[split + j] - char_dim;
    }
    acc += SparseDot(ctx.sparse_ids.data(), vals + split, word_n,
                     b.word_weights(), b.word_dim);
  }
  return Sigmoid(static_cast<float>(acc) + b.bias);
}

Result<float> ExecuteText(const ModelPlan& plan, std::string_view input,
                          ExecContext& ctx) {
  const ModelPlan::BoundText& b = plan.bound_text();
  if (IsBinaryRecord(input)) {
    return ExecuteSparseWireRecord(b, input, ctx);
  }
  SubPlanCache* cache = ctx.subplan_cache;
  const uint64_t input_hash = cache != nullptr ? InputHash(input) : 0;

  bool tokenized = false;
  const auto tokenize_once = [&] {
    if (!tokenized) {
      TokenizeText(input, &ctx.text, &ctx.spans);
      tokenized = true;
    }
  };

  // Runs one scan branch. With the weights pushed, returns the partial dot
  // product; otherwise materializes raw hit ids into *raw_out (the staging
  // buffer a FeatureVector coalesces into counts). Either way the sub-plan
  // cache (when attached) short-circuits tokenize + scan for (input,
  // dictionary) pairs another pipeline already materialized.
  const auto run_branch = [&](bool is_char, bool pushed, double* acc,
                              std::vector<uint32_t>* raw_out) {
    const uint64_t key =
        is_char ? input_hash ^ b.char_ngram->ContentChecksum()
                : input_hash ^ b.word_ngram->ContentChecksum();
    const float* weights = is_char ? b.char_weights() : b.word_weights();
    if (pushed && cache == nullptr) {
      // Fully fused: accumulate during the scan, no ids materialized.
      tokenize_once();
      if (is_char) {
        ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      } else {
        ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                       b.word_ngram->scan,
                       [&](uint32_t id) { *acc += weights[id]; });
      }
      return;
    }
    if (cache != nullptr) {
      if (SubPlanCache::EntryRef hit = cache->Lookup(key)) {
        if (pushed) {
          // Copy-free: accumulate straight out of the shared entry.
          for (const uint32_t id : *hit) {
            *acc += weights[id];
          }
        } else {
          // AssignCounts sorts the staging buffer in place, so unpushed
          // consumers need a private copy of the cached scan.
          raw_out->assign(hit->begin(), hit->end());
        }
        return;
      }
    }
    std::vector<uint32_t>* ids = pushed ? &ctx.cache_ids : raw_out;
    tokenize_once();
    ids->clear();
    if (is_char) {
      ScanCharNgrams(ctx.text, b.char_ngram->dict, b.char_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    } else {
      ScanWordNgrams(ctx.text, ctx.spans, b.word_ngram->dict,
                     b.word_ngram->scan,
                     [&](uint32_t id) { ids->push_back(id); });
    }
    if (cache != nullptr) {
      cache->Insert(key, *ids);
    }
    if (pushed) {
      for (const uint32_t id : *ids) {
        *acc += weights[id];
      }
    }
  };

  // The unpushed operator contract: scan, then coalesce the raw hits into
  // the branch's sparse count FeatureVector.
  const auto featurize_branch = [&](bool is_char, FeatureVector& out) {
    run_branch(is_char, /*pushed=*/false, nullptr, &ctx.raw_hits);
    out.AssignCounts(ctx.raw_hits, is_char ? b.char_dim : b.word_dim);
  };

  double acc = 0.0;
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kTokenize:
        tokenize_once();
        break;
      case StageKind::kCharScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          featurize_branch(/*is_char=*/true, ctx.char_features);
        }
        break;
      case StageKind::kWordScan:
        if (stage.weights_pushed) {
          run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        } else {
          featurize_branch(/*is_char=*/false, ctx.word_features);
        }
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedSaScore:
        run_branch(/*is_char=*/true, /*pushed=*/true, &acc, &ctx.raw_hits);
        run_branch(/*is_char=*/false, /*pushed=*/true, &acc, &ctx.raw_hits);
        if (stage.inlined_bias) {
          score = Sigmoid(static_cast<float>(acc) + b.bias);
        }
        break;
      case StageKind::kFusedFeaturize:
        featurize_branch(/*is_char=*/true, ctx.char_features);
        featurize_branch(/*is_char=*/false, ctx.word_features);
        break;
      case StageKind::kConcat:
        // Materialize the concatenated sparse feature vector (the copy the
        // linear-push and sparse-fuse rewrites both remove).
        ctx.concat_features.AssignConcat(ctx.char_features, ctx.word_features,
                                         static_cast<uint32_t>(b.char_dim));
        break;
      case StageKind::kLinear: {
        const std::vector<float>& w = b.linear->weights;
        acc += ctx.concat_features.Dot(w.data(), w.size());
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      }
      case StageKind::kSparseLinear:
        // Concat + Linear fused: per-source sparse dots at the Flour layout
        // offsets — the concatenated vector never exists.
        acc += ctx.char_features.Dot(b.char_weights(), b.char_dim);
        acc += ctx.word_features.Dot(b.word_weights(), b.word_dim);
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      case StageKind::kBias:
        score = Sigmoid(static_cast<float>(acc) + b.bias);
        break;
      default:
        return Status::Error("unexpected stage in text plan");
    }
  }
  return score;
}

Result<float> ExecuteDense(const ModelPlan& plan, std::string_view input,
                           ExecContext& ctx) {
  const ModelPlan::BoundDense& b = plan.bound_dense();
  // The featurizer input span. Text records parse into ctx.dense_in; an
  // aligned binary record aliases its wire payload — validated, never
  // converted — and only a misaligned one stages through ctx.dense_in.
  const float* dense = nullptr;
  size_t dense_n = 0;
  float score = 0.0f;
  for (const PlanStage& stage : plan.stages()) {
    switch (stage.kind) {
      case StageKind::kParse:
        if (IsBinaryRecord(input)) {
          BinaryRecordView view;
          Status status = ParseBinaryRecord(input, &view);
          if (!status.ok()) {
            return status;
          }
          if (!view.valid) {
            return Status::InvalidArgument("binary record marked invalid");
          }
          if (view.format != BinaryRecordFormat::kDense) {
            return Status::InvalidArgument(
                "sparse binary record on dense plan");
          }
          if (view.aligned) {
            dense = view.values;
          } else {
            ctx.dense_in.resize(view.dim);
            CopyDenseValues(view, ctx.dense_in.data());
            dense = ctx.dense_in.data();
          }
          dense_n = view.dim;
        } else {
          ParseDenseInput(input, &ctx.dense_in);
          dense = ctx.dense_in.data();
          dense_n = ctx.dense_in.size();
        }
        // Every featurizer branch reads the parsed vector; validate against
        // the widest consumer once, up front.
        if (dense_n < b.pca->in_dim || dense_n < b.kmeans->dim ||
            dense_n < b.tree_feat->forest.num_features) {
          return Status::InvalidArgument("dense input narrower than pipeline");
        }
        break;
      case StageKind::kPca:
        ctx.pca_out.resize(b.pca->out_dim);
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               dense, ctx.pca_out.data());
        break;
      case StageKind::kKMeans:
        ctx.kmeans_out.resize(b.kmeans->k);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        dense, ctx.kmeans_out.data());
        break;
      case StageKind::kTreeFeaturize: {
        const Forest& forest = b.tree_feat->forest;
        ctx.tree_out.resize(forest.roots.size());
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          ctx.tree_out[t] = forest.EvalTree(t, dense);
        }
        break;
      }
      case StageKind::kConcat: {
        // The branch slices cover every slot; no zero-fill needed.
        float* out =
            ctx.dense_features.MutableDense(b.feature_dim, /*zero_fill=*/false);
        std::copy(ctx.pca_out.begin(), ctx.pca_out.end(), out + b.pca_off);
        std::copy(ctx.kmeans_out.begin(), ctx.kmeans_out.end(),
                  out + b.kmeans_off);
        std::copy(ctx.tree_out.begin(), ctx.tree_out.end(), out + b.tree_off);
        break;
      }
      case StageKind::kForest:
        score = b.bound_final.Eval(ctx.dense_features.dense_data());
        break;
      case StageKind::kFusedAcFeaturize: {
        // Branches write disjoint slices of one buffer: no Concat copy (and
        // the slices cover every slot, so no zero-fill either).
        float* out =
            ctx.dense_features.MutableDense(b.feature_dim, /*zero_fill=*/false);
        MatVec(b.pca->matrix.data(), b.pca->out_dim, b.pca->in_dim,
               dense, out + b.pca_off);
        KMeansTransform(b.kmeans->centroids.data(), b.kmeans->k, b.kmeans->dim,
                        dense, out + b.kmeans_off);
        const Forest& forest = b.tree_feat->forest;
        for (size_t t = 0; t < forest.roots.size(); ++t) {
          out[b.tree_off + t] = forest.EvalTree(t, dense);
        }
        if (stage.inlined_forest) {
          score = b.bound_final.Eval(ctx.dense_features.dense_data());
        }
        break;
      }
      default:
        return Status::Error("unexpected stage in dense plan");
    }
  }
  return score;
}

}  // namespace

Result<float> ExecutePlan(const ModelPlan& plan, std::string_view input,
                          ExecContext& ctx) {
  // Chaos site: a kernel running far off its expected cost (cold params,
  // denormals, thermal throttle) — the per-record stall every deadline and
  // health check must survive.
  PRETZEL_FAULT_STALL("ops.slow_kernel", 0);
  plan.EnsureBound();
  Result<float> result = plan.family() == ModelPlan::Family::kText
                             ? ExecuteText(plan, input, ctx)
                             : ExecuteDense(plan, input, ctx);
  if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
    ctx.ReleaseScratch();
  }
  return result;
}

size_t ExecutePlanPerRecord(const ModelPlan& plan,
                            const std::string_view* inputs, size_t n,
                            float* scores, ExecContext& ctx,
                            Status* first_error, uint8_t* failed_flags) {
  size_t failed = 0;
  for (size_t i = 0; i < n; ++i) {
    Result<float> r = ExecutePlan(plan, inputs[i], ctx);
    if (r.ok()) {
      scores[i] = *r;
      if (failed_flags != nullptr) {
        failed_flags[i] = 0;
      }
    } else {
      scores[i] = 0.0f;
      if (failed_flags != nullptr) {
        failed_flags[i] = 1;
      }
      if (failed++ == 0 && first_error != nullptr) {
        *first_error = r.status();
      }
    }
  }
  return failed;
}

size_t ExecutePlanBatch(const ModelPlan& plan, const std::string_view* inputs,
                        size_t n, float* scores, ExecContext& ctx,
                        Status* first_error, uint8_t* failed_flags) {
  plan.EnsureBound();
  if (plan.family() != ModelPlan::Family::kDense || n < 2) {
    return ExecutePlanPerRecord(plan, inputs, n, scores, ctx, first_error,
                                failed_flags);
  }
  const ModelPlan::BoundDense& b = plan.bound_dense();
  const size_t row_dim =
      std::max<size_t>(std::max<size_t>(b.pca->in_dim, b.kmeans->dim),
                       b.tree_feat->forest.num_features);

  // Gather every record into a row pointer: an aligned dense binary record
  // aliases its wire payload (validated, never converted — no AoS staging
  // copy), while text records and misaligned payloads stage through
  // ctx.batch_rows. Invalid records are masked out of the transpose and
  // attributed individually; the valid rows still run batch-major.
  size_t failed = 0;
  const auto fail = [&](size_t i, Status status) {
    scores[i] = 0.0f;
    if (failed_flags != nullptr) {
      failed_flags[i] = 1;
    }
    if (failed++ == 0 && first_error != nullptr) {
      *first_error = std::move(status);
    }
  };
  ctx.batch_rows.resize(n * row_dim);
  ctx.batch_row_ptrs.resize(n);
  ctx.batch_valid.clear();
  float* rows = ctx.batch_rows.data();
  for (size_t i = 0; i < n; ++i) {
    if (failed_flags != nullptr) {
      failed_flags[i] = 0;
    }
    const float* row = nullptr;
    if (IsBinaryRecord(inputs[i])) {
      BinaryRecordView view;
      Status status = ParseBinaryRecord(inputs[i], &view);
      if (!status.ok()) {
        fail(i, std::move(status));
        continue;
      }
      if (!view.valid) {
        fail(i, Status::InvalidArgument("binary record marked invalid"));
        continue;
      }
      if (view.format != BinaryRecordFormat::kDense) {
        fail(i, Status::InvalidArgument("sparse binary record on dense plan"));
        continue;
      }
      if (view.dim < row_dim) {
        fail(i, Status::InvalidArgument("dense input narrower than pipeline"));
        continue;
      }
      if (view.aligned) {
        row = view.values;
      } else {
        std::memcpy(rows + i * row_dim, view.payload, row_dim * sizeof(float));
        row = rows + i * row_dim;
      }
    } else {
      ParseDenseInput(inputs[i], &ctx.dense_in);
      if (ctx.dense_in.size() < row_dim) {
        fail(i, Status::InvalidArgument("dense input narrower than pipeline"));
        continue;
      }
      std::copy(ctx.dense_in.begin(),
                ctx.dense_in.begin() + static_cast<ptrdiff_t>(row_dim),
                rows + i * row_dim);
      row = rows + i * row_dim;
    }
    ctx.batch_row_ptrs[ctx.batch_valid.size()] = row;
    ctx.batch_valid.push_back(static_cast<uint32_t>(i));
  }
  const size_t m = ctx.batch_valid.size();
  if (m == 0) {
    if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
      ctx.ReleaseScratch();
    }
    return failed;
  }

  // Batch-major dense stages over the m valid lanes: gather the row
  // pointers into a structure-of-arrays transpose (8x8 blocked on AVX2
  // builds), then one blocked matrix-matrix kernel per stage instead of m
  // matvecs. This is where the adaptive batcher's coalescing buys compute
  // throughput.
  ctx.batch_soa.resize(row_dim * m);
  TransposeRowsToSoA(ctx.batch_row_ptrs.data(), m, row_dim,
                     ctx.batch_soa.data());
  const size_t pca_dim = b.pca->out_dim;
  const size_t km_k = b.kmeans->k;
  ctx.batch_stage.resize((pca_dim + km_k) * m);
  float* pca_soa = ctx.batch_stage.data();
  float* km_soa = pca_soa + pca_dim * m;
  MatVecBatchSoA(b.pca->matrix.data(), pca_dim, b.pca->in_dim,
                 ctx.batch_soa.data(), m, pca_soa);
  KMeansTransformBatchSoA(b.kmeans->centroids.data(), km_k, b.kmeans->dim,
                          ctx.batch_soa.data(), m, km_soa);

  // Trees and the final forest branch per record; gather each lane's
  // feature row from the SoA stage outputs (trees read the lane's row
  // pointer directly — for aligned binary records that is still the wire
  // payload).
  const Forest& trees = b.tree_feat->forest;
  ctx.batch_features.resize(b.feature_dim);
  float* feats = ctx.batch_features.data();
  for (size_t lane = 0; lane < m; ++lane) {
    for (size_t r = 0; r < pca_dim; ++r) {
      feats[b.pca_off + r] = pca_soa[r * m + lane];
    }
    for (size_t r = 0; r < km_k; ++r) {
      feats[b.kmeans_off + r] = km_soa[r * m + lane];
    }
    const float* row = ctx.batch_row_ptrs[lane];
    for (size_t t = 0; t < trees.roots.size(); ++t) {
      feats[b.tree_off + t] = trees.EvalTree(t, row);
    }
    scores[ctx.batch_valid[lane]] = b.bound_final.Eval(feats);
  }
  if (ctx.pool != nullptr && !ctx.pool->pooling_enabled()) {
    ctx.ReleaseScratch();
  }
  return failed;
}

size_t ExecutePlanBatch(const ModelPlan& plan, const std::string* inputs,
                        size_t n, float* scores, ExecContext& ctx,
                        Status* first_error, uint8_t* failed_flags) {
  std::vector<std::string_view> views(inputs, inputs + n);
  return ExecutePlanBatch(plan, views.data(), n, scores, ctx, first_error,
                          failed_flags);
}

size_t ExecutePlanPerRecord(const ModelPlan& plan, const std::string* inputs,
                            size_t n, float* scores, ExecContext& ctx,
                            Status* first_error, uint8_t* failed_flags) {
  std::vector<std::string_view> views(inputs, inputs + n);
  return ExecutePlanPerRecord(plan, views.data(), n, scores, ctx, first_error,
                              failed_flags);
}

}  // namespace pretzel
