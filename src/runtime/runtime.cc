#include "src/runtime/runtime.h"

#include <algorithm>

namespace pretzel {

// One logical batch request. Executors decrement `remaining` as they finish
// sub-ranges; the last one out invokes the callback.
struct Runtime::BatchJob {
  std::shared_ptr<ModelPlan> plan;
  std::vector<std::string> inputs;
  std::vector<float> results;
  std::atomic<size_t> remaining{0};
  BatchCallback callback;

  std::mutex error_mu;
  Status first_error;  // OK unless some record failed.
};

Runtime::Runtime(ObjectStore* store, const RuntimeOptions& options)
    : store_(store),
      options_([&] {
        RuntimeOptions o = options;
        o.num_executors = std::max<size_t>(1, o.num_executors);
        return o;
      }()),
      caller_contexts_(&caller_pool_, /*reuse_enabled=*/true) {
  queues_.push_back(std::make_unique<WorkQueue>());  // Shared queue.
  WorkQueue* shared = queues_[0].get();
  threads_.reserve(options_.num_executors);
  for (size_t i = 0; i < options_.num_executors; ++i) {
    threads_.emplace_back([this, shared] { ExecutorLoop(shared); });
  }
}

Runtime::~Runtime() {
  stop_.store(true);
  {
    std::shared_lock lock(registry_mu_);
    for (const auto& queue : queues_) {
      std::lock_guard<std::mutex> qlock(queue->mu);
      queue->cv.notify_all();
    }
  }
  for (auto& thread : threads_) {
    thread.join();
  }
}

Result<Runtime::PlanId> Runtime::Register(std::shared_ptr<ModelPlan> plan,
                                          const PlanRegistration& registration) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null plan");
  }
  std::unique_lock lock(registry_mu_);
  const PlanId id = plans_.size();
  plans_.push_back(plan);
  if (registration.reserve_cores > 0) {
    const size_t cores = std::min(registration.reserve_cores,
                                  options_.max_reserved_cores_per_plan);
    queues_.push_back(std::make_unique<WorkQueue>());
    WorkQueue* queue = queues_.back().get();
    reserved_queue_[id] = queue;
    reservations_.push_back(Reservation{id, cores});
    // Dedicated executors are extra threads: reserving never shrinks the
    // shared pool.
    for (size_t i = 0; i < cores; ++i) {
      threads_.emplace_back([this, queue] { ExecutorLoop(queue); });
    }
  }
  return id;
}

std::shared_ptr<ModelPlan> Runtime::GetPlan(PlanId id) const {
  std::shared_lock lock(registry_mu_);
  return id < plans_.size() ? plans_[id] : nullptr;
}

Runtime::WorkQueue* Runtime::QueueForPlan(PlanId id, size_t* parallelism) const {
  std::shared_lock lock(registry_mu_);
  auto it = reserved_queue_.find(id);
  if (it == reserved_queue_.end()) {
    *parallelism = options_.num_executors;
    return queues_[0].get();
  }
  // Reserved plans are served by their dedicated executors, so sub-batches
  // should fan across those, not the shared pool.
  *parallelism = 1;
  for (const Reservation& r : reservations_) {
    if (r.plan_id == id) {
      *parallelism = std::max<size_t>(1, r.num_cores);
      break;
    }
  }
  return it->second;
}

Result<float> Runtime::Predict(PlanId id, const std::string& input) {
  std::shared_ptr<ModelPlan> plan = GetPlan(id);
  if (plan == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  std::unique_ptr<ExecContext> ctx = caller_contexts_.Acquire();
  Result<float> result = ExecutePlan(*plan, input, *ctx);
  caller_contexts_.Release(std::move(ctx));
  return result;
}

Status Runtime::PredictBatchAsync(PlanId id, std::vector<std::string> inputs,
                                  BatchCallback callback, size_t max_batch) {
  std::shared_ptr<ModelPlan> plan = GetPlan(id);
  if (plan == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (callback == nullptr) {
    return Status::InvalidArgument("null callback");
  }
  if (inputs.empty()) {
    callback(Status::OK(), {});
    return Status::OK();
  }
  auto job = std::make_shared<BatchJob>();
  job->plan = std::move(plan);
  job->inputs = std::move(inputs);
  job->results.assign(job->inputs.size(), 0.0f);
  job->remaining.store(job->inputs.size());
  job->callback = std::move(callback);

  // Sub-batch size: fill every executor that serves this plan, but never
  // exceed max_batch.
  size_t parallelism = 1;
  WorkQueue* queue = QueueForPlan(id, &parallelism);
  const size_t n = job->inputs.size();
  size_t chunk = (n + parallelism - 1) / parallelism;
  if (max_batch > 0) {
    chunk = std::min(chunk, max_batch);
  }
  chunk = std::max<size_t>(1, chunk);
  {
    std::lock_guard<std::mutex> lock(queue->mu);
    for (size_t begin = 0; begin < n; begin += chunk) {
      WorkItem item;
      item.job = job;
      item.begin = begin;
      item.end = std::min(n, begin + chunk);
      queue->items.push_back(std::move(item));
    }
  }
  queue->cv.notify_all();
  return Status::OK();
}

Result<std::vector<float>> Runtime::PredictBatch(
    PlanId id, const std::vector<std::string>& inputs, size_t max_batch) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::vector<float> scores;
  Status submit = PredictBatchAsync(
      id, inputs,
      [&](Status s, std::span<const float> results) {
        std::lock_guard<std::mutex> lock(mu);
        status = std::move(s);
        scores.assign(results.begin(), results.end());
        done = true;
        cv.notify_one();
      },
      max_batch);
  if (!submit.ok()) {
    return submit;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  if (!status.ok()) {
    return status;
  }
  return scores;
}

void Runtime::ExecutorLoop(WorkQueue* queue) {
  // Executor-private pooled state: the paper's per-core ExecContext.
  VectorPool pool;
  ExecContext ctx(&pool);
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue->mu);
      queue->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !queue->items.empty();
      });
      if (queue->items.empty()) {
        if (stop_.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      item = std::move(queue->items.front());
      queue->items.pop_front();
    }
    BatchJob& job = *item.job;
    for (size_t i = item.begin; i < item.end; ++i) {
      Result<float> r = ExecutePlan(*job.plan, job.inputs[i], ctx);
      if (r.ok()) {
        job.results[i] = *r;
      } else {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (job.first_error.ok()) {
          job.first_error = r.status();
        }
      }
    }
    const size_t count = item.end - item.begin;
    if (job.remaining.fetch_sub(count) == count) {
      Status status;
      {
        std::lock_guard<std::mutex> lock(job.error_mu);
        status = job.first_error;
      }
      job.callback(status, std::span<const float>(job.results));
    }
  }
}

std::vector<Reservation> Runtime::reservations() const {
  std::shared_lock lock(registry_mu_);
  return reservations_;
}

}  // namespace pretzel
