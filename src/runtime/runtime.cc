#include "src/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/serialize.h"

namespace pretzel {

// One logical batch request. Executors decrement `remaining` as they finish
// sub-ranges; the last one out invokes the callback. Inputs and results are
// either owned (async submissions) or borrowed from a blocked synchronous
// caller (the span PredictBatch — no string copies, no result copy).
struct Runtime::BatchJob {
  std::shared_ptr<ModelPlan> plan;
  std::vector<std::string> owned_inputs;
  // Binary batch framing: per-record views into the caller's wire buffer
  // (the caller blocks, so the buffer outlives the job).
  std::vector<std::string_view> owned_views;
  std::vector<float> owned_results;
  // Exactly one of these two is set: string records (owned or borrowed
  // from a blocked caller) or borrowed record views (text or binary wire
  // bytes).
  const std::string* str_inputs = nullptr;
  const std::string_view* view_inputs = nullptr;
  float* results = nullptr;
  size_t count = 0;
  std::atomic<size_t> remaining{0};
  BatchCallback callback;
  // Absolute expiry shared by every chunk; checked between quanta so a
  // deadline that dies mid-batch stops burning executors on the remainder.
  int64_t deadline_ns = 0;

  Mutex error_mu;
  Status first_error GUARDED_BY(error_mu);  // OK unless some record failed.
};

// Per-plan metric reservoirs are windowed: SampleStats keeps exact samples,
// so unbounded Add() on the dispatch path would grow forever. When a
// shard's window fills, its stats restart; percentiles describe the most
// recent window. The budget is split across a plan's shards, keeping total
// retained samples near kMetricsWindow per plan — up to the 256-sample
// per-shard floor, which preserves percentile fidelity for groups with
// many executors at the cost of a proportionally larger total window.
constexpr size_t kMetricsWindow = 4096;

// Capacity of each group's runnable rotation ring; a plan occupies at most
// one slot (the `scheduled` claim), so this bounds plans per group.
constexpr size_t kRunnableRingCapacity = 8192;

static void AddWindowed(SampleStats& stats, double value, size_t window) {
  if (stats.count() >= window) {
    stats = SampleStats();
  }
  stats.Add(value);
}

static void MergeStats(SampleStats& into, const SampleStats& from) {
  for (const double sample : from.samples()) {
    into.Add(sample);
  }
}

// Retry-after plumbing: every dispatch folds its queue wait into the plan's
// EWMA (alpha 1/8); a ResourceExhausted rejection attaches that estimate,
// floored at 1us so callers can test `retry_after_us() > 0` for presence.
static void RecordQueueDelay(std::atomic<int64_t>& ewma, int64_t wait_us) {
  const int64_t prev = ewma.load(std::memory_order_relaxed);
  ewma.store(prev + (wait_us - prev) / 8, std::memory_order_relaxed);
}

static int64_t RetryAfterHintUs(const std::atomic<int64_t>& ewma) {
  return std::max<int64_t>(1, ewma.load(std::memory_order_relaxed));
}

// Time-spent attribution for a deadline drop: where the budget went is
// something only the dropping tier knows. `enqueue_ns` == 0 means the work
// never entered a queue (admission-time drop). The machine-readable stage
// rides the status so ShardRouter's health accounting can tell "arrived
// already dead" (not this shard's fault) from "died in this shard".
static Status ExpiredStatus(const char* stage, DeadlineStage stage_tag,
                            int64_t now_ns, int64_t deadline_ns,
                            int64_t enqueue_ns) {
  std::string msg = std::string(stage) + ", " +
                    std::to_string((now_ns - deadline_ns) / 1000) +
                    "us past deadline";
  if (enqueue_ns > 0) {
    msg += " after " + std::to_string((now_ns - enqueue_ns) / 1000) +
           "us queued";
  }
  return Status::DeadlineExceeded(std::move(msg)).WithDeadlineStage(stage_tag);
}

// One executor's slice of a plan's latency/batch reservoirs. Only its
// owning executor writes it (one lock/unlock per dispatch, uncontended
// unless a GetMetrics snapshot is copying this exact shard), so metric
// recording never serializes executors against each other or against
// snapshots.
struct Runtime::MetricShard {
  Mutex mu;
  SampleStats batch_records GUARDED_BY(mu);
  SampleStats queue_wait_us GUARDED_BY(mu);
  SampleStats single_latency_us GUARDED_BY(mu);
};

// One link of a plan's overflow spill: a producer's burst remainder, packed
// into a ring segment chained FIFO behind the bounded event ring through
// the lock-free Vyukov MPSC queue. Sized exactly to the call's spilled
// events (trailing storage, one allocation) because the dominant spill
// producer is a single-event enqueue: a fixed-capacity segment would pay
// for dead Event constructions and kilobytes of slack per spilled single —
// a fixed per-event tax that measurably compresses the coalescing win.
// Producer-created on the (rare) spill path, consumer-destroyed after its
// events are drained or bulk-refilled into the ring.
struct Runtime::SpillSegment : MpscNode {
  size_t count = 0;

  Event* events() { return reinterpret_cast<Event*>(this + 1); }

  // Moves events[0, n) out of `src` into the trailing storage.
  static SpillSegment* Create(Event* src, size_t n) {
    static_assert(alignof(Event) <= alignof(SpillSegment),
                  "trailing Event storage would be misaligned");
    void* mem = ::operator new(sizeof(SpillSegment) + n * sizeof(Event));
    auto* segment = new (mem) SpillSegment();
    segment->count = n;
    for (size_t i = 0; i < n; ++i) {
      new (&segment->events()[i]) Event(std::move(src[i]));
    }
    return segment;
  }

  // Destroys every slot (moved-from ones included; at shutdown undrained
  // slots still hold events whose callbacks never ran — the same semantics
  // the stranded deque had).
  static void Destroy(SpillSegment* segment) {
    for (size_t i = 0; i < segment->count; ++i) {
      segment->events()[i].~Event();
    }
    segment->~SpillSegment();
    ::operator delete(segment);
  }
};

// An executor group: the threads draining one set of plans (the shared pool,
// or one reservation's dedicated executors) and the round-robin rotation of
// plans with queued events.
struct Runtime::ExecGroup {
  // Ring capacity bounds plans per group: the shared group gets the full
  // rotation in lock-free mode; a reserved group rotates exactly one plan,
  // and the mutex baseline never touches the ring at all (capacity 2, the
  // ring's minimum, instead of ~128KB of dead cells).
  explicit ExecGroup(size_t ring_capacity) : runnable_ring(ring_capacity) {}

  size_t num_executors = 1;
  size_t spawned = 0;  // Shard indices handed to executors (startup only).
  std::atomic<size_t> plan_count{0};

  // Lock-free mode: the runnable rotation is an MPMC ring; executors park
  // on the eventcount, so producers skip the kernel while executors are
  // busy. runnable_count mirrors the ring's occupancy for the adaptive
  // linger's "does anyone else have work" test.
  BoundedMpmcRing<PlanQueue*> runnable_ring;
  EventCount ec;
  std::atomic<size_t> runnable_count{0};

  // Mutex baseline (lockfree_scheduler = false): the PR-2 design, every
  // enqueue/dispatch serializes here. mu also guards the PlanQueue
  // mutex-mode fields (events, m_queued_chunks, m_runnable, m_lingering) of
  // every plan in this group — a cross-object invariant Clang's analysis
  // cannot express (GUARDED_BY on PlanQueue would name pq->group->mu, and
  // the analysis has no alias tracking to match it at use sites), so those
  // fields carry a documenting comment instead of an annotation.
  Mutex mu;
  std::condition_variable cv;
  std::deque<PlanQueue*> runnable GUARDED_BY(mu);
};

// Per-plan scheduler state. `plan` and the policy fields are written once
// under registry_mu_ before the queue is first published, and read-only
// afterwards.
//
// Lock-free mode: producers admit through the atomic `queued` counter, then
// publish into `ring` (bounded MPSC; bursts spill to the `spill` chain of
// ring segments, which stays FIFO-ordered after the ring's contents). The
// `scheduled` flag keeps the plan at most once in the group's runnable
// rotation; whoever pops it from the rotation is the queue's single
// consumer until it re-publishes or releases the claim. `held` stashes a
// chunk event the consumer popped while coalescing singles (consumer-
// private; ownership transfers with the claim).
struct Runtime::PlanQueue {
  explicit PlanQueue(size_t ring_capacity) : ring(ring_capacity) {}

  // Frees spill segments stranded at shutdown (their events' callbacks are
  // never invoked — the same semantics the stranded deque had).
  ~PlanQueue() {
    if (spill_cur != nullptr) {
      SpillSegment::Destroy(spill_cur);
    }
    while (MpscNode* node = spill.TryPop()) {
      SpillSegment::Destroy(static_cast<SpillSegment*>(node));
    }
  }

  PlanId id = 0;
  std::shared_ptr<ModelPlan> plan;
  ExecGroup* group = nullptr;
  bool reserved = false;
  size_t max_batch = 1;
  int64_t max_delay_us = 0;
  size_t shard_window = kMetricsWindow;

  // ---- Versioned lifecycle ----
  // Retire() publishes `retired`, then waits for scheduler occupancy and
  // `lifecycle_refs` to drain before dropping `plan`. Every path that
  // touches `plan` outside the registry lock holds a ref: admission gates
  // take theirs BEFORE loading `retired` (both seq_cst — the classic
  // store-buffering pair, so either the admitter sees the flag or the
  // retirer sees the ref), and executors take theirs for each gathered
  // quantum BEFORE decrementing `queued` (before releasing the group mutex
  // in the baseline), so gathered-but-executing events are never in neither
  // count.
  std::atomic<bool> retired{false};
  std::atomic<int64_t> lifecycle_refs{0};
  // Immutable name copy: GetMetrics stays readable after Retire drops
  // `plan`.
  std::string plan_name;

  // Admission half of the lifecycle protocol above. On false the ref is
  // already released; on true the caller must ReleaseLifecycle after its
  // last touch of `plan` (for queued work: after the enqueue publishes —
  // admitted events are then covered by the occupancy drain instead).
  bool AdmitLifecycle() {
    lifecycle_refs.fetch_add(1, std::memory_order_seq_cst);
    if (retired.load(std::memory_order_seq_cst)) {
      lifecycle_refs.fetch_sub(1, std::memory_order_seq_cst);
      return false;
    }
    return true;
  }
  void ReleaseLifecycle() {
    lifecycle_refs.fetch_sub(1, std::memory_order_seq_cst);
  }

  // ---- Lock-free mode ----
  BoundedMpmcRing<Event> ring;
  // Overflow spill: FIFO chain of SpillSegments (wait-free producer push);
  // spill_cur/spill_idx are the consumer's private cursor into the segment
  // it is draining (ownership travels with the dispatch claim).
  MpscIntrusiveQueue spill;
  SpillSegment* spill_cur = nullptr;
  size_t spill_idx = 0;
  // Spilled events not yet returned or refilled into the ring; incremented
  // before a segment is published so it never underflows.
  std::atomic<size_t> overflow_count{0};
  // Events admitted and not yet gathered into a dispatch quantum; doubles
  // as the backpressure cap check and the queue_depth metric.
  std::atomic<size_t> queued{0};
  // Chunk events among them; the adaptive linger must end as soon as batch
  // work exists anywhere in the queue.
  std::atomic<size_t> chunk_count{0};
  // True while the plan is in the runnable rotation or owned by an
  // executor; replaces PR-2's `runnable` bookkeeping under the group mutex.
  std::atomic<bool> scheduled{false};
  // True while an executor lingers for this plan's batch to fill; enqueues
  // then NotifyAll so the linger predicate is re-evaluated.
  std::atomic<bool> lingering{false};
  bool held_valid = false;  // Quantum-owner-private chunk stash.
  Event held;

  // ---- Mutex baseline (guarded by group->mu; see ExecGroup::mu for why
  // this is a comment, not a GUARDED_BY) ----
  std::deque<Event> events;
  size_t m_queued_chunks = 0;
  bool m_runnable = false;
  bool m_lingering = false;

  // ---- Counters (relaxed atomics, both modes) ----
  // Enqueue->dispatch delay EWMA (alpha 1/8), written by whichever executor
  // dispatches; the retry-after hint on this plan's rejections. Racy
  // updates are fine — it is an estimate.
  std::atomic<int64_t> queue_delay_ewma_us{0};
  std::atomic<uint64_t> inline_predictions{0};
  std::atomic<uint64_t> enqueued{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> dispatches{0};
  std::atomic<uint64_t> coalesced{0};
  std::atomic<uint64_t> singles_batched{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> expired_admission{0};
  std::atomic<uint64_t> expired_dequeue{0};
  std::atomic<uint64_t> expired_quantum{0};
  std::atomic<uint64_t> shed_deadline{0};
  std::vector<std::unique_ptr<MetricShard>> shards;  // One per group executor.
};

Runtime::Runtime(ObjectStore* store, const RuntimeOptions& options)
    : store_(store),
      options_([&] {
        RuntimeOptions o = options;
        o.num_executors = std::max<size_t>(1, o.num_executors);
        o.default_max_batch = std::max<size_t>(1, o.default_max_batch);
        o.event_ring_capacity = std::max<size_t>(8, o.event_ring_capacity);
        return o;
      }()),
      caller_contexts_(&caller_pool_, /*reuse_enabled=*/true) {
  if (options_.subplan_cache_bytes > 0) {
    caller_cache_ = std::make_unique<SubPlanCache>(options_.subplan_cache_bytes);
  }
  shared_group_ = std::make_unique<ExecGroup>(
      options_.lockfree_scheduler ? kRunnableRingCapacity : 2);
  shared_group_->num_executors = options_.num_executors;
  // No other thread exists yet; the lock only discharges SpawnExecutor's
  // REQUIRES(registry_mu_) (executors never take the registry lock, so
  // spawning under it cannot deadlock).
  WriterMutexLock lock(registry_mu_);
  for (size_t i = 0; i < options_.num_executors; ++i) {
    SpawnExecutor(shared_group_.get());
  }
}

Runtime::~Runtime() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    ReaderMutexLock lock(registry_mu_);
    if (options_.lockfree_scheduler) {
      shared_group_->ec.NotifyAll();
      for (const auto& group : reserved_groups_) {
        group->ec.NotifyAll();
      }
    } else {
      {
        MutexLock glock(shared_group_->mu);
        shared_group_->cv.notify_all();
      }
      for (const auto& group : reserved_groups_) {
        MutexLock glock(group->mu);
        group->cv.notify_all();
      }
    }
  }
  for (auto& thread : threads_) {
    thread.join();
  }
}

void Runtime::SpawnExecutor(ExecGroup* group) {
  SubPlanCache* cache = nullptr;
  if (options_.subplan_cache_bytes > 0) {
    executor_caches_.push_back(
        std::make_unique<SubPlanCache>(options_.subplan_cache_bytes));
    cache = executor_caches_.back().get();
  }
  executor_pools_.push_back(std::make_unique<VectorPool>());
  VectorPool* pool = executor_pools_.back().get();
  const size_t shard_idx = group->spawned++;
  threads_.emplace_back([this, group, cache, pool, shard_idx] {
    ExecutorLoop(group, cache, pool, shard_idx);
  });
}

Result<Runtime::PlanId> Runtime::Register(std::shared_ptr<ModelPlan> plan,
                                          const PlanRegistration& registration) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null plan");
  }
  WriterMutexLock lock(registry_mu_);
  const PlanId id = plan_queues_.size();
  // The mutex baseline never touches the event ring; don't pay ~ring_cap *
  // sizeof(Event) per plan for dead cells there.
  auto pq = std::make_unique<PlanQueue>(
      options_.lockfree_scheduler ? options_.event_ring_capacity : 2);
  pq->id = id;
  pq->plan = std::move(plan);
  pq->plan_name = pq->plan->name();
  pq->max_batch = registration.max_batch > 0 ? registration.max_batch
                                             : options_.default_max_batch;
  pq->max_delay_us = registration.max_delay_us >= 0
                         ? registration.max_delay_us
                         : options_.default_max_delay_us;
  const size_t cores = std::min(registration.reserve_cores,
                                options_.max_reserved_cores_per_plan);
  if (cores > 0) {
    auto group = std::make_unique<ExecGroup>(2);  // Rotates exactly one plan.
    group->num_executors = cores;
    group->plan_count.store(1, std::memory_order_relaxed);
    pq->group = group.get();
    pq->reserved = true;
    reservations_.push_back(Reservation{id, cores});
    // Dedicated executors are extra threads: reserving never shrinks the
    // shared pool.
    for (size_t i = 0; i < cores; ++i) {
      SpawnExecutor(group.get());
    }
    reserved_groups_.push_back(std::move(group));
  } else {
    // Each plan occupies at most one runnable-ring slot, so the ring
    // capacity bounds plans per group.
    if (shared_group_->plan_count.fetch_add(1, std::memory_order_relaxed) + 1 >
        kRunnableRingCapacity) {
      shared_group_->plan_count.fetch_sub(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("shared executor group plan limit");
    }
    pq->group = shared_group_.get();
  }
  const size_t shard_count = std::max<size_t>(1, pq->group->num_executors);
  pq->shard_window = std::max<size_t>(256, kMetricsWindow / shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    pq->shards.push_back(std::make_unique<MetricShard>());
  }
  plan_queues_.push_back(std::move(pq));
  return id;
}

Runtime::PlanQueue* Runtime::GetQueue(PlanId id) const {
  ReaderMutexLock lock(registry_mu_);
  return id < plan_queues_.size() ? plan_queues_[id].get() : nullptr;
}

const std::atomic<int64_t>* Runtime::QueueDelayCounter(PlanId id) const {
  PlanQueue* pq = GetQueue(id);
  return pq == nullptr ? nullptr : &pq->queue_delay_ewma_us;
}

Status Runtime::Retire(PlanId id) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (pq->retired.exchange(true, std::memory_order_seq_cst)) {
    return Status::OK();  // Already retired; the first caller drained.
  }
  // Drain. The check order inside each pass is load-bearing: scheduler
  // occupancy FIRST, lifecycle_refs SECOND. Executors take their quantum
  // ref before decrementing `queued` (before leaving the group mutex in the
  // baseline) and admitters take theirs before loading `retired`, so any
  // in-flight work the occupancy check misses is visible to the refs check
  // of the same pass.
  for (;;) {
    bool drained;
    if (options_.lockfree_scheduler) {
      drained = pq->queued.load(std::memory_order_seq_cst) == 0 &&
                pq->overflow_count.load(std::memory_order_seq_cst) == 0 &&
                !pq->scheduled.load(std::memory_order_seq_cst);
    } else {
      MutexLock lock(pq->group->mu);
      drained = pq->events.empty() && !pq->m_runnable;
    }
    if (drained && pq->lifecycle_refs.load(std::memory_order_seq_cst) == 0) {
      break;
    }
    std::this_thread::yield();
  }
  // No admission can now succeed and no executor holds the plan: drop the
  // reference, so params the ObjectStore has Released can actually leave
  // the heap. The PlanQueue shell stays (id/counter pointer stability).
  pq->plan.reset();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Enqueue protocol. Cap check, timestamping, chunk accounting, runnable
// publication, and the wakeup rule live here and only here.

Status Runtime::AdmitDeadline(PlanQueue* pq, int64_t deadline_ns, size_t n) {
  if (deadline_ns <= 0) {
    return Status::OK();
  }
  const int64_t now = NowNs();
  if (now >= deadline_ns) {
    pq->expired_admission.fetch_add(n, std::memory_order_relaxed);
    return ExpiredStatus("at admission", DeadlineStage::kAdmission, now,
                         deadline_ns, /*enqueue_ns=*/0);
  }
  // The estimate forecasts the wait behind events queued NOW; with an empty
  // queue it is history, not forecast, and acting on it wedges the valve
  // open: shed everything -> nothing dispatches -> the EWMA never
  // refreshes -> shed forever, starving an idle plan (observed as goodput
  // collapse in bench_resilience's post-burst phase).
  // relaxed: queued is a monotonic-noise admission heuristic; a stale read
  // only mis-sheds or mis-admits one request, never corrupts state.
  if (options_.deadline_admission &&
      pq->queued.load(std::memory_order_relaxed) > 0) {
    const int64_t est_us =
        pq->queue_delay_ewma_us.load(std::memory_order_relaxed);
    const int64_t remaining_us = (deadline_ns - now) / 1000;
    if (est_us > remaining_us) {
      // Doomed-by-estimate: shed NOW with a retryable status instead of
      // queueing work that will expire — early ResourceExhausted beats late
      // DeadlineExceeded (the caller can fail over while budget remains).
      pq->shed_deadline.fetch_add(n, std::memory_order_relaxed);
      return Status::ResourceExhausted(
                 "plan " + std::to_string(pq->id) + " queue-delay estimate " +
                 std::to_string(est_us) + "us exceeds remaining deadline " +
                 std::to_string(remaining_us) + "us")
          .WithRetryAfterUs(RetryAfterHintUs(pq->queue_delay_ewma_us));
    }
  }
  return Status::OK();
}

Status Runtime::EnqueueEvents(PlanQueue* pq, Event* events, size_t n) {
  if (n == 0) {
    return Status::OK();
  }
  if (options_.lockfree_scheduler) {
    return EnqueueLockFree(pq, events, n);
  }
  // PR-2 mutex baseline: every producer serializes on the group mutex.
  ExecGroup* group = pq->group;
  bool wake_all = n > 1;
  {
    MutexLock lock(group->mu);
    if (options_.max_queued_events_per_plan > 0 &&
        pq->events.size() + n > options_.max_queued_events_per_plan) {
      pq->rejected.fetch_add(n, std::memory_order_relaxed);
      return Status::ResourceExhausted(
                 "plan " + std::to_string(pq->id) + " queue over " +
                 std::to_string(options_.max_queued_events_per_plan) +
                 " events")
          .WithRetryAfterUs(RetryAfterHintUs(pq->queue_delay_ewma_us));
    }
    const int64_t now = NowNs();
    for (size_t i = 0; i < n; ++i) {
      events[i].enqueue_ns = now;
      if (events[i].job != nullptr) {
        ++pq->m_queued_chunks;
      }
      pq->events.push_back(std::move(events[i]));
    }
    pq->enqueued.fetch_add(n, std::memory_order_relaxed);
    if (!pq->m_runnable) {
      pq->m_runnable = true;
      group->runnable.push_back(pq);
    }
    // A lingering executor must re-check its predicate; notify_one could be
    // swallowed by an idle sibling whose predicate is false.
    wake_all |= pq->m_lingering;
  }
  if (wake_all) {
    group->cv.notify_all();
  } else {
    group->cv.notify_one();
  }
  return Status::OK();
}

Status Runtime::EnqueueLockFree(PlanQueue* pq, Event* events, size_t n) {
  ExecGroup* group = pq->group;
  // Admission: an atomic counter replaces the cap check PR-2 made under the
  // group mutex. With a cap, admit by CAS so a rejected submission never
  // even transiently inflates `queued` (a blind fetch_add+undo could make a
  // concurrent fitting submission observe phantom occupancy and bounce).
  const size_t cap = options_.max_queued_events_per_plan;
  if (cap > 0) {
    size_t queued_now = pq->queued.load(std::memory_order_seq_cst);
    for (;;) {
      if (queued_now + n > cap) {
        pq->rejected.fetch_add(n, std::memory_order_relaxed);
        return Status::ResourceExhausted("plan " + std::to_string(pq->id) +
                                         " queue over " + std::to_string(cap) +
                                         " events")
            .WithRetryAfterUs(RetryAfterHintUs(pq->queue_delay_ewma_us));
      }
      if (pq->queued.compare_exchange_weak(queued_now, queued_now + n,
                                           std::memory_order_seq_cst)) {
        break;
      }
    }
  } else {
    pq->queued.fetch_add(n, std::memory_order_seq_cst);
  }
  const int64_t now = NowNs();
  size_t chunks = 0;
  for (size_t i = 0; i < n; ++i) {
    events[i].enqueue_ns = now;
    if (events[i].job != nullptr) {
      ++chunks;
    }
  }
  if (chunks > 0) {
    pq->chunk_count.fetch_add(chunks, std::memory_order_seq_cst);
  }
  // While spilled events exist, new ones must queue behind them (not jump
  // ahead through the ring), so FIFO degrades no further than the spill —
  // and once one event of this call spills, the rest follow it into the
  // chain, keeping the call's events contiguous per segment.
  size_t i = 0;
  while (i < n && pq->overflow_count.load(std::memory_order_acquire) == 0 &&
         !PRETZEL_FAULT_POINT("runtime.ring_full",
                              static_cast<int64_t>(pq->id)) &&
         pq->ring.TryPush(std::move(events[i]))) {
    ++i;
  }
  if (i < n) {
    // Count first: the consumer decrements only for events whose segment
    // publication it observed, so the counter never underflows; it may
    // transiently read count > 0 with the chain still mid-push, which it
    // treats exactly like empty.
    pq->overflow_count.fetch_add(n - i, std::memory_order_release);
    pq->spill.Push(SpillSegment::Create(events + i, n - i));
  }
  pq->enqueued.fetch_add(n, std::memory_order_relaxed);
  // Publish: first producer to find the plan unclaimed puts it in the
  // rotation; everyone else just wakes an executor.
  if (!pq->scheduled.exchange(true, std::memory_order_seq_cst)) {
    PushRunnable(group, pq);
  }
  if (n > 1 || pq->lingering.load(std::memory_order_seq_cst)) {
    group->ec.NotifyAll();
  } else {
    group->ec.NotifyOne();
  }
  return Status::OK();
}

Status Runtime::Enqueue(PlanQueue* pq, std::vector<Event> events) {
  return EnqueueEvents(pq, events.data(), events.size());
}

Status Runtime::EnqueueOne(PlanQueue* pq, Event event) {
  return EnqueueEvents(pq, &event, 1);
}

void Runtime::PushRunnable(ExecGroup* group, PlanQueue* pq) {
  group->runnable_count.fetch_add(1, std::memory_order_seq_cst);
  // A plan occupies at most one slot and Register bounds plans per group by
  // the ring capacity, so this cannot spin forever.
  PlanQueue* item = pq;
  while (!group->runnable_ring.TryPush(std::move(item))) {
    std::this_thread::yield();
  }
}

bool Runtime::PopRunnable(ExecGroup* group, PlanQueue** pq) {
  if (group->runnable_ring.TryPop(pq)) {
    group->runnable_count.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  return false;
}

// Quantum-owner only: held stash first, then the lock-free ring, then the
// spill chain (whose remainder is bulk-refilled into the ring so subsequent
// pops return to the single-CAS path).
bool Runtime::PopEvent(PlanQueue* pq, Event* out) {
  if (pq->held_valid) {
    *out = std::move(pq->held);
    pq->held_valid = false;
    return true;
  }
  if (pq->ring.TryPop(out)) {
    return true;
  }
  if (pq->spill_cur != nullptr ||
      pq->overflow_count.load(std::memory_order_acquire) > 0) {
    if (PopSpill(pq, out)) {
      return true;
    }
  }
  // A producer may have published between the ring check and the (empty)
  // spill check.
  return pq->ring.TryPop(out);
}

// Quantum-owner only. Returns the oldest spilled event, then drains as much
// of the chain as fits back into the ring (bulk refill) so the spill is an
// excursion, not a new steady state. A transiently inconsistent chain (a
// producer between its exchange and its link store) reads as empty; the
// caller's admitted-but-unpublished handling covers it.
bool Runtime::PopSpill(PlanQueue* pq, Event* out) {
  if (pq->spill_cur == nullptr) {
    MpscNode* node = pq->spill.TryPop();
    if (node == nullptr) {
      return false;
    }
    pq->spill_cur = static_cast<SpillSegment*>(node);
    pq->spill_idx = 0;
  }
  SpillSegment* segment = pq->spill_cur;
  *out = std::move(segment->events()[pq->spill_idx++]);
  size_t moved = 1;
  for (;;) {
    while (pq->spill_idx < segment->count &&
           pq->ring.TryPush(std::move(segment->events()[pq->spill_idx]))) {
      ++pq->spill_idx;
      ++moved;
    }
    if (pq->spill_idx < segment->count) {
      break;  // Ring full; the cursor resumes here next quantum.
    }
    SpillSegment::Destroy(segment);
    pq->spill_cur = nullptr;
    MpscNode* node = pq->spill.TryPop();
    if (node == nullptr) {
      break;
    }
    segment = static_cast<SpillSegment*>(node);
    pq->spill_cur = segment;
    pq->spill_idx = 0;
  }
  pq->overflow_count.fetch_sub(moved, std::memory_order_release);
  return true;
}

// ---------------------------------------------------------------------------
// Public prediction entry points.

Result<float> Runtime::Predict(PlanId id, std::string_view input,
                               int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (!pq->reserved) {
    // Inline fast path: a synchronous single on an unreserved plan gains
    // nothing from a queue hop. No shed check either — there is no queue
    // delay to estimate — but already-expired work is still refused.
    if (deadline_ns > 0) {
      const int64_t now = NowNs();
      if (now >= deadline_ns) {
        pq->expired_admission.fetch_add(1, std::memory_order_relaxed);
        return ExpiredStatus("at admission", DeadlineStage::kAdmission, now,
                             deadline_ns, 0);
      }
    }
    if (!pq->AdmitLifecycle()) {
      return Status::NotFound("plan " + std::to_string(id) + " retired");
    }
    pq->inline_predictions.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<ExecContext> ctx = caller_contexts_.Acquire();
    ctx->subplan_cache = caller_cache_.get();
    Result<float> result = ExecutePlan(*pq->plan, input, *ctx);
    caller_contexts_.Release(std::move(ctx));
    pq->ReleaseLifecycle();
    return result;
  }
  // Reserved plan: ride the dedicated queue so sync traffic is served by
  // (and accounted against) the reserved executors, not the caller thread.
  if (Status admit = AdmitDeadline(pq, deadline_ns, 1); !admit.ok()) {
    return admit;
  }
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<float> result = Status::Error("pending");
  } waiter;
  Event event;
  event.input = std::string(input);
  event.deadline_ns = deadline_ns;
  event.done = [&waiter](Result<float> r) {
    std::lock_guard<std::mutex> lock(waiter.mu);
    waiter.result = std::move(r);
    waiter.done = true;
    waiter.cv.notify_one();
  };
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  Status submitted = EnqueueOne(pq, std::move(event));
  pq->ReleaseLifecycle();
  if (!submitted.ok()) {
    return submitted;
  }
  std::unique_lock<std::mutex> lock(waiter.mu);
  waiter.cv.wait(lock, [&] { return waiter.done; });
  return std::move(waiter.result);
}

Result<float> Runtime::PredictBinary(PlanId id,
                                     std::span<const uint8_t> record,
                                     int64_t deadline_ns) {
  // One wire record, borrowed: the executor validates it in place and an
  // aligned dense payload aliases straight into the kernels.
  return Predict(id,
                 std::string_view(reinterpret_cast<const char*>(record.data()),
                                  record.size()),
                 deadline_ns);
}

Status Runtime::PredictAsync(PlanId id, std::string input,
                             SingleCallback callback, int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (callback == nullptr) {
    return Status::InvalidArgument("null callback");
  }
  if (Status admit = AdmitDeadline(pq, deadline_ns, 1); !admit.ok()) {
    return admit;
  }
  Event event;
  event.input = std::move(input);
  event.done = std::move(callback);
  event.deadline_ns = deadline_ns;
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  Status submitted = EnqueueOne(pq, std::move(event));
  pq->ReleaseLifecycle();
  return submitted;
}

// Sub-batch size: fill every executor that serves this plan, but never
// exceed max_batch. Each chunk is one scheduling quantum, so other plans
// interleave between chunks instead of waiting out the whole batch.
Status Runtime::SubmitBatchJob(PlanQueue* pq, std::shared_ptr<BatchJob> job,
                               size_t max_batch) {
  const size_t parallelism = std::max<size_t>(1, pq->group->num_executors);
  const size_t n = job->count;
  size_t chunk = (n + parallelism - 1) / parallelism;
  if (max_batch > 0) {
    chunk = std::min(chunk, max_batch);
  }
  chunk = std::max<size_t>(1, chunk);
  std::vector<Event> events;
  events.reserve((n + chunk - 1) / chunk);
  for (size_t begin = 0; begin < n; begin += chunk) {
    Event event;
    event.job = job;
    event.begin = begin;
    event.end = std::min(n, begin + chunk);
    events.push_back(std::move(event));
  }
  return Enqueue(pq, std::move(events));
}

Status Runtime::PredictBatchAsync(PlanId id, std::vector<std::string> inputs,
                                  BatchCallback callback, size_t max_batch,
                                  int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (callback == nullptr) {
    return Status::InvalidArgument("null callback");
  }
  if (inputs.empty()) {
    callback(Status::OK(), {});
    return Status::OK();
  }
  if (Status admit = AdmitDeadline(pq, deadline_ns, inputs.size());
      !admit.ok()) {
    return admit;
  }
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  auto job = std::make_shared<BatchJob>();
  job->plan = pq->plan;
  job->owned_inputs = std::move(inputs);
  job->owned_results.assign(job->owned_inputs.size(), 0.0f);
  job->str_inputs = job->owned_inputs.data();
  job->results = job->owned_results.data();
  job->count = job->owned_inputs.size();
  job->remaining.store(job->count);
  job->callback = std::move(callback);
  job->deadline_ns = deadline_ns;
  Status submitted = SubmitBatchJob(pq, std::move(job), max_batch);
  pq->ReleaseLifecycle();
  return submitted;
}

// The synchronous borrowed-input protocol: submit, block until the last
// chunk's callback fires. Blocking is what makes borrowing safe — the
// caller's inputs and output span outlive every executor touch.
Status Runtime::SubmitBatchJobAndWait(PlanQueue* pq,
                                      std::shared_ptr<BatchJob> job,
                                      size_t max_batch) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  } waiter;
  job->callback = [&waiter](Status s, std::span<const float>) {
    std::lock_guard<std::mutex> lock(waiter.mu);
    waiter.status = std::move(s);
    waiter.done = true;
    waiter.cv.notify_one();
  };
  Status submit = SubmitBatchJob(pq, std::move(job), max_batch);
  if (!submit.ok()) {
    return submit;
  }
  std::unique_lock<std::mutex> lock(waiter.mu);
  waiter.cv.wait(lock, [&] { return waiter.done; });
  return waiter.status;
}

Status Runtime::PredictBatch(PlanId id, const std::vector<std::string>& inputs,
                             size_t max_batch, std::span<float> out,
                             int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (inputs.empty()) {
    return Status::OK();
  }
  if (out.size() < inputs.size()) {
    return Status::InvalidArgument("output span narrower than batch");
  }
  if (Status admit = AdmitDeadline(pq, deadline_ns, inputs.size());
      !admit.ok()) {
    return admit;
  }
  // Borrowed inputs/results: this caller blocks until the last chunk
  // completes, so the executors write scores straight through the caller's
  // span and read the caller's strings in place — no copy on either side.
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  auto job = std::make_shared<BatchJob>();
  job->plan = pq->plan;
  job->str_inputs = inputs.data();
  job->results = out.data();
  job->count = inputs.size();
  job->remaining.store(job->count);
  job->deadline_ns = deadline_ns;
  Status submitted = SubmitBatchJobAndWait(pq, std::move(job), max_batch);
  pq->ReleaseLifecycle();
  return submitted;
}

Status Runtime::PredictBatch(PlanId id, const std::string_view* inputs,
                             size_t n, size_t max_batch, std::span<float> out,
                             int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (n == 0) {
    return Status::OK();
  }
  if (out.size() < n) {
    return Status::InvalidArgument("output span narrower than batch");
  }
  if (Status admit = AdmitDeadline(pq, deadline_ns, n); !admit.ok()) {
    return admit;
  }
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  auto job = std::make_shared<BatchJob>();
  job->plan = pq->plan;
  job->view_inputs = inputs;
  job->results = out.data();
  job->count = n;
  job->remaining.store(n);
  job->deadline_ns = deadline_ns;
  Status submitted = SubmitBatchJobAndWait(pq, std::move(job), max_batch);
  pq->ReleaseLifecycle();
  return submitted;
}

Status Runtime::PredictBinary(PlanId id, std::span<const uint8_t> records,
                              size_t max_batch, std::span<float> out,
                              int64_t deadline_ns) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  // Frame the wire buffer into per-record views — a header walk, no record
  // is parsed or copied — then ride the borrowed-views batch path: aligned
  // dense payloads are gathered straight into the SoA transpose.
  auto job = std::make_shared<BatchJob>();
  Status split = SplitBinaryBatch(
      std::string_view(reinterpret_cast<const char*>(records.data()),
                       records.size()),
      &job->owned_views);
  if (!split.ok()) {
    return split;
  }
  if (job->owned_views.empty()) {
    return Status::OK();
  }
  if (out.size() < job->owned_views.size()) {
    return Status::InvalidArgument("output span narrower than batch");
  }
  if (Status admit = AdmitDeadline(pq, deadline_ns, job->owned_views.size());
      !admit.ok()) {
    return admit;
  }
  if (!pq->AdmitLifecycle()) {
    return Status::NotFound("plan " + std::to_string(id) + " retired");
  }
  job->plan = pq->plan;
  job->view_inputs = job->owned_views.data();
  job->results = out.data();
  job->count = job->owned_views.size();
  job->remaining.store(job->count);
  job->deadline_ns = deadline_ns;
  Status submitted = SubmitBatchJobAndWait(pq, std::move(job), max_batch);
  pq->ReleaseLifecycle();
  return submitted;
}

Result<std::vector<float>> Runtime::PredictBatch(
    PlanId id, const std::vector<std::string>& inputs, size_t max_batch,
    int64_t deadline_ns) {
  std::vector<float> scores(inputs.size(), 0.0f);
  Status status = PredictBatch(id, inputs, max_batch, std::span<float>(scores),
                               deadline_ns);
  if (!status.ok()) {
    return status;
  }
  return scores;
}

// ---------------------------------------------------------------------------
// Executors.

// Adaptive linger, lock-free mode: the oldest single is already in the
// owner's hand, so the deadline is measured from its enqueue stamp exactly
// as PR-2 measured from the deque front. The owner parks on the group
// eventcount; any enqueue to this plan sees `lingering` and NotifyAlls, any
// enqueue elsewhere in the group raises runnable_count — both re-arm the
// predicate below.
void Runtime::LingerLockFree(ExecGroup* group, PlanQueue* pq,
                             int64_t oldest_ns) {
  const auto deadline = std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(oldest_ns + pq->max_delay_us * 1000));
  pq->lingering.store(true, std::memory_order_seq_cst);
  for (;;) {
    // relaxed: stop_ is a monotonic shutdown flag; a stale read only delays
    // linger exit by one iteration, and the destructor's NotifyAll forces a
    // re-check via the eventcount's seq_cst protocol.
    if (stop_.load(std::memory_order_relaxed) ||
        pq->queued.load(std::memory_order_seq_cst) >= pq->max_batch ||
        pq->chunk_count.load(std::memory_order_seq_cst) > 0 ||
        group->runnable_count.load(std::memory_order_seq_cst) > 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const uint64_t ticket = group->ec.PrepareWait();
    // relaxed: under a wait ticket; PrepareWait's seq_cst fence pairs with
    // the destructor's store(seq_cst)+NotifyAll, so a missed flag here still
    // wakes through the eventcount (no lost-wakeup).
    if (stop_.load(std::memory_order_relaxed) ||
        pq->queued.load(std::memory_order_seq_cst) >= pq->max_batch ||
        pq->chunk_count.load(std::memory_order_seq_cst) > 0 ||
        group->runnable_count.load(std::memory_order_seq_cst) > 0) {
      group->ec.CancelWait();
      break;
    }
    if (!group->ec.WaitUntil(ticket, deadline)) {
      break;  // Deadline: dispatch whatever has coalesced.
    }
  }
  pq->lingering.store(false, std::memory_order_seq_cst);
}

void Runtime::ExecutorLoop(ExecGroup* group, SubPlanCache* cache,
                           VectorPool* pool, size_t shard_idx) {
  // Executor-private pooled state: the paper's per-core ExecContext, with
  // this executor's own sub-plan materialization cache attached.
  ExecContext ctx(pool);
  ctx.subplan_cache = cache;
  if (!options_.lockfree_scheduler) {
    ExecutorLoopMutex(group, ctx, shard_idx);
    return;
  }
  std::vector<Event> batch;
  for (;;) {
    PlanQueue* pq = nullptr;
    if (!PopRunnable(group, &pq)) {
      // Park on the eventcount: re-check under a wait ticket so a publish
      // racing this gap falls straight through Wait.
      const uint64_t ticket = group->ec.PrepareWait();
      if (PopRunnable(group, &pq)) {
        group->ec.CancelWait();
      } else if (stop_.load(std::memory_order_seq_cst)) {
        group->ec.CancelWait();
        return;  // Fully drained.
      } else {
        group->ec.Wait(ticket);
        continue;
      }
    }
    // We hold the plan's dispatch quantum: single consumer of its queue.
    batch.clear();
    Event first;
    bool have = PopEvent(pq, &first);
    // Adaptive linger: if only a thin run of singles is waiting and no
    // other plan has work, wait out the plan's max-delay budget for more
    // arrivals to coalesce. Never delays when the system has other work.
    if (have && first.job == nullptr && pq->max_delay_us > 0 &&
        pq->max_batch > 1 &&
        pq->chunk_count.load(std::memory_order_seq_cst) == 0 &&
        group->runnable_count.load(std::memory_order_seq_cst) == 0 &&
        pq->queued.load(std::memory_order_seq_cst) < pq->max_batch) {
      LingerLockFree(group, pq, first.enqueue_ns);
    }
    // Gather one dispatch quantum: a single batch chunk, or a coalesced run
    // of up to max_batch queued singles (a chunk met mid-run is stashed in
    // `held` for the plan's next quantum).
    bool chunk_quantum = false;
    if (have) {
      if (first.job != nullptr) {
        chunk_quantum = true;
        batch.push_back(std::move(first));
      } else {
        batch.push_back(std::move(first));
        Event next;
        while (batch.size() < pq->max_batch && PopEvent(pq, &next)) {
          if (next.job != nullptr) {
            pq->held = std::move(next);
            pq->held_valid = true;
            break;
          }
          batch.push_back(std::move(next));
        }
      }
    }
    if (!batch.empty()) {
      // Quantum lifecycle ref, taken BEFORE the queued decrement below:
      // Retire's drain checks occupancy first and refs second, so gathered
      // events are never in neither count.
      pq->lifecycle_refs.fetch_add(1, std::memory_order_seq_cst);
      const int64_t dispatch_ns = NowNs();
      pq->dispatches.fetch_add(1, std::memory_order_relaxed);
      if (chunk_quantum) {
        pq->chunk_count.fetch_sub(1, std::memory_order_seq_cst);
      } else {
        pq->coalesced.fetch_add(batch.size(), std::memory_order_relaxed);
      }
      pq->queued.fetch_sub(batch.size(), std::memory_order_seq_cst);
      const size_t records = chunk_quantum
                                 ? batch.front().end - batch.front().begin
                                 : batch.size();
      const int64_t wait_ns = dispatch_ns - batch.front().enqueue_ns;
      RecordQueueDelay(pq->queue_delay_ewma_us, wait_ns / 1000);
      MetricShard& shard = *pq->shards[shard_idx];
      MutexLock lock(shard.mu);
      AddWindowed(shard.batch_records, static_cast<double>(records),
                  pq->shard_window);
      AddWindowed(shard.queue_wait_us, static_cast<double>(wait_ns) / 1e3,
                  pq->shard_window);
    }
    // Round-robin hand-off BEFORE executing: if events remain, the plan
    // goes back in the rotation (claim travels with the ring slot) so a
    // sibling can take its next quantum while we execute this one.
    // Otherwise release the claim, then re-check: a producer that enqueued
    // after our last pop saw scheduled == true and left publication to us.
    if (pq->held_valid || pq->queued.load(std::memory_order_seq_cst) > 0) {
      PushRunnable(group, pq);
      group->ec.NotifyOne();
    } else {
      pq->scheduled.store(false, std::memory_order_seq_cst);
      if (pq->queued.load(std::memory_order_seq_cst) > 0 &&
          !pq->scheduled.exchange(true, std::memory_order_seq_cst)) {
        PushRunnable(group, pq);
        group->ec.NotifyOne();
      }
    }
    if (batch.empty()) {
      // Admitted-but-unpublished producer race; the plan was re-published
      // above if its events are still pending.
      std::this_thread::yield();
      continue;
    }
    ExecuteQuantum(pq, batch, ctx, shard_idx);
    pq->ReleaseLifecycle();
  }
}

// The PR-2 scheduler, kept as the bench_contention baseline: every enqueue,
// dispatch, and wakeup serializes on group->mu.
void Runtime::ExecutorLoopMutex(ExecGroup* group, ExecContext& ctx,
                                size_t shard_idx) {
  std::vector<Event> batch;
  while (true) {
    batch.clear();
    PlanQueue* pq = nullptr;
    size_t records = 0;
    double wait_us = 0.0;
    bool wake_sibling = false;
    {
      MutexLock lock(group->mu);
      // Explicit predicate loop (not the lambda-predicate overload) so the
      // analysis sees the guarded `runnable` reads inside this locked scope.
      // relaxed: stop_ is a monotonic shutdown flag; the mutex/cv hand-off
      // already orders the surrounding state, the load needs only eventual
      // visibility (the destructor notifies after storing it).
      while (!stop_.load(std::memory_order_relaxed) &&
             group->runnable.empty()) {
        group->cv.wait(lock.native());
      }
      if (group->runnable.empty()) {
        if (stop_.load(std::memory_order_relaxed)) {  // relaxed: as above.
          return;  // Fully drained.
        }
        continue;
      }
      pq = group->runnable.front();
      group->runnable.pop_front();
      if (pq->max_delay_us > 0 && pq->max_batch > 1 &&
          group->runnable.empty() && !pq->events.empty() &&
          pq->m_queued_chunks == 0 && pq->events.size() < pq->max_batch) {
        const auto deadline = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(pq->events.front().enqueue_ns +
                                     pq->max_delay_us * 1000));
        pq->m_lingering = true;
        // relaxed: see the dispatch wait above.
        while (!stop_.load(std::memory_order_relaxed) &&
               pq->events.size() < pq->max_batch &&
               pq->m_queued_chunks == 0 && group->runnable.empty()) {
          if (group->cv.wait_until(lock.native(), deadline) ==
              std::cv_status::timeout) {
            break;  // Deadline: dispatch whatever has coalesced.
          }
        }
        pq->m_lingering = false;
      }
      if (!pq->events.empty() && pq->events.front().job != nullptr) {
        batch.push_back(std::move(pq->events.front()));
        pq->events.pop_front();
        --pq->m_queued_chunks;
      } else {
        while (!pq->events.empty() && pq->events.front().job == nullptr &&
               batch.size() < pq->max_batch) {
          batch.push_back(std::move(pq->events.front()));
          pq->events.pop_front();
        }
      }
      if (!batch.empty()) {
        // Quantum lifecycle ref, taken while still under the group mutex:
        // Retire's baseline drain checks the deque under this same mutex,
        // then refs, so a gathered-but-executing quantum is always covered.
        pq->lifecycle_refs.fetch_add(1, std::memory_order_seq_cst);
        const int64_t dispatch_ns = NowNs();
        pq->dispatches.fetch_add(1, std::memory_order_relaxed);
        records = batch.front().job != nullptr
                      ? batch.front().end - batch.front().begin
                      : batch.size();
        wait_us =
            static_cast<double>(dispatch_ns - batch.front().enqueue_ns) / 1e3;
        RecordQueueDelay(pq->queue_delay_ewma_us,
                         static_cast<int64_t>(wait_us));
        if (batch.front().job == nullptr) {
          pq->coalesced.fetch_add(batch.size(), std::memory_order_relaxed);
        }
      }
      // Round-robin: back of the ring if more events remain, so the next
      // runnable plan gets the next quantum.
      if (!pq->events.empty()) {
        group->runnable.push_back(pq);
        wake_sibling = true;  // Notified below, after the scoped unlock.
      } else {
        pq->m_runnable = false;
      }
    }
    if (wake_sibling) {
      // Outside the lock so the woken sibling doesn't immediately block on
      // mu; safe because the destructor joins this thread before the group
      // is destroyed.
      group->cv.notify_one();
    }
    if (batch.empty()) {
      continue;
    }
    {
      // Off the dispatch lock: stats ride this executor's shard.
      MetricShard& shard = *pq->shards[shard_idx];
      MutexLock lock(shard.mu);
      AddWindowed(shard.batch_records, static_cast<double>(records),
                  pq->shard_window);
      AddWindowed(shard.queue_wait_us, wait_us, pq->shard_window);
    }
    ExecuteQuantum(pq, batch, ctx, shard_idx);
    pq->ReleaseLifecycle();
  }
}

// Execute outside every scheduler structure; error counts are atomic and
// the sampled latency lands in this executor's shard.
void Runtime::ExecuteQuantum(PlanQueue* pq, std::vector<Event>& batch,
                             ExecContext& ctx, size_t shard_idx) {
  // Chaos site: an executor pinned mid-quantum (GC pause, page fault storm,
  // noisy neighbor). Injected before the deadline checks so stalled quanta
  // exercise the expiry paths.
  PRETZEL_FAULT_STALL("runtime.executor_stall", static_cast<int64_t>(pq->id));
  if (batch.front().job != nullptr) {
    const Event& item = batch.front();
    BatchJob& job = *item.job;
    const size_t count = item.end - item.begin;
    float* out = job.results + item.begin;
    if (job.deadline_ns > 0) {
      // Between-quanta deadline check: chunks of an expired batch complete
      // immediately (score 0.0f, batch status DeadlineExceeded) instead of
      // burning an executor on records nobody is waiting for. Chunks that
      // dispatched before expiry keep their scores — per-record attribution
      // stays correct for partial batches.
      const int64_t now = NowNs();
      if (now >= job.deadline_ns) {
        std::fill(out, out + count, 0.0f);
        {
          MutexLock lock(job.error_mu);
          if (job.first_error.ok()) {
            job.first_error =
                ExpiredStatus("between batch quanta", DeadlineStage::kExecution,
                              now, job.deadline_ns, item.enqueue_ns);
          }
        }
        pq->expired_quantum.fetch_add(count, std::memory_order_relaxed);
        if (job.remaining.fetch_sub(count) == count) {
          Status status;
          {
            MutexLock lock(job.error_mu);
            status = job.first_error;
          }
          job.callback(status, std::span<const float>(job.results, job.count));
        }
        return;
      }
    }
    // Executors consume record views; string jobs stage borrowed views in
    // scratch moved out of the context for the duration (ExecutePlan's
    // no-pooling ablation calls ReleaseScratch mid-chunk, which would
    // otherwise free the views out from under the loop).
    std::vector<std::string_view> views;
    const std::string_view* in;
    if (job.view_inputs != nullptr) {
      in = job.view_inputs + item.begin;
    } else {
      views = std::move(ctx.batch_views);
      views.resize(count);
      for (size_t i = 0; i < count; ++i) {
        views[i] = job.str_inputs[item.begin + i];
      }
      in = views.data();
    }
    size_t failed = 0;
    Status chunk_error;
    if (options_.batch_major && count > 1) {
      // Batch-major: dense-family chunks run their PCA/KMeans stages as one
      // SoA matrix-matrix kernel over the whole chunk (text-family chunks
      // fall back to the per-record loop inside; invalid records are masked
      // out of the transpose and attributed individually).
      failed = ExecutePlanBatch(*job.plan, in, count, out, ctx, &chunk_error);
    } else {
      failed =
          ExecutePlanPerRecord(*job.plan, in, count, out, ctx, &chunk_error);
    }
    if (!views.empty()) {
      ctx.batch_views = std::move(views);
    }
    if (failed > 0) {
      MutexLock lock(job.error_mu);
      if (job.first_error.ok()) {
        job.first_error = chunk_error;
      }
    }
    if (job.remaining.fetch_sub(count) == count) {
      Status status;
      {
        MutexLock lock(job.error_mu);
        status = job.first_error;
      }
      job.callback(status, std::span<const float>(job.results, job.count));
    }
    if (failed > 0) {
      pq->errors.fetch_add(failed, std::memory_order_relaxed);
    }
    return;
  }
  // Dequeue-time deadline check: singles that expired while queued complete
  // with DeadlineExceeded (queue-wait attribution) without executing, and
  // the survivors are compacted in place so coalescing proceeds over live
  // work only.
  {
    size_t live = 0;
    int64_t now = 0;  // Lazy: most quanta carry no deadlines at all.
    for (size_t i = 0; i < batch.size(); ++i) {
      Event& event = batch[i];
      if (event.deadline_ns > 0) {
        if (now == 0) {
          now = NowNs();
        }
        if (now >= event.deadline_ns) {
          // Count before completing: a caller woken by this callback must
          // already see the expiry in GetMetrics.
          pq->expired_dequeue.fetch_add(1, std::memory_order_relaxed);
          event.done(ExpiredStatus("at dispatch", DeadlineStage::kQueue, now,
                                   event.deadline_ns, event.enqueue_ns));
          continue;
        }
      }
      if (live != i) {
        batch[live] = std::move(event);
      }
      ++live;
    }
    if (live < batch.size()) {
      batch.resize(live);
    }
    if (batch.empty()) {
      return;
    }
  }
  size_t failed = 0;
  if (options_.batch_major && batch.size() > 1 &&
      pq->plan->family() == ModelPlan::Family::kDense) {
    // A coalesced group of same-plan singles is a batch the adaptive
    // batcher built — run it batch-major so scheduler coalescing composes
    // with the SoA batch kernels (one blocked matrix-matrix per stage
    // instead of one matvec per event). Scratch is moved out of the
    // context for the duration: the no-pooling ablation's mid-run
    // ReleaseScratch would otherwise free these buffers while the scores
    // are still being delivered.
    const size_t n = batch.size();
    std::vector<std::string_view> views = std::move(ctx.batch_views);
    std::vector<float> scores = std::move(ctx.batch_scores);
    std::vector<uint8_t> flags = std::move(ctx.batch_failed);
    views.resize(n);
    scores.resize(n);
    flags.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      views[i] = batch[i].input;
    }
    failed = ExecutePlanBatch(*pq->plan, views.data(), n, scores.data(), ctx,
                              nullptr, flags.data());
    pq->singles_batched.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      if (flags[i] == 0) {
        batch[i].done(scores[i]);
        continue;
      }
      // Re-run the (rare) failed record alone to recover its exact Status —
      // failures reject before any compute, so this costs one validation.
      batch[i].done(ExecutePlan(*pq->plan, batch[i].input, ctx));
    }
    ctx.batch_views = std::move(views);
    ctx.batch_scores = std::move(scores);
    ctx.batch_failed = std::move(flags);
  } else {
    for (Event& event : batch) {
      Result<float> r = ExecutePlan(*pq->plan, event.input, ctx);
      if (!r.ok()) {
        ++failed;
      }
      event.done(std::move(r));
    }
  }
  // Sampled latency: one observation per dispatch, for the oldest event in
  // the group (the group's worst case) — keeps the per-event hot path free
  // of clock reads and stats writes.
  const double latency_us =
      static_cast<double>(NowNs() - batch.front().enqueue_ns) / 1e3;
  {
    MetricShard& shard = *pq->shards[shard_idx];
    MutexLock lock(shard.mu);
    AddWindowed(shard.single_latency_us, latency_us, pq->shard_window);
  }
  if (failed > 0) {
    pq->errors.fetch_add(failed, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Observability.

RuntimeMetrics Runtime::GetMetrics() const {
  RuntimeMetrics metrics;
  ReaderMutexLock lock(registry_mu_);
  metrics.plans.reserve(plan_queues_.size());
  for (const auto& pq : plan_queues_) {
    PlanMetrics pm;
    pm.plan_id = pq->id;
    pm.plan_name = pq->plan_name;  // Retained copy: valid after Retire.
    pm.reserved = pq->reserved;
    pm.retired = pq->retired.load(std::memory_order_relaxed);
    pm.inline_predictions =
        pq->inline_predictions.load(std::memory_order_relaxed);
    pm.enqueued_events = pq->enqueued.load(std::memory_order_relaxed);
    pm.rejected_events = pq->rejected.load(std::memory_order_relaxed);
    pm.dispatches = pq->dispatches.load(std::memory_order_relaxed);
    pm.coalesced_singles = pq->coalesced.load(std::memory_order_relaxed);
    pm.batched_singles = pq->singles_batched.load(std::memory_order_relaxed);
    pm.errors = pq->errors.load(std::memory_order_relaxed);
    pm.expired_admission =
        pq->expired_admission.load(std::memory_order_relaxed);
    pm.expired_dequeue = pq->expired_dequeue.load(std::memory_order_relaxed);
    pm.expired_quantum = pq->expired_quantum.load(std::memory_order_relaxed);
    pm.shed_deadline = pq->shed_deadline.load(std::memory_order_relaxed);
    pm.queue_delay_ewma_us =
        pq->queue_delay_ewma_us.load(std::memory_order_relaxed);
    if (options_.lockfree_scheduler) {
      pm.queue_depth = pq->queued.load(std::memory_order_relaxed);
    } else {
      // Size only — the PR-2 bug of copying whole reservoirs under the
      // dispatch mutex (stalling every executor in the group) is gone in
      // both modes; stats now live in per-executor shards.
      MutexLock glock(pq->group->mu);
      pm.queue_depth = pq->events.size();
    }
    for (const auto& shard : pq->shards) {
      SampleStats batch_records, queue_wait, single_latency;
      {
        // Brief per-shard copy: stalls at most the one executor that owns
        // this shard, and only if it is dispatching this exact plan.
        MutexLock slock(shard->mu);
        batch_records = shard->batch_records;
        queue_wait = shard->queue_wait_us;
        single_latency = shard->single_latency_us;
      }
      MergeStats(pm.batch_records, batch_records);
      MergeStats(pm.queue_wait_us, queue_wait);
      MergeStats(pm.single_latency_us, single_latency);
    }
    metrics.plans.push_back(std::move(pm));
  }
  const auto aggregate = [&metrics](const SubPlanCache& cache) {
    const SubPlanCache::Stats s = cache.GetStats();
    metrics.subplan_cache.lookups += s.lookups;
    metrics.subplan_cache.hits += s.hits;
    metrics.subplan_cache.insertions += s.insertions;
    metrics.subplan_cache.evictions += s.evictions;
    metrics.subplan_cache_entries += cache.NumEntries();
    metrics.subplan_cache_bytes += cache.SizeBytes();
  };
  for (const auto& cache : executor_caches_) {
    aggregate(*cache);
  }
  if (caller_cache_ != nullptr) {
    aggregate(*caller_cache_);
  }
  for (const auto& pool : executor_pools_) {
    metrics.vector_pool += pool->GetStats();
  }
  metrics.vector_pool += caller_pool_.GetStats();
  return metrics;
}

std::vector<Reservation> Runtime::reservations() const {
  ReaderMutexLock lock(registry_mu_);
  return reservations_;
}

// Folds one replica's row into the logical plan row. Counters sum; the
// queue-delay EWMA is weighted by each replica's event traffic (a cold
// replica's zero must not halve a hot replica's signal); reservation is a
// property of the logical plan on any shard.
static void MergePlanMetrics(PlanMetrics& into, const PlanMetrics& from) {
  const uint64_t into_events = into.inline_predictions + into.enqueued_events;
  const uint64_t from_events = from.inline_predictions + from.enqueued_events;
  const uint64_t total_events = into_events + from_events;
  if (total_events > 0) {
    into.queue_delay_ewma_us = static_cast<int64_t>(
        (static_cast<double>(into.queue_delay_ewma_us) * into_events +
         static_cast<double>(from.queue_delay_ewma_us) * from_events) /
        static_cast<double>(total_events));
  }
  into.reserved = into.reserved || from.reserved;
  // A logical plan is retired only once every replica is.
  into.retired = into.retired && from.retired;
  into.queue_depth += from.queue_depth;
  into.inline_predictions += from.inline_predictions;
  into.enqueued_events += from.enqueued_events;
  into.rejected_events += from.rejected_events;
  into.dispatches += from.dispatches;
  into.coalesced_singles += from.coalesced_singles;
  into.batched_singles += from.batched_singles;
  into.errors += from.errors;
  into.expired_admission += from.expired_admission;
  into.expired_dequeue += from.expired_dequeue;
  into.expired_quantum += from.expired_quantum;
  into.shed_deadline += from.shed_deadline;
  MergeStats(into.batch_records, from.batch_records);
  MergeStats(into.queue_wait_us, from.queue_wait_us);
  MergeStats(into.single_latency_us, from.single_latency_us);
}

void MergeRuntimeMetrics(RuntimeMetrics& into, const RuntimeMetrics& from) {
  // Name -> index, built once per fold: the cross-shard GetMetrics merge is
  // then linear in total plan rows instead of quadratic in fleet size.
  // Owned keys: push_back below can reallocate into.plans, which moves the
  // rows' SSO name bytes out from under any view into them.
  std::unordered_map<std::string, size_t> index;
  index.reserve(into.plans.size() + from.plans.size());
  for (size_t i = 0; i < into.plans.size(); ++i) {
    index.emplace(into.plans[i].plan_name, i);
  }
  for (const PlanMetrics& plan : from.plans) {
    auto [it, inserted] = index.emplace(plan.plan_name, into.plans.size());
    if (inserted) {
      into.plans.push_back(plan);
    } else {
      MergePlanMetrics(into.plans[it->second], plan);
    }
  }
  into.subplan_cache.lookups += from.subplan_cache.lookups;
  into.subplan_cache.hits += from.subplan_cache.hits;
  into.subplan_cache.insertions += from.subplan_cache.insertions;
  into.subplan_cache.evictions += from.subplan_cache.evictions;
  into.subplan_cache_entries += from.subplan_cache_entries;
  into.subplan_cache_bytes += from.subplan_cache_bytes;
  into.vector_pool += from.vector_pool;
}

}  // namespace pretzel
