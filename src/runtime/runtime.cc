#include "src/runtime/runtime.h"

#include <algorithm>
#include <chrono>

#include "src/common/clock.h"

namespace pretzel {

// One logical batch request. Executors decrement `remaining` as they finish
// sub-ranges; the last one out invokes the callback.
struct Runtime::BatchJob {
  std::shared_ptr<ModelPlan> plan;
  std::vector<std::string> inputs;
  std::vector<float> results;
  std::atomic<size_t> remaining{0};
  BatchCallback callback;

  std::mutex error_mu;
  Status first_error;  // OK unless some record failed.
};

// An executor group: the threads draining one set of plans (the shared pool,
// or one reservation's dedicated executors) and the round-robin ring of
// plans with queued events.
struct Runtime::ExecGroup {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PlanQueue*> runnable;  // Plans with events, round-robin order.
  size_t num_executors = 1;
};

// Per-plan metric reservoirs are windowed: SampleStats keeps exact samples,
// so unbounded Add() on the dispatch path would grow forever and make every
// GetMetrics() copy (taken under the group lock, stalling dispatch)
// proportionally slower. When a window fills, the stats restart;
// percentiles describe the most recent window. Kept small so a metrics
// snapshot holds the dispatch lock for a bounded ~100KB copy.
constexpr size_t kMetricsWindow = 4096;

static void AddWindowed(SampleStats& stats, double value) {
  if (stats.count() >= kMetricsWindow) {
    stats = SampleStats();
  }
  stats.Add(value);
}

// Per-plan scheduler state. `plan` and the policy fields are written once
// under registry_mu_ before the queue is first published to an ExecGroup
// (via Enqueue, under group->mu), and read-only afterwards; everything else
// is guarded by group->mu.
struct Runtime::PlanQueue {
  PlanId id = 0;
  std::shared_ptr<ModelPlan> plan;
  ExecGroup* group = nullptr;
  bool reserved = false;
  size_t max_batch = 1;
  int64_t max_delay_us = 0;

  std::deque<Event> events;
  // Chunk events currently queued; the adaptive linger must end as soon as
  // batch work exists anywhere in the queue, not just at its front.
  size_t queued_chunks = 0;
  // True while the plan is in group->runnable or owned by an executor that
  // will requeue it; keeps each plan at most once in the ring.
  bool runnable = false;
  // True while an executor is in the adaptive linger wait for this plan;
  // enqueues then notify_all so the linger predicate is re-evaluated (a
  // notify_one could be swallowed by an idle sibling whose predicate is
  // false, stranding the lingerer until its deadline).
  bool lingering = false;

  std::atomic<uint64_t> inline_predictions{0};
  uint64_t enqueued = 0;
  uint64_t rejected = 0;
  uint64_t dispatches = 0;
  uint64_t coalesced = 0;
  uint64_t errors = 0;
  SampleStats batch_records;
  SampleStats queue_wait_us;
  SampleStats single_latency_us;
};

Runtime::Runtime(ObjectStore* store, const RuntimeOptions& options)
    : store_(store),
      options_([&] {
        RuntimeOptions o = options;
        o.num_executors = std::max<size_t>(1, o.num_executors);
        o.default_max_batch = std::max<size_t>(1, o.default_max_batch);
        return o;
      }()),
      caller_contexts_(&caller_pool_, /*reuse_enabled=*/true) {
  if (options_.subplan_cache_bytes > 0) {
    caller_cache_ = std::make_unique<SubPlanCache>(options_.subplan_cache_bytes);
  }
  shared_group_ = std::make_unique<ExecGroup>();
  shared_group_->num_executors = options_.num_executors;
  for (size_t i = 0; i < options_.num_executors; ++i) {
    SpawnExecutor(shared_group_.get());
  }
}

Runtime::~Runtime() {
  stop_.store(true);
  {
    std::shared_lock lock(registry_mu_);
    {
      std::lock_guard<std::mutex> glock(shared_group_->mu);
      shared_group_->cv.notify_all();
    }
    for (const auto& group : reserved_groups_) {
      std::lock_guard<std::mutex> glock(group->mu);
      group->cv.notify_all();
    }
  }
  for (auto& thread : threads_) {
    thread.join();
  }
}

void Runtime::SpawnExecutor(ExecGroup* group) {
  SubPlanCache* cache = nullptr;
  if (options_.subplan_cache_bytes > 0) {
    executor_caches_.push_back(
        std::make_unique<SubPlanCache>(options_.subplan_cache_bytes));
    cache = executor_caches_.back().get();
  }
  threads_.emplace_back([this, group, cache] { ExecutorLoop(group, cache); });
}

Result<Runtime::PlanId> Runtime::Register(std::shared_ptr<ModelPlan> plan,
                                          const PlanRegistration& registration) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null plan");
  }
  std::unique_lock lock(registry_mu_);
  const PlanId id = plan_queues_.size();
  auto pq = std::make_unique<PlanQueue>();
  pq->id = id;
  pq->plan = std::move(plan);
  pq->max_batch = registration.max_batch > 0 ? registration.max_batch
                                             : options_.default_max_batch;
  pq->max_delay_us = registration.max_delay_us >= 0
                         ? registration.max_delay_us
                         : options_.default_max_delay_us;
  const size_t cores = std::min(registration.reserve_cores,
                                options_.max_reserved_cores_per_plan);
  if (cores > 0) {
    auto group = std::make_unique<ExecGroup>();
    group->num_executors = cores;
    pq->group = group.get();
    pq->reserved = true;
    reservations_.push_back(Reservation{id, cores});
    // Dedicated executors are extra threads: reserving never shrinks the
    // shared pool.
    for (size_t i = 0; i < cores; ++i) {
      SpawnExecutor(group.get());
    }
    reserved_groups_.push_back(std::move(group));
  } else {
    pq->group = shared_group_.get();
  }
  plan_queues_.push_back(std::move(pq));
  return id;
}

Runtime::PlanQueue* Runtime::GetQueue(PlanId id) const {
  std::shared_lock lock(registry_mu_);
  return id < plan_queues_.size() ? plan_queues_[id].get() : nullptr;
}

// Single enqueue protocol for both entry points: cap check, timestamping,
// chunk accounting, runnable-ring publication, and the wakeup rule live
// here and only here.
Status Runtime::EnqueueEvents(PlanQueue* pq, Event* events, size_t n) {
  ExecGroup* group = pq->group;
  bool wake_all = n > 1;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    if (options_.max_queued_events_per_plan > 0 &&
        pq->events.size() + n > options_.max_queued_events_per_plan) {
      pq->rejected += n;
      return Status::ResourceExhausted(
          "plan " + std::to_string(pq->id) + " queue over " +
          std::to_string(options_.max_queued_events_per_plan) + " events");
    }
    const int64_t now = NowNs();
    for (size_t i = 0; i < n; ++i) {
      events[i].enqueue_ns = now;
      if (events[i].job != nullptr) {
        ++pq->queued_chunks;
      }
      pq->events.push_back(std::move(events[i]));
    }
    pq->enqueued += n;
    if (!pq->runnable) {
      pq->runnable = true;
      group->runnable.push_back(pq);
    }
    // A lingering executor must re-check its predicate; notify_one could be
    // swallowed by an idle sibling whose predicate is false.
    wake_all |= pq->lingering;
  }
  if (wake_all) {
    group->cv.notify_all();
  } else {
    group->cv.notify_one();
  }
  return Status::OK();
}

Status Runtime::Enqueue(PlanQueue* pq, std::vector<Event> events) {
  return EnqueueEvents(pq, events.data(), events.size());
}

Status Runtime::EnqueueOne(PlanQueue* pq, Event event) {
  return EnqueueEvents(pq, &event, 1);
}

Result<float> Runtime::Predict(PlanId id, const std::string& input) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (!pq->reserved) {
    // Inline fast path: a synchronous single on an unreserved plan gains
    // nothing from a queue hop.
    pq->inline_predictions.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<ExecContext> ctx = caller_contexts_.Acquire();
    ctx->subplan_cache = caller_cache_.get();
    Result<float> result = ExecutePlan(*pq->plan, input, *ctx);
    caller_contexts_.Release(std::move(ctx));
    return result;
  }
  // Reserved plan: ride the dedicated queue so sync traffic is served by
  // (and accounted against) the reserved executors, not the caller thread.
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<float> result = Status::Error("pending");
  } waiter;
  Event event;
  event.input = input;
  event.done = [&waiter](Result<float> r) {
    std::lock_guard<std::mutex> lock(waiter.mu);
    waiter.result = std::move(r);
    waiter.done = true;
    waiter.cv.notify_one();
  };
  Status submitted = EnqueueOne(pq, std::move(event));
  if (!submitted.ok()) {
    return submitted;
  }
  std::unique_lock<std::mutex> lock(waiter.mu);
  waiter.cv.wait(lock, [&] { return waiter.done; });
  return std::move(waiter.result);
}

Status Runtime::PredictAsync(PlanId id, std::string input,
                             SingleCallback callback) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (callback == nullptr) {
    return Status::InvalidArgument("null callback");
  }
  Event event;
  event.input = std::move(input);
  event.done = std::move(callback);
  return EnqueueOne(pq, std::move(event));
}

Status Runtime::PredictBatchAsync(PlanId id, std::vector<std::string> inputs,
                                  BatchCallback callback, size_t max_batch) {
  PlanQueue* pq = GetQueue(id);
  if (pq == nullptr) {
    return Status::NotFound("plan " + std::to_string(id));
  }
  if (callback == nullptr) {
    return Status::InvalidArgument("null callback");
  }
  if (inputs.empty()) {
    callback(Status::OK(), {});
    return Status::OK();
  }
  auto job = std::make_shared<BatchJob>();
  job->plan = pq->plan;
  job->inputs = std::move(inputs);
  job->results.assign(job->inputs.size(), 0.0f);
  job->remaining.store(job->inputs.size());
  job->callback = std::move(callback);

  // Sub-batch size: fill every executor that serves this plan, but never
  // exceed max_batch. Each chunk is one scheduling quantum, so other plans
  // interleave between chunks instead of waiting out the whole batch.
  const size_t parallelism = std::max<size_t>(1, pq->group->num_executors);
  const size_t n = job->inputs.size();
  size_t chunk = (n + parallelism - 1) / parallelism;
  if (max_batch > 0) {
    chunk = std::min(chunk, max_batch);
  }
  chunk = std::max<size_t>(1, chunk);
  std::vector<Event> events;
  events.reserve((n + chunk - 1) / chunk);
  for (size_t begin = 0; begin < n; begin += chunk) {
    Event event;
    event.job = job;
    event.begin = begin;
    event.end = std::min(n, begin + chunk);
    events.push_back(std::move(event));
  }
  return Enqueue(pq, std::move(events));
}

Result<std::vector<float>> Runtime::PredictBatch(
    PlanId id, const std::vector<std::string>& inputs, size_t max_batch) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::vector<float> scores;
  Status submit = PredictBatchAsync(
      id, inputs,
      [&](Status s, std::span<const float> results) {
        std::lock_guard<std::mutex> lock(mu);
        status = std::move(s);
        scores.assign(results.begin(), results.end());
        done = true;
        cv.notify_one();
      },
      max_batch);
  if (!submit.ok()) {
    return submit;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  if (!status.ok()) {
    return status;
  }
  return scores;
}

void Runtime::ExecutorLoop(ExecGroup* group, SubPlanCache* cache) {
  // Executor-private pooled state: the paper's per-core ExecContext, with
  // this executor's own sub-plan materialization cache attached.
  VectorPool pool;
  ExecContext ctx(&pool);
  ctx.subplan_cache = cache;
  std::vector<Event> batch;
  while (true) {
    batch.clear();
    PlanQueue* pq = nullptr;
    {
      std::unique_lock<std::mutex> lock(group->mu);
      group->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !group->runnable.empty();
      });
      if (group->runnable.empty()) {
        if (stop_.load(std::memory_order_relaxed)) {
          return;  // Fully drained.
        }
        continue;
      }
      pq = group->runnable.front();
      group->runnable.pop_front();
      // Adaptive linger: if only a thin run of singles is waiting and no
      // other plan has work, wait out the plan's max-delay budget for more
      // arrivals to coalesce. Never delays when the system has other work.
      if (pq->max_delay_us > 0 && pq->max_batch > 1 &&
          group->runnable.empty() && !pq->events.empty() &&
          pq->queued_chunks == 0 && pq->events.size() < pq->max_batch) {
        const auto deadline = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(pq->events.front().enqueue_ns +
                                     pq->max_delay_us * 1000));
        pq->lingering = true;
        group->cv.wait_until(lock, deadline, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 pq->events.size() >= pq->max_batch ||
                 pq->queued_chunks > 0 || !group->runnable.empty();
        });
        pq->lingering = false;
      }
      // Gather one dispatch quantum: a single batch chunk, or a coalesced
      // run of up to max_batch queued singles.
      if (!pq->events.empty() && pq->events.front().job != nullptr) {
        batch.push_back(std::move(pq->events.front()));
        pq->events.pop_front();
        --pq->queued_chunks;
      } else {
        while (!pq->events.empty() && pq->events.front().job == nullptr &&
               batch.size() < pq->max_batch) {
          batch.push_back(std::move(pq->events.front()));
          pq->events.pop_front();
        }
      }
      if (!batch.empty()) {
        const int64_t dispatch_ns = NowNs();
        ++pq->dispatches;
        const size_t records = batch.front().job != nullptr
                                   ? batch.front().end - batch.front().begin
                                   : batch.size();
        AddWindowed(pq->batch_records, static_cast<double>(records));
        AddWindowed(pq->queue_wait_us,
                    static_cast<double>(dispatch_ns - batch.front().enqueue_ns) /
                        1e3);
        if (batch.front().job == nullptr) {
          pq->coalesced += batch.size();
        }
      }
      // Round-robin: back of the ring if more events remain, so the next
      // runnable plan gets the next quantum.
      if (!pq->events.empty()) {
        group->runnable.push_back(pq);
        lock.unlock();
        group->cv.notify_one();  // More work: wake a sibling executor.
      } else {
        pq->runnable = false;
      }
    }
    if (batch.empty()) {
      continue;
    }
    // Execute outside the lock.
    if (batch.front().job != nullptr) {
      const Event& item = batch.front();
      BatchJob& job = *item.job;
      size_t failed = 0;
      for (size_t i = item.begin; i < item.end; ++i) {
        Result<float> r = ExecutePlan(*job.plan, job.inputs[i], ctx);
        if (r.ok()) {
          job.results[i] = *r;
        } else {
          ++failed;
          std::lock_guard<std::mutex> lock(job.error_mu);
          if (job.first_error.ok()) {
            job.first_error = r.status();
          }
        }
      }
      const size_t count = item.end - item.begin;
      if (job.remaining.fetch_sub(count) == count) {
        Status status;
        {
          std::lock_guard<std::mutex> lock(job.error_mu);
          status = job.first_error;
        }
        job.callback(status, std::span<const float>(job.results));
      }
      if (failed > 0) {
        std::lock_guard<std::mutex> lock(group->mu);
        pq->errors += failed;
      }
    } else {
      size_t failed = 0;
      for (Event& event : batch) {
        Result<float> r = ExecutePlan(*pq->plan, event.input, ctx);
        if (!r.ok()) {
          ++failed;
        }
        event.done(std::move(r));
      }
      // Sampled latency: one observation per dispatch, for the oldest event
      // in the group (the group's worst case) — keeps the per-event hot
      // path free of clock reads and stats locking.
      const double latency_us =
          static_cast<double>(NowNs() - batch.front().enqueue_ns) / 1e3;
      {
        std::lock_guard<std::mutex> lock(group->mu);
        AddWindowed(pq->single_latency_us, latency_us);
        pq->errors += failed;
      }
    }
  }
}

RuntimeMetrics Runtime::GetMetrics() const {
  RuntimeMetrics metrics;
  std::shared_lock lock(registry_mu_);
  metrics.plans.reserve(plan_queues_.size());
  for (const auto& pq : plan_queues_) {
    PlanMetrics pm;
    pm.plan_id = pq->id;
    pm.plan_name = pq->plan->name();
    pm.reserved = pq->reserved;
    pm.inline_predictions = pq->inline_predictions.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> glock(pq->group->mu);
      pm.queue_depth = pq->events.size();
      pm.enqueued_events = pq->enqueued;
      pm.rejected_events = pq->rejected;
      pm.dispatches = pq->dispatches;
      pm.coalesced_singles = pq->coalesced;
      pm.errors = pq->errors;
      pm.batch_records = pq->batch_records;
      pm.queue_wait_us = pq->queue_wait_us;
      pm.single_latency_us = pq->single_latency_us;
    }
    metrics.plans.push_back(std::move(pm));
  }
  const auto aggregate = [&metrics](const SubPlanCache& cache) {
    const SubPlanCache::Stats s = cache.GetStats();
    metrics.subplan_cache.lookups += s.lookups;
    metrics.subplan_cache.hits += s.hits;
    metrics.subplan_cache.insertions += s.insertions;
    metrics.subplan_cache.evictions += s.evictions;
    metrics.subplan_cache_entries += cache.NumEntries();
    metrics.subplan_cache_bytes += cache.SizeBytes();
  };
  for (const auto& cache : executor_caches_) {
    aggregate(*cache);
  }
  if (caller_cache_ != nullptr) {
    aggregate(*caller_cache_);
  }
  return metrics;
}

std::vector<Reservation> Runtime::reservations() const {
  std::shared_lock lock(registry_mu_);
  return reservations_;
}

}  // namespace pretzel
