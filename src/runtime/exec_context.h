// Per-executor execution state: pooled buffers (VectorPool), the reusable
// scratch an in-flight prediction writes through (ExecContext), a context
// pool, and the plan executor entry point. Keeping every buffer here is what
// makes the hot path allocation-free (Section 5.2.1's "vector pooling"
// ablation toggles exactly this).
#ifndef PRETZEL_RUNTIME_EXEC_CONTEXT_H_
#define PRETZEL_RUNTIME_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace pretzel {

class ModelPlan;
class SubPlanCache;

class VectorPool {
 public:
  struct Options {
    // When false, buffers are released after every prediction, putting
    // allocation back on the data path (the no-pooling ablation).
    bool pooling_enabled = true;
  };

  VectorPool() = default;
  explicit VectorPool(const Options& options) : options_(options) {}

  bool pooling_enabled() const { return options_.pooling_enabled; }

  // Free-listed float buffers for callers that need transient vectors
  // outside an ExecContext (batch assembly and tests).
  std::vector<float> AcquireFloats(size_t size);
  void ReleaseFloats(std::vector<float> v);

 private:
  Options options_;
  std::mutex mu_;
  std::vector<std::vector<float>> free_floats_;
};

// All scratch an executing prediction touches. Reused across predictions
// (warm buffers, zero allocation); a fresh context models the unpooled path.
struct ExecContext {
  explicit ExecContext(VectorPool* p) : pool(p) {}

  VectorPool* pool = nullptr;
  // Optional sub-plan materialization cache (bench/figure 10). Not owned.
  SubPlanCache* subplan_cache = nullptr;

  // Text-family scratch.
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  std::vector<uint32_t> char_ids;
  std::vector<uint32_t> word_ids;
  std::vector<uint32_t> concat_ids;
  std::vector<uint32_t> cache_ids;
  // Materialized sparse feature vectors (unpushed plans): parallel
  // id/count arrays per branch and for the concatenated space.
  std::vector<float> char_vals;
  std::vector<float> word_vals;
  std::vector<float> concat_vals;
  std::vector<uint32_t> raw_hits;
  // Dense-family scratch.
  std::vector<float> dense_in;
  std::vector<float> pca_out;
  std::vector<float> kmeans_out;
  std::vector<float> tree_out;
  std::vector<float> features;

  // Drops buffer capacity (the no-pooling path calls this after every
  // prediction).
  void ReleaseScratch();
};

// Hands out ExecContexts; with reuse enabled, released contexts keep their
// warm buffers and are handed out again.
class ExecContextPool {
 public:
  ExecContextPool(VectorPool* pool, bool reuse_enabled)
      : pool_(pool), reuse_enabled_(reuse_enabled) {}

  std::unique_ptr<ExecContext> Acquire();
  void Release(std::unique_ptr<ExecContext> ctx);

 private:
  VectorPool* pool_;
  const bool reuse_enabled_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ExecContext>> free_;
};

// Executes one prediction through a compiled plan. Binds the plan first if
// compilation deferred it (no-AOT). Thread-safe across distinct contexts.
Result<float> ExecutePlan(const ModelPlan& plan, const std::string& input,
                          ExecContext& ctx);

}  // namespace pretzel

#endif  // PRETZEL_RUNTIME_EXEC_CONTEXT_H_
