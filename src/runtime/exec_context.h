// Per-executor execution state: pooled buffers (VectorPool), the reusable
// scratch an in-flight prediction writes through (ExecContext), a context
// pool, and the plan executor entry point. Keeping every buffer here is what
// makes the hot path allocation-free (Section 5.2.1's "vector pooling"
// ablation toggles exactly this). Both pools hand out and take back buffers
// through Treiber-stack free lists (src/common/lockfree.h), so acquire and
// release are a CAS each — no mutex even when many threads share one pool.
#ifndef PRETZEL_RUNTIME_EXEC_CONTEXT_H_
#define PRETZEL_RUNTIME_EXEC_CONTEXT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/lockfree.h"
#include "src/common/status.h"
#include "src/ops/feature_vector.h"

namespace pretzel {

class ModelPlan;
class SubPlanCache;

class VectorPool {
 public:
  struct Options {
    // When false, buffers are released after every prediction, putting
    // allocation back on the data path (the no-pooling ablation).
    bool pooling_enabled = true;
    // Released buffers whose capacity outgrew this many floats are dropped
    // instead of cached, so one giant prediction cannot pin its high-water
    // mark in the pool forever. 0 = uncapped (the old behavior).
    size_t max_cached_floats = 64 * 1024;
  };

  // Pool effectiveness counters (all monotonic since construction).
  struct Stats {
    uint64_t hits = 0;              // Acquires served from the free list.
    uint64_t misses = 0;            // Acquires that had to allocate.
    uint64_t released = 0;          // ReleaseFloats calls (pooling on).
    uint64_t dropped_oversized = 0; // Releases dropped by the capacity cap.
    uint64_t dropped_full = 0;      // Releases dropped because all slots full.

    Stats& operator+=(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      released += other.released;
      dropped_oversized += other.dropped_oversized;
      dropped_full += other.dropped_full;
      return *this;
    }
  };

  VectorPool() : VectorPool(Options{}) {}
  explicit VectorPool(const Options& options);

  bool pooling_enabled() const { return options_.pooling_enabled; }

  // Free-listed float buffers for callers that need transient vectors
  // outside an ExecContext (batch assembly and tests). Lock-free: one CAS
  // to pop a cached buffer, one to return the emptied slot. Release takes
  // an rvalue: the buffer is moved in, never copied.
  std::vector<float> AcquireFloats(size_t size);
  void ReleaseFloats(std::vector<float>&& v);

  Stats GetStats() const;

 private:
  static constexpr uint32_t kSlots = 64;

  Options options_;
  // Cached buffers live in fixed slots; `free_` holds indices of slots with
  // a buffer, `empty_` indices without one. A slot's contents are published
  // by the release-CAS of the push that hands its index over.
  std::array<std::vector<float>, kSlots> slots_;
  IndexStack free_{kSlots};
  IndexStack empty_{kSlots};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> dropped_oversized_{0};
  std::atomic<uint64_t> dropped_full_{0};
};

// All scratch an executing prediction touches. Reused across predictions
// (warm buffers, zero allocation); a fresh context models the unpooled path.
// Operator outputs ride FeatureVectors (dense span | sorted sparse) whose
// value storage leases from this context's pool.
struct ExecContext {
  explicit ExecContext(VectorPool* p)
      : pool(p),
        char_features(p),
        word_features(p),
        concat_features(p),
        dense_features(p) {}

  VectorPool* pool = nullptr;
  // Optional sub-plan materialization cache (bench/figure 10). Not owned.
  SubPlanCache* subplan_cache = nullptr;

  // Text-family scratch.
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  std::vector<uint32_t> cache_ids;
  std::vector<uint32_t> raw_hits;
  // Materialized operator outputs (unpushed plans): sparse count vectors
  // per branch, plus the concatenated space for plans that keep the Concat.
  FeatureVector char_features;
  FeatureVector word_features;
  FeatureVector concat_features;
  // Dense-family scratch.
  std::vector<float> dense_in;
  std::vector<float> pca_out;
  std::vector<float> kmeans_out;
  std::vector<float> tree_out;
  FeatureVector dense_features;
  // Binary sparse-record staging (misaligned payloads only).
  std::vector<uint32_t> sparse_ids;
  std::vector<float> sparse_vals;
  // Batch-major scratch (ExecutePlanBatch): AoS staging rows (text records
  // and misaligned binary payloads; aligned binary records alias their wire
  // bytes instead), per-record row pointers, the valid-row index map, the
  // SoA transpose, SoA stage outputs, and the per-record feature row.
  std::vector<float> batch_rows;
  std::vector<const float*> batch_row_ptrs;
  std::vector<uint32_t> batch_valid;
  std::vector<float> batch_soa;
  std::vector<float> batch_stage;
  std::vector<float> batch_features;
  // Executor-side quantum scratch (Runtime::ExecuteQuantum): borrowed input
  // views, scores, and per-record failure flags for coalesced-singles
  // batch execution. Lives here so the scheduler hot path stays
  // allocation-free once warm.
  std::vector<std::string_view> batch_views;
  std::vector<float> batch_scores;
  std::vector<uint8_t> batch_failed;

  // Drops buffer capacity (the no-pooling path calls this after every
  // prediction).
  void ReleaseScratch();
};

// Hands out ExecContexts; with reuse enabled, released contexts keep their
// warm buffers and are handed out again. Same Treiber-stack slot scheme as
// VectorPool: acquire/release are lock-free.
class ExecContextPool {
 public:
  ExecContextPool(VectorPool* pool, bool reuse_enabled);

  std::unique_ptr<ExecContext> Acquire();
  void Release(std::unique_ptr<ExecContext> ctx);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  static constexpr uint32_t kSlots = 256;

  VectorPool* pool_;
  const bool reuse_enabled_;
  std::array<std::unique_ptr<ExecContext>, kSlots> slots_;
  IndexStack free_{kSlots};
  IndexStack empty_{kSlots};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// Executes one prediction through a compiled plan. Binds the plan first if
// compilation deferred it (no-AOT). Thread-safe across distinct contexts.
// The input is borrowed bytes: either a text record or a BinaryRecord wire
// record (src/common/serialize.h) — binary records take the zero-parse fast
// path (dense payloads alias straight into the kernels; sparse records
// score as pre-featurized vectors over the plan's concat space).
Result<float> ExecutePlan(const ModelPlan& plan, std::string_view input,
                          ExecContext& ctx);

// Executes `n` inputs through the plan, writing one score per record to
// `scores`. Dense-family plans with n >= 2 run batch-major: records are
// gathered into a structure-of-arrays transpose (binary records alias their
// wire payload — no AoS staging row; text records parse into staging) and
// the PCA/KMeans stages become one blocked matrix-matrix kernel each
// instead of n matvecs (trees and the final forest stay per-record).
// Invalid records are masked out of the transpose and attributed
// individually — the valid rows of a mixed batch still run batch-major.
// Text-family plans fall back to per-record execution. Returns the number
// of failed records; failed records score 0.0f, *first_error (when
// non-null) receives the first failure, and failed_flags (when non-null,
// n bytes) gets 1 for each failed record.
size_t ExecutePlanBatch(const ModelPlan& plan, const std::string_view* inputs,
                        size_t n, float* scores, ExecContext& ctx,
                        Status* first_error, uint8_t* failed_flags = nullptr);

// The per-record loop with the same score/error contract as
// ExecutePlanBatch (it is also that function's internal fallback). The
// executor's batch_major=false path calls this so both modes share one
// attribution implementation.
size_t ExecutePlanPerRecord(const ModelPlan& plan,
                            const std::string_view* inputs, size_t n,
                            float* scores, ExecContext& ctx,
                            Status* first_error,
                            uint8_t* failed_flags = nullptr);

// Convenience overloads for std::string arrays (tests and benches); they
// materialize a transient view array and forward.
size_t ExecutePlanBatch(const ModelPlan& plan, const std::string* inputs,
                        size_t n, float* scores, ExecContext& ctx,
                        Status* first_error, uint8_t* failed_flags = nullptr);
size_t ExecutePlanPerRecord(const ModelPlan& plan, const std::string* inputs,
                            size_t n, float* scores, ExecContext& ctx,
                            Status* first_error,
                            uint8_t* failed_flags = nullptr);

}  // namespace pretzel

#endif  // PRETZEL_RUNTIME_EXEC_CONTEXT_H_
