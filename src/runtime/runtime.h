// Runtime: the serving engine. Registered plans share one process and one
// Object Store; executor threads (one warm ExecContext each, so hot paths
// stay allocation-free) drain per-plan event queues.
//
// Scheduling model (Section 5.4): every request — sync, async single, batch
// — becomes an event on its plan's queue. Executors drain plans
// round-robin, one dispatch quantum per turn, so a 10k-record batch cannot
// head-of-line-block a 1-record request on another plan. An adaptive
// batcher coalesces queued single predictions for the same plan into
// sub-batches bounded by a per-plan max_batch / max-delay policy, amortizing
// queue and wakeup costs under load while leaving idle-system latency
// untouched.
//
// Hot-path concurrency (lockfree_scheduler, the default): no enqueue,
// dispatch, or buffer acquire takes a mutex in the common case.
//  - Each plan's events ride a bounded lock-free MPSC ring
//    (BoundedMpmcRing; producers = caller/FrontEnd threads, consumer = the
//    executor holding the plan's dispatch quantum). Bursts beyond the ring
//    spill to a FIFO chain of ring segments linked through a Vyukov
//    intrusive MPSC queue — wait-free push, bulk-refilled back into the
//    ring by the consumer — so even deep backlogs never take a mutex; the
//    ResourceExhausted cap is enforced by an atomic counter before any
//    structure is touched.
//  - A plan is claimed for dispatch via an atomic `scheduled` flag; the
//    runnable rotation itself is a lock-free MPMC ring of PlanQueue*.
//  - Executors park and linger on an EventCount: producers skip the kernel
//    entirely while every executor is busy; mutex+condvar survive only on
//    the park/unpark slow path.
//  - Counters are relaxed atomics and the SampleStats reservoirs are
//    sharded per executor, merged only at GetMetrics() time — metrics never
//    ride the dispatch path and a snapshot never stalls dispatch.
// The PR-2 mutex/condvar scheduler is kept in-tree behind
// RuntimeOptions::lockfree_scheduler = false as the bench_contention
// comparison baseline.
//
// Reservations (Section 5.4.1): a registration may reserve cores. Reserved
// plans get dedicated executors draining a dedicated group, and ALL their
// traffic — including synchronous Predict — is accounted against those
// executors, so their latency is isolated from shared-pool load. Unreserved
// synchronous singles keep the inline fast path (a queue hop buys them
// nothing).
//
// The Runtime owns one SubPlanCache and one VectorPool per executor (plus
// one each for the inline path), so Figure-10 sub-plan materialization is
// active in serving, and exposes per-plan queue/batch/latency metrics plus
// pool hit/miss counters through GetMetrics().
#ifndef PRETZEL_RUNTIME_RUNTIME_H_
#define PRETZEL_RUNTIME_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/lockfree.h"
#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/oven/model_plan.h"
#include "src/oven/subplan_cache.h"
#include "src/runtime/exec_context.h"
#include "src/store/object_store.h"

namespace pretzel {

struct RuntimeOptions {
  size_t num_executors = 1;
  // Hard cap on dedicated executors one registration may reserve.
  size_t max_reserved_cores_per_plan = 4;
  // Sub-plan materialization cache budget per executor (0 disables). Each
  // executor owns a private cache, so the hot path never contends on it
  // across cores.
  size_t subplan_cache_bytes = 8ull << 20;
  // Per-plan cap on queued events (backpressure); 0 = unbounded. Enqueues
  // that would exceed it fail fast with ResourceExhausted.
  size_t max_queued_events_per_plan = 0;
  // Coalescing policy for plans whose registration does not override it:
  // up to default_max_batch queued singles dispatch as one sub-batch; an
  // executor may linger up to default_max_delay_us for a thin batch to
  // fill, but only while no other plan has runnable work.
  size_t default_max_batch = 16;
  int64_t default_max_delay_us = 0;
  // Scheduler implementation. True (default): lock-free MPSC event rings,
  // lock-free runnable ring, eventcount parking. False: the PR-2
  // mutex/condvar baseline, kept for apples-to-apples contention benches.
  bool lockfree_scheduler = true;
  // Per-plan event-ring capacity (rounded up to a power of two). Bursts
  // beyond it spill to a lock-free FIFO chain of ring segments —
  // correctness and admission semantics are unchanged, only that tail
  // leaves the single-CAS fast path. Lock-free mode only.
  size_t event_ring_capacity = 256;
  // Batch-major execution of dense-family batch chunks: a chunk's records
  // are transposed to structure-of-arrays and the PCA/KMeans stages run as
  // one blocked matrix-matrix kernel instead of per-record matvecs. False
  // restores the per-record loop (the before/after bench baseline).
  bool batch_major = true;
  // Deadline-aware admission: when a request carries a deadline and the
  // plan's queue-delay EWMA already exceeds the remaining budget, shed at
  // admission with ResourceExhausted (plus retry-after hint) instead of
  // queueing work that will expire — the caller can retry elsewhere NOW
  // rather than learn of the miss after the deadline. Requests without a
  // deadline are never shed by this check.
  bool deadline_admission = true;
};

struct PlanRegistration {
  // > 0: dedicate this many executors to the plan. Dedicated executors are
  // additional threads so reservations never starve the shared pool.
  size_t reserve_cores = 0;
  // Per-plan adaptive batching overrides (0 / negative = runtime default).
  size_t max_batch = 0;
  int64_t max_delay_us = -1;
};

// A granted reservation: which plan owns which dedicated executors.
struct Reservation {
  size_t plan_id = 0;
  size_t num_cores = 0;
};

// Per-plan scheduler observability (GetMetrics snapshot).
struct PlanMetrics {
  size_t plan_id = 0;
  std::string plan_name;
  bool reserved = false;
  bool retired = false;  // Retire() completed; the plan no longer admits.
  size_t queue_depth = 0;           // Events queued right now.
  uint64_t inline_predictions = 0;  // Unreserved sync fast path.
  uint64_t enqueued_events = 0;
  uint64_t rejected_events = 0;     // Backpressure drops.
  uint64_t dispatches = 0;          // Executor pulls (quanta).
  uint64_t coalesced_singles = 0;   // Singles dispatched via coalescing.
  // Coalesced singles that executed batch-major (dense-family groups routed
  // through ExecutePlanBatch instead of the per-event loop) — the scheduler
  // coalescing composing with the SoA batch kernels.
  uint64_t batched_singles = 0;
  uint64_t errors = 0;              // Failed records/singles.
  // Deadline accounting (requests that carried one). Work is dropped the
  // moment expiry is detectable: at admission, when a queued single reaches
  // its dispatch, and between a batch job's chunk quanta. Expired work is
  // NOT counted in `errors` — it failed the SLO, not the computation.
  uint64_t expired_admission = 0;   // Rejected before enqueue.
  uint64_t expired_dequeue = 0;     // Singles expired awaiting dispatch.
  uint64_t expired_quantum = 0;     // Batch records dropped between quanta.
  // Requests shed at admission because the queue-delay estimate exceeded
  // the remaining deadline budget (RuntimeOptions::deadline_admission).
  uint64_t shed_deadline = 0;
  // EWMA of enqueue->dispatch delay (the retry-after hint attached to this
  // plan's ResourceExhausted rejections).
  int64_t queue_delay_ewma_us = 0;
  // The SampleStats below are windowed (each per-executor shard restarts
  // when its window fills — kMetricsWindow in runtime.cc divided across the
  // group's shards), so long-running servers keep bounded memory and the
  // percentiles describe recent traffic. Snapshots merge the shards.
  SampleStats batch_records;        // Records per dispatch.
  SampleStats queue_wait_us;        // Enqueue -> dispatch.
  // Enqueue -> completion, sampled once per dispatch (the dispatched
  // group's oldest single, i.e. its worst case).
  SampleStats single_latency_us;
};

struct RuntimeMetrics {
  std::vector<PlanMetrics> plans;
  // Aggregated over every executor-owned cache plus the inline-path cache.
  SubPlanCache::Stats subplan_cache;
  size_t subplan_cache_entries = 0;
  size_t subplan_cache_bytes = 0;
  // Aggregated over every executor-owned VectorPool plus the inline-path
  // pool: free-list effectiveness and capacity-cap drops.
  VectorPool::Stats vector_pool;
};

// Merges `from` into `into`: cache/pool aggregates are summed, and plan
// entries are folded BY NAME — two entries with the same plan_name (the
// replicas a routing tier registers on several Runtimes) collapse into one
// logical row with summed counters, merged reservoirs, and an
// event-weighted queue-delay EWMA, so a replicated plan is never counted
// as N plans. Names unique within the fold (the common case) degrade to a
// plain append. plan_id keeps the first replica's shard-local id and is
// not meaningful across Runtimes; the per-shard breakdown (retained
// separately by the ShardRouter caller) is where per-replica ids live.
void MergeRuntimeMetrics(RuntimeMetrics& into, const RuntimeMetrics& from);

class Runtime {
 public:
  using PlanId = size_t;
  using BatchCallback = std::function<void(Status, std::span<const float>)>;
  using SingleCallback = std::function<void(Result<float>)>;

  Runtime(ObjectStore* store, const RuntimeOptions& options);
  // NO_THREAD_SAFETY_ANALYSIS: the destructor is single-threaded by
  // contract (callers must stop submitting before destruction) and must
  // join threads_ WITHOUT holding registry_mu_ — an in-flight callback on
  // an executor thread may re-enter Predict and take the shared side, so
  // joining under the writer lock would deadlock.
  ~Runtime() NO_THREAD_SAFETY_ANALYSIS;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Result<PlanId> Register(std::shared_ptr<ModelPlan> plan,
                          const PlanRegistration& registration = {});

  // Retires a plan: new work is refused with NotFound, in-flight work (an
  // inline predict mid-execution, queued events, a dispatching quantum)
  // drains, and then the ModelPlan reference is dropped — so once the
  // ObjectStore has Released the version's params, Retire is the point its
  // unshared blobs can actually leave the heap. Blocking, control-plane
  // only; MUST NOT be called from an executor thread (it waits on executor
  // progress). Idempotent: a second call returns OK without re-draining.
  // The PlanQueue shell itself persists — id stability and the
  // QueueDelayCounter pointer contract are unchanged — only the plan (and
  // its parameter references) is reclaimed.
  Status Retire(PlanId id);

  // Every entry point takes an optional absolute deadline (NowNs() domain;
  // 0 = none). Expired work is dropped at admission, when a queued single
  // reaches dispatch, and between a batch job's chunk quanta — each drop
  // completes with Status::DeadlineExceeded whose message attributes where
  // the budget went (queue wait vs overrun), and lands in the plan's
  // expired_* counters. With deadline_admission, a request whose remaining
  // budget is already below the queue-delay estimate is shed up front with
  // ResourceExhausted (+ retry-after hint) instead.

  // Synchronous single prediction. Unreserved plans execute inline on the
  // caller's thread; reserved plans ride their dedicated queue so latency
  // isolation holds for sync traffic too. The input bytes are borrowed for
  // the call and may be a text record or a BinaryRecord wire record
  // (src/common/serialize.h) — binary records take the zero-parse path.
  Result<float> Predict(PlanId id, std::string_view input,
                        int64_t deadline_ns = 0);

  // Zero-copy binary entry point: `record` is one BinaryRecord, validated
  // and executed in place (an aligned dense payload aliases straight into
  // the kernels; no parse, no conversion).
  Result<float> PredictBinary(PlanId id, std::span<const uint8_t> record,
                              int64_t deadline_ns = 0);

  // Zero-copy binary batch: `records` is a back-to-back concatenation of
  // BinaryRecords (the wire batch framing — SplitBinaryBatch). The buffer
  // is split into borrowed per-record views and ridden through the
  // borrowed-span batch path: executors gather aligned payloads straight
  // into the SoA transpose and write scores through `out`
  // (out.size() >= record count). Blocks until completion.
  Status PredictBinary(PlanId id, std::span<const uint8_t> records,
                       size_t max_batch, std::span<float> out,
                       int64_t deadline_ns = 0);

  // Asynchronous single prediction: an event on the plan's queue, eligible
  // for coalescing with other queued singles of the same plan. `callback`
  // fires exactly once, from an executor thread.
  Status PredictAsync(PlanId id, std::string input, SingleCallback callback,
                      int64_t deadline_ns = 0);

  // Splits `inputs` into sub-batches of at most `max_batch` records, fans
  // them across the executors, and returns the scores in input order.
  Result<std::vector<float>> PredictBatch(PlanId id,
                                          const std::vector<std::string>& inputs,
                                          size_t max_batch,
                                          int64_t deadline_ns = 0);

  // Copy-free variant: executors write scores straight through the caller's
  // span (out.size() >= inputs.size()), and the inputs are borrowed, not
  // copied — the caller blocks until completion, so both stay valid. This
  // is the batch hot path; the vector-returning overload wraps it.
  Status PredictBatch(PlanId id, const std::vector<std::string>& inputs,
                      size_t max_batch, std::span<float> out,
                      int64_t deadline_ns = 0);

  // Borrowed-views variant of the span overload: `inputs` points at `n`
  // record views (text or binary wire bytes) that stay valid for the call.
  // This is the path the binary batch entry point rides.
  Status PredictBatch(PlanId id, const std::string_view* inputs, size_t n,
                      size_t max_batch, std::span<float> out,
                      int64_t deadline_ns = 0);

  // Asynchronous batch: returns after enqueueing; `callback` fires exactly
  // once, from an executor thread, with scores in input order. A deadline
  // expiring mid-batch drops only the chunks not yet executed: records in
  // chunks that ran before expiry keep their scores, dropped records score
  // 0.0f, and the batch Status is DeadlineExceeded.
  Status PredictBatchAsync(PlanId id, std::vector<std::string> inputs,
                           BatchCallback callback, size_t max_batch,
                           int64_t deadline_ns = 0);

  // Snapshot of per-plan queue/batch/latency metrics, aggregate
  // sub-plan-cache effectiveness, and pool counters. Never blocks dispatch:
  // counters are atomics and the stats shards are copied per-executor.
  RuntimeMetrics GetMetrics() const EXCLUDES(registry_mu_);

  size_t num_executors() const { return options_.num_executors; }
  std::vector<Reservation> reservations() const EXCLUDES(registry_mu_);
  ObjectStore* store() const { return store_; }

  // Per-plan load export for a routing tier: a borrowed pointer to the
  // plan's enqueue->dispatch queue-delay EWMA (microseconds; relaxed
  // writer-side updates, so readers load relaxed). The pointee lives as
  // long as the Runtime — PlanQueues are never reclaimed — so a router may
  // cache the pointer at placement time and read live load on every
  // routing decision (power-of-two-choices) without re-entering the
  // registry lock or snapshotting full RuntimeMetrics. Null for unknown
  // ids.
  const std::atomic<int64_t>* QueueDelayCounter(PlanId id) const
      EXCLUDES(registry_mu_);

 private:
  struct BatchJob;
  // One schedulable unit: either a single prediction (job == nullptr) or a
  // sub-range of a BatchJob.
  struct Event {
    std::shared_ptr<BatchJob> job;
    size_t begin = 0;
    size_t end = 0;
    std::string input;
    SingleCallback done;
    int64_t enqueue_ns = 0;
    // Absolute expiry (singles; chunks carry the job's). 0 = none.
    int64_t deadline_ns = 0;
  };
  struct ExecGroup;
  struct PlanQueue;
  struct MetricShard;
  struct SpillSegment;

  // Appends to threads_ / executor_caches_ / executor_pools_; callers hold
  // the registry lock exclusively (constructor and Register).
  void SpawnExecutor(ExecGroup* group) REQUIRES(registry_mu_);
  // Deadline admission gate, shared by every queued entry point: rejects
  // already-expired work (DeadlineExceeded, expired_admission) and — with
  // deadline_admission — sheds work whose remaining budget is below the
  // queue-delay estimate (ResourceExhausted + hint, shed_deadline). `n` is
  // the record count the counters move by.
  Status AdmitDeadline(PlanQueue* pq, int64_t deadline_ns, size_t n);
  // Chunks a prepared BatchJob into per-quantum events and enqueues them.
  Status SubmitBatchJob(PlanQueue* pq, std::shared_ptr<BatchJob> job,
                        size_t max_batch);
  // Submits a borrowed-input job and blocks until its callback fires
  // (the synchronous span/views/binary batch entry points share this).
  Status SubmitBatchJobAndWait(PlanQueue* pq, std::shared_ptr<BatchJob> job,
                               size_t max_batch);
  void ExecutorLoop(ExecGroup* group, SubPlanCache* cache, VectorPool* pool,
                    size_t shard_idx);
  void ExecutorLoopMutex(ExecGroup* group, ExecContext& ctx, size_t shard_idx);
  PlanQueue* GetQueue(PlanId id) const EXCLUDES(registry_mu_);

  // The one enqueue protocol (cap check, stamping, publication, wakeups);
  // all entry points delegate to it. Dispatches on lockfree_scheduler.
  Status EnqueueEvents(PlanQueue* pq, Event* events, size_t n);
  Status Enqueue(PlanQueue* pq, std::vector<Event> events);
  // Allocation-free single-event fast path (async/sync singles).
  Status EnqueueOne(PlanQueue* pq, Event event);

  // Lock-free mode helpers.
  Status EnqueueLockFree(PlanQueue* pq, Event* events, size_t n);
  static void PushRunnable(ExecGroup* group, PlanQueue* pq);
  static bool PopRunnable(ExecGroup* group, PlanQueue** pq);
  // Pops the plan's next event (held slot, then ring, then spill chain).
  // Quantum-owner only.
  static bool PopEvent(PlanQueue* pq, Event* out);
  // Takes the oldest spilled event and bulk-refills the ring from the
  // remaining chain. Quantum-owner only.
  static bool PopSpill(PlanQueue* pq, Event* out);
  void LingerLockFree(ExecGroup* group, PlanQueue* pq, int64_t oldest_ns);
  // Executes one gathered quantum (outside all scheduler structures) and
  // records error/latency accounting into this executor's shard.
  void ExecuteQuantum(PlanQueue* pq, std::vector<Event>& batch,
                      ExecContext& ctx, size_t shard_idx);

  ObjectStore* store_;
  const RuntimeOptions options_;

  // Registry lock: guards the plan registry and the executor bookkeeping
  // vectors below. Register takes it exclusively; every request path takes
  // it shared just long enough to resolve PlanId -> PlanQueue* (the pointee
  // is never reclaimed while the Runtime lives, so the pointer may escape
  // the lock). Leaf lock: never held across plan execution, and executor
  // threads never acquire it.
  mutable SharedMutex registry_mu_;
  std::vector<std::unique_ptr<PlanQueue>> plan_queues_ GUARDED_BY(registry_mu_);
  std::vector<Reservation> reservations_ GUARDED_BY(registry_mu_);
  // Created once in the constructor, never reseated; the group's internals
  // carry their own synchronization.
  std::unique_ptr<ExecGroup> shared_group_;
  std::vector<std::unique_ptr<ExecGroup>> reserved_groups_
      GUARDED_BY(registry_mu_);
  std::vector<std::unique_ptr<SubPlanCache>> executor_caches_
      GUARDED_BY(registry_mu_);
  std::vector<std::unique_ptr<VectorPool>> executor_pools_
      GUARDED_BY(registry_mu_);

  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_ GUARDED_BY(registry_mu_);

  // Contexts + cache for inline (caller-thread) predictions.
  VectorPool caller_pool_;
  ExecContextPool caller_contexts_;
  std::unique_ptr<SubPlanCache> caller_cache_;
};

}  // namespace pretzel

#endif  // PRETZEL_RUNTIME_RUNTIME_H_
