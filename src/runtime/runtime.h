// Runtime: the serving engine. Registered plans share one process and one
// Object Store; a pool of executor threads (one ExecContext each, so hot
// paths stay allocation-free) drains batch work from FIFO queues.
//
// Scheduling model:
//  - Predict() executes inline on the calling thread (a synchronous single
//    prediction gains nothing from a queue hop);
//  - PredictBatch/PredictBatchAsync split work into sub-batches and fan them
//    across the executors;
//  - a registration may reserve cores (Section 5.4.1): reserved plans get
//    dedicated executors draining a dedicated queue, so their latency is
//    isolated from everyone else's load.
#ifndef PRETZEL_RUNTIME_RUNTIME_H_
#define PRETZEL_RUNTIME_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/store/object_store.h"

namespace pretzel {

struct RuntimeOptions {
  size_t num_executors = 1;
  // Hard cap on dedicated executors one registration may reserve.
  size_t max_reserved_cores_per_plan = 4;
};

struct PlanRegistration {
  // > 0: dedicate this many executors to the plan. Dedicated executors are
  // additional threads so reservations never starve the shared pool.
  size_t reserve_cores = 0;
};

// A granted reservation: which plan owns which dedicated executors.
struct Reservation {
  size_t plan_id = 0;
  size_t num_cores = 0;
};

class Runtime {
 public:
  using PlanId = size_t;
  using BatchCallback = std::function<void(Status, std::span<const float>)>;

  Runtime(ObjectStore* store, const RuntimeOptions& options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Result<PlanId> Register(std::shared_ptr<ModelPlan> plan,
                          const PlanRegistration& registration = {});

  // Synchronous single prediction, executed inline on the caller's thread.
  Result<float> Predict(PlanId id, const std::string& input);

  // Splits `inputs` into sub-batches of at most `max_batch` records, fans
  // them across the executors, and returns the scores in input order.
  Result<std::vector<float>> PredictBatch(PlanId id,
                                          const std::vector<std::string>& inputs,
                                          size_t max_batch);

  // Asynchronous batch: returns after enqueueing; `callback` fires exactly
  // once, from an executor thread, with scores in input order.
  Status PredictBatchAsync(PlanId id, std::vector<std::string> inputs,
                           BatchCallback callback, size_t max_batch);

  size_t num_executors() const { return options_.num_executors; }
  std::vector<Reservation> reservations() const;
  ObjectStore* store() const { return store_; }

 private:
  struct BatchJob;
  struct WorkItem {
    std::shared_ptr<BatchJob> job;
    size_t begin = 0;
    size_t end = 0;
  };
  struct WorkQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> items;
  };

  void ExecutorLoop(WorkQueue* queue);
  std::shared_ptr<ModelPlan> GetPlan(PlanId id) const;
  // Returns the queue serving `id` and how many executors drain it.
  WorkQueue* QueueForPlan(PlanId id, size_t* parallelism) const;

  ObjectStore* store_;
  const RuntimeOptions options_;

  mutable std::shared_mutex registry_mu_;
  std::vector<std::shared_ptr<ModelPlan>> plans_;
  std::vector<Reservation> reservations_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;  // [0] = shared.
  std::unordered_map<PlanId, WorkQueue*> reserved_queue_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;

  // Contexts for inline (caller-thread) predictions.
  VectorPool caller_pool_;
  ExecContextPool caller_contexts_;
};

}  // namespace pretzel

#endif  // PRETZEL_RUNTIME_RUNTIME_H_
