#include "src/ops/feature_vector.h"

#include <utility>

// The pool lives one layer up (runtime owns buffer pooling); only this TU
// needs the definition, the header forward-declares.
#include "src/runtime/exec_context.h"

namespace pretzel {

void FeatureVector::EnsureValueCapacity(size_t n) {
  if (pool_ == nullptr || vals_.capacity() >= n) {
    return;  // Pool-less vectors grow through the allocator as usual.
  }
  if (vals_.capacity() > 0) {
    pool_->ReleaseFloats(std::move(vals_));
  }
  vals_ = pool_->AcquireFloats(n);
}

void FeatureVector::ReleaseStorage() {
  if (pool_ != nullptr && vals_.capacity() > 0) {
    pool_->ReleaseFloats(std::move(vals_));
    vals_ = std::vector<float>();
  } else {
    std::vector<float>().swap(vals_);
  }
  std::vector<uint32_t>().swap(ids_);
  rep_ = Rep::kEmpty;
  dim_ = 0;
}

void FeatureVector::SortCoalesce() {
  if (!is_sparse() || ids_.size() < 2) {
    return;
  }
  std::vector<std::pair<uint32_t, float>> entries;
  entries.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    entries.emplace_back(ids_[i], vals_[i]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ids_.clear();
  vals_.clear();
  for (size_t i = 0; i < entries.size();) {
    float sum = 0.0f;
    size_t j = i;
    while (j < entries.size() && entries[j].first == entries[i].first) {
      sum += entries[j].second;
      ++j;
    }
    ids_.push_back(entries[i].first);
    vals_.push_back(sum);
    i = j;
  }
}

void FeatureVector::AssignCounts(std::vector<uint32_t>& raw_hits, size_t dim) {
  std::sort(raw_hits.begin(), raw_hits.end());
  BeginSparse(dim);
  for (size_t i = 0; i < raw_hits.size();) {
    size_t j = i;
    while (j < raw_hits.size() && raw_hits[j] == raw_hits[i]) {
      ++j;
    }
    ids_.push_back(raw_hits[i]);
    vals_.push_back(static_cast<float>(j - i));
    i = j;
  }
}

void FeatureVector::AssignConcat(const FeatureVector& a, const FeatureVector& b,
                                 uint32_t b_offset) {
  BeginSparse(static_cast<size_t>(b_offset) + b.dim());
  ids_.reserve(a.nnz() + b.nnz());
  vals_.reserve(a.nnz() + b.nnz());
  ids_.insert(ids_.end(), a.ids_.begin(), a.ids_.end());
  vals_.insert(vals_.end(), a.vals_.begin(), a.vals_.end());
  for (size_t i = 0; i < b.ids_.size(); ++i) {
    ids_.push_back(b.ids_[i] + b_offset);
    vals_.push_back(b.vals_[i]);
  }
}

void FeatureVector::Densify() {
  if (rep_ == Rep::kDense) {
    return;
  }
  std::vector<float> dense =
      pool_ != nullptr ? pool_->AcquireFloats(dim_) : std::vector<float>(dim_);
  std::fill(dense.begin(), dense.end(), 0.0f);
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] < dim_) {
      dense[ids_[i]] += vals_[i];
    }
  }
  if (pool_ != nullptr && vals_.capacity() > 0) {
    pool_->ReleaseFloats(std::move(vals_));
  }
  vals_ = std::move(dense);
  ids_.clear();
  rep_ = Rep::kDense;
}

void FeatureVector::Sparsify() {
  if (rep_ != Rep::kDense) {
    rep_ = Rep::kSparse;
    return;
  }
  ids_.clear();
  size_t out = 0;
  for (size_t i = 0; i < dim_; ++i) {
    if (vals_[i] != 0.0f) {
      ids_.push_back(static_cast<uint32_t>(i));
      vals_[out++] = vals_[i];  // In-place gather: out never passes i.
    }
  }
  vals_.resize(out);
  rep_ = Rep::kSparse;
}

}  // namespace pretzel
