// Logical operator vocabulary shared by Flour programs, Oven plans, the
// workload generators, and the black-box baseline.
#ifndef PRETZEL_OPS_OP_KIND_H_
#define PRETZEL_OPS_OP_KIND_H_

namespace pretzel {

enum class OpKind {
  kTokenizer,       // Text -> lowercased token spans.
  kCharNgram,       // Token stream -> char n-gram dictionary hits.
  kWordNgram,       // Token stream -> word n-gram dictionary hits.
  kConcat,          // Branch outputs -> one feature space.
  kLinearBinary,    // Features -> calibrated binary score.
  kPca,             // Dense input -> projection.
  kKMeans,          // Dense input -> centroid distance features.
  kTreeFeaturizer,  // Dense input -> per-tree margin features.
  kForest,          // Dense features -> tree-ensemble score.
};

inline const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kTokenizer:
      return "Tokenizer";
    case OpKind::kCharNgram:
      return "CharNgram";
    case OpKind::kWordNgram:
      return "WordNgram";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kLinearBinary:
      return "LinearBinary";
    case OpKind::kPca:
      return "Pca";
    case OpKind::kKMeans:
      return "KMeans";
    case OpKind::kTreeFeaturizer:
      return "TreeFeaturizer";
    case OpKind::kForest:
      return "Forest";
  }
  return "Unknown";
}

}  // namespace pretzel

#endif  // PRETZEL_OPS_OP_KIND_H_
