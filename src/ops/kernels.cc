#include "src/ops/kernels.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace pretzel {

void HashDict::Reserve(size_t expected_entries) {
  size_t cap = 16;
  // Keep load factor under ~0.7.
  while (cap * 7 / 10 < expected_entries + 1) {
    cap <<= 1;
  }
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  size_ = 0;
}

bool HashDict::Insert(uint64_t key, uint32_t id) {
  if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
    // Grow: rebuild with doubled capacity.
    std::vector<Slot> old = std::move(slots_);
    Reserve(std::max<size_t>(size_ * 2, 16));
    for (const Slot& s : old) {
      if (s.key != kEmpty) {
        Insert(s.key, s.id);
      }
    }
  }
  size_t i = Mix(key) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.key == key) {
      return false;
    }
    if (s.key == kEmpty) {
      s.key = key;
      s.id = id;
      ++size_;
      return true;
    }
    i = (i + 1) & mask_;
  }
}

void TokenizeText(const std::string& input, std::string* text,
                  std::vector<std::pair<uint32_t, uint32_t>>* spans) {
  text->clear();
  spans->clear();
  text->reserve(input.size());
  uint32_t token_begin = 0;
  bool in_token = false;
  for (const char raw : input) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (!in_token) {
        token_begin = static_cast<uint32_t>(text->size());
        in_token = true;
      }
      text->push_back(static_cast<char>(std::tolower(c)));
    } else {
      if (in_token) {
        spans->emplace_back(token_begin, static_cast<uint32_t>(text->size()));
        in_token = false;
      }
      // Normalize separators to a single space so char n-grams can cross
      // word boundaries the way ML.Net's char n-grams do.
      if (!text->empty() && text->back() != ' ') {
        text->push_back(' ');
      }
    }
  }
  if (in_token) {
    spans->emplace_back(token_begin, static_cast<uint32_t>(text->size()));
  }
}

void MatVec(const float* matrix, size_t out_dim, size_t in_dim, const float* in,
            float* out) {
  for (size_t r = 0; r < out_dim; ++r) {
    const float* row = matrix + r * in_dim;
    float acc = 0.0f;
    for (size_t c = 0; c < in_dim; ++c) {
      acc += row[c] * in[c];
    }
    out[r] = acc;
  }
}

void KMeansTransform(const float* centroids, size_t k, size_t dim,
                     const float* in, float* out) {
  for (size_t i = 0; i < k; ++i) {
    const float* c = centroids + i * dim;
    float d2 = 0.0f;
    for (size_t j = 0; j < dim; ++j) {
      const float d = in[j] - c[j];
      d2 += d * d;
    }
    out[i] = -d2;
  }
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

size_t ParseDenseInput(const std::string& input, std::vector<float>* out) {
  out->clear();
  const char* p = input.c_str();
  const char* end = p + input.size();
  while (p < end) {
    char* next = nullptr;
    const float v = std::strtof(p, &next);
    if (next == p) {
      ++p;
      continue;
    }
    out->push_back(v);
    p = next;
    while (p < end && (*p == ',' || *p == ' ')) {
      ++p;
    }
  }
  return out->size();
}

namespace {

int32_t BuildTree(Forest* forest, size_t features, size_t depth, Rng& rng) {
  TreeNode node;
  if (depth == 0) {
    node.feature = -1;
    node.value = static_cast<float>(rng.Normal()) * 0.25f;
    forest->nodes.push_back(node);
    return static_cast<int32_t>(forest->nodes.size() - 1);
  }
  node.feature = static_cast<int16_t>(rng.UniformInt(features));
  node.threshold = static_cast<float>(rng.Normal());
  forest->nodes.push_back(node);
  const int32_t idx = static_cast<int32_t>(forest->nodes.size() - 1);
  const int32_t left = BuildTree(forest, features, depth - 1, rng);
  const int32_t right = BuildTree(forest, features, depth - 1, rng);
  forest->nodes[idx].left = left;
  forest->nodes[idx].right = right;
  return idx;
}

}  // namespace

Forest BuildRandomForest(size_t trees, size_t features, size_t depth, Rng& rng) {
  Forest forest;
  forest.num_features = features;
  forest.roots.reserve(trees);
  forest.nodes.reserve(trees * ((size_t{1} << (depth + 1)) - 1));
  for (size_t t = 0; t < trees; ++t) {
    forest.roots.push_back(BuildTree(&forest, features, depth, rng));
  }
  return forest;
}

}  // namespace pretzel
