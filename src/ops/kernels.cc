#include "src/ops/kernels.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <system_error>

namespace pretzel {

void HashDict::Reserve(size_t expected_entries) {
  size_t cap = 16;
  // Keep load factor under ~0.7.
  while (cap * 7 / 10 < expected_entries + 1) {
    cap <<= 1;
  }
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  size_ = 0;
}

bool HashDict::InsertNoGrow(uint64_t key, uint32_t id) {
  size_t i = Mix(key) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.key == key) {
      return false;
    }
    if (s.key == kEmpty) {
      s.key = key;
      s.id = id;
      ++size_;
      return true;
    }
    i = (i + 1) & mask_;
  }
}

void HashDict::Grow() {
  // Rebuild once at double the live size: Reserve sizes the new table from
  // size_ directly, and the rehash loop inserts without re-entering this
  // growth check per element (the old path re-evaluated it on every moved
  // key, and deserialization rebuilds dictionaries entry by entry).
  std::vector<Slot> old = std::move(slots_);
  Reserve(std::max<size_t>(size_ * 2, 16));
  for (const Slot& s : old) {
    if (s.key != kEmpty) {
      InsertNoGrow(s.key, s.id);
    }
  }
}

bool HashDict::Insert(uint64_t key, uint32_t id) {
  if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
    Grow();
  }
  return InsertNoGrow(key, id);
}

void TokenizeText(std::string_view input, std::string* text,
                  std::vector<std::pair<uint32_t, uint32_t>>* spans) {
  text->clear();
  spans->clear();
  text->reserve(input.size());
  uint32_t token_begin = 0;
  bool in_token = false;
  for (const char raw : input) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (!in_token) {
        token_begin = static_cast<uint32_t>(text->size());
        in_token = true;
      }
      text->push_back(static_cast<char>(std::tolower(c)));
    } else {
      if (in_token) {
        spans->emplace_back(token_begin, static_cast<uint32_t>(text->size()));
        in_token = false;
      }
      // Normalize separators to a single space so char n-grams can cross
      // word boundaries the way ML.Net's char n-grams do.
      if (!text->empty() && text->back() != ' ') {
        text->push_back(' ');
      }
    }
  }
  if (in_token) {
    spans->emplace_back(token_begin, static_cast<uint32_t>(text->size()));
  }
}

// ---------------------------------------------------------------------------
// Dense kernels: portable scalar backend + per-process dispatch.

namespace internal {

float DotF32Scalar(const float* a, const float* b, size_t n) {
  // Four independent accumulators: breaks the serial FP dependence chain
  // (FMA-friendly) and is reassociation the vectorizer may lift to SIMD
  // lanes without -ffast-math.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

void MatVecScalar(const float* matrix, size_t out_dim, size_t in_dim,
                  const float* in, float* out) {
  for (size_t r = 0; r < out_dim; ++r) {
    out[r] = DotF32Scalar(matrix + r * in_dim, in, in_dim);
  }
}

void KMeansTransformScalar(const float* centroids, size_t k, size_t dim,
                           const float* in, float* out) {
  for (size_t i = 0; i < k; ++i) {
    const float* c = centroids + i * dim;
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      const float d0 = in[j] - c[j];
      const float d1 = in[j + 1] - c[j + 1];
      const float d2 = in[j + 2] - c[j + 2];
      const float d3 = in[j + 3] - c[j + 3];
      acc0 += d0 * d0;
      acc1 += d1 * d1;
      acc2 += d2 * d2;
      acc3 += d3 * d3;
    }
    for (; j < dim; ++j) {
      const float d = in[j] - c[j];
      acc0 += d * d;
    }
    out[i] = -((acc0 + acc1) + (acc2 + acc3));
  }
}

void MatVecBatchSoAScalar(const float* matrix, size_t out_dim, size_t in_dim,
                          const float* in_soa, size_t batch, float* out_soa) {
  // Register-tiled: each pass holds an 8-lane accumulator tile for one
  // output row across 8 records and streams the whole input dimension
  // through it — the long loop is innermost, the tile never leaves
  // registers, one matrix-row read serves 8 records, and there is no
  // horizontal reduction (the cost per-record dot products always pay).
  constexpr size_t kLanes = 8;
  for (size_t r = 0; r < out_dim; ++r) {
    const float* row = matrix + r * in_dim;
    float* out = out_soa + r * batch;
    size_t b = 0;
    for (; b + kLanes <= batch; b += kLanes) {
      float acc[kLanes] = {0.0f};
      const float* col = in_soa + b;
      for (size_t c = 0; c < in_dim; ++c, col += batch) {
        const float m = row[c];
        for (size_t l = 0; l < kLanes; ++l) {
          acc[l] += m * col[l];
        }
      }
      for (size_t l = 0; l < kLanes; ++l) {
        out[b + l] = acc[l];
      }
    }
    for (; b < batch; ++b) {
      float acc = 0.0f;
      const float* col = in_soa + b;
      for (size_t c = 0; c < in_dim; ++c, col += batch) {
        acc += row[c] * col[0];
      }
      out[b] = acc;
    }
  }
}

void KMeansTransformBatchSoAScalar(const float* centroids, size_t k,
                                   size_t dim, const float* in_soa,
                                   size_t batch, float* out_soa) {
  constexpr size_t kLanes = 8;
  for (size_t i = 0; i < k; ++i) {
    const float* cent = centroids + i * dim;
    float* out = out_soa + i * batch;
    size_t b = 0;
    for (; b + kLanes <= batch; b += kLanes) {
      float acc[kLanes] = {0.0f};
      const float* col = in_soa + b;
      for (size_t c = 0; c < dim; ++c, col += batch) {
        const float cc = cent[c];
        for (size_t l = 0; l < kLanes; ++l) {
          const float d = col[l] - cc;
          acc[l] += d * d;
        }
      }
      for (size_t l = 0; l < kLanes; ++l) {
        out[b + l] = -acc[l];
      }
    }
    for (; b < batch; ++b) {
      float acc = 0.0f;
      const float* col = in_soa + b;
      for (size_t c = 0; c < dim; ++c, col += batch) {
        const float d = col[0] - cent[c];
        acc += d * d;
      }
      out[b] = -acc;
    }
  }
}

}  // namespace internal

namespace {

// Force-scalar override for parity baselines and before/after sweeps.
// Plain bool: flipped only from single-threaded test/bench setup.
bool g_force_scalar = false;

bool UseAvx2() {
#ifdef PRETZEL_HAVE_AVX2
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported && !g_force_scalar;
#else
  return false;
#endif
}

}  // namespace

bool SetForceScalarKernels(bool force) {
  const bool prev = g_force_scalar;
  g_force_scalar = force;
  return prev;
}

KernelBackend ActiveKernelBackend() {
  return UseAvx2() ? KernelBackend::kAvx2 : KernelBackend::kScalar;
}

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

float DotF32(const float* a, const float* b, size_t n) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    return internal::DotF32Avx2(a, b, n);
  }
#endif
  return internal::DotF32Scalar(a, b, n);
}

void MatVec(const float* matrix, size_t out_dim, size_t in_dim, const float* in,
            float* out) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::MatVecAvx2(matrix, out_dim, in_dim, in, out);
    return;
  }
#endif
  internal::MatVecScalar(matrix, out_dim, in_dim, in, out);
}

void KMeansTransform(const float* centroids, size_t k, size_t dim,
                     const float* in, float* out) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::KMeansTransformAvx2(centroids, k, dim, in, out);
    return;
  }
#endif
  internal::KMeansTransformScalar(centroids, k, dim, in, out);
}

void MatVecBatchSoA(const float* matrix, size_t out_dim, size_t in_dim,
                    const float* in_soa, size_t batch, float* out_soa) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::MatVecBatchSoAAvx2(matrix, out_dim, in_dim, in_soa, batch,
                                 out_soa);
    return;
  }
#endif
  internal::MatVecBatchSoAScalar(matrix, out_dim, in_dim, in_soa, batch,
                                 out_soa);
}

void KMeansTransformBatchSoA(const float* centroids, size_t k, size_t dim,
                             const float* in_soa, size_t batch,
                             float* out_soa) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::KMeansTransformBatchSoAAvx2(centroids, k, dim, in_soa, batch,
                                          out_soa);
    return;
  }
#endif
  internal::KMeansTransformBatchSoAScalar(centroids, k, dim, in_soa, batch,
                                          out_soa);
}

void TransposeToSoA(const float* rows, size_t batch, size_t row_stride,
                    size_t in_dim, float* soa) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::TransposeToSoAAvx2(rows, batch, row_stride, in_dim, soa);
    return;
  }
#endif
  for (size_t b = 0; b < batch; ++b) {
    const float* row = rows + b * row_stride;
    for (size_t c = 0; c < in_dim; ++c) {
      soa[c * batch + b] = row[c];
    }
  }
}

void TransposeRowsToSoA(const float* const* rows, size_t batch, size_t in_dim,
                        float* soa) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    internal::TransposeRowsToSoAAvx2(rows, batch, in_dim, soa);
    return;
  }
#endif
  for (size_t b = 0; b < batch; ++b) {
    const float* row = rows[b];
    for (size_t c = 0; c < in_dim; ++c) {
      soa[c * batch + b] = row[c];
    }
  }
}

double SparseDot(const uint32_t* ids, const float* vals, size_t nnz,
                 const float* weights, size_t w_dim) {
#ifdef PRETZEL_HAVE_AVX2
  if (UseAvx2()) {
    return internal::SparseDotAvx2(ids, vals, nnz, weights, w_dim);
  }
#endif
  return internal::SparseDotScalar(ids, vals, nnz, weights, w_dim);
}

namespace internal {
double SparseDotScalar(const uint32_t* ids, const float* vals, size_t nnz,
                       const float* weights, size_t w_dim) {
  double acc0 = 0.0, acc1 = 0.0;
  size_t i = 0;
  for (; i + 2 <= nnz; i += 2) {
    const uint32_t id0 = ids[i];
    const uint32_t id1 = ids[i + 1];
    if (id0 < w_dim) {
      acc0 += static_cast<double>(weights[id0]) * vals[i];
    }
    if (id1 < w_dim) {
      acc1 += static_cast<double>(weights[id1]) * vals[i + 1];
    }
  }
  if (i < nnz && ids[i] < w_dim) {
    acc0 += static_cast<double>(weights[ids[i]]) * vals[i];
  }
  return acc0 + acc1;
}
}  // namespace internal

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// from_chars: bounded by [p, end) with no NUL-termination requirement, so
// borrowed string_view slices (wire batch buffers) parse in place.
size_t ParseDenseInput(std::string_view input, std::vector<float>* out) {
  out->clear();
  const char* p = input.data();
  const char* end = p + input.size();
  while (p < end) {
    float v;
    const auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc() || next == p) {
      ++p;
      continue;
    }
    out->push_back(v);
    p = next;
    while (p < end && (*p == ',' || *p == ' ')) {
      ++p;
    }
  }
  return out->size();
}

namespace {

int32_t BuildTree(Forest* forest, size_t features, size_t depth, Rng& rng) {
  TreeNode node;
  if (depth == 0) {
    node.feature = -1;
    node.value = static_cast<float>(rng.Normal()) * 0.25f;
    forest->nodes.push_back(node);
    return static_cast<int32_t>(forest->nodes.size() - 1);
  }
  node.feature = static_cast<int16_t>(rng.UniformInt(features));
  node.threshold = static_cast<float>(rng.Normal());
  forest->nodes.push_back(node);
  const int32_t idx = static_cast<int32_t>(forest->nodes.size() - 1);
  const int32_t left = BuildTree(forest, features, depth - 1, rng);
  const int32_t right = BuildTree(forest, features, depth - 1, rng);
  forest->nodes[idx].left = left;
  forest->nodes[idx].right = right;
  return idx;
}

}  // namespace

Forest BuildRandomForest(size_t trees, size_t features, size_t depth, Rng& rng) {
  Forest forest;
  forest.num_features = features;
  forest.roots.reserve(trees);
  forest.nodes.reserve(trees * ((size_t{1} << (depth + 1)) - 1));
  for (size_t t = 0; t < trees; ++t) {
    forest.roots.push_back(BuildTree(&forest, features, depth, rng));
  }
  return forest;
}

}  // namespace pretzel
