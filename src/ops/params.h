// Typed, immutable operator parameters plus the PipelineSpec they hang off.
// Parameters are the unit of sharing in PRETZEL: every params object carries
// a content checksum, and the Object Store interns params by checksum so
// pipelines built from the same dictionaries/models share one copy.
#ifndef PRETZEL_OPS_PARAMS_H_
#define PRETZEL_OPS_PARAMS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/ops/kernels.h"
#include "src/ops/op_kind.h"

namespace pretzel {

class OpParams {
 public:
  virtual ~OpParams() = default;

  OpKind kind() const { return kind_; }
  // Stable content hash: identical logical content (regardless of how the
  // object was built — generated or deserialized) yields the same checksum.
  uint64_t ContentChecksum() const { return checksum_; }
  // Resident parameter memory, excluding sizeof(*this).
  virtual size_t HeapBytes() const = 0;
  // Appends the serialized body (no kind/length framing) to `out`.
  virtual void Serialize(std::string* out) const = 0;

 protected:
  explicit OpParams(OpKind kind) : kind_(kind) {}
  void set_checksum(uint64_t ck) { checksum_ = ck == 0 ? 1 : ck; }

 private:
  OpKind kind_;
  uint64_t checksum_ = 1;
};

// ---------------------------------------------------------------------------

struct TokenizerParams : public OpParams {
  TokenizerParams();
  size_t HeapBytes() const override { return 64; }  // Nominal tables.
  void Serialize(std::string* out) const override;
};

struct CharNgramParams : public OpParams {
  HashDict dict;
  NgramScanConfig scan;

  CharNgramParams() : OpParams(OpKind::kCharNgram) {}
  // Recomputes the checksum from content; call once after filling `dict`.
  void Finalize();
  size_t HeapBytes() const override { return dict.HeapBytes(); }
  void Serialize(std::string* out) const override;
};

struct WordNgramParams : public OpParams {
  HashDict dict;
  NgramScanConfig scan;

  WordNgramParams() : OpParams(OpKind::kWordNgram) {}
  void Finalize();
  size_t HeapBytes() const override { return dict.HeapBytes(); }
  void Serialize(std::string* out) const override;
};

struct ConcatParams : public OpParams {
  ConcatParams();
  size_t HeapBytes() const override { return 0; }
  void Serialize(std::string* out) const override;
};

struct LinearBinaryParams : public OpParams {
  std::vector<float> weights;  // One weight per concatenated feature id.
  float bias = 0.0f;

  LinearBinaryParams() : OpParams(OpKind::kLinearBinary) {}
  void Finalize();
  size_t HeapBytes() const override { return weights.capacity() * sizeof(float); }
  void Serialize(std::string* out) const override;
};

struct PcaParams : public OpParams {
  uint32_t in_dim = 0;
  uint32_t out_dim = 0;
  std::vector<float> matrix;  // Row-major out_dim x in_dim.

  PcaParams() : OpParams(OpKind::kPca) {}
  void Finalize();
  size_t HeapBytes() const override { return matrix.capacity() * sizeof(float); }
  void Serialize(std::string* out) const override;
};

struct KMeansParams : public OpParams {
  uint32_t dim = 0;
  uint32_t k = 0;
  std::vector<float> centroids;  // Row-major k x dim.

  KMeansParams() : OpParams(OpKind::kKMeans) {}
  void Finalize();
  size_t HeapBytes() const override { return centroids.capacity() * sizeof(float); }
  void Serialize(std::string* out) const override;
};

struct TreeFeaturizerParams : public OpParams {
  Forest forest;  // One output feature per tree.

  TreeFeaturizerParams() : OpParams(OpKind::kTreeFeaturizer) {}
  void Finalize();
  size_t HeapBytes() const override { return forest.HeapBytes(); }
  void Serialize(std::string* out) const override;
};

struct ForestParams : public OpParams {
  Forest forest;  // Summed margins -> score.

  ForestParams() : OpParams(OpKind::kForest) {}
  void Finalize();
  size_t HeapBytes() const override { return forest.HeapBytes(); }
  void Serialize(std::string* out) const override;
};

// Body-only deserialization; the caller strips any framing first.
Result<std::shared_ptr<OpParams>> DeserializeOpParams(OpKind kind,
                                                      const char* data,
                                                      size_t len);

// ---------------------------------------------------------------------------
// A logical pipeline: named sequence of operators. This is the unit the
// workload generators emit, model images serialize, and Flour consumes.

struct PipelineNodeSpec {
  std::shared_ptr<const OpParams> params;
};

struct PipelineSpec {
  std::string name;
  std::vector<PipelineNodeSpec> nodes;

  size_t ParameterBytes() const {
    size_t total = 0;
    for (const auto& node : nodes) {
      total += node.params->HeapBytes();
    }
    return total;
  }
};

// ---------------------------------------------------------------------------
// Kernel entry points in terms of params (the names the harnesses use).

inline void TokenizeInto(const std::string& input, const TokenizerParams&,
                         std::string* text,
                         std::vector<std::pair<uint32_t, uint32_t>>* spans) {
  TokenizeText(input, text, spans);
}

template <typename Fn>
inline void CharNgramScan(const std::string& text,
                          const std::vector<std::pair<uint32_t, uint32_t>>&,
                          const CharNgramParams& params, Fn&& fn) {
  ScanCharNgrams(text, params.dict, params.scan, static_cast<Fn&&>(fn));
}

template <typename Fn>
inline void WordNgramScan(const std::string& text,
                          const std::vector<std::pair<uint32_t, uint32_t>>& spans,
                          const WordNgramParams& params, Fn&& fn) {
  ScanWordNgrams(text, spans, params.dict, params.scan, static_cast<Fn&&>(fn));
}

}  // namespace pretzel

#endif  // PRETZEL_OPS_PARAMS_H_
