// AVX2+FMA dense-kernel backend. This TU is compiled with -mavx2 -mfma and
// only added to the build under the PRETZEL_AVX2 CMake option; the generic
// entry points in kernels.cc call in here strictly after runtime CPU
// detection, so the binary stays runnable on non-AVX2 hosts.
#ifdef PRETZEL_HAVE_AVX2

#include <immintrin.h>

#include "src/ops/kernels.h"

namespace pretzel {
namespace internal {

namespace {

// Horizontal sum of one 8-lane register.
inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
  return _mm_cvtss_f32(sum);
}

}  // namespace

float DotF32Avx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float sum = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void MatVecAvx2(const float* matrix, size_t out_dim, size_t in_dim,
                const float* in, float* out) {
  for (size_t r = 0; r < out_dim; ++r) {
    out[r] = DotF32Avx2(matrix + r * in_dim, in, in_dim);
  }
}

void KMeansTransformAvx2(const float* centroids, size_t k, size_t dim,
                         const float* in, float* out) {
  for (size_t i = 0; i < k; ++i) {
    const float* c = centroids + i * dim;
    __m256 acc = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(in + j),
                                     _mm256_loadu_ps(c + j));
      acc = _mm256_fmadd_ps(d, d, acc);
    }
    float d2 = HSum256(acc);
    for (; j < dim; ++j) {
      const float d = in[j] - c[j];
      d2 += d * d;
    }
    out[i] = -d2;
  }
}

void MatVecBatchSoAAvx2(const float* matrix, size_t out_dim, size_t in_dim,
                        const float* in_soa, size_t batch, float* out_soa) {
  // 4-row x 8-lane register tile: one column load feeds four independent
  // FMA chains (amortizes the load and breaks the FMA latency chain a
  // single-accumulator tile would serialize on).
  size_t r = 0;
  for (; r + 4 <= out_dim; r += 4) {
    const float* row0 = matrix + r * in_dim;
    const float* row1 = row0 + in_dim;
    const float* row2 = row1 + in_dim;
    const float* row3 = row2 + in_dim;
    size_t b = 0;
    for (; b + 8 <= batch; b += 8) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* col = in_soa + b;
      for (size_t c = 0; c < in_dim; ++c, col += batch) {
        const __m256 v = _mm256_loadu_ps(col);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(row0[c]), v, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(row1[c]), v, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(row2[c]), v, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(row3[c]), v, acc3);
      }
      _mm256_storeu_ps(out_soa + r * batch + b, acc0);
      _mm256_storeu_ps(out_soa + (r + 1) * batch + b, acc1);
      _mm256_storeu_ps(out_soa + (r + 2) * batch + b, acc2);
      _mm256_storeu_ps(out_soa + (r + 3) * batch + b, acc3);
    }
    for (; b < batch; ++b) {
      for (size_t rr = r; rr < r + 4; ++rr) {
        float acc = 0.0f;
        const float* rw = matrix + rr * in_dim;
        for (size_t c = 0; c < in_dim; ++c) {
          acc += rw[c] * in_soa[c * batch + b];
        }
        out_soa[rr * batch + b] = acc;
      }
    }
  }
  for (; r < out_dim; ++r) {
    const float* row = matrix + r * in_dim;
    float* out = out_soa + r * batch;
    size_t b = 0;
    for (; b + 8 <= batch; b += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* col = in_soa + b;
      for (size_t c = 0; c < in_dim; ++c, col += batch) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(row[c]), _mm256_loadu_ps(col), acc);
      }
      _mm256_storeu_ps(out + b, acc);
    }
    for (; b < batch; ++b) {
      float acc = 0.0f;
      for (size_t c = 0; c < in_dim; ++c) {
        acc += row[c] * in_soa[c * batch + b];
      }
      out[b] = acc;
    }
  }
}

void KMeansTransformBatchSoAAvx2(const float* centroids, size_t k, size_t dim,
                                 const float* in_soa, size_t batch,
                                 float* out_soa) {
  const __m256 neg = _mm256_set1_ps(-0.0f);
  size_t i = 0;
  for (; i + 2 <= k; i += 2) {
    // 2-centroid x 8-lane tile: the column load is shared and the two FMA
    // chains stay independent.
    const float* cent0 = centroids + i * dim;
    const float* cent1 = cent0 + dim;
    size_t b = 0;
    for (; b + 8 <= batch; b += 8) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      const float* col = in_soa + b;
      for (size_t c = 0; c < dim; ++c, col += batch) {
        const __m256 v = _mm256_loadu_ps(col);
        const __m256 d0 = _mm256_sub_ps(v, _mm256_set1_ps(cent0[c]));
        const __m256 d1 = _mm256_sub_ps(v, _mm256_set1_ps(cent1[c]));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
      }
      _mm256_storeu_ps(out_soa + i * batch + b, _mm256_xor_ps(acc0, neg));
      _mm256_storeu_ps(out_soa + (i + 1) * batch + b, _mm256_xor_ps(acc1, neg));
    }
    for (; b < batch; ++b) {
      for (size_t ii = i; ii < i + 2; ++ii) {
        float acc = 0.0f;
        const float* cc = centroids + ii * dim;
        for (size_t c = 0; c < dim; ++c) {
          const float d = in_soa[c * batch + b] - cc[c];
          acc += d * d;
        }
        out_soa[ii * batch + b] = -acc;
      }
    }
  }
  for (; i < k; ++i) {
    const float* cent = centroids + i * dim;
    float* out = out_soa + i * batch;
    size_t b = 0;
    for (; b + 8 <= batch; b += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* col = in_soa + b;
      for (size_t c = 0; c < dim; ++c, col += batch) {
        const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(col),
                                       _mm256_set1_ps(cent[c]));
        acc = _mm256_fmadd_ps(d, d, acc);
      }
      _mm256_storeu_ps(out + b, _mm256_xor_ps(acc, neg));
    }
    for (; b < batch; ++b) {
      float acc = 0.0f;
      for (size_t c = 0; c < dim; ++c) {
        const float d = in_soa[c * batch + b] - cent[c];
        acc += d * d;
      }
      out[b] = -acc;
    }
  }
}

namespace {

// Standard 8x8 in-register transpose (unpack -> shuffle -> lane permute).
inline void Transpose8x8(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, 0x44);
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, 0x44);
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, 0x44);
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, 0x44);
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
  r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

}  // namespace

void TransposeToSoAAvx2(const float* rows, size_t batch, size_t row_stride,
                        size_t in_dim, float* soa) {
  size_t b = 0;
  for (; b + 8 <= batch; b += 8) {
    size_t c = 0;
    for (; c + 8 <= in_dim; c += 8) {
      __m256 r[8];
      for (int i = 0; i < 8; ++i) {
        r[i] = _mm256_loadu_ps(rows + (b + i) * row_stride + c);
      }
      Transpose8x8(r);
      for (int i = 0; i < 8; ++i) {
        _mm256_storeu_ps(soa + (c + i) * batch + b, r[i]);
      }
    }
    for (; c < in_dim; ++c) {
      for (size_t i = 0; i < 8; ++i) {
        soa[c * batch + b + i] = rows[(b + i) * row_stride + c];
      }
    }
  }
  for (; b < batch; ++b) {
    const float* row = rows + b * row_stride;
    for (size_t c = 0; c < in_dim; ++c) {
      soa[c * batch + b] = row[c];
    }
  }
}

void TransposeRowsToSoAAvx2(const float* const* rows, size_t batch,
                            size_t in_dim, float* soa) {
  size_t b = 0;
  for (; b + 8 <= batch; b += 8) {
    size_t c = 0;
    for (; c + 8 <= in_dim; c += 8) {
      __m256 r[8];
      for (int i = 0; i < 8; ++i) {
        r[i] = _mm256_loadu_ps(rows[b + i] + c);
      }
      Transpose8x8(r);
      for (int i = 0; i < 8; ++i) {
        _mm256_storeu_ps(soa + (c + i) * batch + b, r[i]);
      }
    }
    for (; c < in_dim; ++c) {
      for (size_t i = 0; i < 8; ++i) {
        soa[c * batch + b + i] = rows[b + i][c];
      }
    }
  }
  for (; b < batch; ++b) {
    const float* row = rows[b];
    for (size_t c = 0; c < in_dim; ++c) {
      soa[c * batch + b] = row[c];
    }
  }
}

// Masked-gather sparse dot. Per 8-id group: an unsigned id < w_dim compare
// builds the gather mask (out-of-range ids contribute nothing AND touch no
// memory — masked-off gather lanes are architecturally suppressed, so a
// hostile id can never read out of bounds), then weights and values are
// widened to double before the FMA so every term matches the scalar
// backend's double(w) * double(v) product exactly (float*float is exact in
// double); only the association order differs.
double SparseDotAvx2(const uint32_t* ids, const float* vals, size_t nnz,
                     const float* weights, size_t w_dim) {
  if (w_dim > static_cast<size_t>(INT32_MAX)) {
    return SparseDotScalar(ids, vals, nnz, weights, w_dim);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  const __m256i dim_biased =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(w_dim)), sign);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    // alias-ok: _mm256_loadu_si256 is alignment-blind and its intrinsic
    // signature forces the __m256i* cast; the load reads exactly 8 uint32s.
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    // Unsigned compare via sign-bias: mask lane = (id < w_dim).
    const __m256i mask =
        _mm256_cmpgt_epi32(dim_biased, _mm256_xor_si256(idv, sign));
    const __m256 w = _mm256_mask_i32gather_ps(
        _mm256_setzero_ps(), weights, idv, _mm256_castsi256_ps(mask), 4);
    const __m256 v = _mm256_loadu_ps(vals + i);
    acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(w)),
                           _mm256_cvtps_pd(_mm256_castps256_ps128(v)), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(w, 1)),
                           _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), acc1);
  }
  const __m256d both = _mm256_add_pd(acc0, acc1);
  const __m128d half = _mm_add_pd(_mm256_castpd256_pd128(both),
                                  _mm256_extractf128_pd(both, 1));
  double acc = _mm_cvtsd_f64(_mm_add_sd(half, _mm_unpackhi_pd(half, half)));
  for (; i < nnz; ++i) {
    if (ids[i] < w_dim) {
      acc += static_cast<double>(weights[ids[i]]) * vals[i];
    }
  }
  return acc;
}

}  // namespace internal
}  // namespace pretzel

#endif  // PRETZEL_HAVE_AVX2
