#include "src/ops/params.h"

#include <cstring>

#include "src/common/serialize.h"

namespace pretzel {
namespace {

// Order-independent dictionary checksum: a deserialized dictionary may lay
// its probe table out differently, so the checksum must not depend on
// enumeration order.
uint64_t DictChecksum(const HashDict& dict, uint64_t seed) {
  uint64_t sum = SplitMix64(seed ^ dict.size());
  dict.ForEach([&sum](uint64_t key, uint32_t id) {
    sum += SplitMix64(key ^ (static_cast<uint64_t>(id) << 32));
  });
  return sum;
}

uint64_t BytesChecksum(const void* data, size_t len, uint64_t seed) {
  return ContentHash64(static_cast<const char*>(data), len, seed);
}

uint64_t ForestChecksum(const Forest& forest, uint64_t seed) {
  uint64_t h = SplitMix64(seed ^ forest.num_features);
  h = SplitMix64(h ^ BytesChecksum(forest.roots.data(),
                                   forest.roots.size() * sizeof(int32_t), 1));
  h = SplitMix64(h ^ BytesChecksum(forest.nodes.data(),
                                   forest.nodes.size() * sizeof(TreeNode), 2));
  return h;
}

void SerializeForest(const Forest& forest, std::string* out) {
  AppendPod(out, static_cast<uint64_t>(forest.num_features));
  AppendPod(out, static_cast<uint64_t>(forest.roots.size()));
  AppendPod(out, static_cast<uint64_t>(forest.nodes.size()));
  out->append(reinterpret_cast<const char*>(forest.roots.data()),
              forest.roots.size() * sizeof(int32_t));
  out->append(reinterpret_cast<const char*>(forest.nodes.data()),
              forest.nodes.size() * sizeof(TreeNode));
}

bool DeserializeForest(const char** p, const char* end, Forest* forest) {
  uint64_t features = 0, roots = 0, nodes = 0;
  if (!ReadPod(p, end, &features) || !ReadPod(p, end, &roots) ||
      !ReadPod(p, end, &nodes)) {
    return false;
  }
  const size_t roots_bytes = roots * sizeof(int32_t);
  const size_t nodes_bytes = nodes * sizeof(TreeNode);
  if (static_cast<size_t>(end - *p) < roots_bytes + nodes_bytes) {
    return false;
  }
  forest->num_features = features;
  forest->roots.resize(roots);
  std::memcpy(forest->roots.data(), *p, roots_bytes);
  *p += roots_bytes;
  forest->nodes.resize(nodes);
  std::memcpy(forest->nodes.data(), *p, nodes_bytes);
  *p += nodes_bytes;
  // Structural validation: a corrupted image must not be able to send
  // EvalTree out of bounds (or into a cycle — child links must point
  // forward, matching how BuildTree lays nodes out).
  const int64_t n = static_cast<int64_t>(nodes);
  for (const int32_t root : forest->roots) {
    if (root < 0 || root >= n) {
      return false;
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const TreeNode& node = forest->nodes[i];
    if (node.feature < 0) {
      continue;  // Leaf.
    }
    if (static_cast<uint64_t>(node.feature) >= features ||
        node.left <= i || node.left >= n || node.right <= i || node.right >= n) {
      return false;
    }
  }
  return true;
}

// Dictionary (de)serialization is deliberately entry-at-a-time: rebuilding
// the probe table is the dominant cost of loading an n-gram featurizer, the
// cost PRETZEL's Object Store skips for already-resident checksums.
void SerializeDict(const HashDict& dict, const NgramScanConfig& scan,
                   std::string* out) {
  AppendPod(out, scan.min_n);
  AppendPod(out, scan.max_n);
  AppendPod(out, scan.word_orders);
  AppendPod(out, static_cast<uint64_t>(dict.size()));
  dict.ForEach([out](uint64_t key, uint32_t id) {
    AppendPod(out, key);
    AppendPod(out, id);
  });
}

bool DeserializeDict(const char** p, const char* end, HashDict* dict,
                     NgramScanConfig* scan) {
  uint64_t count = 0;
  if (!ReadPod(p, end, &scan->min_n) || !ReadPod(p, end, &scan->max_n) ||
      !ReadPod(p, end, &scan->word_orders) || !ReadPod(p, end, &count)) {
    return false;
  }
  dict->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    uint32_t id = 0;
    if (!ReadPod(p, end, &key) || !ReadPod(p, end, &id)) {
      return false;
    }
    dict->Insert(key, id);
  }
  return true;
}

void SerializeFloats(const std::vector<float>& v, std::string* out) {
  AppendPod(out, static_cast<uint64_t>(v.size()));
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float));
}

bool DeserializeFloats(const char** p, const char* end, std::vector<float>* v) {
  uint64_t count = 0;
  if (!ReadPod(p, end, &count)) {
    return false;
  }
  const size_t bytes = count * sizeof(float);
  if (static_cast<size_t>(end - *p) < bytes) {
    return false;
  }
  v->resize(count);
  std::memcpy(v->data(), *p, bytes);
  *p += bytes;
  return true;
}

}  // namespace

TokenizerParams::TokenizerParams() : OpParams(OpKind::kTokenizer) {
  set_checksum(0x70726574544f4b31ull);  // All tokenizers share one version.
}
void TokenizerParams::Serialize(std::string* out) const {
  AppendPod(out, uint32_t{1});  // Format version.
}

void CharNgramParams::Finalize() { set_checksum(DictChecksum(dict, 0xC1)); }
void CharNgramParams::Serialize(std::string* out) const {
  SerializeDict(dict, scan, out);
}

void WordNgramParams::Finalize() { set_checksum(DictChecksum(dict, 0xC2)); }
void WordNgramParams::Serialize(std::string* out) const {
  SerializeDict(dict, scan, out);
}

ConcatParams::ConcatParams() : OpParams(OpKind::kConcat) {
  set_checksum(0x70726574434f4e31ull);
}
void ConcatParams::Serialize(std::string* out) const {
  AppendPod(out, uint32_t{1});
}

void LinearBinaryParams::Finalize() {
  uint64_t h = BytesChecksum(weights.data(), weights.size() * sizeof(float), 0xC3);
  h = SplitMix64(h ^ BytesChecksum(&bias, sizeof(bias), 0xC4));
  set_checksum(h);
}
void LinearBinaryParams::Serialize(std::string* out) const {
  AppendPod(out, bias);
  SerializeFloats(weights, out);
}

void PcaParams::Finalize() {
  uint64_t h = BytesChecksum(matrix.data(), matrix.size() * sizeof(float), 0xC5);
  h = SplitMix64(h ^ in_dim ^ (static_cast<uint64_t>(out_dim) << 32));
  set_checksum(h);
}
void PcaParams::Serialize(std::string* out) const {
  AppendPod(out, in_dim);
  AppendPod(out, out_dim);
  SerializeFloats(matrix, out);
}

void KMeansParams::Finalize() {
  uint64_t h =
      BytesChecksum(centroids.data(), centroids.size() * sizeof(float), 0xC6);
  h = SplitMix64(h ^ dim ^ (static_cast<uint64_t>(k) << 32));
  set_checksum(h);
}
void KMeansParams::Serialize(std::string* out) const {
  AppendPod(out, dim);
  AppendPod(out, k);
  SerializeFloats(centroids, out);
}

void TreeFeaturizerParams::Finalize() { set_checksum(ForestChecksum(forest, 0xC7)); }
void TreeFeaturizerParams::Serialize(std::string* out) const {
  SerializeForest(forest, out);
}

void ForestParams::Finalize() { set_checksum(ForestChecksum(forest, 0xC8)); }
void ForestParams::Serialize(std::string* out) const {
  SerializeForest(forest, out);
}

Result<std::shared_ptr<OpParams>> DeserializeOpParams(OpKind kind,
                                                      const char* data,
                                                      size_t len) {
  const char* p = data;
  const char* end = data + len;
  switch (kind) {
    case OpKind::kTokenizer: {
      return std::shared_ptr<OpParams>(std::make_shared<TokenizerParams>());
    }
    case OpKind::kConcat: {
      return std::shared_ptr<OpParams>(std::make_shared<ConcatParams>());
    }
    case OpKind::kCharNgram: {
      auto params = std::make_shared<CharNgramParams>();
      if (!DeserializeDict(&p, end, &params->dict, &params->scan)) {
        return Status::Error("bad CharNgram body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kWordNgram: {
      auto params = std::make_shared<WordNgramParams>();
      if (!DeserializeDict(&p, end, &params->dict, &params->scan)) {
        return Status::Error("bad WordNgram body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kLinearBinary: {
      auto params = std::make_shared<LinearBinaryParams>();
      if (!ReadPod(&p, end, &params->bias) ||
          !DeserializeFloats(&p, end, &params->weights)) {
        return Status::Error("bad LinearBinary body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kPca: {
      auto params = std::make_shared<PcaParams>();
      if (!ReadPod(&p, end, &params->in_dim) ||
          !ReadPod(&p, end, &params->out_dim) ||
          !DeserializeFloats(&p, end, &params->matrix) ||
          params->matrix.size() !=
              static_cast<size_t>(params->in_dim) * params->out_dim) {
        return Status::Error("bad Pca body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kKMeans: {
      auto params = std::make_shared<KMeansParams>();
      if (!ReadPod(&p, end, &params->dim) || !ReadPod(&p, end, &params->k) ||
          !DeserializeFloats(&p, end, &params->centroids) ||
          params->centroids.size() !=
              static_cast<size_t>(params->dim) * params->k) {
        return Status::Error("bad KMeans body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kTreeFeaturizer: {
      auto params = std::make_shared<TreeFeaturizerParams>();
      if (!DeserializeForest(&p, end, &params->forest)) {
        return Status::Error("bad TreeFeaturizer body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
    case OpKind::kForest: {
      auto params = std::make_shared<ForestParams>();
      if (!DeserializeForest(&p, end, &params->forest)) {
        return Status::Error("bad Forest body");
      }
      params->Finalize();
      return std::shared_ptr<OpParams>(std::move(params));
    }
  }
  return Status::Error("unknown op kind");
}

}  // namespace pretzel
