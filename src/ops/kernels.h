// Numeric/text kernels shared by PRETZEL plans and the black-box baseline.
// Both execution models call the same functions, so figure comparisons
// isolate the execution-model overheads (boxing, per-op buffers, container
// hops) rather than kernel quality differences.
#ifndef PRETZEL_OPS_KERNELS_H_
#define PRETZEL_OPS_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace pretzel {

// ---------------------------------------------------------------------------
// HashDict: open-addressed (linear probe) hash table from a 64-bit content
// hash to a dense feature id. This is the shape of the paper's n-gram
// dictionaries: immutable after the off-line phase, lookup-only on the data
// path. Deserialization rebuilds the probe table entry by entry, which is
// exactly the cold-start cost the Object Store lets PRETZEL skip.
class HashDict {
 public:
  HashDict() = default;

  void Reserve(size_t expected_entries);
  // Returns false if the key was already present.
  bool Insert(uint64_t key, uint32_t id);
  // Returns -1 on miss, else the id.
  int64_t Find(uint64_t key) const {
    if (slots_.empty()) {
      return -1;
    }
    size_t i = Mix(key) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) {
        return s.id;
      }
      if (s.key == kEmpty) {
        return -1;
      }
      i = (i + 1) & mask_;
    }
  }

  // Lookup prefetch hint: pulls the key's home cache line toward L1 so a
  // scan can overlap the table-miss latency of lookup k+1 with the probe of
  // lookup k (the dictionaries are far larger than L2 at paper scale).
  void Prefetch(uint64_t key) const {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[Mix(key) & mask_], /*rw=*/0, /*locality=*/1);
    }
  }

  size_t size() const { return size_; }
  size_t HeapBytes() const { return slots_.capacity() * sizeof(Slot); }

  // Content enumeration (serialization + checksums). Order is table order,
  // deterministic for identical insert sequences.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) {
        fn(s.key, s.id);
      }
    }
  }

 private:
  struct Slot {
    uint64_t key = kEmpty;
    uint32_t id = 0;
  };
  static constexpr uint64_t kEmpty = 0;

  static uint64_t Mix(uint64_t k) { return SplitMix64(k); }

  // Probe-and-write without the growth check; the rehash loop uses this so
  // rebuilding a table never re-enters the grow path per element.
  bool InsertNoGrow(uint64_t key, uint32_t id);
  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

// Keys are raw content hashes; 0 is reserved as the empty slot marker.
inline uint64_t ContentHash64(const char* data, size_t len, uint64_t seed = 0) {
  uint64_t h = SplitMix64(seed ^ (0x9ddfea08eb382d69ull + len));
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, data + i, 8);
    h = SplitMix64(h ^ chunk);
  }
  uint64_t tail = 0;
  for (size_t j = 0; i + j < len; ++j) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(data[i + j])) << (8 * j);
  }
  h = SplitMix64(h ^ tail);
  return h == 0 ? 1 : h;
}

// ---------------------------------------------------------------------------
// Tokenization. Lowercases into `text` and emits [begin, end) spans of the
// alphanumeric runs. Outputs are caller-provided so hot paths can reuse
// buffers.

struct TokenizerParams;  // Defined in params.h; the kernel only needs the tag.

void TokenizeText(std::string_view input, std::string* text,
                  std::vector<std::pair<uint32_t, uint32_t>>* spans);

// ---------------------------------------------------------------------------
// N-gram scans. Both walk the tokenized text and invoke `fn(id)` for every
// dictionary hit; weight accumulation or sparse materialization is the
// caller's choice (fused vs. operator-at-a-time execution).

struct NgramScanConfig {
  uint32_t min_n = 3;  // Char n-gram orders scanned, inclusive.
  uint32_t max_n = 4;
  uint32_t word_orders = 2;  // Word n-gram orders: unigrams + bigrams.
};

// Hash of text[begin, begin+n) — char n-gram key.
inline uint64_t CharNgramKey(const std::string& text, size_t begin, size_t n) {
  return ContentHash64(text.data() + begin, n, /*seed=*/n);
}

// Hash of one token span — word key; bigram keys combine two word keys.
inline uint64_t WordKey(const std::string& text, uint32_t begin, uint32_t end) {
  return ContentHash64(text.data() + begin, end - begin, /*seed=*/0x77);
}
inline uint64_t WordBigramKey(uint64_t a, uint64_t b) {
  const uint64_t h = SplitMix64(a ^ SplitMix64(b));
  return h == 0 ? 1 : h;
}

// Both scans hash every candidate key for one position up front, prefetch
// each key's probe line (HashDict::Prefetch), then resolve the lookups —
// the table misses of a position's candidates overlap instead of
// serializing. Keys are hashed exactly once either way.
template <typename Fn>
void ScanCharNgrams(const std::string& text, const HashDict& dict,
                    const NgramScanConfig& cfg, Fn&& fn) {
  const size_t len = text.size();
  uint64_t keys[16];  // Prefetch window; wider order ranges run in blocks.
  for (size_t begin = 0; begin < len; ++begin) {
    const size_t max_n = std::min<size_t>(cfg.max_n, len - begin);
    if (cfg.min_n > max_n) {
      continue;
    }
    for (size_t n0 = cfg.min_n; n0 <= max_n; n0 += 16) {
      const size_t orders = std::min<size_t>(max_n - n0 + 1, 16);
      for (size_t o = 0; o < orders; ++o) {
        keys[o] = CharNgramKey(text, begin, n0 + o);
        dict.Prefetch(keys[o]);
      }
      for (size_t o = 0; o < orders; ++o) {
        const int64_t id = dict.Find(keys[o]);
        if (id >= 0) {
          fn(static_cast<uint32_t>(id));
        }
      }
    }
  }
}

template <typename Fn>
void ScanWordNgrams(const std::string& text,
                    const std::vector<std::pair<uint32_t, uint32_t>>& spans,
                    const HashDict& dict, const NgramScanConfig& cfg, Fn&& fn) {
  uint64_t prev_key = 0;
  for (size_t t = 0; t < spans.size(); ++t) {
    const uint64_t key = WordKey(text, spans[t].first, spans[t].second);
    dict.Prefetch(key);
    const uint64_t bigram_key =
        cfg.word_orders >= 2 && t > 0 ? WordBigramKey(prev_key, key) : 0;
    if (bigram_key != 0) {
      dict.Prefetch(bigram_key);
    }
    int64_t id = dict.Find(key);
    if (id >= 0) {
      fn(static_cast<uint32_t>(id));
    }
    if (bigram_key != 0) {
      id = dict.Find(bigram_key);
      if (id >= 0) {
        fn(static_cast<uint32_t>(id));
      }
    }
    prev_key = key;
  }
}

// ---------------------------------------------------------------------------
// Dense kernels. Two backends share every signature: a portable scalar
// implementation (4x-unrolled independent accumulators, FMA-friendly and
// auto-vectorizable) and, when the binary is built with PRETZEL_AVX2, an
// AVX2+FMA implementation selected per process by runtime CPU detection.
// All backends agree with the scalar reference within 1e-5 (the golden-
// parity suite pins this).

enum class KernelBackend { kScalar, kAvx2 };

// The backend dense kernels dispatch to right now (CPU support AND the
// force-scalar override).
KernelBackend ActiveKernelBackend();
const char* KernelBackendName(KernelBackend backend);

// Testing/bench hook: pin dispatch to the portable scalar path (parity
// baselines, before/after sweeps). Returns the previous setting.
bool SetForceScalarKernels(bool force);

// Dot product over n floats.
float DotF32(const float* a, const float* b, size_t n);

// out[r] = sum_c matrix[r * in_dim + c] * in[c]; matrix is row-major.
void MatVec(const float* matrix, size_t out_dim, size_t in_dim, const float* in,
            float* out);

// out[k] = -||in - centroid_k||^2 (negated squared distance, so larger is
// closer — usable directly as a feature).
void KMeansTransform(const float* centroids, size_t k, size_t dim,
                     const float* in, float* out);

// Batch-major (structure-of-arrays) variants: `in_soa` holds `in_dim` rows
// of `batch` contiguous lanes (in_soa[c * batch + b] = record b, dim c), so
// the inner loop runs across the batch with no reduction — one blocked
// matrix-matrix kernel replaces `batch` matvecs. Outputs use the same
// layout (out_soa[r * batch + b]).
void MatVecBatchSoA(const float* matrix, size_t out_dim, size_t in_dim,
                    const float* in_soa, size_t batch, float* out_soa);
void KMeansTransformBatchSoA(const float* centroids, size_t k, size_t dim,
                             const float* in_soa, size_t batch, float* out_soa);

// rows[b * row_stride + c] -> soa[c * batch + b] for c < in_dim.
void TransposeToSoA(const float* rows, size_t batch, size_t row_stride,
                    size_t in_dim, float* soa);

// Gather variant for rows that are not contiguous: rows[b][c] ->
// soa[c * batch + b]. This is how binary wire records (each row aliasing
// its record's payload in place) enter the SoA spine with no AoS staging
// copy, and how a masked batch transposes only its valid rows.
void TransposeRowsToSoA(const float* const* rows, size_t batch, size_t in_dim,
                        float* soa);

// Sparse dot product against a dense weight array; ids at or beyond w_dim
// contribute nothing. Double accumulation (matches the Linear stages).
// Dispatched: AVX2 builds use a masked-gather kernel on supporting CPUs.
double SparseDot(const uint32_t* ids, const float* vals, size_t nnz,
                 const float* weights, size_t w_dim);

namespace internal {
// Portable scalar backend, callable directly (parity references and the
// before/after bench sweep measure it against the dispatched entry points).
float DotF32Scalar(const float* a, const float* b, size_t n);
void MatVecScalar(const float* matrix, size_t out_dim, size_t in_dim,
                  const float* in, float* out);
void KMeansTransformScalar(const float* centroids, size_t k, size_t dim,
                           const float* in, float* out);
void MatVecBatchSoAScalar(const float* matrix, size_t out_dim, size_t in_dim,
                          const float* in_soa, size_t batch, float* out_soa);
void KMeansTransformBatchSoAScalar(const float* centroids, size_t k,
                                   size_t dim, const float* in_soa,
                                   size_t batch, float* out_soa);
double SparseDotScalar(const uint32_t* ids, const float* vals, size_t nnz,
                       const float* weights, size_t w_dim);
#ifdef PRETZEL_HAVE_AVX2
// AVX2+FMA backend (separate TU compiled with -mavx2 -mfma; only ever
// called after runtime CPU detection).
float DotF32Avx2(const float* a, const float* b, size_t n);
void MatVecAvx2(const float* matrix, size_t out_dim, size_t in_dim,
                const float* in, float* out);
void KMeansTransformAvx2(const float* centroids, size_t k, size_t dim,
                         const float* in, float* out);
void MatVecBatchSoAAvx2(const float* matrix, size_t out_dim, size_t in_dim,
                        const float* in_soa, size_t batch, float* out_soa);
void KMeansTransformBatchSoAAvx2(const float* centroids, size_t k, size_t dim,
                                 const float* in_soa, size_t batch,
                                 float* out_soa);
void TransposeToSoAAvx2(const float* rows, size_t batch, size_t row_stride,
                        size_t in_dim, float* soa);
void TransposeRowsToSoAAvx2(const float* const* rows, size_t batch,
                            size_t in_dim, float* soa);
double SparseDotAvx2(const uint32_t* ids, const float* vals, size_t nnz,
                     const float* weights, size_t w_dim);
#endif  // PRETZEL_HAVE_AVX2
}  // namespace internal

float Sigmoid(float x);

// Parses "f0,f1,...,fn" into out; returns the number of parsed values.
size_t ParseDenseInput(std::string_view input, std::vector<float>* out);

// ---------------------------------------------------------------------------
// Decision forests. Flat node array; leaves have feature < 0.

struct TreeNode {
  int16_t feature = -1;  // < 0: leaf.
  float threshold = 0.0f;
  int32_t left = -1;   // Node index if feature >= 0.
  int32_t right = -1;
  float value = 0.0f;  // Leaf output.
};

struct Forest {
  std::vector<int32_t> roots;
  std::vector<TreeNode> nodes;
  size_t num_features = 0;

  float EvalTree(size_t tree, const float* features) const {
    int32_t n = roots[tree];
    while (nodes[n].feature >= 0) {
      n = features[nodes[n].feature] <= nodes[n].threshold ? nodes[n].left
                                                           : nodes[n].right;
    }
    return nodes[n].value;
  }

  float Eval(const float* features) const {
    float sum = 0.0f;
    for (size_t t = 0; t < roots.size(); ++t) {
      sum += EvalTree(t, features);
    }
    return sum;
  }
  float Eval(const std::vector<float>& features) const {
    return Eval(features.data());
  }

  size_t HeapBytes() const {
    return roots.capacity() * sizeof(int32_t) +
           nodes.capacity() * sizeof(TreeNode);
  }
};

// Full binary trees of the given depth with random split features/thresholds
// and N(0, 1) scaled leaf values.
Forest BuildRandomForest(size_t trees, size_t features, size_t depth, Rng& rng);

}  // namespace pretzel

#endif  // PRETZEL_OPS_KERNELS_H_
