// FeatureVector: the operator data-path value type. A stage's output is
// either a dense float span or a sorted sparse (id, value) pair list over
// the same logical dimension — the representation contract the ops layer
// owns and every downstream consumer (Oven-fused stages, Runtime executors,
// the black-box baseline's boxed values) speaks.
//
// Storage discipline: the float value buffer can be leased from a
// VectorPool (the ExecContext-pooled arena), so a warm context reuses one
// allocation across predictions and the hot path stays allocation-free even
// with variable-size sparse outputs. Release returns the lease; Reset keeps
// it warm. The id array is plain warm capacity (the pool only leases float
// buffers).
#ifndef PRETZEL_OPS_FEATURE_VECTOR_H_
#define PRETZEL_OPS_FEATURE_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/ops/kernels.h"

namespace pretzel {

class VectorPool;

class FeatureVector {
 public:
  enum class Rep { kEmpty, kDense, kSparse };

  FeatureVector() = default;
  explicit FeatureVector(VectorPool* pool) : pool_(pool) {}
  ~FeatureVector() { ReleaseStorage(); }

  FeatureVector(const FeatureVector&) = delete;
  FeatureVector& operator=(const FeatureVector&) = delete;

  Rep rep() const { return rep_; }
  bool is_dense() const { return rep_ == Rep::kDense; }
  bool is_sparse() const { return rep_ == Rep::kSparse; }
  // Logical dimension of the feature space (not the stored count).
  size_t dim() const { return dim_; }
  // Stored non-zeros (sparse) or dim (dense).
  size_t nnz() const { return is_dense() ? dim_ : ids_.size(); }

  const float* dense_data() const { return vals_.data(); }
  const uint32_t* ids() const { return ids_.data(); }
  const float* values() const { return vals_.data(); }

  // Switches to dense over `dim`; returns the writable span. Zero-filled by
  // default; pass zero_fill = false when the caller overwrites every slot
  // (the fused featurize stages), keeping the warm-buffer path store-free.
  float* MutableDense(size_t dim, bool zero_fill = true) {
    rep_ = Rep::kDense;
    dim_ = dim;
    ids_.clear();
    EnsureValueCapacity(dim);
    if (zero_fill) {
      vals_.assign(dim, 0.0f);
    } else {
      vals_.resize(dim);
    }
    return vals_.data();
  }

  // Switches to an empty sparse vector over `dim`. A pool-attached vector's
  // first use leases a starter value buffer, so typical sparse outputs (a
  // few hundred non-zeros) ride the pool like dense ones do; only outputs
  // that outgrow the lease fall back to allocator growth.
  void BeginSparse(size_t dim) {
    rep_ = Rep::kSparse;
    dim_ = dim;
    ids_.clear();
    if (vals_.capacity() == 0) {
      EnsureValueCapacity(kSparseLeaseFloats);
    }
    vals_.clear();
  }

  // Appends one sparse entry; ids may arrive unsorted and duplicated —
  // SortCoalesce establishes the sorted-unique invariant.
  void Append(uint32_t id, float value) {
    ids_.push_back(id);
    vals_.push_back(value);
  }

  // Sorts by id and sums duplicate entries (general sparse normalization).
  void SortCoalesce();

  // Builds the sparse COUNT vector of a scan's raw hit ids: sorts `raw_hits`
  // in place and stores (unique id, occurrence count) pairs — the operator
  // contract of the n-gram featurizers.
  void AssignCounts(std::vector<uint32_t>& raw_hits, size_t dim);

  // Sparse concat: `*this` = a ++ b, with b's ids rebased by `b_offset`.
  // Both inputs must be sparse; dim becomes b_offset + b.dim().
  void AssignConcat(const FeatureVector& a, const FeatureVector& b,
                    uint32_t b_offset);

  // In-place conversions. Densify scatters the sparse entries over dim();
  // Sparsify gathers non-zeros. Round-trips are exact.
  void Densify();
  void Sparsify();

  // Dot product against a dense weight array bounded by w_dim; ids at or
  // beyond w_dim contribute nothing (the defensive contract the unfused
  // Linear stage always had). Double accumulation, either representation.
  double Dot(const float* weights, size_t w_dim) const {
    if (is_dense()) {
      const size_t n = std::min(dim_, w_dim);
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += static_cast<double>(vals_[i]) * weights[i];
      }
      return acc;
    }
    return SparseDot(ids_.data(), vals_.data(), ids_.size(), weights, w_dim);
  }

  // Forgets representation and contents; capacity stays warm.
  void Reset() {
    rep_ = Rep::kEmpty;
    dim_ = 0;
    ids_.clear();
    vals_.clear();
  }

  // Leases the value buffer back to the pool (no-op when pool-less) and
  // drops all capacity — the cold-context path.
  void ReleaseStorage();

  // Introspection for tests: current float-buffer capacity.
  size_t value_capacity() const { return vals_.capacity(); }

 private:
  // Starter lease for sparse value storage (floats).
  static constexpr size_t kSparseLeaseFloats = 256;

  // First growth pulls a pooled buffer so a warm context's sparse/dense
  // values ride the lock-free free list instead of the allocator.
  void EnsureValueCapacity(size_t n);

  Rep rep_ = Rep::kEmpty;
  size_t dim_ = 0;
  VectorPool* pool_ = nullptr;
  std::vector<uint32_t> ids_;
  std::vector<float> vals_;
};

}  // namespace pretzel

#endif  // PRETZEL_OPS_FEATURE_VECTOR_H_
