// Oven: compiles a Flour LogicalProgram into a ModelPlan — a short list of
// fused physical stages plus bound (pre-materialized) parameter state.
// Rewrite rules (Section 4.1.2 of the paper):
//  - linear push-through-Concat: the final linear model's weight vector is
//    split along the concat boundaries so each featurizer branch accumulates
//    its partial dot product directly — the Concat and model stages vanish
//    and no feature vector is ever materialized (the signature SA rewrite);
//  - stage merging: compatible adjacent/parallel operators collapse into
//    one fused stage (tokenize+scans for text, featurizers+concat for dense);
//  - singleton inlining: trailing trivial stages (bias/score) fold into
//    their predecessor.
// AOT compilation: with aot_compile (default) stage binding — materializing
// the split weight arrays and plan-local final-model layout — happens at
// Plan() time; without it, binding is deferred to the first prediction,
// which is exactly the cold-latency inflation the ablation bench measures.
#ifndef PRETZEL_OVEN_MODEL_PLAN_H_
#define PRETZEL_OVEN_MODEL_PLAN_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/flour/flour.h"
#include "src/oven/subplan_cache.h"
#include "src/runtime/exec_context.h"

namespace pretzel {

struct OptimizerOptions {
  bool enable_linear_push = true;
  bool enable_stage_merge = true;
  bool enable_inline = true;
  // Concat -> LinearBinary fusion for plans that keep materialized sparse
  // features (linear push disabled or inapplicable): the model stage dots
  // each branch's sparse vector against the weights at that branch's
  // per-source offset, so the concatenated vector is never materialized.
  bool enable_sparse_fuse = true;
};

struct CompileOptions {
  bool aot_compile = true;
  OptimizerOptions optimizer;
};

enum class StageKind {
  // Text family.
  kTokenize,
  kCharScan,
  kWordScan,
  kConcat,
  kLinear,
  kBias,
  kFusedFeaturize,  // Tokenize + both scans, materializing sparse ids.
  kFusedSaScore,    // Tokenize + both scans with pushed weights (no sparse vec).
  kSparseLinear,    // Concat + Linear fused: per-source sparse dots, no concat.
  // Dense family.
  kParse,
  kPca,
  kKMeans,
  kTreeFeaturize,
  kForest,
  kFusedAcFeaturize,  // All dense featurizers writing one buffer (Concat-free).
};

const char* StageKindName(StageKind kind);

struct PlanStage {
  StageKind kind;
  bool weights_pushed = false;  // Scan stages: accumulate dot instead of ids.
  bool inlined_bias = false;    // Bias/score folded into this stage.
  bool inlined_forest = false;  // Final forest folded into this stage.
};

class ModelPlan {
 public:
  const std::string& name() const { return name_; }
  size_t NumStages() const { return stages_.size(); }

  // Unique parameter bytes referenced by this plan (what a private copy
  // would cost; the Object Store makes much of it shared).
  size_t ParameterBytes() const;
  // Plan-private bytes: stage metadata plus bound arrays.
  size_t OverheadBytes() const;

  bool IsBound() const { return bound_done_; }

  // --- Implementation surface for the executor (src/runtime) and tests. ---

  enum class Family { kText, kDense };

  struct BoundText {
    const TokenizerParams* tokenizer = nullptr;
    const CharNgramParams* char_ngram = nullptr;
    const WordNgramParams* word_ngram = nullptr;
    const LinearBinaryParams* linear = nullptr;
    // Fused per-source weight layout, materialized at bind time (the AOT
    // work): the linear model split along the Flour concat layout into one
    // contiguous array [char | word], each source zero-padded to an 8-float
    // multiple so vectorized consumers can always run full lanes. The scan
    // branches index their source at its offset — exactly the per-source
    // view the linear-push and sparse-fuse stages accumulate through.
    std::vector<float> fused_weights;
    size_t char_w_off = 0;
    size_t word_w_off = 0;
    float bias = 0.0f;
    size_t char_dim = 0;
    size_t word_dim = 0;

    const float* char_weights() const { return fused_weights.data() + char_w_off; }
    const float* word_weights() const { return fused_weights.data() + word_w_off; }
  };

  struct BoundDense {
    const PcaParams* pca = nullptr;
    const KMeansParams* kmeans = nullptr;
    const TreeFeaturizerParams* tree_feat = nullptr;
    const ForestParams* final_forest = nullptr;
    // Plan-local copy of the final model, laid out contiguously at bind
    // time (the AOT work for dense plans).
    Forest bound_final;
    size_t pca_off = 0, kmeans_off = 0, tree_off = 0;
    size_t feature_dim = 0;
  };

  Family family() const { return family_; }
  const std::vector<PlanStage>& stages() const { return stages_; }
  const std::vector<LogicalOp>& ops() const { return ops_; }
  const BoundText& bound_text() const { return text_; }
  const BoundDense& bound_dense() const { return dense_; }

  // Idempotent, thread-safe. Called at compile time under AOT, else by the
  // executor on the first prediction.
  void EnsureBound() const;

 private:
  friend Result<std::shared_ptr<ModelPlan>> CompilePlan(
      const LogicalProgram& program, const std::string& name,
      const CompileOptions& options);

  void BindLocked() const;

  std::string name_;
  Family family_ = Family::kText;
  std::vector<LogicalOp> ops_;  // Keeps shared params alive.
  std::vector<PlanStage> stages_;

  // Bound state is logically part of plan construction; with deferred
  // binding it materializes on the first prediction, hence mutable + once.
  mutable std::once_flag bind_once_;
  mutable bool bound_done_ = false;
  mutable BoundText text_;
  mutable BoundDense dense_;
};

// Compiles with explicit options.
Result<std::shared_ptr<ModelPlan>> CompilePlan(const LogicalProgram& program,
                                               const std::string& name,
                                               const CompileOptions& options);

// Default compile: full optimizer, AOT on.
inline Result<std::shared_ptr<ModelPlan>> Plan(const LogicalProgram& program,
                                               const std::string& name) {
  return CompilePlan(program, name, CompileOptions{});
}

}  // namespace pretzel

#endif  // PRETZEL_OVEN_MODEL_PLAN_H_
