#include "src/oven/subplan_cache.h"

namespace pretzel {

SubPlanCache::EntryRef SubPlanCache::Lookup(uint64_t key) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.ids;
}

void SubPlanCache::Insert(uint64_t key, const std::vector<uint32_t>& ids) {
  const size_t bytes = EntryBytes(ids);
  MutexLock lock(mu_);
  if (bytes > byte_budget_) {
    return;  // Oversized entries would evict the whole cache for one input.
  }
  ++stats_.insertions;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_bytes_ -= EntryBytes(*it->second.ids);
    it->second.ids = std::make_shared<const std::vector<uint32_t>>(ids);
    size_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    Entry entry;
    entry.ids = std::make_shared<const std::vector<uint32_t>>(ids);
    entry.lru_it = lru_.begin();
    entries_.emplace(key, std::move(entry));
    size_bytes_ += bytes;
  }
  EvictToBudgetLocked();
}

void SubPlanCache::EvictToBudgetLocked() {
  while (size_bytes_ > byte_budget_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    size_bytes_ -= EntryBytes(*it->second.ids);
    entries_.erase(it);
    ++stats_.evictions;
  }
}

size_t SubPlanCache::NumEntries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t SubPlanCache::SizeBytes() const {
  MutexLock lock(mu_);
  return size_bytes_;
}

SubPlanCache::Stats SubPlanCache::GetStats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace pretzel
