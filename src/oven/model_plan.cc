#include "src/oven/model_plan.h"

#include <algorithm>

#include "src/common/fault.h"

namespace pretzel {

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kTokenize:
      return "Tokenize";
    case StageKind::kCharScan:
      return "CharScan";
    case StageKind::kWordScan:
      return "WordScan";
    case StageKind::kConcat:
      return "Concat";
    case StageKind::kLinear:
      return "Linear";
    case StageKind::kBias:
      return "Bias";
    case StageKind::kFusedFeaturize:
      return "FusedFeaturize";
    case StageKind::kFusedSaScore:
      return "FusedSaScore";
    case StageKind::kSparseLinear:
      return "SparseLinear";
    case StageKind::kParse:
      return "Parse";
    case StageKind::kPca:
      return "Pca";
    case StageKind::kKMeans:
      return "KMeans";
    case StageKind::kTreeFeaturize:
      return "TreeFeaturize";
    case StageKind::kForest:
      return "Forest";
    case StageKind::kFusedAcFeaturize:
      return "FusedAcFeaturize";
  }
  return "Unknown";
}

size_t ModelPlan::ParameterBytes() const {
  size_t total = 0;
  for (const auto& op : ops_) {
    total += op.params->HeapBytes();
  }
  return total;
}

size_t ModelPlan::OverheadBytes() const {
  size_t total = 256 + stages_.capacity() * sizeof(PlanStage) +
                 ops_.capacity() * sizeof(LogicalOp);
  if (bound_done_) {
    total += text_.fused_weights.capacity() * sizeof(float);
    total += dense_.bound_final.HeapBytes();
  }
  return total;
}

void ModelPlan::EnsureBound() const {
  std::call_once(bind_once_, [this] { BindLocked(); });
}

void ModelPlan::BindLocked() const {
  if (family_ == Family::kText) {
    // Split the linear model's weights along the concat boundary into the
    // fused per-source layout: one contiguous array, each source padded to
    // an 8-float multiple (full SIMD lanes, no tail handling for bound
    // consumers).
    const auto* lin = text_.linear;
    if (lin != nullptr) {
      const auto padded = [](size_t n) { return (n + 7) & ~size_t{7}; };
      const size_t char_dim = text_.char_dim;
      const size_t word_dim = text_.word_dim;
      text_.char_w_off = 0;
      text_.word_w_off = padded(char_dim);
      text_.fused_weights.assign(text_.word_w_off + padded(word_dim), 0.0f);
      // Clamped copies: a linear model narrower than the concat space is
      // legal (missing weights read as zero, matching the unfused stage's
      // `id < w.size()` guard), so never form an iterator past end().
      const size_t have_char = std::min(char_dim, lin->weights.size());
      std::copy(lin->weights.begin(),
                lin->weights.begin() + static_cast<ptrdiff_t>(have_char),
                text_.fused_weights.begin());
      const size_t have_word =
          std::min(word_dim, lin->weights.size() > char_dim
                                 ? lin->weights.size() - char_dim
                                 : 0);
      std::copy(lin->weights.begin() + static_cast<ptrdiff_t>(have_char),
                lin->weights.begin() +
                    static_cast<ptrdiff_t>(have_char + have_word),
                text_.fused_weights.begin() +
                    static_cast<ptrdiff_t>(text_.word_w_off));
      text_.bias = lin->bias;
    }
  } else {
    // Lay the final model out contiguously for this plan.
    if (dense_.final_forest != nullptr) {
      dense_.bound_final = dense_.final_forest->forest;
    }
  }
  bound_done_ = true;
}

namespace {

template <typename T>
const T* FindParams(const std::vector<LogicalOp>& ops, OpKind kind) {
  for (const auto& op : ops) {
    if (op.params->kind() == kind) {
      return static_cast<const T*>(op.params.get());
    }
  }
  return nullptr;
}

bool HasKind(const std::vector<LogicalOp>& ops, OpKind kind) {
  for (const auto& op : ops) {
    if (op.params->kind() == kind) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::shared_ptr<ModelPlan>> CompilePlan(const LogicalProgram& program,
                                               const std::string& name,
                                               const CompileOptions& options) {
  if (program.ops.empty()) {
    return Status::InvalidArgument("empty program");
  }
  // Chaos site: a compile that fails mid-deploy. The lifecycle invariant it
  // exists to prove: a failed canary compile surfaces as a Deploy error and
  // the live version keeps serving — it must never tear down or stall the
  // active plan.
  if (PRETZEL_FAULT_POINT("oven.compile_fail", static_cast<int64_t>(0))) {
    return Status::Error("injected compile failure: " + name);
  }
  auto plan = std::make_shared<ModelPlan>();
  plan->name_ = name;
  plan->ops_ = program.ops;
  const auto& ops = plan->ops_;
  const OptimizerOptions& opt = options.optimizer;

  if (ops.front().params->kind() == OpKind::kTokenizer) {
    // --- Text family: Tokenizer -> CharNgram -> WordNgram -> Concat ->
    // LinearBinary. ---
    plan->family_ = ModelPlan::Family::kText;
    auto& bound = plan->text_;
    bound.tokenizer = FindParams<TokenizerParams>(ops, OpKind::kTokenizer);
    bound.char_ngram = FindParams<CharNgramParams>(ops, OpKind::kCharNgram);
    bound.word_ngram = FindParams<WordNgramParams>(ops, OpKind::kWordNgram);
    bound.linear = FindParams<LinearBinaryParams>(ops, OpKind::kLinearBinary);
    if (bound.char_ngram == nullptr || bound.word_ngram == nullptr ||
        bound.linear == nullptr) {
      return Status::InvalidArgument("unsupported text pipeline shape: " + name);
    }
    // Branch dimensions come from Flour's concat-layout metadata; fall back
    // to the raw params for programs lowered without it.
    bound.char_dim = bound.char_ngram->dict.size();
    bound.word_dim = bound.word_ngram->dict.size();
    for (const ConcatSource& source : program.concat_layout) {
      if (source.kind == OpKind::kCharNgram) {
        bound.char_dim = source.dim;
      } else if (source.kind == OpKind::kWordNgram) {
        bound.word_dim = source.dim;
      }
    }

    const bool push = opt.enable_linear_push && HasKind(ops, OpKind::kConcat);
    auto& stages = plan->stages_;
    if (push) {
      // Concat and the model stage disappear; scans accumulate the dot
      // product through the split weights; a trailing Bias stage finishes
      // the score.
      stages = {{StageKind::kTokenize},
                {StageKind::kCharScan, /*weights_pushed=*/true},
                {StageKind::kWordScan, /*weights_pushed=*/true},
                {StageKind::kBias}};
      if (opt.enable_stage_merge) {
        stages = {{StageKind::kFusedSaScore}, {StageKind::kBias}};
      }
      if (opt.enable_inline && stages.size() > 1 &&
          stages.back().kind == StageKind::kBias) {
        stages.pop_back();
        stages.back().inlined_bias = true;
      }
    } else if (opt.enable_sparse_fuse && HasKind(ops, OpKind::kConcat)) {
      // Sparse fuse: the branches still materialize their sparse count
      // vectors (the operator contract), but Concat + Linear collapse into
      // one stage of per-source sparse dots at the Flour layout offsets —
      // the concatenated vector never exists.
      stages = {{StageKind::kTokenize},
                {StageKind::kCharScan},
                {StageKind::kWordScan},
                {StageKind::kSparseLinear}};
      if (opt.enable_stage_merge) {
        stages = {{StageKind::kFusedFeaturize}, {StageKind::kSparseLinear}};
      }
    } else {
      stages = {{StageKind::kTokenize},
                {StageKind::kCharScan},
                {StageKind::kWordScan},
                {StageKind::kConcat},
                {StageKind::kLinear}};
      if (opt.enable_stage_merge) {
        stages = {{StageKind::kFusedFeaturize},
                  {StageKind::kConcat},
                  {StageKind::kLinear}};
      }
    }
  } else {
    // --- Dense family: Pca | KMeans | TreeFeaturizer -> Concat -> Forest. ---
    plan->family_ = ModelPlan::Family::kDense;
    auto& bound = plan->dense_;
    bound.pca = FindParams<PcaParams>(ops, OpKind::kPca);
    bound.kmeans = FindParams<KMeansParams>(ops, OpKind::kKMeans);
    bound.tree_feat = FindParams<TreeFeaturizerParams>(ops, OpKind::kTreeFeaturizer);
    bound.final_forest = FindParams<ForestParams>(ops, OpKind::kForest);
    if (bound.pca == nullptr || bound.kmeans == nullptr ||
        bound.tree_feat == nullptr || bound.final_forest == nullptr) {
      return Status::InvalidArgument("unsupported dense pipeline shape: " + name);
    }
    // Feature-space offsets come from Flour's concat layout (pipeline
    // order); fall back to the canonical Pca|KMeans|Tree order otherwise.
    bound.pca_off = 0;
    bound.kmeans_off = bound.pca->out_dim;
    bound.tree_off = bound.kmeans_off + bound.kmeans->k;
    bound.feature_dim = bound.tree_off + bound.tree_feat->forest.roots.size();
    for (const ConcatSource& source : program.concat_layout) {
      if (source.kind == OpKind::kPca) {
        bound.pca_off = source.offset;
      } else if (source.kind == OpKind::kKMeans) {
        bound.kmeans_off = source.offset;
      } else if (source.kind == OpKind::kTreeFeaturizer) {
        bound.tree_off = source.offset;
      }
    }
    if (program.concat_dim > 0) {
      bound.feature_dim = program.concat_dim;
    }

    auto& stages = plan->stages_;
    stages = {{StageKind::kParse},   {StageKind::kPca},
              {StageKind::kKMeans},  {StageKind::kTreeFeaturize},
              {StageKind::kConcat},  {StageKind::kForest}};
    if (opt.enable_stage_merge) {
      // Featurizers write disjoint slices of one feature buffer, so the
      // Concat materialization disappears with the merge.
      stages = {{StageKind::kParse},
                {StageKind::kFusedAcFeaturize},
                {StageKind::kForest}};
      if (opt.enable_inline && stages.back().kind == StageKind::kForest) {
        stages.pop_back();
        stages.back().inlined_forest = true;
      }
    }
  }

  if (options.aot_compile) {
    plan->EnsureBound();
  }
  return plan;
}

}  // namespace pretzel
