// SubPlanCache: materialization cache for sub-plan results (Section 4.2 of
// the paper). Popular inputs repeat across the many similar pipelines of one
// service; featurization output depends only on (input, dictionary version),
// so pipelines sharing a dictionary replay each other's scans. Entries are
// dictionary-hit id lists keyed by a 64-bit (input, params-checksum) hash,
// bounded by a byte budget with LRU eviction.
#ifndef PRETZEL_OVEN_SUBPLAN_CACHE_H_
#define PRETZEL_OVEN_SUBPLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace pretzel {

class SubPlanCache {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  // Entries are shared with readers: a hit hands out a reference to the
  // immutable id list, so eviction can drop the cache's reference while an
  // executor is still scanning its copy of the pointer.
  using EntryRef = std::shared_ptr<const std::vector<uint32_t>>;

  explicit SubPlanCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  SubPlanCache(const SubPlanCache&) = delete;
  SubPlanCache& operator=(const SubPlanCache&) = delete;

  // Returns the materialized ids on a hit (refreshing LRU order), null on a
  // miss. Hits are copy-free: the returned list stays valid even if the
  // entry is evicted before the caller finishes with it.
  EntryRef Lookup(uint64_t key);

  // Inserts (or replaces) an entry, then evicts LRU entries until the
  // budget holds. Entries larger than the whole budget are not admitted.
  void Insert(uint64_t key, const std::vector<uint32_t>& ids);

  size_t NumEntries() const;
  size_t SizeBytes() const;
  size_t byte_budget() const { return byte_budget_; }
  Stats GetStats() const;

 private:
  struct Entry {
    EntryRef ids;
    std::list<uint64_t>::iterator lru_it;
  };

  static size_t EntryBytes(const std::vector<uint32_t>& ids) {
    // Payload + map/list bookkeeping.
    return ids.size() * sizeof(uint32_t) + 64;
  }

  void EvictToBudgetLocked() REQUIRES(mu_);

  const size_t byte_budget_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  std::list<uint64_t> lru_ GUARDED_BY(mu_);  // Front = most recent.
  size_t size_bytes_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace pretzel

#endif  // PRETZEL_OVEN_SUBPLAN_CACHE_H_
