#include "src/store/object_store.h"

#include <algorithm>

namespace pretzel {

std::shared_ptr<const OpParams> ObjectStore::Intern(
    std::shared_ptr<const OpParams> params) {
  if (parent_ != nullptr) {
    // Segment: the parent dedups (under its own policy) and owns the
    // canonical object; this segment records only its local traffic so the
    // per-shard intern mix stays observable.
    bool hit = false;
    auto canonical = parent_->InternLocal(std::move(params), &hit);
    WriterMutexLock lock(mu_);
    ++stats_.interns;
    if (hit) {
      ++stats_.hits;
    }
    return canonical;
  }
  bool hit = false;
  return InternLocal(std::move(params), &hit);
}

std::shared_ptr<const OpParams> ObjectStore::InternLocal(
    std::shared_ptr<const OpParams> params, bool* hit) {
  WriterMutexLock lock(mu_);
  ++stats_.interns;
  if (!options_.dedup_enabled) {
    undeduped_.push_back(params);
    return params;
  }
  auto [it, inserted] =
      by_checksum_.try_emplace(params->ContentChecksum(), Entry{params, 0});
  ++it->second.pins;
  if (!inserted) {
    ++stats_.hits;
    *hit = true;
  }
  return it->second.params;
}

bool ObjectStore::Release(uint64_t checksum) {
  if (parent_ != nullptr) {
    // Segment: the pin lives where the canonical object lives. Book the
    // release locally so per-shard retire traffic stays observable, exactly
    // as Intern books per-shard intern traffic.
    const bool found = parent_->ReleaseLocal(checksum);
    WriterMutexLock lock(mu_);
    if (found) {
      ++stats_.releases;
    }
    return found;
  }
  return ReleaseLocal(checksum);
}

bool ObjectStore::ReleaseLocal(uint64_t checksum) {
  WriterMutexLock lock(mu_);
  if (!options_.dedup_enabled) {
    // No pins without dedup: each Intern registered a private copy, so a
    // release erases one matching copy outright.
    auto it = std::find_if(undeduped_.begin(), undeduped_.end(),
                           [checksum](const auto& p) {
                             return p->ContentChecksum() == checksum;
                           });
    if (it == undeduped_.end()) {
      return false;
    }
    undeduped_.erase(it);
    ++stats_.releases;
    return true;
  }
  auto it = by_checksum_.find(checksum);
  if (it == by_checksum_.end()) {
    return false;
  }
  if (it->second.pins > 0) {
    --it->second.pins;
  }
  ++stats_.releases;
  return true;
}

size_t ObjectStore::Sweep() {
  if (parent_ != nullptr) {
    return parent_->SweepLocal();
  }
  return SweepLocal();
}

size_t ObjectStore::SweepLocal() {
  WriterMutexLock lock(mu_);
  size_t reclaimed = 0;
  for (auto it = by_checksum_.begin(); it != by_checksum_.end();) {
    if (it->second.pins == 0) {
      reclaimed += it->second.params->HeapBytes();
      ++stats_.swept;
      it = by_checksum_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::shared_ptr<const OpParams> ObjectStore::Lookup(uint64_t checksum) const {
  if (parent_ != nullptr) {
    return parent_->Lookup(checksum);
  }
  ReaderMutexLock lock(mu_);
  if (!options_.dedup_enabled) {
    return nullptr;
  }
  auto it = by_checksum_.find(checksum);
  return it == by_checksum_.end() ? nullptr : it->second.params;
}

size_t ObjectStore::TotalBytes() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [ck, entry] : by_checksum_) {
    total += entry.params->HeapBytes();
  }
  for (const auto& params : undeduped_) {
    total += params->HeapBytes();
  }
  return total;
}

size_t ObjectStore::NumObjects() const {
  ReaderMutexLock lock(mu_);
  return by_checksum_.size() + undeduped_.size();
}

ObjectStore::Stats ObjectStore::GetStats() const {
  ReaderMutexLock lock(mu_);
  return stats_;
}

}  // namespace pretzel
