#include "src/store/object_store.h"

namespace pretzel {

std::shared_ptr<const OpParams> ObjectStore::Intern(
    std::shared_ptr<const OpParams> params) {
  if (parent_ != nullptr) {
    // Segment: the parent dedups (under its own policy) and owns the
    // canonical object; this segment records only its local traffic so the
    // per-shard intern mix stays observable.
    bool hit = false;
    auto canonical = parent_->InternLocal(std::move(params), &hit);
    WriterMutexLock lock(mu_);
    ++stats_.interns;
    if (hit) {
      ++stats_.hits;
    }
    return canonical;
  }
  bool hit = false;
  return InternLocal(std::move(params), &hit);
}

std::shared_ptr<const OpParams> ObjectStore::InternLocal(
    std::shared_ptr<const OpParams> params, bool* hit) {
  WriterMutexLock lock(mu_);
  ++stats_.interns;
  if (!options_.dedup_enabled) {
    undeduped_.push_back(params);
    return params;
  }
  auto [it, inserted] = by_checksum_.try_emplace(params->ContentChecksum(), params);
  if (!inserted) {
    ++stats_.hits;
    *hit = true;
  }
  return it->second;
}

std::shared_ptr<const OpParams> ObjectStore::Lookup(uint64_t checksum) const {
  if (parent_ != nullptr) {
    return parent_->Lookup(checksum);
  }
  ReaderMutexLock lock(mu_);
  if (!options_.dedup_enabled) {
    return nullptr;
  }
  auto it = by_checksum_.find(checksum);
  return it == by_checksum_.end() ? nullptr : it->second;
}

size_t ObjectStore::TotalBytes() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [ck, params] : by_checksum_) {
    total += params->HeapBytes();
  }
  for (const auto& params : undeduped_) {
    total += params->HeapBytes();
  }
  return total;
}

size_t ObjectStore::NumObjects() const {
  ReaderMutexLock lock(mu_);
  return by_checksum_.size() + undeduped_.size();
}

ObjectStore::Stats ObjectStore::GetStats() const {
  ReaderMutexLock lock(mu_);
  return stats_;
}

}  // namespace pretzel
