#include "src/store/model_loader.h"

#include <cstring>

#include "src/common/serialize.h"

namespace pretzel {
namespace {

constexpr char kMagic[4] = {'P', 'M', 'I', '1'};

}  // namespace

std::string SaveModelImage(const PipelineSpec& spec) {
  std::string image;
  image.append(kMagic, sizeof(kMagic));
  AppendPod(&image, static_cast<uint32_t>(spec.name.size()));
  image.append(spec.name);
  AppendPod(&image, static_cast<uint32_t>(spec.nodes.size()));
  std::string body;
  for (const auto& node : spec.nodes) {
    body.clear();
    node.params->Serialize(&body);
    AppendPod(&image, static_cast<uint32_t>(node.params->kind()));
    AppendPod(&image, node.params->ContentChecksum());
    AppendPod(&image, static_cast<uint64_t>(body.size()));
    image.append(body);
  }
  return image;
}

namespace {

// Shared frame walker; `store` is null for the black-box path.
Result<PipelineSpec> LoadImpl(const std::string& image, ObjectStore* store) {
  const char* p = image.data();
  const char* end = p + image.size();
  if (image.size() < sizeof(kMagic) ||
      std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad model image magic");
  }
  p += sizeof(kMagic);
  uint32_t name_len = 0;
  if (!ReadPod(&p, end, &name_len) ||
      static_cast<size_t>(end - p) < name_len) {
    return Status::InvalidArgument("bad model image header");
  }
  PipelineSpec spec;
  spec.name.assign(p, name_len);
  p += name_len;
  uint32_t num_nodes = 0;
  if (!ReadPod(&p, end, &num_nodes)) {
    return Status::InvalidArgument("bad model image node count");
  }
  spec.nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    uint32_t kind_raw = 0;
    uint64_t checksum = 0;
    uint64_t body_len = 0;
    if (!ReadPod(&p, end, &kind_raw) || !ReadPod(&p, end, &checksum) ||
        !ReadPod(&p, end, &body_len) ||
        static_cast<size_t>(end - p) < body_len) {
      return Status::InvalidArgument("bad model image node frame");
    }
    const OpKind kind = static_cast<OpKind>(kind_raw);
    std::shared_ptr<const OpParams> params;
    if (store != nullptr) {
      // The checksum in the frame lets the store skip the body entirely.
      params = store->Lookup(checksum);
    }
    if (params == nullptr) {
      auto loaded = DeserializeOpParams(kind, p, body_len);
      if (!loaded.ok()) {
        return loaded.status();
      }
      params = std::move(*loaded);
      if (params->ContentChecksum() != checksum) {
        return Status::InvalidArgument("checksum mismatch in model image");
      }
      if (store != nullptr) {
        params = store->Intern(std::move(params));
      }
    }
    p += body_len;
    spec.nodes.push_back(PipelineNodeSpec{std::move(params)});
  }
  return spec;
}

}  // namespace

Result<PipelineSpec> LoadModelImage(const std::string& image) {
  return LoadImpl(image, nullptr);
}

Result<PipelineSpec> LoadModelImageWithStore(const std::string& image,
                                             ObjectStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("null store");
  }
  return LoadImpl(image, store);
}

}  // namespace pretzel
