// Model images: the serialized form a pipeline ships in (the stand-in for
// ML.Net's model.zip). Two load paths exist on purpose:
//  - LoadModelImage: full deserialization of every operator (what a
//    black-box runtime must do per model).
//  - LoadModelImageWithStore: PRETZEL's off-line phase — parameter blobs
//    whose checksum is already resident in the Object Store are never
//    deserialized again, which is where both the memory sharing and the
//    fast suite-load times come from.
#ifndef PRETZEL_STORE_MODEL_LOADER_H_
#define PRETZEL_STORE_MODEL_LOADER_H_

#include <string>

#include "src/common/status.h"
#include "src/ops/params.h"
#include "src/store/object_store.h"

namespace pretzel {

// Serializes a pipeline into a self-contained image string.
std::string SaveModelImage(const PipelineSpec& spec);

// Black-box path: deserializes every operator body.
Result<PipelineSpec> LoadModelImage(const std::string& image);

// PRETZEL path: interns each operator through the store, skipping the
// deserialization of blobs whose checksum is already resident.
Result<PipelineSpec> LoadModelImageWithStore(const std::string& image,
                                             ObjectStore* store);

}  // namespace pretzel

#endif  // PRETZEL_STORE_MODEL_LOADER_H_
