// ObjectStore: the shared-state layer. Operator parameters are interned by
// content checksum so every pipeline referencing the same dictionary/model
// shares one immutable copy. Reads vastly outnumber writes (writes happen
// only in the off-line deployment phase), so the store is a checksum-keyed
// map behind a shared_mutex; entries are immutable shared_ptrs, which keeps
// the hot path allocation-free and lock-free once a plan holds its params.
//
// Segments (the serving layer's sharded stack): a store constructed with an
// intern parent is a per-shard *segment* that delegates checksum-dedup to a
// router-global store — identical dictionaries deployed to different shards
// then share one resident copy — while still counting its own intern
// traffic. Without a parent (the default) each segment dedups privately, so
// shards share nothing and deployment never contends cross-shard.
#ifndef PRETZEL_STORE_OBJECT_STORE_H_
#define PRETZEL_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/ops/params.h"

namespace pretzel {

class ObjectStore {
 public:
  struct Options {
    // When false, Intern never dedups: every call registers a private copy
    // (the paper's "PRETZEL without Object Store" configuration).
    bool dedup_enabled = true;
  };

  struct Stats {
    uint64_t interns = 0;  // Total Intern calls.
    uint64_t hits = 0;     // Calls resolved to an existing object.
  };

  ObjectStore() : ObjectStore(Options{}) {}
  explicit ObjectStore(const Options& options) : options_(options) {}
  // Segment construction: interning delegates to `intern_parent` (which
  // applies its own dedup policy and holds the canonical objects); this
  // segment keeps only its local Stats. `intern_parent` must outlive the
  // segment. Null parent degrades to the plain constructor.
  ObjectStore(const Options& options, ObjectStore* intern_parent)
      : options_(options), parent_(intern_parent) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Returns the canonical object for this content: the already-resident
  // object with the same checksum when dedup is on, else `params` itself
  // (which becomes resident). Delegates to the intern parent when this
  // store is a segment of one.
  std::shared_ptr<const OpParams> Intern(std::shared_ptr<const OpParams> params);

  // Checksum probe; null when absent or dedup is off.
  std::shared_ptr<const OpParams> Lookup(uint64_t checksum) const;

  // Resident parameter bytes across all stored objects (each canonical
  // object counted once). A delegating segment holds nothing itself — its
  // objects live in (and are counted by) the parent.
  size_t TotalBytes() const;
  size_t NumObjects() const;
  Stats GetStats() const;
  const Options& options() const { return options_; }
  ObjectStore* intern_parent() const { return parent_; }

 private:
  std::shared_ptr<const OpParams> InternLocal(
      std::shared_ptr<const OpParams> params, bool* hit) EXCLUDES(mu_);

  const Options options_;
  ObjectStore* const parent_ = nullptr;
  mutable SharedMutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const OpParams>> by_checksum_
      GUARDED_BY(mu_);
  std::vector<std::shared_ptr<const OpParams>> undeduped_
      GUARDED_BY(mu_);  // dedup off.
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace pretzel

#endif  // PRETZEL_STORE_OBJECT_STORE_H_
