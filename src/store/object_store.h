// ObjectStore: the shared-state layer. Operator parameters are interned by
// content checksum so every pipeline referencing the same dictionary/model
// shares one immutable copy. Reads vastly outnumber writes (writes happen
// only in the off-line deployment phase), so the store is a checksum-keyed
// map behind a shared_mutex; entries are immutable shared_ptrs, which keeps
// the hot path allocation-free and lock-free once a plan holds its params.
//
// Segments (the serving layer's sharded stack): a store constructed with an
// intern parent is a per-shard *segment* that delegates checksum-dedup to a
// router-global store — identical dictionaries deployed to different shards
// then share one resident copy — while still counting its own intern
// traffic. Without a parent (the default) each segment dedups privately, so
// shards share nothing and deployment never contends cross-shard.
//
// Reclamation (the versioned-lifecycle tier): every Intern takes a PIN on
// the canonical entry; Release(checksum) drops one, and Sweep() erases the
// entries whose pin count reached zero, returning their bytes to the
// allocator. Callers that never Release (the offline-deploy pattern) keep
// their entries pinned forever, so the store behaves exactly as the old
// append-only design for them. Release/Sweep delegate segment -> parent the
// same way Intern does, so a retired version's blobs leave the process no
// matter which segment deployed them. Plans still hold shared_ptrs to their
// params, so a sweep can never free memory under a live reader — it only
// unmaps the store's own reference; the blob's heap bytes leave TotalBytes
// accounting at sweep and the allocator when the last plan drops out.
#ifndef PRETZEL_STORE_OBJECT_STORE_H_
#define PRETZEL_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/ops/params.h"

namespace pretzel {

class ObjectStore {
 public:
  struct Options {
    // When false, Intern never dedups: every call registers a private copy
    // (the paper's "PRETZEL without Object Store" configuration).
    bool dedup_enabled = true;
  };

  struct Stats {
    uint64_t interns = 0;   // Total Intern calls.
    uint64_t hits = 0;      // Calls resolved to an existing object.
    uint64_t releases = 0;  // Release calls that found their object.
    uint64_t swept = 0;     // Entries reclaimed by Sweep.
  };

  ObjectStore() : ObjectStore(Options{}) {}
  explicit ObjectStore(const Options& options) : options_(options) {}
  // Segment construction: interning delegates to `intern_parent` (which
  // applies its own dedup policy and holds the canonical objects); this
  // segment keeps only its local Stats. `intern_parent` must outlive the
  // segment. Null parent degrades to the plain constructor.
  ObjectStore(const Options& options, ObjectStore* intern_parent)
      : options_(options), parent_(intern_parent) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Returns the canonical object for this content: the already-resident
  // object with the same checksum when dedup is on, else `params` itself
  // (which becomes resident). Delegates to the intern parent when this
  // store is a segment of one.
  std::shared_ptr<const OpParams> Intern(std::shared_ptr<const OpParams> params);

  // Checksum probe; null when absent or dedup is off.
  std::shared_ptr<const OpParams> Lookup(uint64_t checksum) const;

  // Drops one pin from the entry with this checksum (delegating to the
  // intern parent when this store is a segment, mirroring Intern). Returns
  // true when an entry was found. An entry whose pins reach zero stays
  // resident — and counted by TotalBytes/NumObjects — until Sweep runs, so
  // a canary that rolls back can re-pin it with a plain Intern hit instead
  // of re-uploading the blob. With dedup off there are no pins: the call
  // erases one matching private copy outright.
  bool Release(uint64_t checksum);

  // Erases every entry whose pin count is zero and returns the parameter
  // bytes those entries accounted for. Delegates to the intern parent.
  // Plans holding shared_ptrs to a swept entry's params keep them alive;
  // the store just stops counting (and re-interning against) them.
  size_t Sweep();

  // Resident parameter bytes across all stored objects (each canonical
  // object counted once). A delegating segment holds nothing itself — its
  // objects live in (and are counted by) the parent.
  size_t TotalBytes() const;
  size_t NumObjects() const;
  Stats GetStats() const;
  const Options& options() const { return options_; }
  ObjectStore* intern_parent() const { return parent_; }

 private:
  // One canonical entry: the object plus the number of Intern calls that
  // have not yet been Released. pins == 0 marks the entry sweepable.
  struct Entry {
    std::shared_ptr<const OpParams> params;
    uint64_t pins = 0;
  };

  std::shared_ptr<const OpParams> InternLocal(
      std::shared_ptr<const OpParams> params, bool* hit) EXCLUDES(mu_);
  bool ReleaseLocal(uint64_t checksum) EXCLUDES(mu_);
  size_t SweepLocal() EXCLUDES(mu_);

  const Options options_;
  ObjectStore* const parent_ = nullptr;
  mutable SharedMutex mu_;
  std::unordered_map<uint64_t, Entry> by_checksum_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<const OpParams>> undeduped_
      GUARDED_BY(mu_);  // dedup off.
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace pretzel

#endif  // PRETZEL_STORE_OBJECT_STORE_H_
