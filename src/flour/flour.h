// Flour: the logical pipeline API. A FlourContext turns a PipelineSpec into
// a LogicalProgram whose operator parameters have been interned through the
// Object Store — after this point every downstream layer (Oven, Runtime)
// references shared immutable state, never private copies.
#ifndef PRETZEL_FLOUR_FLOUR_H_
#define PRETZEL_FLOUR_FLOUR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ops/params.h"
#include "src/store/object_store.h"

namespace pretzel {

struct LogicalOp {
  std::shared_ptr<const OpParams> params;
};

// A validated, store-interned operator DAG (linear chain with implicit
// branch/join structure derived from operator kinds, matching the two
// pipeline families the workloads emit).
struct LogicalProgram {
  std::string source_name;
  std::vector<LogicalOp> ops;
  ObjectStore* store = nullptr;

  size_t ParameterBytes() const {
    size_t total = 0;
    for (const auto& op : ops) {
      total += op.params->HeapBytes();
    }
    return total;
  }
};

class FlourContext {
 public:
  explicit FlourContext(ObjectStore* store) : store_(store) {}

  // Builds a logical program, interning every operator's parameters into
  // the context's Object Store.
  std::unique_ptr<LogicalProgram> FromPipeline(const PipelineSpec& spec);

  ObjectStore* store() const { return store_; }

 private:
  ObjectStore* store_;
};

}  // namespace pretzel

#endif  // PRETZEL_FLOUR_FLOUR_H_
