// Flour: the logical pipeline API. A FlourContext turns a PipelineSpec into
// a LogicalProgram whose operator parameters have been interned through the
// Object Store — after this point every downstream layer (Oven, Runtime)
// references shared immutable state, never private copies.
#ifndef PRETZEL_FLOUR_FLOUR_H_
#define PRETZEL_FLOUR_FLOUR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ops/params.h"
#include "src/store/object_store.h"

namespace pretzel {

struct LogicalOp {
  std::shared_ptr<const OpParams> params;
};

// One branch feeding the program's Concat join: which operator produces it,
// its output width, and its offset in the concatenated feature space. Flour
// derives this layout once at lowering time; the Oven consumes it to split
// or offset the final model's weights per source (the linear-push and
// sparse-fuse rewrites), so no compile pass re-derives dimensions from raw
// params.
struct ConcatSource {
  OpKind kind = OpKind::kConcat;
  size_t op_index = 0;  // Index into LogicalProgram::ops.
  size_t dim = 0;       // Output width of this branch.
  size_t offset = 0;    // Start of this branch in the concat space.
};

// A validated, store-interned operator DAG (linear chain with implicit
// branch/join structure derived from operator kinds, matching the two
// pipeline families the workloads emit).
struct LogicalProgram {
  std::string source_name;
  std::vector<LogicalOp> ops;
  ObjectStore* store = nullptr;
  // Concat layout metadata: the featurizer branches in concat order (empty
  // when the program has no feature-producing branches). concat_dim is the
  // total width of the joined feature space.
  std::vector<ConcatSource> concat_layout;
  size_t concat_dim = 0;

  size_t ParameterBytes() const {
    size_t total = 0;
    for (const auto& op : ops) {
      total += op.params->HeapBytes();
    }
    return total;
  }
};

class FlourContext {
 public:
  explicit FlourContext(ObjectStore* store) : store_(store) {}

  // Builds a logical program, interning every operator's parameters into
  // the context's Object Store.
  std::unique_ptr<LogicalProgram> FromPipeline(const PipelineSpec& spec);

  ObjectStore* store() const { return store_; }

 private:
  ObjectStore* store_;
};

}  // namespace pretzel

#endif  // PRETZEL_FLOUR_FLOUR_H_
