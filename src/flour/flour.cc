#include "src/flour/flour.h"

namespace pretzel {

std::unique_ptr<LogicalProgram> FlourContext::FromPipeline(
    const PipelineSpec& spec) {
  auto program = std::make_unique<LogicalProgram>();
  program->source_name = spec.name;
  program->store = store_;
  program->ops.reserve(spec.nodes.size());
  for (const auto& node : spec.nodes) {
    LogicalOp op;
    op.params = store_ != nullptr ? store_->Intern(node.params) : node.params;
    program->ops.push_back(std::move(op));
  }
  return program;
}

}  // namespace pretzel
