#include "src/flour/flour.h"

namespace pretzel {

namespace {

// Output width of one featurizer branch (0 for non-feature-producing ops).
size_t BranchDim(const OpParams& params) {
  switch (params.kind()) {
    case OpKind::kCharNgram:
      return static_cast<const CharNgramParams&>(params).dict.size();
    case OpKind::kWordNgram:
      return static_cast<const WordNgramParams&>(params).dict.size();
    case OpKind::kPca:
      return static_cast<const PcaParams&>(params).out_dim;
    case OpKind::kKMeans:
      return static_cast<const KMeansParams&>(params).k;
    case OpKind::kTreeFeaturizer:
      return static_cast<const TreeFeaturizerParams&>(params)
          .forest.roots.size();
    default:
      return 0;
  }
}

}  // namespace

std::unique_ptr<LogicalProgram> FlourContext::FromPipeline(
    const PipelineSpec& spec) {
  auto program = std::make_unique<LogicalProgram>();
  program->source_name = spec.name;
  program->store = store_;
  program->ops.reserve(spec.nodes.size());
  for (const auto& node : spec.nodes) {
    LogicalOp op;
    op.params = store_ != nullptr ? store_->Intern(node.params) : node.params;
    program->ops.push_back(std::move(op));
  }
  // Concat layout: featurizer branches in pipeline (== concat) order, with
  // their offsets in the joined feature space.
  size_t offset = 0;
  for (size_t i = 0; i < program->ops.size(); ++i) {
    const OpParams& params = *program->ops[i].params;
    const size_t dim = BranchDim(params);
    if (dim == 0) {
      continue;
    }
    ConcatSource source;
    source.kind = params.kind();
    source.op_index = i;
    source.dim = dim;
    source.offset = offset;
    program->concat_layout.push_back(source);
    offset += dim;
  }
  program->concat_dim = offset;
  return program;
}

}  // namespace pretzel
