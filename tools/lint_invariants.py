#!/usr/bin/env python3
"""Concurrency/alias invariant lint for the PRETZEL tree.

Two rules, both about keeping dangerous idioms annotated at the point of use:

1. memory-order rule — a memory_order_relaxed load that feeds control flow
   (it sits inside an `if`/`while`/`for` condition) must carry a
   justification: a comment containing `relaxed:` on the same line or within
   the preceding JUSTIFICATION_WINDOW lines. Relaxed loads into plain
   assignments (stats snapshots, claim tickets) are exempt: they do not gate
   a branch directly, and a blanket rule would bury the signal in counter
   noise. Applies to both std::memory_order_relaxed and the model-check seam
   spelling PRETZEL_MO(tag, relaxed).

2. alias rule — inside the alias-path files (the zero-copy wire format and
   the SIMD kernels), every reinterpret_cast must be one of:
     - a byte view (char/unsigned char/uint8_t/std::byte pointers) or a
       pointer-to-integer view (uintptr_t/intptr_t): always well-defined;
     - routed through AlignedAliasCast<T> (the alignment-asserting helper in
       src/common/serialize.h);
     - explicitly justified with an `alias-ok:` comment on the same line or
       within the preceding JUSTIFICATION_WINDOW lines.

3. chaos-coverage rule — every fault-injection site declared in src/
   (the string literal in PRETZEL_FAULT_POINT / PRETZEL_FAULT_STALL) must
   appear in tests/chaos_test.cc. A site nobody arms is dead weight at best;
   at worst it documents a failure mode the chaos suite silently stopped
   exercising. src/common/fault.h itself is exempt (it defines the seam,
   not a site).

Exit status 0 when clean, 1 with findings (one per line, grep-friendly).
Usage: lint_invariants.py [repo_root]
"""

import os
import re
import sys

JUSTIFICATION_WINDOW = 4  # Lines above the site searched for a justification.

# Files whose reinterpret_casts are subject to the alias rule: the zero-copy
# BinaryRecord path and the kernels that consume its in-place payloads.
ALIAS_PATH_FILES = (
    os.path.join("src", "common", "serialize.h"),
    os.path.join("src", "ops", "kernels.cc"),
    os.path.join("src", "ops", "kernels.h"),
    os.path.join("src", "ops", "kernels_avx2.cc"),
)

# Fault sites are string literals passed to the injection macros; the call
# may wrap, so this is matched against whole-file text, not single lines.
FAULT_SITE_RE = re.compile(
    r"PRETZEL_FAULT_(?:POINT|STALL)\(\s*\"([^\"]+)\""
)
CHAOS_SUITE = os.path.join("tests", "chaos_test.cc")

RELAXED_LOAD_RE = re.compile(
    r"\.load\(\s*(?:std::memory_order_relaxed|PRETZEL_MO\(\s*\w+\s*,\s*relaxed\s*\))"
)
CONTROL_OPEN_RE = re.compile(r"\b(?:if|while|for)\s*\(")
REINTERPRET_RE = re.compile(r"reinterpret_cast\s*<\s*([^>]+)>")
BYTE_VIEW_RE = re.compile(
    r"^(?:const\s+)?(?:"
    r"(?:signed\s+|unsigned\s+)?char|u?int8_t|std::byte|u?intptr_t"
    r")(?:\s*const)?\s*\**\s*$"
)


def scan_cxx_files(root):
    for base, dirs, files in os.walk(os.path.join(root, "src")):
        dirs[:] = [d for d in dirs if not d.startswith(".")]
        for name in sorted(files):
            if name.endswith((".h", ".cc")):
                yield os.path.join(base, name)


def has_justification(lines, idx, token):
    lo = max(0, idx - JUSTIFICATION_WINDOW)
    return any(token in lines[j] for j in range(lo, idx + 1))


def load_feeds_control(lines, idx, load_pos):
    """True if the relaxed load at lines[idx][load_pos] sits inside a still-
    open if/while/for condition (the condition may start a few lines up)."""
    lo = max(0, idx - 3)
    joined = ""
    offset_of_idx = 0
    for j in range(lo, idx + 1):
        if j == idx:
            offset_of_idx = len(joined)
        joined += lines[j] + "\n"
    load_at = offset_of_idx + load_pos
    best = None
    for m in CONTROL_OPEN_RE.finditer(joined):
        if m.end() <= load_at:
            best = m
    if best is None:
        return False
    depth = 0
    for ch in joined[best.end() - 1 : load_at]:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
    return depth > 0


def lint_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        findings.append(f"{rel}: unreadable: {e}")
        return

    in_alias_scope = any(rel.endswith(suffix) for suffix in ALIAS_PATH_FILES)

    for idx, line in enumerate(lines):
        for m in RELAXED_LOAD_RE.finditer(line):
            if not load_feeds_control(lines, idx, m.start()):
                continue
            if has_justification(lines, idx, "relaxed:"):
                continue
            findings.append(
                f"{rel}:{idx + 1}: control-feeding memory_order_relaxed load "
                f"without a 'relaxed:' justification comment"
            )

        if not in_alias_scope:
            continue
        for m in REINTERPRET_RE.finditer(line):
            target = m.group(1).strip()
            if BYTE_VIEW_RE.match(target):
                continue  # Byte/integer views are always defined.
            if "AlignedAliasCast" in line:
                continue  # The helper itself (and calls through it).
            if has_justification(lines, idx, "alias-ok:"):
                continue
            findings.append(
                f"{rel}:{idx + 1}: reinterpret_cast<{target}> in an alias "
                f"path; route through AlignedAliasCast<> or justify with an "
                f"'alias-ok:' comment"
            )


def lint_fault_site_coverage(root, findings):
    """Rule 3: every injection site in src/ is exercised by the chaos suite."""
    chaos_path = os.path.join(root, CHAOS_SUITE)
    try:
        with open(chaos_path, encoding="utf-8") as f:
            chaos_text = f.read()
    except OSError:
        chaos_text = None  # Reported per-site below, with the site named.
    fault_seam = os.path.join("src", "common", "fault.h")
    for path in scan_cxx_files(root):
        rel = os.path.relpath(path, root)
        if rel.endswith(fault_seam):
            continue
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            continue  # Already reported by lint_file.
        for m in FAULT_SITE_RE.finditer(text):
            site = m.group(1)
            line = text.count("\n", 0, m.start()) + 1
            if chaos_text is None:
                findings.append(
                    f"{rel}:{line}: fault site '{site}' declared but "
                    f"{CHAOS_SUITE} is missing"
                )
            elif f'"{site}"' not in chaos_text:
                findings.append(
                    f"{rel}:{line}: fault site '{site}' is not exercised by "
                    f"{CHAOS_SUITE}; add a chaos scenario that arms it"
                )


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.getcwd()
    findings = []
    count = 0
    for path in scan_cxx_files(root):
        count += 1
        lint_file(path, os.path.relpath(path, root), findings)
    lint_fault_site_coverage(root, findings)
    if count == 0:
        print(f"lint_invariants: no sources found under {root}/src", file=sys.stderr)
        return 1
    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s) in {count} files",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
