// Runtime: registration, inline predict, batch fan-out ordering, async
// completion, error propagation, and reservations.
#include "src/runtime/runtime.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

int main() {
  SaWorkloadOptions opts;
  opts.num_pipelines = 4;
  opts.char_dict_entries = 500;
  opts.word_dict_entries = 150;
  opts.vocabulary_size = 300;
  auto sa = SaWorkload::Generate(opts);

  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  Runtime runtime(&store, ropts);

  std::vector<Runtime::PlanId> ids;
  for (size_t i = 0; i < sa.pipelines().size(); ++i) {
    auto program = flour.FromPipeline(sa.pipelines()[i]);
    auto plan = Plan(*program, sa.pipelines()[i].name);
    CHECK(plan.ok());
    PlanRegistration reg;
    if (i == 0) {
      reg.reserve_cores = 1;  // Reserved plan: dedicated executor.
    }
    auto id = runtime.Register(*plan, reg);
    CHECK(id.ok());
    ids.push_back(*id);
  }
  CHECK_EQ(runtime.reservations().size(), size_t{1});
  CHECK_EQ(runtime.reservations()[0].plan_id, ids[0]);

  // Inline predict matches direct plan execution.
  VectorPool pool;
  ExecContext ctx(&pool);
  Rng rng(7);
  {
    auto program = flour.FromPipeline(sa.pipelines()[1]);
    auto plan = Plan(*program, "direct");
    const std::string input = sa.SampleInput(rng);
    auto direct = ExecutePlan(**plan, input, ctx);
    auto served = runtime.Predict(ids[1], input);
    CHECK(direct.ok() && served.ok());
    CHECK_NEAR(*served, *direct, 1e-6);
  }

  // Unknown plan id fails cleanly.
  CHECK(!runtime.Predict(9999, "x").ok());

  // Batch: scores come back in input order, equal to one-at-a-time scores.
  {
    std::vector<std::string> inputs;
    for (int i = 0; i < 37; ++i) {
      inputs.push_back(sa.SampleInput(rng));
    }
    auto batch = runtime.PredictBatch(ids[2], inputs, /*max_batch=*/8);
    CHECK(batch.ok());
    CHECK_EQ(batch->size(), inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      auto single = runtime.Predict(ids[2], inputs[i]);
      CHECK(single.ok());
      CHECK_NEAR((*batch)[i], *single, 1e-6);
    }
    // Empty batch completes immediately.
    auto empty = runtime.PredictBatch(ids[2], {}, 8);
    CHECK(empty.ok());
    CHECK(empty->empty());
  }

  // Async: callback fires exactly once, including for the reserved plan.
  {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int> fired{0};
    int pending = 2;
    for (const Runtime::PlanId id : {ids[0], ids[3]}) {
      std::vector<std::string> inputs(5, sa.SampleInput(rng));
      Status st = runtime.PredictBatchAsync(
          id, std::move(inputs),
          [&](Status status, std::span<const float> results) {
            CHECK(status.ok());
            CHECK_EQ(results.size(), size_t{5});
            fired.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            if (--pending == 0) {
              cv.notify_one();
            }
          },
          2);
      CHECK(st.ok());
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
    CHECK_EQ(fired.load(), 2);
  }

  // Reserved sync Predict rides the dedicated queue (no reservation bypass)
  // and still matches direct execution.
  {
    auto program = flour.FromPipeline(sa.pipelines()[0]);
    auto plan = Plan(*program, "direct0");
    const std::string input = sa.SampleInput(rng);
    auto direct = ExecutePlan(**plan, input, ctx);
    auto served = runtime.Predict(ids[0], input);
    CHECK(direct.ok() && served.ok());
    CHECK_NEAR(*served, *direct, 1e-6);
  }

  // Metrics: the scheduler exposes per-plan counters, and a default Runtime
  // has the sub-plan materialization cache active in the serving path.
  {
    // The sync waiter above wakes before its executor records the latency
    // sample (samples land after the callback), so give that write a
    // bounded window to flush instead of racing it.
    RuntimeMetrics m = runtime.GetMetrics();
    for (int spin = 0;
         m.plans[ids[0]].single_latency_us.empty() && spin < 2000; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      m = runtime.GetMetrics();
    }
    CHECK_EQ(m.plans.size(), ids.size());
    const PlanMetrics& reserved = m.plans[ids[0]];
    CHECK(reserved.reserved);
    CHECK_EQ(reserved.inline_predictions, uint64_t{0});  // Sync rode the queue.
    CHECK(reserved.enqueued_events > 0);
    CHECK(reserved.dispatches > 0);
    CHECK(!reserved.batch_records.empty());
    CHECK(!reserved.single_latency_us.empty());
    CHECK(!reserved.queue_wait_us.empty());
    CHECK_EQ(reserved.errors, uint64_t{0});
    const PlanMetrics& unreserved = m.plans[ids[1]];
    CHECK(!unreserved.reserved);
    CHECK(unreserved.inline_predictions > 0);  // Inline fast path kept.
    // The async batches above repeated one input 5x, so the executor-owned
    // caches saw both misses (insertions) and hits.
    CHECK(m.subplan_cache.lookups > 0);
    CHECK(m.subplan_cache.insertions > 0);
    CHECK(m.subplan_cache.hits > 0);
    CHECK(m.subplan_cache_bytes > 0);
    CHECK(m.subplan_cache_entries > 0);
  }

  std::printf("runtime_test: PASS\n");
  return 0;
}
