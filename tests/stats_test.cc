// SampleStats: percentiles, median, P99, CDF shape, and formatting.
#include "src/common/stats.h"

#include "tests/test_util.h"

using pretzel::FormatBytes;
using pretzel::FormatDurationNs;
using pretzel::SampleStats;

int main() {
  // Empty sample: all queries well-defined.
  SampleStats empty;
  CHECK(empty.empty());
  CHECK_EQ(empty.count(), size_t{0});
  CHECK_EQ(empty.Median(), 0.0);
  CHECK_EQ(empty.P99(), 0.0);
  CHECK(empty.Cdf(10).empty());

  // 1..100 in shuffled-ish order: exact percentiles are known.
  SampleStats stats;
  for (int i = 100; i >= 1; --i) {
    stats.Add(static_cast<double>(i));
  }
  CHECK_EQ(stats.count(), size_t{100});
  CHECK_NEAR(stats.Mean(), 50.5, 1e-9);
  CHECK_NEAR(stats.Median(), 50.0, 1e-9);  // Nearest-rank: ceil(0.5*100)=50.
  CHECK_NEAR(stats.P99(), 99.0, 1e-9);
  CHECK_NEAR(stats.Percentile(0.0), 1.0, 1e-9);
  CHECK_NEAR(stats.Percentile(100.0), 100.0, 1e-9);
  CHECK_NEAR(stats.Percentile(10.0), 10.0, 1e-9);
  CHECK_NEAR(stats.Min(), 1.0, 1e-9);
  CHECK_NEAR(stats.Max(), 100.0, 1e-9);

  // Incremental add invalidates the sorted cache.
  stats.Add(1000.0);
  CHECK_NEAR(stats.Max(), 1000.0, 1e-9);

  // CDF: monotone in both coordinates, ends at (max, 1.0).
  const auto cdf = stats.Cdf(20);
  CHECK_EQ(cdf.size(), size_t{20});
  for (size_t i = 1; i < cdf.size(); ++i) {
    CHECK(cdf[i].first >= cdf[i - 1].first);
    CHECK(cdf[i].second > cdf[i - 1].second);
  }
  CHECK_NEAR(cdf.back().first, 1000.0, 1e-9);
  CHECK_NEAR(cdf.back().second, 1.0, 1e-9);

  // Formatting: unit selection.
  CHECK(FormatDurationNs(412.0) == "412ns");
  CHECK(FormatDurationNs(3180.0) == "3.18us");
  CHECK(FormatDurationNs(7.42e6) == "7.42ms");
  CHECK(FormatDurationNs(1.25e9) == "1.25s");
  CHECK(FormatBytes(512) == "512B");
  CHECK(FormatBytes(64ull << 10) == "64.0KB");
  CHECK(FormatBytes(3ull << 20) == "3.00MB");
  CHECK(FormatBytes(2ull << 30) == "2.00GB");

  std::printf("stats_test: PASS\n");
  return 0;
}
