// Serving layer: jump-consistent-hash routing stability (<= K/N key
// movement on shard-count change, remapped keys land only on new shards,
// near-uniform spread), sharded-vs-monolith prediction parity, cross-shard
// GetMetrics aggregation == sum of per-shard snapshots, the per-segment vs
// router-global intern trade-off, ShardedBackend drop aggregation with
// retry-after hints, a FrontEnd round trip over the sharded stack, and the
// versioned lifecycle: Deploy/Promote/Rollback with O(changed-params) swaps
// and post-retire byte reclamation, plus route-under-churn with version
// swaps and replication flapping racing live predicts (ASan+TSan in CI).
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/flour/flour.h"
#include "src/frontend/frontend.h"
#include "src/oven/model_plan.h"
#include "src/serving/shard_router.h"
#include "src/serving/sharded_backend.h"
#include "src/workload/load_gen.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

SaWorkload SmallSa(size_t pipelines) {
  SaWorkloadOptions opts;
  opts.num_pipelines = pipelines;
  opts.char_dict_entries = 400;
  opts.word_dict_entries = 120;
  opts.vocabulary_size = 250;
  return SaWorkload::Generate(opts);
}

// Jump-hash contract, the property that makes shard-count changes cheap:
// going S -> S+1 moves ~1/(S+1) of the keys, every moved key lands on the
// NEW bucket, and the spread stays near-uniform.
void TestJumpHashStability() {
  constexpr size_t kKeys = 20000;
  for (uint32_t shards = 1; shards <= 8; ++shards) {
    std::vector<size_t> bucket_counts(shards, 0);
    size_t moved = 0;
    for (size_t i = 0; i < kKeys; ++i) {
      const uint64_t key = ShardRouter::HashName("plan-" + std::to_string(i));
      const uint32_t before = ShardRouter::JumpConsistentHash(key, shards);
      const uint32_t after = ShardRouter::JumpConsistentHash(key, shards + 1);
      CHECK(before < shards);
      CHECK(after < shards + 1);
      ++bucket_counts[before];
      if (after != before) {
        ++moved;
        // The defining jump property: a key only ever moves INTO the bucket
        // that did not exist before.
        CHECK_EQ(after, shards);
      }
    }
    // Expected movement is K/(S+1); allow 25% slack over the binomial mean
    // (sigma here is ~1% of the mean, so 25% is far outside noise).
    const double expected = static_cast<double>(kKeys) / (shards + 1);
    CHECK_MSG(static_cast<double>(moved) <= expected * 1.25,
              "shards %u -> %u moved %zu keys, expected <= %.0f", shards,
              shards + 1, moved, expected * 1.25);
    CHECK_MSG(moved > 0, "shards %u -> %u moved nothing", shards, shards + 1);
    // Near-uniform spread: each bucket within 5 sigma of K/S.
    const double mean = static_cast<double>(kKeys) / shards;
    const double sigma = std::sqrt(mean * (1.0 - 1.0 / shards));
    for (uint32_t b = 0; b < shards; ++b) {
      CHECK_MSG(std::fabs(static_cast<double>(bucket_counts[b]) - mean) <=
                    5.0 * sigma + 1.0,
                "bucket %u holds %zu keys, mean %.0f", b, bucket_counts[b],
                mean);
    }
  }
}

// Two routers over the same names with S and S+1 shards agree on all but
// <= K/N placements (ShardFor is a pure function of name + shard count).
void TestRouterRemapBound() {
  constexpr size_t kNames = 8000;
  ShardRouterOptions four;
  four.num_shards = 4;
  ShardRouterOptions five;
  five.num_shards = 5;
  ShardRouter router4(four);
  ShardRouter router5(five);
  size_t moved = 0;
  for (size_t i = 0; i < kNames; ++i) {
    const std::string name = "sa_model_" + std::to_string(i);
    const size_t s4 = router4.ShardFor(name);
    const size_t s5 = router5.ShardFor(name);
    if (s4 != s5) {
      ++moved;
      CHECK_EQ(s5, size_t{4});  // Only onto the new shard.
    }
  }
  CHECK_MSG(static_cast<double>(moved) <=
                static_cast<double>(kNames) / 5.0 * 1.25,
            "4 -> 5 shards moved %zu of %zu names", moved, kNames);
  CHECK(moved > 0);
}

// The sharded stack scores exactly what one monolithic Runtime scores, and
// every plan lands on the shard ShardFor names.
void TestShardedPredictMatchesMonolith() {
  auto sa = SmallSa(12);

  ObjectStore mono_store;
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  Runtime monolith(&mono_store, ropts);
  FlourContext flour(&mono_store);
  std::vector<Runtime::PlanId> mono_ids;
  for (const auto& spec : sa.pipelines()) {
    auto program = flour.FromPipeline(spec);
    mono_ids.push_back(*monolith.Register(*Plan(*program, spec.name)));
  }

  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  ShardRouter router(sopts);
  std::set<size_t> shards_used;
  for (const auto& spec : sa.pipelines()) {
    auto placement = router.Place(spec);
    CHECK(placement.ok());
    CHECK_EQ(placement->shard, router.ShardFor(spec.name));
    shards_used.insert(placement->shard);
  }
  CHECK_MSG(shards_used.size() >= 2, "12 plans all hashed to one shard");
  // Re-placing a name is rejected.
  CHECK(!router.Place(sa.pipelines()[0]).ok());
  // Unknown names are NotFound.
  CHECK(!router.Predict("no-such-plan", "x").ok());

  Rng rng(71);
  for (size_t i = 0; i < sa.pipelines().size(); ++i) {
    for (int rep = 0; rep < 3; ++rep) {
      const std::string input = sa.SampleInput(rng);
      auto expected = monolith.Predict(mono_ids[i], input);
      auto got = router.Predict(sa.pipelines()[i].name, input);
      CHECK(expected.ok());
      CHECK(got.ok());
      CHECK_EQ(*expected, *got);
    }
    // Batch path routes to the same shard/plan.
    auto batch = router.PredictBatch(sa.pipelines()[i].name,
                                     {sa.SampleInput(rng)}, 4);
    CHECK(batch.ok());
    CHECK_EQ(batch->size(), size_t{1});
  }
}

// Requests that ARRIVE already expired burned their budget upstream — the
// shard did no work, so they must not be booked as shard timeouts or trip
// its breaker. A flood of doomed clients (tiny deadlines, slow network)
// would otherwise blackhole a healthy shard and set off failover churn.
void TestExpiredArrivalNotAShardFault() {
  auto sa = SmallSa(1);
  ShardRouterOptions sopts;
  sopts.num_shards = 1;
  sopts.runtime.num_executors = 1;
  sopts.breaker.failure_threshold = 3;
  ShardRouter router(sopts);
  const auto& spec = sa.pipelines()[0];
  CHECK(router.Place(spec).ok());

  Rng rng(5);
  const std::string input = sa.SampleInput(rng);
  // Far more arrived-dead requests than the trip threshold.
  for (int i = 0; i < 10; ++i) {
    auto dead = router.Predict(spec.name, input, /*deadline_ns=*/1);
    CHECK(!dead.ok());
    CHECK(dead.status().IsDeadlineExceeded());
    CHECK(dead.status().deadline_stage() == DeadlineStage::kAdmission);
  }
  CHECK(router.breaker(0).state() == CircuitBreaker::State::kClosed);
  const ShardedMetrics metrics = router.GetMetrics();
  CHECK_EQ(metrics.shard_health[0].timeouts, uint64_t{0});
  CHECK_EQ(metrics.shard_health[0].trips, uint64_t{0});
  // The shard still serves live-budget traffic.
  CHECK(router.Predict(spec.name, input).ok());
}

// Cross-shard GetMetrics: the merged fold equals the sum of the per-shard
// snapshots it retains.
void TestCrossShardMetricsAggregation() {
  auto sa = SmallSa(10);
  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }

  Rng rng(81);
  std::atomic<int> pending{0};
  for (int round = 0; round < 20; ++round) {
    for (const auto& spec : sa.pipelines()) {
      CHECK(router.Predict(spec.name, sa.SampleInput(rng)).ok());
      pending.fetch_add(1);
      Status st = router.PredictAsync(spec.name, sa.SampleInput(rng),
                                      [&](Result<float> r) {
                                        CHECK(r.ok());
                                        pending.fetch_sub(1);
                                      });
      CHECK(st.ok());
    }
  }
  while (pending.load() > 0) {
    std::this_thread::yield();
  }

  const ShardedMetrics metrics = router.GetMetrics();
  CHECK_EQ(metrics.shards.size(), size_t{4});
  size_t plans = 0;
  uint64_t enqueued = 0, inline_preds = 0, dispatches = 0;
  uint64_t cache_lookups = 0;
  size_t cache_bytes = 0;
  size_t store_objects = 0, store_bytes = 0;
  for (const auto& shard : metrics.shards) {
    plans += shard.runtime.plans.size();
    for (const auto& pm : shard.runtime.plans) {
      enqueued += pm.enqueued_events;
      inline_preds += pm.inline_predictions;
      dispatches += pm.dispatches;
    }
    cache_lookups += shard.runtime.subplan_cache.lookups;
    cache_bytes += shard.runtime.subplan_cache_bytes;
    store_objects += shard.store_objects;
    store_bytes += shard.store_bytes;
  }
  CHECK_EQ(metrics.merged.plans.size(), plans);
  CHECK_EQ(metrics.merged.plans.size(), sa.pipelines().size());
  uint64_t merged_enqueued = 0, merged_inline = 0, merged_dispatches = 0;
  for (const auto& pm : metrics.merged.plans) {
    merged_enqueued += pm.enqueued_events;
    merged_inline += pm.inline_predictions;
    merged_dispatches += pm.dispatches;
  }
  CHECK_EQ(merged_enqueued, enqueued);
  CHECK_EQ(merged_inline, inline_preds);
  CHECK_EQ(merged_dispatches, dispatches);
  CHECK_EQ(metrics.merged.subplan_cache.lookups, cache_lookups);
  CHECK_EQ(metrics.merged.subplan_cache_bytes, cache_bytes);
  // Per-segment scope: resident state is the sum of the segments.
  CHECK_EQ(metrics.store_objects, store_objects);
  CHECK_EQ(metrics.store_bytes, store_bytes);
  CHECK(store_bytes > 0);
  // Every async single was enqueued, every sync single ran inline.
  CHECK_EQ(inline_preds, uint64_t{20 * 10});
  CHECK_EQ(enqueued, uint64_t{20 * 10});
}

// Segment-vs-global intern: with router-global scope, dictionaries shared
// across shards are resident once; per-segment scope duplicates them per
// shard. Predictions agree either way.
void TestInternScopeTradeOff() {
  auto sa = SmallSa(12);

  ShardRouterOptions per_segment;
  per_segment.num_shards = 4;
  per_segment.runtime.num_executors = 1;
  ShardRouter segmented(per_segment);

  ShardRouterOptions global = per_segment;
  global.intern_scope = ShardRouterOptions::InternScope::kGlobal;
  ShardRouter shared(global);
  CHECK(shared.global_store() != nullptr);
  CHECK(segmented.global_store() == nullptr);

  for (const auto& spec : sa.pipelines()) {
    CHECK(segmented.Place(spec).ok());
    CHECK(shared.Place(spec).ok());
  }
  const ShardedMetrics seg_metrics = segmented.GetMetrics();
  const ShardedMetrics shr_metrics = shared.GetMetrics();
  // The SA suite shares one tokenizer and a handful of dictionary versions
  // across all pipelines; with 12 plans spread over 4 shards, at least one
  // shared object must appear on two shards, so global intern is a strict
  // byte win.
  CHECK_MSG(shr_metrics.store_bytes < seg_metrics.store_bytes,
            "global intern %zu bytes !< per-segment %zu bytes",
            shr_metrics.store_bytes, seg_metrics.store_bytes);
  // Delegating segments hold no objects themselves.
  for (const auto& shard : shr_metrics.shards) {
    CHECK_EQ(shard.store_bytes, size_t{0});
  }

  Rng rng(91);
  for (const auto& spec : sa.pipelines()) {
    const std::string input = sa.SampleInput(rng);
    auto a = segmented.Predict(spec.name, input);
    auto b = shared.Predict(spec.name, input);
    CHECK(a.ok());
    CHECK(b.ok());
    CHECK_EQ(*a, *b);
  }
}

// ShardedBackend aggregates admission drops across shards and the rejected
// statuses carry retry-after hints.
void TestShardedBackendDrops() {
  auto sa = SmallSa(4);
  ShardRouterOptions sopts;
  sopts.num_shards = 2;
  sopts.runtime.num_executors = 1;
  sopts.runtime.max_queued_events_per_plan = 2;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  ShardedBackend backend(&router);

  Rng rng(101);
  std::atomic<int> pending{0};
  std::atomic<int> rejected{0};
  std::atomic<int64_t> max_hint{0};
  for (int i = 0; i < 400; ++i) {
    const auto& spec = sa.pipelines()[i % sa.pipelines().size()];
    pending.fetch_add(1);
    backend.PredictAsync(spec.name, sa.SampleInput(rng), [&](Result<float> r) {
      if (!r.ok()) {
        CHECK(r.status().IsResourceExhausted());
        rejected.fetch_add(1);
        int64_t hint = r.status().retry_after_us();
        int64_t prev = max_hint.load();
        while (hint > prev && !max_hint.compare_exchange_weak(prev, hint)) {
        }
      }
      pending.fetch_sub(1);
    });
  }
  while (pending.load() > 0) {
    std::this_thread::yield();
  }
  // 400 back-to-back submissions against cap-2 queues on single-executor
  // shards doing real scoring: some must shed.
  CHECK_MSG(rejected.load() > 0, "no submission was shed at cap 2");
  CHECK_EQ(backend.dropped(), static_cast<uint64_t>(rejected.load()));
  CHECK_MSG(max_hint.load() >= 1, "rejections carried no retry-after hint");
}

// End to end: FrontEnd -> ShardedBackend -> ShardRouter -> shard Runtime.
void TestFrontEndOverShardedStack() {
  auto sa = SmallSa(6);
  ShardRouterOptions sopts;
  sopts.num_shards = 3;
  sopts.runtime.num_executors = 1;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  ShardedBackend backend(&router);
  FrontEndOptions fopts;
  fopts.network_delay_us = 0;
  fopts.num_io_threads = 2;
  FrontEnd frontend(&backend, fopts);

  Rng rng(111);
  std::mutex mu;
  std::condition_variable cv;
  int completions = 0;
  for (int i = 0; i < 30; ++i) {
    const auto& spec = sa.pipelines()[i % sa.pipelines().size()];
    auto sync = frontend.Request(spec.name, sa.SampleInput(rng));
    CHECK(sync.ok());
    Status st = frontend.RequestAsync(spec.name, sa.SampleInput(rng),
                                      [&](Result<float> r) {
                                        CHECK(r.ok());
                                        std::lock_guard<std::mutex> lock(mu);
                                        ++completions;
                                        cv.notify_one();
                                      });
    CHECK(st.ok());
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completions == 30; });
  CHECK_EQ(backend.dropped(), uint64_t{0});
}

// Replica parity: a plan replicated onto K shards is the SAME model K
// times — every replica, driven directly through its shard's Runtime,
// scores exactly what one monolithic Runtime scores. (Each replica is an
// independent Flour+Oven compile against a different segment, so this
// pins down compile determinism across segments, not just routing.)
void TestReplicaParity() {
  auto sa = SmallSa(6);

  ObjectStore mono_store;
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  Runtime monolith(&mono_store, ropts);
  FlourContext flour(&mono_store);
  std::vector<Runtime::PlanId> mono_ids;
  for (const auto& spec : sa.pipelines()) {
    auto program = flour.FromPipeline(spec);
    mono_ids.push_back(*monolith.Register(*Plan(*program, spec.name)));
  }

  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  sopts.replication.enabled = true;
  sopts.replication.max_replicas_per_plan = 3;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Replicate(spec.name, 3).ok());
    CHECK_EQ(router.Replicas(spec.name).size(), size_t{3});
  }

  Rng rng(121);
  for (size_t i = 0; i < sa.pipelines().size(); ++i) {
    const std::string& name = sa.pipelines()[i].name;
    const std::vector<ShardPlacement> replicas = router.Replicas(name);
    std::set<size_t> shards;
    for (int rep = 0; rep < 3; ++rep) {
      const std::string input = sa.SampleInput(rng);
      auto expected = monolith.Predict(mono_ids[i], input);
      CHECK(expected.ok());
      for (const ShardPlacement& r : replicas) {
        shards.insert(r.shard);
        auto got = router.runtime(r.shard)->Predict(r.plan_id, input);
        CHECK(got.ok());
        CHECK_EQ(*expected, *got);
      }
      // The routed path (whichever replica p2c lands on) agrees too.
      auto routed = router.Predict(name, input);
      CHECK(routed.ok());
      CHECK_EQ(*expected, *routed);
    }
    CHECK_EQ(shards.size(), size_t{3});  // Replicas on 3 distinct shards.
  }
}

// The hotness detector, driven by a real Zipf trace: maintenance must
// replicate the TRUE head of the distribution (checked against
// ZipfExpectedShares, not eyeballed counters), leave the tail at one
// replica, and de-replicate once the head cools. Along the way the merged
// metrics must count the replicated plan ONCE (the dedup fix) while the
// per-replica breakdown accounts for where its traffic went.
void TestHotDetectorReplicatesHead() {
  constexpr size_t kModels = 8;
  auto sa = SmallSa(kModels);
  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  sopts.replication.enabled = true;
  sopts.replication.max_replicas_per_plan = 3;
  sopts.replication.min_interval_requests = 64;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }

  // Zipf(2) over 8 models: the exact head share is ~0.83 — far above the
  // hot threshold; every tail model from rank 1 down is below it.
  const std::vector<double> shares = ZipfExpectedShares(kModels, 2.0);
  CHECK(shares[0] > sopts.replication.hot_share_threshold);
  CHECK(shares[2] < sopts.replication.hot_share_threshold);
  const std::vector<size_t> trace = ZipfModelSequence(kModels, 1200, 2.0, 7);

  Rng rng(131);
  for (const size_t model : trace) {
    CHECK(router.Predict(sa.pipelines()[model].name, sa.SampleInput(rng)).ok());
  }
  const MaintenanceReport scan = router.MaintainReplication();
  CHECK_EQ(scan.plans_scanned, kModels);
  CHECK_EQ(scan.interval_requests, uint64_t{1200});
  CHECK_MSG(scan.replications > 0, "hot head not replicated");

  // The detector found the true head: rank 0 is replicated...
  const std::string& head = sa.pipelines()[0].name;
  const size_t head_replicas = router.Replicas(head).size();
  CHECK_MSG(head_replicas > 1, "head '%s' still single-replica", head.c_str());
  CHECK(head_replicas <= sopts.replication.max_replicas_per_plan);
  // ...and the deep tail is not (rank 2 share ~3.7% is sub-threshold; rank
  // 1 at ~21% may legitimately replicate).
  for (size_t m = 2; m < kModels; ++m) {
    CHECK_EQ(router.Replicas(sa.pipelines()[m].name).size(), size_t{1});
  }

  // Spread the head's traffic over its replicas, then audit the metrics.
  for (int i = 0; i < 200; ++i) {
    CHECK(router.Predict(head, sa.SampleInput(rng)).ok());
  }
  const ShardedMetrics metrics = router.GetMetrics();
  // Dedup: the merged fold reports 8 logical plans even though the shards
  // together hold more registrations than that.
  size_t registrations = 0;
  uint64_t shard_events = 0;
  for (const auto& shard : metrics.shards) {
    registrations += shard.runtime.plans.size();
    for (const auto& pm : shard.runtime.plans) {
      shard_events += pm.inline_predictions + pm.enqueued_events;
    }
  }
  CHECK_MSG(registrations > kModels, "replication left no extra registration");
  CHECK_EQ(metrics.merged.plans.size(), kModels);
  CHECK_EQ(metrics.unique_plans, kModels);
  CHECK(metrics.replicated_plans >= 1);
  CHECK_EQ(metrics.replications, static_cast<uint64_t>(scan.replications));
  // The fold preserves totals: merging by name sums, never drops.
  uint64_t merged_events = 0;
  for (const auto& pm : metrics.merged.plans) {
    merged_events += pm.inline_predictions + pm.enqueued_events;
  }
  CHECK_EQ(merged_events, shard_events);
  // Per-replica breakdown: the head's row shows > 1 active replica and its
  // routed counts add up to everything p2c sent its way.
  bool found_head = false;
  for (const auto& plan : metrics.plan_replicas) {
    if (plan.name != head) {
      continue;
    }
    found_head = true;
    size_t active = 0;
    uint64_t routed = 0;
    for (const auto& replica : plan.replicas) {
      active += replica.active ? 1 : 0;
      routed += replica.routed;
    }
    CHECK_EQ(active, head_replicas);
    CHECK_MSG(routed >= 200, "head breakdown lost routed traffic");
  }
  CHECK(found_head);

  // Cooling: an interval where the head goes quiet de-replicates it back
  // to one ACTIVE replica (the registrations stay materialized — cooling
  // is deactivation, not teardown). Scan once first so the audit traffic
  // above does not bleed into the cooling interval.
  router.MaintainReplication();
  for (int i = 0; i < 200; ++i) {
    const auto& spec = sa.pipelines()[1 + (i % (kModels - 1))];
    CHECK(router.Predict(spec.name, sa.SampleInput(rng)).ok());
  }
  const MaintenanceReport cool = router.MaintainReplication();
  CHECK_MSG(cool.dereplications > 0, "cooled head not de-replicated");
  CHECK_EQ(router.Replicas(head).size(), size_t{1});
  const ShardedMetrics after = router.GetMetrics();
  CHECK_EQ(after.unique_plans, kModels);
  CHECK(after.dereplications >= cool.dereplications);
}

// Replicate/de-replicate churning against racing predicts: every request
// completes exactly once with the correct score — routing over snapshot
// swaps never drops a request (stale table: the old replica is still
// registered) and never double-executes one (each request routes to
// exactly one replica). Run under ASan+TSan in CI.
void TestRouteUnderChurn() {
  auto sa = SmallSa(4);
  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  sopts.replication.enabled = true;
  sopts.replication.max_replicas_per_plan = 3;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const std::string churned = sa.pipelines()[0].name;

  // Ground-truth scores from the pre-churn single replica.
  Rng rng(141);
  std::vector<std::string> inputs;
  std::vector<float> expected;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(sa.SampleInput(rng));
    auto score = router.Predict(churned, inputs.back());
    CHECK(score.ok());
    expected.push_back(*score);
  }

  constexpr int kPredictThreads = 4;
  constexpr int kPredictsPerThread = 300;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_predicts{0};
  std::thread churn([&] {
    // Grow/shrink the churned plan's replica set as fast as the control
    // plane allows; every cycle publishes at least two table swaps.
    while (!stop.load(std::memory_order_relaxed)) {
      CHECK(router.Replicate(churned, 3).ok());
      CHECK(router.Replicate(churned, 1).ok());
    }
  });
  std::vector<std::thread> predictors;
  for (int t = 0; t < kPredictThreads; ++t) {
    predictors.emplace_back([&, t] {
      for (int i = 0; i < kPredictsPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % inputs.size();
        auto got = router.Predict(churned, inputs[which]);
        CHECK(got.ok());
        CHECK_EQ(*got, expected[which]);
        ok_predicts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : predictors) {
    thread.join();
  }
  stop.store(true);
  churn.join();
  // Exactly-once completion: nothing dropped, nothing duplicated.
  CHECK_EQ(ok_predicts.load(),
           static_cast<uint64_t>(kPredictThreads * kPredictsPerThread));
  // The routed totals booked against the plan match the requests issued
  // (8 ground-truth + the churned predicts), counted once each.
  const ShardedMetrics metrics = router.GetMetrics();
  for (const auto& plan : metrics.plan_replicas) {
    if (plan.name != churned) {
      continue;
    }
    uint64_t routed = 0;
    for (const auto& replica : plan.replicas) {
      routed += replica.routed;
    }
    CHECK_EQ(routed, static_cast<uint64_t>(
                         8 + kPredictThreads * kPredictsPerThread));
  }
}

// Versioned lifecycle, the full arc: Deploy a v2 whose only change is the
// linear-weights node, watch the ObjectStore grow by EXACTLY that node's
// bytes (every shared parameter interns against the resident v1 blob — the
// O(changed-params) swap), split live traffic across both versions with no
// request ever observing a torn mix, Promote and verify the old version's
// bytes leave the process, then Rollback a v3 and verify the store returns
// to the post-promote baseline to the byte.
void TestVersionedDeployLifecycle() {
  auto sa = SmallSa(8);
  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  sopts.rollout.canary_fraction_bp = 5000;  // 50%: both versions see load.
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const PipelineSpec& v1 = sa.pipelines()[0];
  const size_t home = router.ShardFor(v1.name);

  // Donor weights for v2/v3: linear nodes from pipelines homed on OTHER
  // shards, so neither blob is resident in v1's segment before the deploy.
  std::vector<const PipelineSpec*> donors;
  for (size_t i = 1; i < sa.pipelines().size() && donors.size() < 2; ++i) {
    if (router.ShardFor(sa.pipelines()[i].name) != home) {
      donors.push_back(&sa.pipelines()[i]);
    }
  }
  CHECK_EQ(donors.size(), size_t{2});
  PipelineSpec v2 = v1;
  v2.nodes[4].params = donors[0]->nodes[4].params;
  PipelineSpec v3 = v1;
  v3.nodes[4].params = donors[1]->nodes[4].params;

  // Ground truth for both versions from monolithic compiles.
  ObjectStore ref_store;
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  Runtime reference(&ref_store, ropts);
  FlourContext flour(&ref_store);
  const Runtime::PlanId ref_v1 =
      *reference.Register(*Plan(*flour.FromPipeline(v1), "ref_v1"));
  const Runtime::PlanId ref_v2 =
      *reference.Register(*Plan(*flour.FromPipeline(v2), "ref_v2"));

  Rng rng(151);
  std::vector<std::string> inputs;
  std::vector<float> expect_v1, expect_v2;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(sa.SampleInput(rng));
    expect_v1.push_back(*reference.Predict(ref_v1, inputs.back()));
    expect_v2.push_back(*reference.Predict(ref_v2, inputs.back()));
    auto live = router.Predict(v1.name, inputs.back());
    CHECK(live.ok());
    CHECK_EQ(*live, expect_v1.back());
  }
  const size_t baseline_bytes = router.GetMetrics().store_bytes;

  // Deploy: the canary registers and the store grows by exactly the
  // changed node — every other parameter was an intern hit.
  auto deployed = router.Deploy(v2);
  CHECK(deployed.ok());
  CHECK_EQ(*deployed, uint64_t{2});
  CHECK_EQ(router.GetMetrics().store_bytes,
           baseline_bytes + v2.nodes[4].params->HeapBytes());
  // One rollout per plan at a time; unknown plans are rejected.
  CHECK(!router.Deploy(v2).ok());
  PipelineSpec ghost = v2;
  ghost.name = "no-such-plan";
  CHECK(!router.Deploy(ghost).ok());
  // No rollout -> nothing to promote or abort (on a DIFFERENT plan).
  CHECK(!router.Promote(sa.pipelines()[1].name).ok());
  CHECK(!router.Rollback(sa.pipelines()[1].name).ok());
  auto info = router.VersionInfo(v1.name);
  CHECK(info.ok());
  CHECK_EQ(info->active_version, uint64_t{1});
  CHECK(info->rollout_in_flight);
  CHECK_EQ(info->rollout_version, uint64_t{2});
  CHECK_EQ(info->canary_fraction_bp, uint32_t{5000});

  // Split traffic: every response is EXACTLY v1's or v2's score — a torn
  // version (v2 weights over v1 dictionaries, or vice versa) would match
  // neither. Both versions must take load at a 50% split.
  size_t saw_v1 = 0, saw_v2 = 0;
  for (int i = 0; i < 400; ++i) {
    const size_t which = static_cast<size_t>(i) % inputs.size();
    auto got = router.Predict(v1.name, inputs[which]);
    CHECK(got.ok());
    if (*got == expect_v1[which]) {
      ++saw_v1;
    } else {
      CHECK_EQ(*got, expect_v2[which]);
      ++saw_v2;
    }
  }
  CHECK_MSG(saw_v1 > 50 && saw_v2 > 50,
            "50%% split routed %zu/%zu stable/canary", saw_v1, saw_v2);
  info = router.VersionInfo(v1.name);
  CHECK_EQ(info->canary_routed, static_cast<uint64_t>(saw_v2));

  // Promote: v2 becomes the version in one swap; v1's registration retires
  // and its now-unshared weights are swept — bytes return to baseline (the
  // retired and promoted linear nodes are the same shape, so the footprint
  // is byte-identical).
  CHECK(router.Promote(v1.name).ok());
  CHECK_EQ(v1.nodes[4].params->HeapBytes(), v2.nodes[4].params->HeapBytes());
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);
  info = router.VersionInfo(v1.name);
  CHECK_EQ(info->active_version, uint64_t{2});
  CHECK(!info->rollout_in_flight);
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto got = router.Predict(v1.name, inputs[i]);
    CHECK(got.ok());
    CHECK_EQ(*got, expect_v2[i]);
  }

  // Rollback: v3's canary bytes leave the process, v2 never moves.
  CHECK(router.Deploy(v3).ok());
  CHECK(router.GetMetrics().store_bytes > baseline_bytes);
  for (int i = 0; i < 40; ++i) {
    CHECK(router.Predict(v1.name, inputs[i % inputs.size()]).ok());
  }
  CHECK(router.Rollback(v1.name).ok());
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);
  info = router.VersionInfo(v1.name);
  CHECK_EQ(info->active_version, uint64_t{2});
  CHECK(!info->rollout_in_flight);
  CHECK_EQ(info->next_version, uint64_t{4});
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto got = router.Predict(v1.name, inputs[i]);
    CHECK(got.ok());
    CHECK_EQ(*got, expect_v2[i]);
  }
  const ShardedMetrics metrics = router.GetMetrics();
  CHECK_EQ(metrics.deploys, uint64_t{2});
  CHECK_EQ(metrics.promotes, uint64_t{1});
  CHECK_EQ(metrics.rollbacks, uint64_t{1});
  CHECK_EQ(metrics.auto_rollbacks, uint64_t{0});
}

// Version swaps AND hot-plan replication flapping racing live predicts:
// one thread Deploy/Promote/Rollback-cycles the plan (each promote
// epoch-reclaims the outgoing version under traffic), another grows and
// shrinks its replica set, while sync and async predictors hammer it.
// Every version is compiled from the SAME spec, so any request that
// observed a torn or reclaimed version would misscore or fail — the test
// demands exactly-once completion with the exact score, always. Run under
// ASan+TSan in CI.
void TestRouteUnderVersionChurn() {
  auto sa = SmallSa(4);
  ShardRouterOptions sopts;
  sopts.num_shards = 4;
  sopts.runtime.num_executors = 1;
  sopts.replication.enabled = true;
  sopts.replication.max_replicas_per_plan = 3;
  sopts.rollout.canary_fraction_bp = 5000;
  ShardRouter router(sopts);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const PipelineSpec& churned = sa.pipelines()[0];

  Rng rng(161);
  std::vector<std::string> inputs;
  std::vector<float> expected;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(sa.SampleInput(rng));
    auto score = router.Predict(churned.name, inputs.back());
    CHECK(score.ok());
    expected.push_back(*score);
  }
  const size_t baseline_bytes = router.GetMetrics().store_bytes;

  constexpr int kPredictThreads = 4;
  constexpr int kPredictsPerThread = 250;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_predicts{0};
  std::atomic<uint64_t> swaps{0};
  std::thread lifecycle([&] {
    // Deploy -> (mostly) Promote, sometimes Rollback, as fast as the
    // control plane allows; every cycle epoch-reclaims a version while the
    // predictors are mid-flight.
    uint64_t cycle = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      CHECK(router.Deploy(churned).ok());
      if (++cycle % 4 == 0) {
        CHECK(router.Rollback(churned.name).ok());
      } else {
        CHECK(router.Promote(churned.name).ok());
      }
      swaps.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread flapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      CHECK(router.Replicate(churned.name, 3).ok());
      CHECK(router.Replicate(churned.name, 1).ok());
    }
  });
  std::vector<std::thread> predictors;
  for (int t = 0; t < kPredictThreads; ++t) {
    predictors.emplace_back([&, t] {
      std::atomic<int> pending{0};
      for (int i = 0; i < kPredictsPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % inputs.size();
        if (i % 4 == 3) {
          // Async: the gate exit rides the executor-side completion.
          pending.fetch_add(1);
          Status st = router.PredictAsync(
              churned.name, inputs[which],
              [&, which](Result<float> r) {
                CHECK(r.ok());
                CHECK_EQ(*r, expected[which]);
                ok_predicts.fetch_add(1, std::memory_order_relaxed);
                pending.fetch_sub(1);
              });
          CHECK(st.ok());
        } else {
          auto got = router.Predict(churned.name, inputs[which]);
          CHECK(got.ok());
          CHECK_EQ(*got, expected[which]);
          ok_predicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (pending.load() > 0) {
        std::this_thread::yield();
      }
    });
  }
  for (auto& thread : predictors) {
    thread.join();
  }
  stop.store(true);
  lifecycle.join();
  flapper.join();
  CHECK_MSG(swaps.load() >= 2, "churn thread completed %llu swaps",
            static_cast<unsigned long long>(swaps.load()));
  // Exactly-once completion, exact scores, throughout the churn.
  CHECK_EQ(ok_predicts.load(),
           static_cast<uint64_t>(kPredictThreads * kPredictsPerThread));

  // Settle to a clean single-replica state: one last Deploy+Promote retires
  // every replica of the final churn-era version, so resident bytes must
  // return to the pre-churn baseline exactly (same spec each version — the
  // whole churn was a zero-byte swap repeated).
  CHECK(router.Deploy(churned).ok());
  CHECK(router.Promote(churned.name).ok());
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);
  auto info = router.VersionInfo(churned.name);
  CHECK(info.ok());
  CHECK(!info->rollout_in_flight);
  auto final_score = router.Predict(churned.name, inputs[0]);
  CHECK(final_score.ok());
  CHECK_EQ(*final_score, expected[0]);
}

}  // namespace

int main() {
  TestJumpHashStability();
  TestRouterRemapBound();
  TestShardedPredictMatchesMonolith();
  TestExpiredArrivalNotAShardFault();
  TestCrossShardMetricsAggregation();
  TestInternScopeTradeOff();
  TestShardedBackendDrops();
  TestFrontEndOverShardedStack();
  TestReplicaParity();
  TestHotDetectorReplicatesHead();
  TestRouteUnderChurn();
  TestVersionedDeployLifecycle();
  TestRouteUnderVersionChurn();
  std::printf("shard_router_test: PASS\n");
  return 0;
}
