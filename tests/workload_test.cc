// Workload generators: deterministic regeneration, Figure-3 sharing
// structure (version counts), and input sanity for both families.
#include <set>

#include "src/workload/ac_workload.h"
#include "src/workload/load_gen.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

void TestSaStructure() {
  SaWorkloadOptions opts;
  opts.num_pipelines = 30;
  opts.char_dict_entries = 500;
  opts.word_dict_entries = 150;
  opts.vocabulary_size = 300;
  auto sa = SaWorkload::Generate(opts);
  CHECK_EQ(sa.pipelines().size(), size_t{30});

  std::set<uint64_t> tokenizer_versions, char_versions, word_versions,
      linear_versions;
  for (const auto& spec : sa.pipelines()) {
    CHECK_EQ(spec.nodes.size(), size_t{5});
    CHECK(spec.nodes[0].params->kind() == OpKind::kTokenizer);
    CHECK(spec.nodes[1].params->kind() == OpKind::kCharNgram);
    CHECK(spec.nodes[2].params->kind() == OpKind::kWordNgram);
    CHECK(spec.nodes[3].params->kind() == OpKind::kConcat);
    CHECK(spec.nodes[4].params->kind() == OpKind::kLinearBinary);
    tokenizer_versions.insert(spec.nodes[0].params->ContentChecksum());
    char_versions.insert(spec.nodes[1].params->ContentChecksum());
    word_versions.insert(spec.nodes[2].params->ContentChecksum());
    linear_versions.insert(spec.nodes[4].params->ContentChecksum());
    CHECK(spec.ParameterBytes() > 0);
  }
  CHECK_EQ(tokenizer_versions.size(), size_t{1});   // Shared everywhere.
  CHECK_EQ(char_versions.size(), size_t{7});        // Paper: 7 versions.
  CHECK_EQ(word_versions.size(), size_t{6});        // Paper: 6 versions.
  CHECK_EQ(linear_versions.size(), size_t{30});     // Never shared.

  // Deterministic: same options -> identical checksums.
  auto again = SaWorkload::Generate(opts);
  for (size_t i = 0; i < sa.pipelines().size(); ++i) {
    for (size_t n = 0; n < 5; ++n) {
      CHECK_EQ(sa.pipelines()[i].nodes[n].params->ContentChecksum(),
               again.pipelines()[i].nodes[n].params->ContentChecksum());
    }
  }

  // Inputs: non-empty, variable length.
  Rng rng(1);
  std::set<size_t> lengths;
  for (int i = 0; i < 20; ++i) {
    const std::string input = sa.SampleInput(rng);
    CHECK(!input.empty());
    lengths.insert(input.size());
  }
  CHECK(lengths.size() > 5);
}

void TestAcStructure() {
  AcWorkloadOptions opts;
  opts.num_pipelines = 12;
  opts.featurizer_trees = 8;
  opts.featurizer_depth = 4;
  opts.final_trees = 6;
  opts.final_depth = 3;
  auto ac = AcWorkload::Generate(opts);
  CHECK_EQ(ac.pipelines().size(), size_t{12});

  std::set<uint64_t> featurizer_versions, final_versions;
  for (const auto& spec : ac.pipelines()) {
    CHECK_EQ(spec.nodes.size(), size_t{5});
    CHECK(spec.nodes[0].params->kind() == OpKind::kPca);
    CHECK(spec.nodes[4].params->kind() == OpKind::kForest);
    featurizer_versions.insert(spec.nodes[2].params->ContentChecksum());
    final_versions.insert(spec.nodes[4].params->ContentChecksum());
  }
  CHECK_EQ(featurizer_versions.size(), size_t{5});
  CHECK_EQ(final_versions.size(), size_t{12});  // Unique final model.

  // Inputs parse to exactly input_dim floats.
  Rng rng(2);
  std::vector<float> values;
  ParseDenseInput(ac.SampleInput(rng), &values);
  CHECK_EQ(values.size(), opts.input_dim);
}

void TestLoadSchedule() {
  auto schedule = GenerateLoadSchedule(20, 1000.0, 0.5, 2.0, 42);
  CHECK(!schedule.empty());
  // Roughly rps * duration events (Poisson, generous tolerance).
  CHECK(schedule.size() > 300 && schedule.size() < 800);
  size_t head_hits = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    CHECK(schedule[i].model_index < 20);
    CHECK(schedule[i].arrival_seconds >= 0.0 &&
          schedule[i].arrival_seconds < 0.5);
    if (i > 0) {
      CHECK(schedule[i].arrival_seconds >= schedule[i - 1].arrival_seconds);
    }
    head_hits += schedule[i].model_index == 0 ? 1 : 0;
  }
  // Zipf(2): the head model draws the majority of traffic.
  CHECK(head_hits > schedule.size() / 3);
}

int main() {
  TestSaStructure();
  TestAcStructure();
  TestLoadSchedule();
  std::printf("workload_test: PASS\n");
  return 0;
}
