// Event-driven per-plan scheduler: exactly-once callbacks under per-record
// errors, no head-of-line blocking across plans, reserved-plan isolation
// under shared-pool saturation, backpressure (Runtime and FrontEnd caps),
// and a Register-while-predicting race (run under TSan in CI).
#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/frontend/backends.h"
#include "src/frontend/frontend.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

SaWorkload SmallSa(size_t pipelines) {
  SaWorkloadOptions opts;
  opts.num_pipelines = pipelines;
  opts.char_dict_entries = 400;
  opts.word_dict_entries = 120;
  opts.vocabulary_size = 250;
  return SaWorkload::Generate(opts);
}

std::vector<Runtime::PlanId> RegisterAll(Runtime& runtime, FlourContext& flour,
                                         const SaWorkload& sa,
                                         size_t reserve_first_cores) {
  std::vector<Runtime::PlanId> ids;
  for (size_t i = 0; i < sa.pipelines().size(); ++i) {
    auto program = flour.FromPipeline(sa.pipelines()[i]);
    auto plan = Plan(*program, sa.pipelines()[i].name);
    CHECK(plan.ok());
    PlanRegistration reg;
    if (i == 0) {
      reg.reserve_cores = reserve_first_cores;
    }
    auto id = runtime.Register(*plan, reg);
    CHECK(id.ok());
    ids.push_back(*id);
  }
  return ids;
}

// A batch with failing records completes exactly once, with an error status
// and with the healthy records still scored; a failing single's callback
// also fires exactly once.
void TestErrorCallbackExactlyOnce() {
  AcWorkloadOptions opts;
  opts.num_pipelines = 2;
  opts.featurizer_trees = 8;
  opts.final_trees = 6;
  auto ac = AcWorkload::Generate(opts);

  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  Runtime runtime(&store, ropts);
  auto program = flour.FromPipeline(ac.pipelines()[0]);
  auto id = runtime.Register(*Plan(*program, "ac0"));
  CHECK(id.ok());

  Rng rng(11);
  std::vector<std::string> inputs;
  for (int i = 0; i < 10; ++i) {
    // Records 3, 6, 9 are malformed (too narrow for the pipeline).
    inputs.push_back(i % 3 == 0 && i > 0 ? "1.0,2.0" : ac.SampleInput(rng));
  }
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> fired{0};
  bool done = false;
  Status batch_status;
  size_t batch_size = 0;
  Status st = runtime.PredictBatchAsync(
      *id, inputs,
      [&](Status status, std::span<const float> results) {
        fired.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        batch_status = std::move(status);
        batch_size = results.size();
        done = true;
        cv.notify_one();
      },
      /*max_batch=*/2);
  CHECK(st.ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  // Give any duplicate invocation a window to show up.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  CHECK_EQ(fired.load(), 1);
  CHECK(!batch_status.ok());
  CHECK_EQ(batch_size, inputs.size());

  // Failing async single: callback fires exactly once with the error.
  std::atomic<int> single_fired{0};
  bool single_done = false;
  Status single_status;
  st = runtime.PredictAsync(*id, "nope", [&](Result<float> r) {
    single_fired.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    single_status = r.status();
    single_done = true;
    cv.notify_one();
  });
  CHECK(st.ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return single_done; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  CHECK_EQ(single_fired.load(), 1);
  CHECK(!single_status.ok());

  const RuntimeMetrics m = runtime.GetMetrics();
  CHECK(m.plans[*id].errors >= 4);  // 3 batch records + 1 single.
}

// Round-robin across plan queues: singles enqueued AFTER a huge batch on
// another plan finish long before the batch does.
void TestNoHeadOfLineBlocking() {
  auto sa = SmallSa(2);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 1;  // One executor: interleaving is pure scheduling.
  // No cache: identical batch records must cost real work, or the batch
  // drains too fast for the interleaving assertion to observe anything.
  ropts.subplan_cache_bytes = 0;
  Runtime runtime(&store, ropts);
  auto ids = RegisterAll(runtime, flour, sa, /*reserve_first_cores=*/0);

  Rng rng(21);
  std::vector<std::string> big(5000, sa.SampleInput(rng));
  std::mutex mu;
  std::condition_variable cv;
  bool batch_done = false;
  int64_t batch_done_ns = 0;
  Status st = runtime.PredictBatchAsync(
      ids[0], std::move(big),
      [&](Status status, std::span<const float>) {
        CHECK(status.ok());
        std::lock_guard<std::mutex> lock(mu);
        batch_done_ns = NowNs();
        batch_done = true;
        cv.notify_one();
      },
      /*max_batch=*/64);
  CHECK(st.ok());

  const int kSingles = 40;
  std::atomic<int> singles_left{kSingles};
  std::atomic<int64_t> last_single_ns{0};
  bool singles_done = false;
  for (int i = 0; i < kSingles; ++i) {
    Status s = runtime.PredictAsync(ids[1], sa.SampleInput(rng),
                                    [&](Result<float> r) {
                                      CHECK(r.ok());
                                      last_single_ns.store(NowNs());
                                      if (singles_left.fetch_sub(1) == 1) {
                                        std::lock_guard<std::mutex> lock(mu);
                                        singles_done = true;
                                        cv.notify_one();
                                      }
                                    });
    CHECK(s.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return batch_done && singles_done; });
  }
  // The singles (enqueued second) must complete before the 5000-record
  // batch: they interleave per quantum instead of waiting it out.
  CHECK_MSG(last_single_ns.load() < batch_done_ns,
            "singles finished %.2fms after the batch",
            (last_single_ns.load() - batch_done_ns) / 1e6);

  const RuntimeMetrics m = runtime.GetMetrics();
  CHECK(m.plans[ids[0]].dispatches >= 5000 / 64);  // Chunked, not monolithic.
}

// With the shared pool saturated by batch work, a reserved plan's sync
// predictions are served by its dedicated executor — accounted against the
// reserved queue, never inline, and done while the shared backlog persists.
void TestReservedIsolationUnderSaturation() {
  auto sa = SmallSa(4);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  // No cache: the repeated-input backlog must cost real work so the shared
  // pool stays saturated while the reserved predictions run.
  ropts.subplan_cache_bytes = 0;
  Runtime runtime(&store, ropts);
  auto ids = RegisterAll(runtime, flour, sa, /*reserve_first_cores=*/1);
  CHECK_EQ(runtime.reservations().size(), size_t{1});

  Rng rng(31);
  std::mutex mu;
  std::condition_variable cv;
  int batches_left = 3;
  for (size_t p = 1; p <= 3; ++p) {
    std::vector<std::string> inputs(20000, sa.SampleInput(rng));
    Status st = runtime.PredictBatchAsync(
        ids[p], std::move(inputs),
        [&](Status status, std::span<const float>) {
          CHECK(status.ok());
          std::lock_guard<std::mutex> lock(mu);
          if (--batches_left == 0) {
            cv.notify_one();
          }
        },
        /*max_batch=*/64);
    CHECK(st.ok());
  }

  const int kPredicts = 30;
  for (int i = 0; i < kPredicts; ++i) {
    auto r = runtime.Predict(ids[0], sa.SampleInput(rng));
    CHECK(r.ok());
  }
  // All reserved predictions are done; the shared pool must still be
  // backlogged (the reserved executor did not wait behind it).
  const RuntimeMetrics mid = runtime.GetMetrics();
  size_t shared_backlog = 0;
  for (size_t p = 1; p <= 3; ++p) {
    shared_backlog += mid.plans[ids[p]].queue_depth;
  }
  CHECK_MSG(shared_backlog > 0,
            "shared pool drained before the reserved predicts finished");
  const PlanMetrics& reserved = mid.plans[ids[0]];
  CHECK_EQ(reserved.inline_predictions, uint64_t{0});
  CHECK_EQ(reserved.enqueued_events, uint64_t{kPredicts});
  // Latency samples flush after the waiter wakes, so the newest predict's
  // sample may not have landed yet.
  CHECK(reserved.single_latency_us.count() >= size_t{kPredicts - 1});
  CHECK(reserved.single_latency_us.count() <= size_t{kPredicts});

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return batches_left == 0; });
}

// Backpressure: a per-plan event cap rejects oversized submissions with
// ResourceExhausted and surfaces the drop count in metrics.
void TestRuntimeBackpressure() {
  auto sa = SmallSa(1);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  ropts.max_queued_events_per_plan = 4;
  Runtime runtime(&store, ropts);
  auto ids = RegisterAll(runtime, flour, sa, 0);

  Rng rng(41);
  // 1000 records at max_batch 64 => 16 chunk events > cap 4: rejected whole.
  std::vector<std::string> inputs(1000, sa.SampleInput(rng));
  Status st = runtime.PredictBatchAsync(
      ids[0], std::move(inputs),
      [](Status, std::span<const float>) {
        CHECK_MSG(false, "rejected batch must not invoke its callback");
      },
      64);
  CHECK(st.IsResourceExhausted());
  // The rejection carries a retry-after hint (the plan's queue-delay
  // estimate, floored at 1us so presence is testable).
  CHECK_MSG(st.retry_after_us() >= 1, "rejection carried no retry-after");
  // A small batch still fits.
  auto ok = runtime.PredictBatch(ids[0], {sa.SampleInput(rng)}, 4);
  CHECK(ok.ok());
  const RuntimeMetrics m = runtime.GetMetrics();
  CHECK(m.plans[ids[0]].rejected_events >= 16);
  CHECK(m.plans[ids[0]].queue_delay_ewma_us >= 0);
}

// Deep backlog through a deliberately tiny event ring: every burst spills
// into the segmented overflow chain (Vyukov intrusive MPSC) and every
// callback still fires exactly once, in order per producer. Run under TSan
// in CI.
void TestSegmentedSpillDeepBacklog() {
  auto sa = SmallSa(2);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  ropts.event_ring_capacity = 8;  // Floor value: near-constant spilling.
  Runtime runtime(&store, ropts);
  auto ids = RegisterAll(runtime, flour, sa, /*reserve_first_cores=*/0);

  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 2000;
  std::atomic<size_t> completed{0};
  std::vector<std::array<std::atomic<uint32_t>, kPerProducer>> fired(kProducers);
  for (auto& per_producer : fired) {
    for (auto& f : per_producer) {
      f.store(0);
    }
  }
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(61 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        Status st = runtime.PredictAsync(
            ids[(p + i) % ids.size()], sa.SampleInput(rng),
            [&, p, i](Result<float> r) {
              CHECK(r.ok());
              CHECK_EQ(fired[p][i].exchange(1), uint32_t{0});  // Exactly once.
              completed.fetch_add(1);
            });
        CHECK(st.ok());
        // A mid-stream batch forces chunk events through the same spill.
        if (i % 512 == 0) {
          auto batch = runtime.PredictBatch(
              ids[p % ids.size()],
              std::vector<std::string>(20, sa.SampleInput(rng)), 4);
          CHECK(batch.ok());
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  while (completed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  for (auto& per_producer : fired) {
    for (auto& f : per_producer) {
      CHECK_EQ(f.load(), uint32_t{1});  // None lost in the chain.
    }
  }
}

// FrontEnd admission control: over max_pending in-flight async requests,
// RequestAsync fails fast with ResourceExhausted and counts the drop.
void TestFrontEndBackpressure() {
  struct GatedBackend : Backend {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    Result<float> Predict(const std::string&, const std::string&,
                          int64_t) override {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return open; });
      return 0.5f;
    }
    void Open() {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
      cv.notify_all();
    }
  } backend;

  FrontEndOptions fopts;
  fopts.network_delay_us = 0;
  fopts.num_io_threads = 1;
  fopts.max_pending = 4;
  FrontEnd frontend(&backend, fopts);

  std::mutex mu;
  std::condition_variable cv;
  int completions = 0;
  size_t admitted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    Status st = frontend.RequestAsync("m", "x", [&](Result<float> r) {
      CHECK(r.ok());
      std::lock_guard<std::mutex> lock(mu);
      ++completions;
      cv.notify_one();
    });
    if (st.ok()) {
      ++admitted;
    } else {
      CHECK(st.IsResourceExhausted());
      CHECK_MSG(st.retry_after_us() >= 1,
                "frontend drop carried no retry-after");
      ++rejected;
    }
  }
  CHECK_EQ(admitted, size_t{4});  // Exactly max_pending admitted.
  CHECK_EQ(rejected, size_t{6});
  CHECK_EQ(frontend.dropped(), uint64_t{6});
  backend.Open();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completions == 4; });
}

// Registration races serving: new plans (reserved and not) appear while
// other threads predict sync, async, and batched on existing ones.
void TestRegisterWhilePredicting() {
  auto sa = SmallSa(8);
  ObjectStore store;
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  Runtime runtime(&store, ropts);
  FlourContext flour(&store);
  auto ids = RegisterAll(runtime, flour, sa, 0);

  std::atomic<bool> registering{true};
  std::atomic<size_t> outstanding{0};
  std::thread registrar([&] {
    FlourContext local_flour(&store);
    for (int i = 0; i < 40; ++i) {
      const auto& spec = sa.pipelines()[i % sa.pipelines().size()];
      auto program = local_flour.FromPipeline(spec);
      PlanRegistration reg;
      reg.reserve_cores = i % 8 == 0 ? 1 : 0;
      auto id = runtime.Register(*Plan(*program, spec.name), reg);
      CHECK(id.ok());
      auto r = runtime.Predict(*id, "warm");
      CHECK(r.ok());
    }
    registering.store(false);
  });
  std::thread sync_caller([&] {
    Rng rng(51);
    while (registering.load()) {
      auto r = runtime.Predict(ids[0], sa.SampleInput(rng));
      CHECK(r.ok());
    }
  });
  std::thread async_caller([&] {
    Rng rng(52);
    while (registering.load()) {
      outstanding.fetch_add(1);
      Status st = runtime.PredictAsync(ids[1], sa.SampleInput(rng),
                                       [&](Result<float> r) {
                                         CHECK(r.ok());
                                         outstanding.fetch_sub(1);
                                       });
      CHECK(st.ok());
      auto batch = runtime.PredictBatch(
          ids[2], std::vector<std::string>(6, sa.SampleInput(rng)), 2);
      CHECK(batch.ok());
    }
  });
  registrar.join();
  sync_caller.join();
  async_caller.join();
  while (outstanding.load() > 0) {
    std::this_thread::yield();
  }
  CHECK(runtime.GetMetrics().plans.size() >= size_t{48});
}

}  // namespace

int main() {
  TestErrorCallbackExactlyOnce();
  TestNoHeadOfLineBlocking();
  TestReservedIsolationUnderSaturation();
  TestRuntimeBackpressure();
  TestSegmentedSpillDeepBacklog();
  TestFrontEndBackpressure();
  TestRegisterWhilePredicting();
  std::printf("scheduler_test: PASS\n");
  return 0;
}
