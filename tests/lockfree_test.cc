// Lock-free primitive stress (run under TSan in CI): the bounded MPMC ring
// in both its scheduler roles (MPSC event queue, MPMC runnable rotation),
// the tagged-index Treiber stack under pop/push churn designed to provoke
// ABA, the eventcount's no-lost-wakeup contract, and the pool free lists
// (exactly-once ownership, capacity cap, hit/miss counters).
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/lockfree.h"
#include "src/runtime/exec_context.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

// Encode (producer, sequence) in one value so consumers can verify both
// exactly-once delivery and per-producer FIFO order.
constexpr uint64_t Encode(uint64_t producer, uint64_t seq) {
  return (producer << 32) | seq;
}

// MPSC role: N producers push through a deliberately tiny ring (heavy
// full/retry traffic); one consumer must see every element exactly once and
// each producer's elements in order.
void TestMpscRingExactlyOnceFifo() {
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  BoundedMpmcRing<uint64_t> ring(64);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t value = Encode(p, i);
        while (!ring.TryPush(std::move(value))) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<uint64_t> next_seq(kProducers, 0);
  size_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t value;
    if (!ring.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const uint64_t producer = value >> 32;
    const uint64_t seq = value & 0xFFFFFFFFull;
    CHECK(producer < kProducers);
    CHECK_MSG(seq == next_seq[producer],
              "producer %llu: expected seq %llu, got %llu",
              (unsigned long long)producer,
              (unsigned long long)next_seq[producer], (unsigned long long)seq);
    ++next_seq[producer];
    ++popped;
  }
  for (auto& t : producers) {
    t.join();
  }
  uint64_t leftover;
  CHECK(!ring.TryPop(&leftover));  // Drained exactly.
}

// MPMC role: N producers, M consumers, every element delivered exactly once
// (per-element claim flags catch duplicates, the total catches losses).
void TestMpmcRingExactlyOnce() {
  constexpr size_t kProducers = 3;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 20000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  BoundedMpmcRing<uint64_t> ring(128);
  std::vector<std::atomic<uint8_t>> claimed(kTotal);
  for (auto& c : claimed) {
    c.store(0);
  }
  std::atomic<uint64_t> consumed{0};

  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t value = p * kPerProducer + i;
        while (!ring.TryPush(std::move(value))) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        uint64_t value;
        if (ring.TryPop(&value)) {
          CHECK(value < kTotal);
          CHECK_EQ(claimed[value].exchange(1), uint8_t{0});  // No duplicates.
          consumed.fetch_add(1);
        } else if (consumed.load() >= kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  CHECK_EQ(consumed.load(), kTotal);
}

// Treiber stack churn: threads pop an index, "own" it briefly, push it
// back. Rapid recycle of the same indices is exactly the ABA pattern a
// tagless CAS stack corrupts (lost nodes / double-pops); the claim array
// proves single ownership throughout.
void TestIndexStackAbaChurn() {
  constexpr uint32_t kCapacity = 8;  // Tiny: maximum recycle pressure.
  constexpr int kThreads = 4;
  constexpr int kIterations = 50000;
  IndexStack stack(kCapacity);
  std::vector<std::atomic<uint8_t>> owned(kCapacity);
  for (auto& o : owned) {
    o.store(0);
  }
  for (uint32_t i = 0; i < kCapacity; ++i) {
    stack.Push(i);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        uint32_t idx;
        if (!stack.TryPop(&idx)) {
          std::this_thread::yield();
          continue;
        }
        CHECK(idx < kCapacity);
        CHECK_EQ(owned[idx].exchange(1), uint8_t{0});  // Exactly-once pop.
        owned[idx].store(0);
        stack.Push(idx);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Conservation: every index is back in the stack, each exactly once.
  std::vector<uint8_t> seen(kCapacity, 0);
  uint32_t idx;
  uint32_t count = 0;
  while (stack.TryPop(&idx)) {
    CHECK(idx < kCapacity);
    CHECK_EQ(seen[idx], uint8_t{0});
    seen[idx] = 1;
    ++count;
  }
  CHECK_EQ(count, kCapacity);
}

// Intrusive MPSC chain (the overflow-spill backbone): N producers push
// recycled nodes through the queue, one consumer pops. Exactly-once
// delivery, per-producer FIFO, and clean drain — under node-recycling
// pressure, since the spill reuses segment allocations rapidly. A transient
// nullptr from TryPop while producers are mid-push is part of the contract
// and must never lose a node.
void TestMpscIntrusiveQueueExactlyOnceFifo() {
  struct TestNode : MpscNode {
    uint64_t value = 0;
  };
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 30000;
  constexpr size_t kNodesPerProducer = 8;  // Tiny pool: maximum recycling.
  MpscIntrusiveQueue queue;
  // Per-producer freelists: the consumer hands nodes back through a
  // dedicated return stack (an IndexStack would do, but a simple atomic
  // counter array keeps the test about the queue under test).
  std::vector<std::unique_ptr<TestNode>> nodes(kProducers * kNodesPerProducer);
  for (auto& n : nodes) {
    n = std::make_unique<TestNode>();
  }
  std::vector<std::atomic<uint64_t>> returned(kProducers * kNodesPerProducer);
  for (auto& r : returned) {
    r.store(1);  // 1 = available to its producer.
  }

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      size_t next_node = 0;
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Claim this producer's next node once the consumer returned it.
        const size_t slot = p * kNodesPerProducer + next_node;
        next_node = (next_node + 1) % kNodesPerProducer;
        while (returned[slot].exchange(0) == 0) {
          std::this_thread::yield();
        }
        TestNode* node = nodes[slot].get();
        node->value = Encode(p, i) << 8 | slot;  // Seq + owning slot.
        queue.Push(node);
      }
    });
  }
  std::vector<uint64_t> next_seq(kProducers, 0);
  uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    MpscNode* node = queue.TryPop();
    if (node == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const uint64_t value = static_cast<TestNode*>(node)->value;
    const size_t slot = value & 0xFF;
    const uint64_t producer = (value >> 8) >> 32;
    const uint64_t seq = (value >> 8) & 0xFFFFFFFFull;
    CHECK(producer < kProducers);
    CHECK_MSG(seq == next_seq[producer],
              "producer %llu: expected seq %llu, got %llu",
              (unsigned long long)producer,
              (unsigned long long)next_seq[producer], (unsigned long long)seq);
    ++next_seq[producer];
    ++popped;
    CHECK_EQ(returned[slot].exchange(1), uint64_t{0});  // Exactly-once pop.
  }
  for (auto& t : producers) {
    t.join();
  }
  CHECK(queue.TryPop() == nullptr);  // Drained exactly.
}

// EventCount: a notification between PrepareWait and Wait must not be lost
// (the waiter falls through), and one that precedes PrepareWait is caught
// by the re-check. Ping-pong hard enough that any check-then-sleep hole
// hangs the test.
void TestEventCountNoLostWakeups() {
  constexpr int kRounds = 20000;
  EventCount ec;
  std::atomic<int> value{0};

  std::thread consumer([&] {
    int expected = 1;
    while (expected <= kRounds) {
      for (;;) {
        if (value.load(std::memory_order_seq_cst) >= expected) {
          break;
        }
        const uint64_t ticket = ec.PrepareWait();
        if (value.load(std::memory_order_seq_cst) >= expected) {
          ec.CancelWait();
          break;
        }
        ec.Wait(ticket);
      }
      ++expected;
    }
  });
  for (int i = 1; i <= kRounds; ++i) {
    value.store(i, std::memory_order_seq_cst);
    ec.NotifyOne();
  }
  consumer.join();
  CHECK_EQ(value.load(), kRounds);

  // NotifyAll releases every parked waiter.
  std::atomic<bool> open{false};
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      for (;;) {
        if (open.load(std::memory_order_seq_cst)) {
          break;
        }
        const uint64_t ticket = ec.PrepareWait();
        if (open.load(std::memory_order_seq_cst)) {
          ec.CancelWait();
          break;
        }
        ec.Wait(ticket);
      }
      released.fetch_add(1);
    });
  }
  open.store(true, std::memory_order_seq_cst);
  ec.NotifyAll();
  for (auto& t : waiters) {
    t.join();
  }
  CHECK_EQ(released.load(), 4);

  // WaitUntil times out (returns false) when nobody notifies.
  const uint64_t ticket = ec.PrepareWait();
  CHECK(!ec.WaitUntil(ticket, std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(5)));
}

// VectorPool: concurrent acquire/release round-trips with pooling on; every
// handed-out buffer is distinct, the capacity cap drops oversized buffers,
// and the counters reconcile.
void TestVectorPoolConcurrentAndCapped() {
  VectorPool::Options opts;
  opts.max_cached_floats = 1024;
  VectorPool pool(opts);

  constexpr int kThreads = 4;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIterations; ++i) {
        std::vector<float> v = pool.AcquireFloats(16 + (i & 7));
        v[0] = static_cast<float>(t);
        CHECK_EQ(v[0], static_cast<float>(t));  // Exclusive ownership.
        pool.ReleaseFloats(std::move(v));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  VectorPool::Stats stats = pool.GetStats();
  CHECK_EQ(stats.released, uint64_t{kThreads * kIterations});
  CHECK_EQ(stats.hits + stats.misses, uint64_t{kThreads * kIterations});
  CHECK(stats.hits > 0);   // The free list actually served acquires.
  CHECK(stats.misses > 0); // At least the cold-start allocations.
  CHECK_EQ(stats.dropped_oversized, uint64_t{0});

  // Oversized release is dropped, so the high-water mark doesn't stick: a
  // fresh acquire must not come back with the huge capacity.
  std::vector<float> big = pool.AcquireFloats(4096);
  CHECK(big.capacity() > opts.max_cached_floats ||
        big.capacity() >= 4096);  // (Implementation-defined growth.)
  pool.ReleaseFloats(std::move(big));
  stats = pool.GetStats();
  CHECK_EQ(stats.dropped_oversized, uint64_t{1});
  std::vector<float> after = pool.AcquireFloats(8);
  CHECK(after.capacity() < 4096);
  pool.ReleaseFloats(std::move(after));

  // The no-pooling ablation bypasses the free list entirely.
  VectorPool::Options off;
  off.pooling_enabled = false;
  VectorPool cold(off);
  std::vector<float> v = cold.AcquireFloats(8);
  cold.ReleaseFloats(std::move(v));
  const VectorPool::Stats cold_stats = cold.GetStats();
  CHECK_EQ(cold_stats.hits, uint64_t{0});
  CHECK_EQ(cold_stats.released, uint64_t{0});
}

// ExecContextPool: released contexts recirculate (hits) and each acquire
// holds a distinct context.
void TestExecContextPoolReuse() {
  VectorPool pool;
  ExecContextPool contexts(&pool, /*reuse_enabled=*/true);
  constexpr int kThreads = 4;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&contexts, t] {
      for (int i = 0; i < kIterations; ++i) {
        std::unique_ptr<ExecContext> ctx = contexts.Acquire();
        CHECK(ctx != nullptr);
        ctx->text = std::to_string(t);
        CHECK_EQ(ctx->text, std::to_string(t));  // Exclusive ownership.
        contexts.Release(std::move(ctx));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  CHECK(contexts.hits() > 0);
  CHECK_EQ(contexts.hits() + contexts.misses(),
           uint64_t{kThreads * kIterations});
}

}  // namespace

int main() {
  TestMpscRingExactlyOnceFifo();
  TestMpmcRingExactlyOnce();
  TestMpscIntrusiveQueueExactlyOnceFifo();
  TestIndexStackAbaChurn();
  TestEventCountNoLostWakeups();
  TestVectorPoolConcurrentAndCapped();
  TestExecContextPoolReuse();
  std::printf("lockfree_test: PASS\n");
  return 0;
}
