// Chaos suite: every fault-injection site in src/ armed deterministically,
// with the serving invariants asserted under fire — exactly-once completion,
// bounded in-flight, and recovery to baseline once the fault clears. Built
// only under -DPRETZEL_FAULT_INJECT=ON (CI runs it under ASan and TSan);
// tools/lint_invariants.py enforces that every site named in src/ appears
// here. Sites covered:
//   runtime.ring_full          — enqueue spills to the overflow chain
//   runtime.pool_exhausted     — vector-pool acquires take the miss path
//   runtime.executor_stall     — a quantum stalls before dispatching
//   serving.shard_unresponsive — a shard faults every request it is routed
//   serialize.corrupt_record   — binary records arrive failing validation
//   ops.slow_kernel            — plan execution stalls inside the operator
//   oven.compile_fail          — a versioned deploy's compile blows up
//   store.swap_stall           — version reclamation stalls before draining
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/serving/shard_router.h"
#include "src/workload/ac_workload.h"
#include "src/workload/load_gen.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

#if !defined(PRETZEL_FAULT_INJECT)
#error "chaos_test requires -DPRETZEL_FAULT_INJECT=ON"
#endif

using namespace pretzel;

namespace {

constexpr int64_t kMs = 1'000'000;  // ns

SaWorkload SmallSa(size_t pipelines) {
  SaWorkloadOptions opts;
  opts.num_pipelines = pipelines;
  opts.char_dict_entries = 400;
  opts.word_dict_entries = 120;
  opts.vocabulary_size = 250;
  return SaWorkload::Generate(opts);
}

// One runtime, every SA pipeline registered. Each scenario builds a fresh
// harness AFTER disarming, so construction never runs under fire.
struct Harness {
  explicit Harness(size_t executors, size_t pipelines,
                   RuntimeOptions ropts = {})
      : workload(SmallSa(pipelines)) {
    ropts.num_executors = executors;
    runtime = std::make_unique<Runtime>(&store, ropts);
    FlourContext flour(&store);
    for (const auto& spec : workload.pipelines()) {
      auto program = flour.FromPipeline(spec);
      auto plan = Plan(*program, spec.name);
      CHECK(plan.ok());
      auto id = runtime->Register(*plan);
      CHECK(id.ok());
      ids.push_back(*id);
    }
  }
  SaWorkload workload;
  ObjectStore store;
  std::unique_ptr<Runtime> runtime;
  std::vector<Runtime::PlanId> ids;
};

PlanMetrics MetricsFor(Runtime& runtime, Runtime::PlanId id) {
  for (const PlanMetrics& pm : runtime.GetMetrics().plans) {
    if (pm.plan_id == id) {
      return pm;
    }
  }
  CHECK_MSG(false, "plan %zu has no metrics", id);
  return {};
}

// Completion rendezvous for async scenarios.
struct Waiter {
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  void Signal() {
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    cv.notify_all();
  }
  void Await(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= n; });
  }
};

// The seam itself: for a fixed seed the decision stream is a pure function
// of the hit index, budgets cap fires exactly, and arg filters discriminate.
void TestDeterministicDecisions() {
  fault::DisarmAll();
  const char* kSite = "test.determinism";

  auto run_stream = [&](uint64_t seed) {
    fault::DisarmAll();
    fault::SetSeed(seed);
    fault::Spec spec;
    spec.probability = 0.5;
    fault::Arm(kSite, spec);
    std::vector<bool> decisions;
    for (int i = 0; i < 256; ++i) {
      decisions.push_back(fault::Hit(kSite));
    }
    return decisions;
  };
  const auto first = run_stream(0xC0FFEE);
  const auto second = run_stream(0xC0FFEE);
  CHECK(first == second);  // Same seed, same stream — bit for bit.
  size_t fired = 0;
  for (const bool b : first) {
    fired += b ? 1 : 0;
  }
  // p = 0.5 over 256 draws: 5 sigma is 40 — both tails prove the
  // probability knob is neither stuck-off nor stuck-on.
  CHECK_MSG(fired > 88 && fired < 168, "p=0.5 fired %zu/256 times", fired);
  const auto other_seed = run_stream(0xBADF00D);
  CHECK(first != other_seed);  // The seed actually matters.

  // Budgets are exact: 3 fires out of any number of eligible hits.
  fault::DisarmAll();
  fault::Spec budgeted;
  budgeted.budget = 3;
  fault::Arm(kSite, budgeted);
  size_t granted = 0;
  for (int i = 0; i < 50; ++i) {
    granted += fault::Hit(kSite) ? 1 : 0;
  }
  CHECK_EQ(granted, size_t{3});
  CHECK_EQ(fault::Fires(kSite), uint64_t{3});

  // Arg filters: spec.arg pins the site to one discriminator value.
  fault::DisarmAll();
  fault::Spec pinned;
  pinned.arg = 2;
  fault::Arm(kSite, pinned);
  CHECK(!fault::Hit(kSite, 1));
  CHECK(fault::Hit(kSite, 2));
  fault::DisarmAll();
}

// runtime.ring_full: every ring push refused, so all events take the spill
// chain. Under Zipf-skewed async load every request must still complete
// exactly once with the correct score.
void TestRingFullSpillExactlyOnce() {
  fault::DisarmAll();
  Harness h(2, 4);
  const std::string input = "service was outstanding and the food dreadful";
  std::vector<float> baseline;
  for (const auto id : h.ids) {
    auto r = h.runtime->Predict(id, input);
    CHECK(r.ok());
    baseline.push_back(*r);
  }

  fault::SetSeed(0x51);
  fault::Arm("runtime.ring_full", fault::Spec{});  // p=1: always spill.

  constexpr size_t kRequests = 200;
  const auto models = ZipfModelSequence(h.ids.size(), kRequests, 2.0, 7);
  std::vector<std::atomic<int>> completions(kRequests);
  Waiter waiter;
  for (size_t i = 0; i < kRequests; ++i) {
    const size_t m = models[i];
    const float expect = baseline[m];
    auto status = h.runtime->PredictAsync(
        h.ids[m], input, [&, i, expect](Result<float> r) {
          CHECK(r.ok());
          CHECK_NEAR(*r, expect, 1e-6);
          completions[i].fetch_add(1);
          waiter.Signal();
        });
    CHECK(status.ok());
  }
  waiter.Await(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    CHECK_EQ(completions[i].load(), 1);  // Exactly once, never zero or twice.
  }
  CHECK(fault::Fires("runtime.ring_full") > 0);

  fault::DisarmAll();
  // Recovery: the fast path is back and scores unchanged.
  for (size_t m = 0; m < h.ids.size(); ++m) {
    auto r = h.runtime->Predict(h.ids[m], input);
    CHECK(r.ok());
    CHECK_NEAR(*r, baseline[m], 1e-6);
  }
}

// runtime.pool_exhausted: acquires see an empty free list and take the
// allocation-miss path. Correctness must not depend on the pool; the miss
// counter books every faulted acquire; hits resume after disarm. Uses the
// dense AC family — sparse SA scoring never touches the float pool.
void TestPoolExhaustedMissPath() {
  fault::DisarmAll();
  AcWorkloadOptions aopts;
  aopts.num_pipelines = 1;
  aopts.featurizer_trees = 6;
  aopts.featurizer_depth = 4;
  aopts.final_trees = 4;
  aopts.final_depth = 3;
  auto ac = AcWorkload::Generate(aopts);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 1;
  Runtime runtime(&store, ropts);
  auto program = flour.FromPipeline(ac.pipelines()[0]);
  auto plan = Plan(*program, ac.pipelines()[0].name);
  CHECK(plan.ok());
  auto id = runtime.Register(*plan);
  CHECK(id.ok());

  Rng rng(17);
  const std::string input = ac.SampleInput(rng);
  auto baseline = runtime.Predict(*id, input);
  CHECK(baseline.ok());

  // Pool-level: a released buffer would normally be re-acquired as a hit;
  // under the fault the same acquire takes the miss path, still returning a
  // usable buffer. (End-to-end predicts only reach the pool on cold
  // contexts — warm ExecContexts keep their leased storage — so the site's
  // accounting is pinned here, at the code that actually runs.)
  VectorPool pool{VectorPool::Options{}};
  pool.ReleaseFloats(pool.AcquireFloats(64));
  fault::Arm("runtime.pool_exhausted", fault::Spec{});
  std::vector<float> faulted = pool.AcquireFloats(64);
  CHECK_EQ(faulted.size(), size_t{64});
  CHECK_EQ(pool.GetStats().misses, uint64_t{2});  // Cold miss + faulted miss.
  CHECK_EQ(pool.GetStats().hits, uint64_t{0});
  CHECK(fault::Fires("runtime.pool_exhausted") > 0);

  // End-to-end: scores cannot depend on where buffers come from.
  for (int i = 0; i < 20; ++i) {
    auto r = runtime.Predict(*id, input);
    CHECK(r.ok());
    CHECK_NEAR(*r, *baseline, 1e-6);
  }

  fault::DisarmAll();
  // Recovery: the free list serves again.
  pool.ReleaseFloats(std::move(faulted));
  pool.ReleaseFloats(pool.AcquireFloats(64));
  CHECK(pool.GetStats().hits >= 1);
  CHECK(runtime.Predict(*id, input).ok());
}

// runtime.executor_stall: quanta stall while producers flood one plan with
// a tight queue cap. In-flight work stays bounded by the cap (observed
// queue depth never exceeds it, backpressure rejections occur), and every
// admitted request completes exactly once.
void TestExecutorStallBoundedInFlight() {
  fault::DisarmAll();
  RuntimeOptions ropts;
  ropts.max_queued_events_per_plan = 8;
  Harness h(1, 1, ropts);
  const std::string input = "stalled but never unbounded";
  auto baseline = h.runtime->Predict(h.ids[0], input);
  CHECK(baseline.ok());

  fault::Spec stall;
  stall.latency_us = 2'000;
  stall.budget = 16;  // Long enough to flood against, bounded so we drain.
  fault::Arm("runtime.executor_stall", stall);

  constexpr size_t kFlood = 120;
  std::vector<std::atomic<int>> completions(kFlood);
  Waiter waiter;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t max_observed_depth = 0;
  for (size_t i = 0; i < kFlood; ++i) {
    auto status = h.runtime->PredictAsync(
        h.ids[0], input, [&, i](Result<float> r) {
          CHECK(r.ok());
          completions[i].fetch_add(1);
          waiter.Signal();
        });
    if (status.ok()) {
      ++accepted;
    } else {
      CHECK(status.IsResourceExhausted());  // The only rejection reason.
      CHECK(status.retry_after_us() >= 0);
      ++rejected;
    }
    const size_t depth = MetricsFor(*h.runtime, h.ids[0]).queue_depth;
    max_observed_depth = std::max(max_observed_depth, depth);
  }
  CHECK_MSG(rejected > 0, "flood of %zu never hit the cap", kFlood);
  CHECK_EQ(accepted + rejected, kFlood);
  CHECK_MSG(max_observed_depth <= ropts.max_queued_events_per_plan,
            "queue depth reached %zu with cap %zu", max_observed_depth,
            ropts.max_queued_events_per_plan);
  waiter.Await(accepted);
  for (size_t i = 0; i < kFlood; ++i) {
    CHECK(completions[i].load() <= 1);  // Rejected requests never complete,
  }
  size_t total = 0;  // admitted ones complete exactly once.
  for (size_t i = 0; i < kFlood; ++i) {
    total += static_cast<size_t>(completions[i].load());
  }
  CHECK_EQ(total, accepted);
  CHECK(fault::Fires("runtime.executor_stall") > 0);

  fault::DisarmAll();
  auto r = h.runtime->Predict(h.ids[0], input);
  CHECK(r.ok());
  CHECK_NEAR(*r, *baseline, 1e-6);
}

// serving.shard_unresponsive: one shard faults every routed request. The
// breaker trips after the failure threshold, the hot plan fails over to a
// healthy shard (bounded by the migration budget), open-circuit requests
// fail fast with a retry hint — and once the fault clears, half-open
// probes close the breaker again.
void TestShardBreakerTripFailoverRecover() {
  fault::DisarmAll();
  ShardRouterOptions sopts;
  sopts.num_shards = 3;
  sopts.runtime.num_executors = 1;
  sopts.breaker.failure_threshold = 3;
  sopts.breaker.cooldown_us = 50'000;
  sopts.breaker.probe_quota = 2;
  sopts.max_failover_placements = 1;  // Only the first victim migrates.
  ShardRouter router(sopts);
  auto sa = SmallSa(9);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const std::string input = "unresponsive shard, responsive system";
  // Pick two plans on the same shard: one to migrate, one to ride out the
  // outage in place.
  const size_t sick = router.Placement(sa.pipelines()[0].name)->shard;
  std::string mover = sa.pipelines()[0].name;
  std::string stayer;
  for (const auto& spec : sa.pipelines()) {
    if (spec.name != mover && router.Placement(spec.name)->shard == sick) {
      stayer = spec.name;
      break;
    }
  }
  CHECK_MSG(!stayer.empty(), "no second plan landed on shard %zu", sick);

  fault::Spec down;
  down.latency_us = 100;
  down.arg = static_cast<int64_t>(sick);
  fault::Arm("serving.shard_unresponsive", down);

  // Failures accumulate until the breaker trips...
  for (size_t i = 0; i < sopts.breaker.failure_threshold; ++i) {
    auto r = router.Predict(mover, input);
    CHECK(!r.ok());
    CHECK_EQ(static_cast<int>(r.status().code()),
             static_cast<int>(StatusCode::kError));
  }
  CHECK(router.breaker(sick).state() == CircuitBreaker::State::kOpen);
  // ...then the next request fails over and succeeds on a healthy shard.
  auto moved = router.Predict(mover, input);
  CHECK(moved.ok());
  CHECK(router.Placement(mover)->shard != sick);
  // The migration budget is spent: the stayer fails fast (no 100us stall,
  // no executor touched) with a retry hint, instead of failing over too.
  auto fast_fail = router.Predict(stayer, input);
  CHECK(!fast_fail.ok());
  CHECK(fast_fail.status().IsResourceExhausted());
  CHECK(fast_fail.status().retry_after_us() > 0);
  CHECK_EQ(router.Placement(stayer)->shard, sick);

  const auto metrics = router.GetMetrics();
  const auto& sick_health = metrics.shard_health[sick];
  CHECK(sick_health.errors >= sopts.breaker.failure_threshold);
  CHECK(sick_health.trips >= 1);
  CHECK_EQ(sick_health.failovers, uint64_t{1});
  CHECK(sick_health.rejected >= 1);
  CHECK(sick_health.failure_ewma > 0.0);
  CHECK(fault::Fires("serving.shard_unresponsive") >=
        sopts.breaker.failure_threshold);

  // Recovery: fault cleared, cooldown elapsed — half-open probes succeed
  // and close the breaker; the stayer serves from its original shard.
  fault::DisarmAll();
  SleepUs(static_cast<int64_t>(sopts.breaker.cooldown_us) + 10'000);
  for (int i = 0; i < 8 &&
                  router.breaker(sick).state() != CircuitBreaker::State::kClosed;
       ++i) {
    auto probe = router.Predict(stayer, input);
    CHECK(probe.ok());  // The shard was only fault-sick, never broken.
  }
  CHECK(router.breaker(sick).state() == CircuitBreaker::State::kClosed);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Predict(spec.name, input).ok());
  }
}

// serialize.corrupt_record: binary records fail validation at parse. The
// rejection is InvalidArgument — a caller-visible data error that must NOT
// feed the breaker (a poisoned client would otherwise take the shard down
// for everyone) — and clean records parse again once the budget is spent.
void TestCorruptRecordRejectedWithoutTrip() {
  fault::DisarmAll();
  ShardRouterOptions sopts;
  sopts.num_shards = 1;
  sopts.runtime.num_executors = 1;
  ShardRouter router(sopts);
  auto sa = SmallSa(1);
  CHECK(router.Place(sa.pipelines()[0]).ok());
  const std::string& name = sa.pipelines()[0].name;

  Rng rng(99);
  const std::string record = sa.SampleInput(rng, WireFormat::kBinary, 0);
  auto as_span = [&record] {
    return std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(record.data()), record.size());
  };
  auto baseline = router.PredictBinary(name, as_span());
  CHECK(baseline.ok());

  fault::Spec corrupt;
  corrupt.budget = 2;
  fault::Arm("serialize.corrupt_record", corrupt);
  for (int i = 0; i < 2; ++i) {
    auto r = router.PredictBinary(name, as_span());
    CHECK(!r.ok());
    CHECK_EQ(static_cast<int>(r.status().code()),
             static_cast<int>(StatusCode::kInvalidArgument));
  }
  // Budget spent: the same bytes parse clean again (it was never the data).
  auto after = router.PredictBinary(name, as_span());
  CHECK(after.ok());
  CHECK_NEAR(*after, *baseline, 1e-6);
  CHECK_EQ(fault::Fires("serialize.corrupt_record"), uint64_t{2});

  // Caller errors are not shard faults: breaker closed, zero errors booked.
  const auto health = router.GetMetrics().shard_health[0];
  CHECK(health.breaker_state == CircuitBreaker::State::kClosed);
  CHECK_EQ(health.errors, uint64_t{0});
  CHECK_EQ(health.trips, uint64_t{0});
  fault::DisarmAll();
}

// ops.slow_kernel: execution stalls inside the operator. A deadlined batch
// loses its remaining quanta (expired records, DeadlineExceeded), while an
// undeadlined request just runs slow — and the same batch fits its budget
// again once the stall clears.
void TestSlowKernelExpiresQuanta() {
  fault::DisarmAll();
  Harness h(1, 1);
  const std::string input = "slow is fine, late is not";
  auto baseline = h.runtime->Predict(h.ids[0], input);
  CHECK(baseline.ok());

  fault::Spec slow;
  slow.latency_us = 30'000;
  fault::Arm("ops.slow_kernel", slow);

  // No deadline: slow but correct.
  auto slow_ok = h.runtime->Predict(h.ids[0], input);
  CHECK(slow_ok.ok());
  CHECK_NEAR(*slow_ok, *baseline, 1e-6);

  // Deadlined batch, max_batch=1: the first 30ms quantum eats the 10ms
  // budget, so the later records expire between quanta.
  const std::vector<std::string> inputs(4, input);
  Waiter waiter;
  Status batch_status;
  size_t scores_seen = 0;
  auto cb = [&](Status status, std::span<const float> scores) {
    batch_status = status;
    scores_seen = scores.size();
    waiter.Signal();
  };
  CHECK(h.runtime
            ->PredictBatchAsync(h.ids[0], inputs, cb, /*max_batch=*/1,
                                NowNs() + 10 * kMs)
            .ok());
  waiter.Await(1);
  CHECK(batch_status.IsDeadlineExceeded());
  CHECK_EQ(scores_seen, inputs.size());
  CHECK(MetricsFor(*h.runtime, h.ids[0]).expired_quantum >= 1);
  CHECK(fault::Fires("ops.slow_kernel") > 0);

  fault::DisarmAll();
  // Recovery: the identical deadlined batch now completes in budget.
  Waiter again;
  Status healthy_status = Status::Error("unset");
  auto cb2 = [&](Status status, std::span<const float>) {
    healthy_status = status;
    again.Signal();
  };
  CHECK(h.runtime
            ->PredictBatchAsync(h.ids[0], inputs, cb2, /*max_batch=*/1,
                                NowNs() + 200 * kMs)
            .ok());
  again.Await(1);
  CHECK(healthy_status.ok());
}

// oven.compile_fail under a flash crowd: versioned deploys blow up in the
// Oven while predictors hammer the plan. Every failed Deploy must surface
// as a clean error with the live version untouched — zero dropped requests,
// zero torn scores, ObjectStore bytes exactly where they started (the
// aborted compile's intern pins are unwound) — and once the fault budget is
// spent, the SAME deploy succeeds and promotes under the same load.
void TestCompileFailDeployKeepsServing() {
  fault::DisarmAll();
  ShardRouterOptions sopts;
  sopts.num_shards = 2;
  sopts.runtime.num_executors = 1;
  sopts.rollout.canary_fraction_bp = 5000;
  ShardRouter router(sopts);
  auto sa = SmallSa(4);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const PipelineSpec& target = sa.pipelines()[0];
  Rng rng(41);
  std::vector<std::string> inputs;
  std::vector<float> expected;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(sa.SampleInput(rng));
    auto score = router.Predict(target.name, inputs.back());
    CHECK(score.ok());
    expected.push_back(*score);
  }
  const size_t baseline_bytes = router.GetMetrics().store_bytes;

  // The flash crowd: requests must keep completing, exactly scored, across
  // every failed deploy and through the eventual promote.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> crowd_ok{0};
  std::vector<std::thread> crowd;
  for (int t = 0; t < 3; ++t) {
    crowd.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t which = (static_cast<size_t>(t) + i++) % inputs.size();
        auto got = router.Predict(target.name, inputs[which]);
        CHECK(got.ok());  // Zero dropped requests, ever.
        CHECK_EQ(*got, expected[which]);
        crowd_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  fault::SetSeed(0x5EED);
  fault::Spec boom;
  boom.budget = 3;
  fault::Arm("oven.compile_fail", boom);
  for (int i = 0; i < 3; ++i) {
    auto failed = router.Deploy(target);
    CHECK(!failed.ok());
    CHECK_EQ(static_cast<int>(failed.status().code()),
             static_cast<int>(StatusCode::kError));
    auto info = router.VersionInfo(target.name);
    CHECK(info.ok());
    CHECK(!info->rollout_in_flight);  // The blown deploy left no residue...
    CHECK_EQ(info->active_version, uint64_t{1});  // ...and the live version
  }                                               // never moved.
  CHECK_EQ(fault::Fires("oven.compile_fail"), uint64_t{3});
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);  // Pins unwound.

  // Budget spent: the identical deploy now lands and promotes under load.
  auto deployed = router.Deploy(target);
  CHECK(deployed.ok());
  CHECK(router.Promote(target.name).ok());
  const uint64_t before_settle = crowd_ok.load(std::memory_order_relaxed);
  while (crowd_ok.load(std::memory_order_relaxed) < before_settle + 50) {
    std::this_thread::yield();  // The crowd keeps scoring on the new version.
  }
  stop.store(true);
  for (auto& thread : crowd) {
    thread.join();
  }
  auto info = router.VersionInfo(target.name);
  CHECK_EQ(info->active_version, *deployed);
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);
  CHECK_EQ(router.GetMetrics().deploys, uint64_t{1});  // Failures don't count.
  fault::DisarmAll();
}

// Health-gated auto-rollback: a canary whose shard faults every request it
// serves must be killed by the rollout controller — from the data path,
// with no operator in the loop. The kill switch fires once the canary's
// failure EWMA crosses the gate with enough routed signal, the rollout is
// reclaimed, and the stable version is still version 1 when the dust
// settles.
void TestCanaryAutoRollbackOnFaults() {
  fault::DisarmAll();
  ShardRouterOptions sopts;
  sopts.num_shards = 1;
  sopts.runtime.num_executors = 1;
  sopts.rollout.canary_fraction_bp = 5000;
  sopts.rollout.min_canary_requests = 8;
  // Keep the breaker out of the story: this scenario is about the VERSION
  // health gate, not the shard one.
  sopts.breaker.failure_threshold = 100000;
  ShardRouter router(sopts);
  auto sa = SmallSa(2);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const PipelineSpec& target = sa.pipelines()[0];
  Rng rng(47);
  const std::string input = sa.SampleInput(rng);
  auto baseline = router.Predict(target.name, input);
  CHECK(baseline.ok());
  CHECK(router.Deploy(target).ok());

  fault::Spec down;
  down.latency_us = 50;
  fault::Arm("serving.shard_unresponsive", down);

  // Drive faulting traffic until the controller pulls the canary. Every
  // request errors (the whole shard is sick) — what matters is that the
  // canary's share of them trips the version gate.
  bool rolled_back = false;
  for (int i = 0; i < 400 && !rolled_back; ++i) {
    auto r = router.Predict(target.name, input);
    CHECK(!r.ok());
    rolled_back = !router.VersionInfo(target.name)->rollout_in_flight;
  }
  CHECK_MSG(rolled_back, "400 faulted requests never tripped the rollback");
  const auto metrics = router.GetMetrics();
  CHECK_EQ(metrics.auto_rollbacks, uint64_t{1});
  CHECK_EQ(metrics.rollbacks, uint64_t{1});
  auto info = router.VersionInfo(target.name);
  CHECK_EQ(info->active_version, uint64_t{1});  // Stable never moved.

  // Fault cleared: version 1 serves, scored exactly as before the deploy.
  fault::DisarmAll();
  auto after = router.Predict(target.name, input);
  CHECK(after.ok());
  CHECK_EQ(*after, *baseline);
}

// store.swap_stall: version reclamation stalls at the head of the epoch
// sweep. The stall must be CONTROL-PLANE ONLY — Promote blocks, but the
// data path keeps serving the already-published new version the whole time
// (the table swap happens before reclamation starts), and the retired
// version's bytes still leave the process once the stall clears.
void TestSwapStallServesThrough() {
  fault::DisarmAll();
  ShardRouterOptions sopts;
  sopts.num_shards = 1;
  sopts.runtime.num_executors = 1;
  sopts.rollout.canary_fraction_bp = 0;  // Dark deploy: promote is the swap.
  ShardRouter router(sopts);
  auto sa = SmallSa(2);
  for (const auto& spec : sa.pipelines()) {
    CHECK(router.Place(spec).ok());
  }
  const PipelineSpec& target = sa.pipelines()[0];
  Rng rng(43);
  const std::string input = sa.SampleInput(rng);
  auto baseline = router.Predict(target.name, input);
  CHECK(baseline.ok());
  const size_t baseline_bytes = router.GetMetrics().store_bytes;
  CHECK(router.Deploy(target).ok());

  fault::Spec stall;
  stall.latency_us = 100'000;
  stall.budget = 1;
  fault::Arm("store.swap_stall", stall);

  std::atomic<bool> promoted{false};
  std::thread promote([&] {
    CHECK(router.Promote(target.name).ok());
    promoted.store(true, std::memory_order_release);
  });
  // While the promote thread sits in the injected reclamation stall, the
  // data path must not miss a beat: predictions flow against the new
  // version with no lock, no stall, no error.
  uint64_t served_during_stall = 0;
  while (!promoted.load(std::memory_order_acquire)) {
    auto got = router.Predict(target.name, input);
    CHECK(got.ok());
    CHECK_EQ(*got, *baseline);  // Same spec, same score: never torn.
    ++served_during_stall;
  }
  promote.join();
  CHECK_MSG(served_during_stall >= 20,
            "only %llu predicts completed during a 100ms reclamation stall",
            static_cast<unsigned long long>(served_during_stall));
  CHECK_EQ(fault::Fires("store.swap_stall"), uint64_t{1});
  // The stalled reclamation still completed: old version gone, bytes back.
  CHECK_EQ(router.GetMetrics().store_bytes, baseline_bytes);
  CHECK_EQ(router.VersionInfo(target.name)->active_version, uint64_t{2});
  CHECK(router.Predict(target.name, input).ok());
  fault::DisarmAll();
}

}  // namespace

int main() {
  TestDeterministicDecisions();
  std::printf("TestDeterministicDecisions: PASS\n");
  TestRingFullSpillExactlyOnce();
  std::printf("TestRingFullSpillExactlyOnce: PASS\n");
  TestPoolExhaustedMissPath();
  std::printf("TestPoolExhaustedMissPath: PASS\n");
  TestExecutorStallBoundedInFlight();
  std::printf("TestExecutorStallBoundedInFlight: PASS\n");
  TestShardBreakerTripFailoverRecover();
  std::printf("TestShardBreakerTripFailoverRecover: PASS\n");
  TestCorruptRecordRejectedWithoutTrip();
  std::printf("TestCorruptRecordRejectedWithoutTrip: PASS\n");
  TestSlowKernelExpiresQuanta();
  std::printf("TestSlowKernelExpiresQuanta: PASS\n");
  TestCompileFailDeployKeepsServing();
  std::printf("TestCompileFailDeployKeepsServing: PASS\n");
  TestCanaryAutoRollbackOnFaults();
  std::printf("TestCanaryAutoRollbackOnFaults: PASS\n");
  TestSwapStallServesThrough();
  std::printf("TestSwapStallServesThrough: PASS\n");
  return 0;
}
