// ObjectStore interning + model image round-trips: dedup on/off, checksum
// stability across serialize/deserialize, and cross-pipeline sharing.
#include "src/store/object_store.h"

#include "src/store/model_loader.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

SaWorkload SmallSa(size_t pipelines) {
  SaWorkloadOptions opts;
  opts.num_pipelines = pipelines;
  opts.char_dict_entries = 500;
  opts.word_dict_entries = 150;
  opts.vocabulary_size = 300;
  return SaWorkload::Generate(opts);
}

void TestInterning() {
  auto sa = SmallSa(8);
  ObjectStore store;
  // Pipelines 0 and 7 share the char dict (7 versions, i % 7).
  auto a = store.Intern(sa.pipelines()[0].nodes[1].params);
  const size_t bytes_after_one = store.TotalBytes();
  auto b = store.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK(a.get() == b.get());
  CHECK_EQ(store.TotalBytes(), bytes_after_one);  // No double count.
  CHECK_EQ(store.GetStats().hits, uint64_t{1});

  // Linear weights are unique per pipeline: both stay resident.
  store.Intern(sa.pipelines()[0].nodes[4].params);
  const size_t with_one_linear = store.TotalBytes();
  store.Intern(sa.pipelines()[1].nodes[4].params);
  CHECK(store.TotalBytes() > with_one_linear);

  // Dedup off: same content, two residents.
  ObjectStore::Options no_dedup;
  no_dedup.dedup_enabled = false;
  ObjectStore private_store(no_dedup);
  auto p1 = private_store.Intern(sa.pipelines()[0].nodes[1].params);
  auto p2 = private_store.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK_EQ(private_store.NumObjects(), size_t{2});
  CHECK(private_store.Lookup(p1->ContentChecksum()) == nullptr);
  (void)p2;
}

void TestImageRoundTrip() {
  auto sa = SmallSa(2);
  const PipelineSpec& spec = sa.pipelines()[0];
  const std::string image = SaveModelImage(spec);

  // Black-box path: full deserialization, checksums preserved.
  auto loaded = LoadModelImage(image);
  CHECK(loaded.ok());
  CHECK(loaded->name == spec.name);
  CHECK_EQ(loaded->nodes.size(), spec.nodes.size());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    CHECK_EQ(loaded->nodes[i].params->ContentChecksum(),
             spec.nodes[i].params->ContentChecksum());
    CHECK(loaded->nodes[i].params.get() != spec.nodes[i].params.get());
  }

  // Corrupt magic rejected.
  std::string bad = image;
  bad[0] = 'X';
  CHECK(!LoadModelImage(bad).ok());
}

void TestStoreSharing() {
  // Enough pipelines that dictionary versions (7 char / 6 word) are heavily
  // reused; sharing is invisible when pipelines ~ versions.
  auto sa = SmallSa(40);
  ObjectStore store;
  // Loading pipelines 0 and 7 (same char dict version) through the store
  // must share the dictionary object.
  auto s0 = LoadModelImageWithStore(SaveModelImage(sa.pipelines()[0]), &store);
  const size_t bytes_one = store.TotalBytes();
  auto s7 = LoadModelImageWithStore(SaveModelImage(sa.pipelines()[7]), &store);
  CHECK(s0.ok() && s7.ok());
  CHECK(s0->nodes[1].params.get() == s7->nodes[1].params.get());
  // Only pipeline 7's unique pieces grew the store: its linear weights and
  // its word dict version (7 % 6 = 1, different from pipeline 0's), but NOT
  // the shared char dict.
  const size_t linear_bytes = sa.pipelines()[7].nodes[4].params->HeapBytes();
  const size_t word_bytes = sa.pipelines()[7].nodes[2].params->HeapBytes();
  CHECK(store.TotalBytes() <= bytes_one + linear_bytes + word_bytes + 64);

  // Suite-wide: resident bytes far below the sum of private copies.
  size_t private_sum = 0;
  for (const auto& spec : sa.pipelines()) {
    private_sum += spec.ParameterBytes();
    (void)LoadModelImageWithStore(SaveModelImage(spec), &store);
  }
  CHECK_MSG(store.TotalBytes() * 2 < private_sum,
            "store %zu vs private %zu", store.TotalBytes(), private_sum);
}

int main() {
  TestInterning();
  TestImageRoundTrip();
  TestStoreSharing();
  std::printf("object_store_test: PASS\n");
  return 0;
}
