// ObjectStore interning + model image round-trips: dedup on/off, checksum
// stability across serialize/deserialize, and cross-pipeline sharing.
#include "src/store/object_store.h"

#include "src/store/model_loader.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

SaWorkload SmallSa(size_t pipelines) {
  SaWorkloadOptions opts;
  opts.num_pipelines = pipelines;
  opts.char_dict_entries = 500;
  opts.word_dict_entries = 150;
  opts.vocabulary_size = 300;
  return SaWorkload::Generate(opts);
}

void TestInterning() {
  auto sa = SmallSa(8);
  ObjectStore store;
  // Pipelines 0 and 7 share the char dict (7 versions, i % 7).
  auto a = store.Intern(sa.pipelines()[0].nodes[1].params);
  const size_t bytes_after_one = store.TotalBytes();
  auto b = store.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK(a.get() == b.get());
  CHECK_EQ(store.TotalBytes(), bytes_after_one);  // No double count.
  CHECK_EQ(store.GetStats().hits, uint64_t{1});

  // Linear weights are unique per pipeline: both stay resident.
  store.Intern(sa.pipelines()[0].nodes[4].params);
  const size_t with_one_linear = store.TotalBytes();
  store.Intern(sa.pipelines()[1].nodes[4].params);
  CHECK(store.TotalBytes() > with_one_linear);

  // Dedup off: same content, two residents.
  ObjectStore::Options no_dedup;
  no_dedup.dedup_enabled = false;
  ObjectStore private_store(no_dedup);
  auto p1 = private_store.Intern(sa.pipelines()[0].nodes[1].params);
  auto p2 = private_store.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK_EQ(private_store.NumObjects(), size_t{2});
  CHECK(private_store.Lookup(p1->ContentChecksum()) == nullptr);
  (void)p2;
}

void TestImageRoundTrip() {
  auto sa = SmallSa(2);
  const PipelineSpec& spec = sa.pipelines()[0];
  const std::string image = SaveModelImage(spec);

  // Black-box path: full deserialization, checksums preserved.
  auto loaded = LoadModelImage(image);
  CHECK(loaded.ok());
  CHECK(loaded->name == spec.name);
  CHECK_EQ(loaded->nodes.size(), spec.nodes.size());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    CHECK_EQ(loaded->nodes[i].params->ContentChecksum(),
             spec.nodes[i].params->ContentChecksum());
    CHECK(loaded->nodes[i].params.get() != spec.nodes[i].params.get());
  }

  // Corrupt magic rejected.
  std::string bad = image;
  bad[0] = 'X';
  CHECK(!LoadModelImage(bad).ok());
}

void TestStoreSharing() {
  // Enough pipelines that dictionary versions (7 char / 6 word) are heavily
  // reused; sharing is invisible when pipelines ~ versions.
  auto sa = SmallSa(40);
  ObjectStore store;
  // Loading pipelines 0 and 7 (same char dict version) through the store
  // must share the dictionary object.
  auto s0 = LoadModelImageWithStore(SaveModelImage(sa.pipelines()[0]), &store);
  const size_t bytes_one = store.TotalBytes();
  auto s7 = LoadModelImageWithStore(SaveModelImage(sa.pipelines()[7]), &store);
  CHECK(s0.ok() && s7.ok());
  CHECK(s0->nodes[1].params.get() == s7->nodes[1].params.get());
  // Only pipeline 7's unique pieces grew the store: its linear weights and
  // its word dict version (7 % 6 = 1, different from pipeline 0's), but NOT
  // the shared char dict.
  const size_t linear_bytes = sa.pipelines()[7].nodes[4].params->HeapBytes();
  const size_t word_bytes = sa.pipelines()[7].nodes[2].params->HeapBytes();
  CHECK(store.TotalBytes() <= bytes_one + linear_bytes + word_bytes + 64);

  // Suite-wide: resident bytes far below the sum of private copies.
  size_t private_sum = 0;
  for (const auto& spec : sa.pipelines()) {
    private_sum += spec.ParameterBytes();
    (void)LoadModelImageWithStore(SaveModelImage(spec), &store);
  }
  CHECK_MSG(store.TotalBytes() * 2 < private_sum,
            "store %zu vs private %zu", store.TotalBytes(), private_sum);
}

void TestReleaseAndSweep() {
  auto sa = SmallSa(8);
  ObjectStore store;
  // Two interns of the same content = one resident object with two pins:
  // the first Release must NOT make it sweepable.
  auto shared = sa.pipelines()[0].nodes[1].params;  // == pipeline 7's dict.
  store.Intern(shared);
  store.Intern(sa.pipelines()[7].nodes[1].params);
  const uint64_t ck = shared->ContentChecksum();
  const size_t bytes = store.TotalBytes();
  CHECK(store.Release(ck));
  CHECK_EQ(store.Sweep(), size_t{0});  // One pin left: nothing reclaimed.
  CHECK_EQ(store.TotalBytes(), bytes);
  // Zero pins: entry stays resident until Sweep (a rolled-back canary can
  // re-pin with a plain Intern hit), then its bytes leave the accounting.
  CHECK(store.Release(ck));
  CHECK_EQ(store.TotalBytes(), bytes);
  CHECK(store.Lookup(ck) != nullptr);
  // Re-pin before the sweep: the blob never left, Intern is a hit.
  const uint64_t hits_before = store.GetStats().hits;
  store.Intern(shared);
  CHECK_EQ(store.GetStats().hits, hits_before + 1);
  CHECK(store.Release(ck));
  const size_t reclaimed = store.Sweep();
  CHECK_EQ(reclaimed, shared->HeapBytes());
  CHECK_EQ(store.TotalBytes(), size_t{0});
  CHECK_EQ(store.NumObjects(), size_t{0});
  CHECK(store.Lookup(ck) == nullptr);
  CHECK(!store.Release(ck));  // Swept: nothing to release.
  CHECK_EQ(store.GetStats().swept, uint64_t{1});

  // Dedup off: no pins — each Release erases one private copy outright.
  ObjectStore::Options no_dedup;
  no_dedup.dedup_enabled = false;
  ObjectStore private_store(no_dedup);
  private_store.Intern(shared);
  private_store.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK_EQ(private_store.NumObjects(), size_t{2});
  CHECK(private_store.Release(ck));
  CHECK_EQ(private_store.NumObjects(), size_t{1});
  CHECK_EQ(private_store.Sweep(), size_t{0});  // Pinless copies never sweep.
  CHECK(private_store.Release(ck));
  CHECK(!private_store.Release(ck));
  CHECK_EQ(private_store.NumObjects(), size_t{0});
}

void TestSegmentReleaseDelegation() {
  // Segment-with-parent accounting across the full pin lifecycle: the pin
  // lives where the canonical object lives (the parent); the segment books
  // its local traffic. Mirrors the router's global intern scope, where a
  // version deployed through shard A's segment must leave the process even
  // when swept through shard B's.
  auto sa = SmallSa(8);
  ObjectStore parent;
  ObjectStore seg_a(ObjectStore::Options{}, &parent);
  ObjectStore seg_b(ObjectStore::Options{}, &parent);
  auto dict = sa.pipelines()[0].nodes[1].params;
  const uint64_t ck = dict->ContentChecksum();
  auto a = seg_a.Intern(dict);
  auto b = seg_b.Intern(sa.pipelines()[7].nodes[1].params);
  CHECK(a.get() == b.get());  // One canonical copy, parent-resident.
  // Delegating segments hold nothing; the parent counts one object.
  CHECK_EQ(seg_a.NumObjects(), size_t{0});
  CHECK_EQ(seg_a.TotalBytes(), size_t{0});
  CHECK_EQ(parent.NumObjects(), size_t{1});
  CHECK_EQ(parent.TotalBytes(), dict->HeapBytes());
  // Release through EITHER segment drops a parent pin; local stats book
  // where the release came from.
  CHECK(seg_b.Release(ck));
  CHECK_EQ(seg_b.GetStats().releases, uint64_t{1});
  CHECK_EQ(seg_a.GetStats().releases, uint64_t{0});
  CHECK_EQ(seg_a.Sweep(), size_t{0});  // seg_a's pin still held.
  CHECK_EQ(parent.NumObjects(), size_t{1});
  CHECK(seg_a.Release(ck));
  // Sweep through a segment delegates to the parent and reclaims there.
  CHECK_EQ(seg_b.Sweep(), dict->HeapBytes());
  CHECK_EQ(parent.NumObjects(), size_t{0});
  CHECK_EQ(parent.TotalBytes(), size_t{0});
  CHECK_EQ(parent.GetStats().swept, uint64_t{1});
}

int main() {
  TestInterning();
  TestImageRoundTrip();
  TestStoreSharing();
  TestReleaseAndSweep();
  TestSegmentReleaseDelegation();
  std::printf("object_store_test: PASS\n");
  return 0;
}
