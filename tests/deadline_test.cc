// Deadline propagation through the serving stack: already-expired work is
// refused at admission, queued singles expire at dispatch, batch chunks
// expire between quanta (with per-record attribution), and the binary
// framed-batch path honors the same budget. A deadline that fits changes
// nothing about the scores.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

constexpr int64_t kMs = 1'000'000;  // ns

PlanMetrics MetricsFor(Runtime& runtime, Runtime::PlanId id) {
  for (const PlanMetrics& pm : runtime.GetMetrics().plans) {
    if (pm.plan_id == id) {
      return pm;
    }
  }
  CHECK_MSG(false, "plan %zu has no metrics", id);
  return {};
}

// A small deterministic serving setup: SA pipelines, shared store/runtime.
struct Harness {
  explicit Harness(size_t executors, size_t pipelines = 2) {
    SaWorkloadOptions opts;
    opts.num_pipelines = pipelines;
    opts.char_dict_entries = 400;
    opts.word_dict_entries = 120;
    opts.vocabulary_size = 250;
    workload = SaWorkload::Generate(opts);
    RuntimeOptions ropts;
    ropts.num_executors = executors;
    runtime = std::make_unique<Runtime>(&store, ropts);
    FlourContext flour(&store);
    for (const auto& spec : workload.pipelines()) {
      auto program = flour.FromPipeline(spec);
      auto plan = Plan(*program, spec.name);
      CHECK(plan.ok());
      auto id = runtime->Register(*plan);
      CHECK(id.ok());
      ids.push_back(*id);
    }
  }
  SaWorkload workload;
  ObjectStore store;
  std::unique_ptr<Runtime> runtime;
  std::vector<Runtime::PlanId> ids;
};

// Edge case 1: a deadline already in the past is refused at every admission
// point — before any execution, queueing, or callback scheduling.
void TestExpiredAtAdmission() {
  Harness h(/*executors=*/2);
  Rng rng(11);
  const std::string input = h.workload.SampleInput(rng);
  const int64_t past = NowNs() - 5 * kMs;

  // Sync single (inline fast path).
  auto singleton = h.runtime->Predict(h.ids[0], input, past);
  CHECK(!singleton.ok());
  CHECK(singleton.status().IsDeadlineExceeded());
  CHECK(singleton.status().message().find("at admission") != std::string::npos);

  // Async single: rejected synchronously, the callback never runs.
  std::atomic<int> fired{0};
  Status submitted = h.runtime->PredictAsync(
      h.ids[0], input, [&](Result<float>) { fired.fetch_add(1); }, past);
  CHECK(!submitted.ok());
  CHECK(submitted.IsDeadlineExceeded());

  // Batch: the whole batch is refused and counted per record.
  std::vector<std::string> inputs(6, input);
  auto batch = h.runtime->PredictBatch(h.ids[0], inputs, 3, past);
  CHECK(!batch.ok());
  CHECK(batch.status().IsDeadlineExceeded());

  SleepUs(20'000);  // Nothing should fire late.
  CHECK_EQ(fired.load(), 0);
  const PlanMetrics pm = MetricsFor(*h.runtime, h.ids[0]);
  CHECK(pm.expired_admission >= 1 + 1 + 6);
  CHECK_EQ(pm.errors, uint64_t{0});  // Expiry is not an execution error.
}

// Blocks the sole executor for `hold_us` by parking it inside an async
// callback, guaranteeing anything submitted meanwhile sits in queue.
struct ExecutorBlocker {
  ExecutorBlocker(Runtime& runtime, Runtime::PlanId id,
                  const std::string& input, int64_t hold_us) {
    Status st = runtime.PredictAsync(id, input, [this, hold_us](Result<float> r) {
      CHECK(r.ok());
      entered.store(true);
      SleepUs(hold_us);
      done.store(true);
    });
    CHECK(st.ok());
    while (!entered.load()) {
      SleepUs(100);  // Wait until the executor is provably inside.
    }
  }
  std::atomic<bool> entered{false};
  std::atomic<bool> done{false};
};

// Edge case 2: queued singles — including ones the scheduler would coalesce
// into a batched-singles quantum — expire at dispatch with per-event
// callbacks, not a batch-wide error.
void TestSinglesExpireAtDispatch() {
  Harness h(/*executors=*/1);
  Rng rng(23);
  const std::string input = h.workload.SampleInput(rng);

  ExecutorBlocker blocker(*h.runtime, h.ids[0], input, /*hold_us=*/120'000);
  // Submitted while the executor is held: a 15ms budget cannot survive a
  // 120ms stall, so every one of these expires in queue.
  const int kDoomed = 5;
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  int expired = 0;
  const int64_t deadline = NowNs() + 15 * kMs;
  for (int i = 0; i < kDoomed; ++i) {
    Status st = h.runtime->PredictAsync(
        h.ids[1], input,
        [&](Result<float> r) {
          std::lock_guard<std::mutex> lock(mu);
          ++completed;
          if (!r.ok() && r.status().IsDeadlineExceeded()) {
            CHECK(r.status().message().find("at dispatch") !=
                  std::string::npos);
            // Attribution: time spent queued is named in the message.
            CHECK(r.status().message().find("queued") != std::string::npos);
            ++expired;
          }
          cv.notify_one();
        },
        deadline);
    CHECK(st.ok());  // Admitted: the budget was alive at admission.
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == kDoomed; });
  }
  CHECK_EQ(expired, kDoomed);
  const PlanMetrics pm = MetricsFor(*h.runtime, h.ids[1]);
  CHECK(pm.expired_dequeue >= static_cast<uint64_t>(kDoomed));
}

// Edge case 3: a chunked batch whose budget dies mid-flight — expired
// chunks complete with 0.0f scores and the batch status attributes the
// overrun to the inter-quantum wait.
void TestBatchExpiresBetweenQuanta() {
  Harness h(/*executors=*/1);
  Rng rng(37);
  const std::string input = h.workload.SampleInput(rng);

  ExecutorBlocker blocker(*h.runtime, h.ids[0], input, /*hold_us=*/120'000);
  std::vector<std::string> inputs(4, input);
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  Status batch_status;
  std::vector<float> scores;
  Status st = h.runtime->PredictBatchAsync(
      h.ids[1], std::move(inputs),
      [&](Status status, std::span<const float> results) {
        std::lock_guard<std::mutex> lock(mu);
        batch_status = status;
        scores.assign(results.begin(), results.end());
        fired = true;
        cv.notify_one();
      },
      /*max_batch=*/1, NowNs() + 15 * kMs);
  CHECK(st.ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fired; });
  }
  CHECK(!batch_status.ok());
  CHECK(batch_status.IsDeadlineExceeded());
  CHECK(batch_status.message().find("between batch quanta") !=
        std::string::npos);
  CHECK_EQ(scores.size(), size_t{4});
  for (const float s : scores) {
    CHECK_NEAR(s, 0.0f, 1e-9);  // Expired records score 0, by contract.
  }
  const PlanMetrics pm = MetricsFor(*h.runtime, h.ids[1]);
  CHECK(pm.expired_quantum >= uint64_t{4});
}

// Edge case 4: the zero-parse binary framed-batch path carries the same
// deadline — refused when expired, score-identical when it fits.
void TestBinaryBatchDeadline() {
  AcWorkloadOptions opts;
  opts.num_pipelines = 1;
  opts.featurizer_trees = 6;
  opts.featurizer_depth = 4;
  opts.final_trees = 4;
  opts.final_depth = 3;
  auto ac = AcWorkload::Generate(opts);
  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  Runtime runtime(&store, ropts);
  auto program = flour.FromPipeline(ac.pipelines()[0]);
  auto plan = Plan(*program, ac.pipelines()[0].name);
  CHECK(plan.ok());
  auto id = runtime.Register(*plan);
  CHECK(id.ok());

  Rng rng(41);
  std::string frame;
  std::vector<float> want;
  for (int i = 0; i < 8; ++i) {
    const std::string text = ac.SampleInput(rng);
    frame += AcWorkload::BinaryFromText(text);
    auto score = runtime.Predict(*id, text);
    CHECK(score.ok());
    want.push_back(*score);
  }
  const auto bytes = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size());

  // Generous deadline: byte-identical behavior to the no-deadline path.
  std::vector<float> out(want.size(), -1.0f);
  Status ok_status = runtime.PredictBinary(*id, bytes, /*max_batch=*/3,
                                           std::span<float>(out),
                                           NowNs() + 2'000 * kMs);
  CHECK_MSG(ok_status.ok(), "%s", ok_status.ToString().c_str());
  for (size_t i = 0; i < want.size(); ++i) {
    CHECK_NEAR(out[i], want[i], 1e-5);
  }

  // Expired: refused at admission, outputs untouched by execution.
  std::vector<float> cold(want.size(), -7.0f);
  Status expired = runtime.PredictBinary(*id, bytes, /*max_batch=*/3,
                                         std::span<float>(cold),
                                         NowNs() - kMs);
  CHECK(!expired.ok());
  CHECK(expired.IsDeadlineExceeded());
  for (const float s : cold) {
    CHECK_NEAR(s, -7.0f, 1e-9);
  }
  const auto metrics = runtime.GetMetrics();
  CHECK(metrics.plans[0].expired_admission >= want.size());
}

// Deadline-aware admission: once the queue-delay estimate exceeds the
// remaining budget, new work is shed early (retryable ResourceExhausted)
// instead of being queued to die (late DeadlineExceeded).
void TestDoomedByEstimateShedsEarly() {
  Harness h(/*executors=*/1);
  Rng rng(53);
  const std::string input = h.workload.SampleInput(rng);

  ExecutorBlocker blocker(*h.runtime, h.ids[0], input, /*hold_us=*/100'000);
  // Build up a queue-delay estimate on plan 1: these expire at dispatch,
  // but their queue wait feeds the EWMA all the same.
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    Status st = h.runtime->PredictAsync(
        h.ids[1], input,
        [&](Result<float>) {
          std::lock_guard<std::mutex> lock(mu);
          ++completed;
          cv.notify_one();
        },
        0);
    CHECK(st.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == 4; });
  }
  const PlanMetrics pm = MetricsFor(*h.runtime, h.ids[1]);
  CHECK_MSG(pm.queue_delay_ewma_us > 1'000,
            "queue-delay EWMA %lld too small to drive the shed",
            static_cast<long long>(pm.queue_delay_ewma_us));

  // A hot estimate alone must NOT shed: with an empty queue the EWMA is
  // history, not forecast (a stuck valve would starve an idle plan). The
  // 20ms budget sits far below the ~100ms estimate (so only the empty-queue
  // guard admits it) yet far above a real idle dispatch (so it completes).
  {
    std::mutex m2;
    std::condition_variable cv2;
    bool idle_done = false;
    Status idle = h.runtime->PredictAsync(
        h.ids[1], input,
        [&](Result<float> r) {
          CHECK(r.ok());
          std::lock_guard<std::mutex> lock(m2);
          idle_done = true;
          cv2.notify_one();
        },
        NowNs() + 20 * kMs);
    CHECK(idle.ok());
    std::unique_lock<std::mutex> lock(m2);
    cv2.wait(lock, [&] { return idle_done; });
  }

  // Park the executor again and put live work in the queue: NOW the
  // estimate forecasts a real wait, so a 1ms budget sheds with a hint.
  ExecutorBlocker reblock(*h.runtime, h.ids[0], input, /*hold_us=*/100'000);
  std::mutex m3;
  std::condition_variable cv3;
  int drained = 0;
  CHECK(h.runtime
            ->PredictAsync(
                h.ids[1], input,
                [&](Result<float>) {
                  std::lock_guard<std::mutex> lock(m3);
                  ++drained;
                  cv3.notify_one();
                },
                0)
            .ok());
  Status shed;
  for (int i = 0; i < 3 && !shed.IsResourceExhausted(); ++i) {
    shed = h.runtime->PredictAsync(h.ids[1], input, [](Result<float>) {},
                                   NowNs() + kMs);
  }
  CHECK(shed.IsResourceExhausted());
  CHECK(shed.retry_after_us() > 0);
  const PlanMetrics after = MetricsFor(*h.runtime, h.ids[1]);
  CHECK(after.shed_deadline >= 1);
  // Drain before teardown.
  std::unique_lock<std::mutex> lock(m3);
  cv3.wait(lock, [&] { return drained == 1; });
}

}  // namespace

int main() {
  TestExpiredAtAdmission();
  std::printf("TestExpiredAtAdmission: PASS\n");
  TestSinglesExpireAtDispatch();
  std::printf("TestSinglesExpireAtDispatch: PASS\n");
  TestBatchExpiresBetweenQuanta();
  std::printf("TestBatchExpiresBetweenQuanta: PASS\n");
  TestBinaryBatchDeadline();
  std::printf("TestBinaryBatchDeadline: PASS\n");
  TestDoomedByEstimateShedsEarly();
  std::printf("TestDoomedByEstimateShedsEarly: PASS\n");
  return 0;
}
