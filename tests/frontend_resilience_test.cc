// FrontEnd resilience: the retry policy (hinted waits, jittered backoff,
// deadline-bounded), the dropped_backpressure / dropped_error / expired
// outcome split, and deadline admission at the tier's edge. The retry-wait
// tests run on a fake clock injected through FrontEndOptions, so every wait
// is observed exactly, not timed.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/frontend/frontend.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

// Deterministic time: now_ns only advances when something sleeps, and every
// sleep is recorded. With network_delay_us = 0 the only non-zero sleeps a
// sync Request performs are its retry backoffs.
struct FakeClock {
  std::atomic<int64_t> now_ns{1'000'000'000};
  std::mutex mu;
  std::vector<int64_t> sleeps_us;

  void Install(FrontEndOptions* options) {
    options->now_ns = [this] { return now_ns.load(); };
    options->sleep_us = [this](int64_t us) {
      {
        std::lock_guard<std::mutex> lock(mu);
        sleeps_us.push_back(us);
      }
      now_ns.fetch_add(us * 1000);
    };
  }
  std::vector<int64_t> RecordedWaits() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<int64_t> waits;
    for (const int64_t us : sleeps_us) {
      if (us > 0) {
        waits.push_back(us);
      }
    }
    return waits;
  }
};

// Rejects the first `fail_first` calls (ResourceExhausted, optionally with a
// retry-after hint), then succeeds.
struct FlakyBackend : Backend {
  std::atomic<int> calls{0};
  int fail_first = 0;
  int64_t hint_us = 0;
  Result<float> Predict(const std::string&, const std::string&,
                        int64_t) override {
    if (calls.fetch_add(1) < fail_first) {
      Status shed = Status::ResourceExhausted("backend busy");
      return hint_us > 0 ? shed.WithRetryAfterUs(hint_us) : shed;
    }
    return 0.25f;
  }
};

// The contract under test: a hinted rejection is never retried before the
// hint — the wait is max(hint, backoff), pinned on fake time.
void TestRetryWaitHonorsHint() {
  FlakyBackend backend;
  backend.fail_first = 2;
  backend.hint_us = 7'000;

  FrontEndOptions options;
  options.network_delay_us = 0;
  options.num_io_threads = 1;
  options.max_retries = 3;
  options.retry_base_us = 100;  // Backoff alone would be far below the hint.
  options.retry_seed = 42;
  FakeClock clock;
  clock.Install(&options);
  FrontEnd frontend(&backend, options);

  Result<float> result = frontend.Request("m", "x");
  CHECK(result.ok());
  CHECK_EQ(backend.calls.load(), 3);  // 1 initial + 2 retries.
  const auto waits = clock.RecordedWaits();
  CHECK_EQ(waits.size(), size_t{2});
  for (const int64_t wait : waits) {
    CHECK_MSG(wait >= backend.hint_us, "retry waited %lldus < %lldus hint",
              static_cast<long long>(wait),
              static_cast<long long>(backend.hint_us));
  }
  CHECK_EQ(frontend.GetMetrics().retries, uint64_t{2});
  // The request ultimately succeeded: nothing dropped.
  CHECK_EQ(frontend.GetMetrics().dropped_backpressure, uint64_t{0});
}

// Without a hint, waits follow jittered exponential backoff: attempt k
// lands in [backoff/2, backoff] with backoff = base << k, capped.
void TestRetryBackoffEnvelope() {
  FlakyBackend backend;
  backend.fail_first = 3;

  FrontEndOptions options;
  options.network_delay_us = 0;
  options.num_io_threads = 1;
  options.max_retries = 3;
  options.retry_base_us = 1'000;
  options.retry_max_us = 3'000;  // The third attempt hits the cap.
  options.retry_seed = 7;
  FakeClock clock;
  clock.Install(&options);
  FrontEnd frontend(&backend, options);

  CHECK(frontend.Request("m", "x").ok());
  const auto waits = clock.RecordedWaits();
  CHECK_EQ(waits.size(), size_t{3});
  const int64_t ceilings[] = {1'000, 2'000, 3'000};  // base<<k, capped.
  for (size_t k = 0; k < waits.size(); ++k) {
    CHECK_MSG(waits[k] >= ceilings[k] / 2 && waits[k] <= ceilings[k],
              "attempt %zu wait %lldus outside [%lld, %lld]", k,
              static_cast<long long>(waits[k]),
              static_cast<long long>(ceilings[k] / 2),
              static_cast<long long>(ceilings[k]));
  }
}

// Retries stop when the next backoff would cross the deadline: the caller
// gets the shed (retryable) status with budget left, not a late expiry.
void TestRetryRespectsDeadline() {
  FlakyBackend backend;
  backend.fail_first = 1'000'000;  // Never recovers.
  backend.hint_us = 20'000;

  FrontEndOptions options;
  options.network_delay_us = 0;
  options.num_io_threads = 1;
  options.max_retries = 100;
  options.retry_base_us = 100;
  FakeClock clock;
  clock.Install(&options);
  FrontEnd frontend(&backend, options);

  // 30ms budget, 20ms hinted waits: exactly one retry fits.
  const int64_t deadline = clock.now_ns.load() + 30'000'000;
  Result<float> result = frontend.Request("m", "x", deadline);
  CHECK(!result.ok());
  CHECK(result.status().IsResourceExhausted());
  CHECK_EQ(backend.calls.load(), 2);
  CHECK(clock.now_ns.load() < deadline);  // Shed with budget to fail over.
  CHECK_EQ(frontend.GetMetrics().dropped_backpressure, uint64_t{1});
}

// The async path books final outcomes into the split counters, and the
// retry machinery works through the IO loop as well.
void TestAsyncOutcomeSplit() {
  struct ScriptedBackend : Backend {
    Result<float> Predict(const std::string& name, const std::string&,
                          int64_t) override {
      if (name == "shed") {
        return Status::ResourceExhausted("backend full").WithRetryAfterUs(500);
      }
      if (name == "broken") {
        return Status::Error("model exploded");
      }
      return 1.5f;
    }
  } backend;

  FrontEndOptions options;
  options.network_delay_us = 0;
  options.num_io_threads = 2;
  options.max_retries = 1;  // "shed" gets one retry, then counts as dropped.
  options.retry_base_us = 200;
  options.retry_max_us = 1'000;
  FrontEnd frontend(&backend, options);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  auto wait_for = [&](int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= n; });
  };
  auto completion = [&](Status expect_code) {
    return [&, expect_code](Result<float> r) {
      CHECK_EQ(static_cast<int>(r.status().code()),
               static_cast<int>(expect_code.code()));
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    };
  };

  CHECK(frontend.RequestAsync("ok", "x", completion(Status::OK())).ok());
  CHECK(frontend
            .RequestAsync("shed", "x",
                          completion(Status::ResourceExhausted("")))
            .ok());
  CHECK(frontend.RequestAsync("broken", "x", completion(Status::Error(""))).ok());
  wait_for(3);

  // Expired at admission: rejected synchronously, never counted as pending.
  std::atomic<int> fired{0};
  Status expired = frontend.RequestAsync(
      "ok", "x", [&](Result<float>) { fired.fetch_add(1); }, NowNs() - 1);
  CHECK(expired.IsDeadlineExceeded());
  CHECK_EQ(fired.load(), 0);

  const FrontEndMetrics metrics = frontend.GetMetrics();
  CHECK_EQ(metrics.dropped_backpressure, uint64_t{1});  // "shed", post-retry.
  CHECK_EQ(metrics.dropped_error, uint64_t{1});         // "broken".
  CHECK_EQ(metrics.expired, uint64_t{1});               // Admission refusal.
  CHECK_EQ(metrics.retries, uint64_t{1});
  // Legacy view stays the backpressure count.
  CHECK_EQ(frontend.dropped(), metrics.dropped_backpressure);
}

// A retry serving out its backoff must never stall runnable work. With one
// IO thread and a retry parked behind a 2s hinted backoff, a fresh request
// admitted behind it completes within a poll slice or two — the IO thread
// skips the future-dated retry instead of sleeping its backoff inline. The
// retry itself still never fires before the hint.
void TestBackoffDoesNotStallQueue() {
  struct NameScriptedBackend : Backend {
    int64_t hint_us = 2'000'000;
    Result<float> Predict(const std::string& name, const std::string&,
                          int64_t) override {
      if (name == "shed") {
        return Status::ResourceExhausted("busy").WithRetryAfterUs(hint_us);
      }
      return 2.0f;
    }
  } backend;

  FrontEndOptions options;
  options.network_delay_us = 0;
  options.num_io_threads = 1;
  options.max_retries = 1;  // "shed" retries once, then counts as dropped.
  options.retry_base_us = 100;
  FakeClock clock;
  clock.Install(&options);
  FrontEnd frontend(&backend, options);

  std::mutex mu;
  std::condition_variable cv;
  int64_t ok_done_ns = 0;
  int64_t shed_done_ns = 0;

  const int64_t start_ns = clock.now_ns.load();
  CHECK(frontend
            .RequestAsync("shed", "x",
                          [&](Result<float> r) {
                            CHECK(r.status().IsResourceExhausted());
                            std::lock_guard<std::mutex> lock(mu);
                            shed_done_ns = clock.now_ns.load();
                            cv.notify_all();
                          })
            .ok());
  // The retry is booked before it is queued; once visible, the single IO
  // thread is (at most a slice from) waiting out the 2s backoff.
  while (frontend.GetMetrics().retries < 1) {
    std::this_thread::yield();
  }
  const int64_t t0 = clock.now_ns.load();
  CHECK(frontend
            .RequestAsync("ok", "x",
                          [&](Result<float> r) {
                            CHECK(r.ok());
                            std::lock_guard<std::mutex> lock(mu);
                            ok_done_ns = clock.now_ns.load();
                            cv.notify_all();
                          })
            .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ok_done_ns != 0; });
  }
  // Far under the backoff horizon: the fresh request was not queued behind
  // the parked retry's sleep (pre-fix, this waited the full 2s fake).
  CHECK_MSG(ok_done_ns - t0 < backend.hint_us * 1000 / 2,
            "fresh request stalled %lldus behind an in-backoff retry",
            static_cast<long long>((ok_done_ns - t0) / 1000));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return shed_done_ns != 0; });
  }
  // Queue-side waiting still honors the hint: the retry never fired early.
  CHECK_MSG(shed_done_ns - start_ns >= backend.hint_us * 1000,
            "retry fired %lldus after admission, before the %lldus hint",
            static_cast<long long>((shed_done_ns - start_ns) / 1000),
            static_cast<long long>(backend.hint_us));
  CHECK_EQ(frontend.GetMetrics().dropped_backpressure, uint64_t{1});
}

}  // namespace

int main() {
  TestRetryWaitHonorsHint();
  std::printf("TestRetryWaitHonorsHint: PASS\n");
  TestRetryBackoffEnvelope();
  std::printf("TestRetryBackoffEnvelope: PASS\n");
  TestRetryRespectsDeadline();
  std::printf("TestRetryRespectsDeadline: PASS\n");
  TestAsyncOutcomeSplit();
  std::printf("TestAsyncOutcomeSplit: PASS\n");
  TestBackoffDoesNotStallQueue();
  std::printf("TestBackoffDoesNotStallQueue: PASS\n");
  return 0;
}
