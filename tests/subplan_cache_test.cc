// SubPlanCache: hit/miss accounting, byte-budget LRU eviction, and the
// disabled (null-cache) execution path.
#include "src/oven/subplan_cache.h"

#include <vector>

#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

void TestAccounting() {
  SubPlanCache cache(1ull << 20);
  std::vector<uint32_t> ids = {1, 2, 3, 4};

  CHECK(cache.Lookup(42) == nullptr);
  cache.Insert(42, ids);
  SubPlanCache::EntryRef hit = cache.Lookup(42);
  CHECK(hit != nullptr);
  CHECK_EQ(hit->size(), ids.size());
  CHECK(*hit == ids);
  CHECK(cache.Lookup(43) == nullptr);

  const auto stats = cache.GetStats();
  CHECK_EQ(stats.lookups, uint64_t{3});
  CHECK_EQ(stats.hits, uint64_t{1});
  CHECK_EQ(stats.insertions, uint64_t{1});
  CHECK_EQ(cache.NumEntries(), size_t{1});
  CHECK(cache.SizeBytes() > ids.size() * sizeof(uint32_t));

  // Re-inserting the same key replaces, not duplicates — and the replace
  // path counts as an insertion too.
  cache.Insert(42, std::vector<uint32_t>{9, 9});
  CHECK_EQ(cache.NumEntries(), size_t{1});
  CHECK_EQ(cache.GetStats().insertions, uint64_t{2});
  SubPlanCache::EntryRef replaced = cache.Lookup(42);
  CHECK(replaced != nullptr);
  CHECK_EQ(replaced->size(), size_t{2});
  // The pre-replacement entry handed out earlier is still intact: hits are
  // shared references, not copies, and survive eviction/replacement.
  CHECK_EQ(hit->size(), ids.size());
  CHECK(*hit == ids);
}

void TestEviction() {
  // Each entry: 100 ids * 4B + 64B bookkeeping = 464B. Budget fits ~4.
  SubPlanCache cache(2000);
  std::vector<uint32_t> ids(100, 7);
  for (uint64_t k = 1; k <= 10; ++k) {
    cache.Insert(k, ids);
    CHECK(cache.SizeBytes() <= cache.byte_budget());
  }
  CHECK_EQ(cache.NumEntries(), size_t{4});
  CHECK(cache.GetStats().evictions == 6);
  // Oldest keys evicted, newest resident.
  CHECK(cache.Lookup(1) == nullptr);
  CHECK(cache.Lookup(10) != nullptr);

  // LRU refresh: touching an old entry protects it from the next eviction.
  CHECK(cache.Lookup(7) != nullptr);
  cache.Insert(11, ids);
  CHECK(cache.Lookup(7) != nullptr);
  CHECK(cache.Lookup(8) == nullptr);

  // Oversized entries are rejected outright.
  SubPlanCache tiny(100);
  tiny.Insert(1, ids);
  CHECK_EQ(tiny.NumEntries(), size_t{0});
}

// Executing plans with and without a cache attached must agree; a cache at
// budget 0 (always evicting) must not change results either.
void TestExecutionPaths() {
  SaWorkloadOptions opts;
  opts.num_pipelines = 6;
  opts.char_dict_entries = 600;
  opts.word_dict_entries = 200;
  opts.vocabulary_size = 400;
  auto sa = SaWorkload::Generate(opts);

  ObjectStore store;
  FlourContext ctx(&store);
  VectorPool pool;
  ExecContext no_cache_ctx(&pool);
  ExecContext cache_ctx(&pool);
  SubPlanCache cache(1ull << 20);
  cache_ctx.subplan_cache = &cache;
  ExecContext zero_ctx(&pool);
  SubPlanCache zero_cache(0);
  zero_ctx.subplan_cache = &zero_cache;

  Rng rng(99);
  for (const auto& spec : sa.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    auto plan = Plan(*program, spec.name);
    CHECK(plan.ok());
    for (int i = 0; i < 5; ++i) {
      const std::string input = sa.SampleInput(rng);
      auto a = ExecutePlan(**plan, input, no_cache_ctx);
      auto b = ExecutePlan(**plan, input, cache_ctx);   // Cold then warm.
      auto b2 = ExecutePlan(**plan, input, cache_ctx);  // Cached replay.
      auto c = ExecutePlan(**plan, input, zero_ctx);
      CHECK(a.ok() && b.ok() && b2.ok() && c.ok());
      CHECK_NEAR(*a, *b, 1e-5);
      CHECK_NEAR(*a, *b2, 1e-5);
      CHECK_NEAR(*a, *c, 1e-5);
    }
  }
  CHECK(cache.GetStats().hits > 0);
  CHECK_EQ(zero_cache.NumEntries(), size_t{0});
}

int main() {
  TestAccounting();
  TestEviction();
  TestExecutionPaths();
  std::printf("subplan_cache_test: PASS\n");
  return 0;
}
