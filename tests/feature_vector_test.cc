// FeatureVector unit tests (dense<->sparse round-trips, pooled-storage
// reuse) plus HashDict structural tests (collision-heavy probe chains, the
// no-regrow rehash path, prefetch hint safety).
#include <cstdio>
#include <vector>

#include "src/ops/feature_vector.h"
#include "src/ops/kernels.h"
#include "src/runtime/exec_context.h"
#include "tests/test_util.h"

using namespace pretzel;

static void TestSparseRoundTrip() {
  FeatureVector fv;
  fv.BeginSparse(100);
  fv.Append(7, 2.0f);
  fv.Append(3, 1.0f);
  fv.Append(7, 0.5f);  // Duplicate: coalesces to 2.5.
  fv.Append(99, -4.0f);
  fv.SortCoalesce();
  CHECK(fv.is_sparse());
  CHECK_EQ(fv.nnz(), size_t{3});
  CHECK_EQ(fv.ids()[0], 3u);
  CHECK_EQ(fv.ids()[1], 7u);
  CHECK_EQ(fv.ids()[2], 99u);
  CHECK_NEAR(fv.values()[1], 2.5f, 1e-6);

  std::vector<float> weights(100, 0.0f);
  weights[3] = 2.0f;
  weights[7] = 1.0f;
  weights[99] = 0.25f;
  const double sparse_dot = fv.Dot(weights.data(), weights.size());
  CHECK_NEAR(sparse_dot, 2.0 + 2.5 - 1.0, 1e-6);

  // Densify: scatter, same dot, then Sparsify back to the same entries.
  fv.Densify();
  CHECK(fv.is_dense());
  CHECK_EQ(fv.dim(), size_t{100});
  CHECK_NEAR(fv.dense_data()[7], 2.5f, 1e-6);
  CHECK_NEAR(fv.dense_data()[0], 0.0f, 1e-6);
  CHECK_NEAR(fv.Dot(weights.data(), weights.size()), sparse_dot, 1e-6);
  fv.Sparsify();
  CHECK(fv.is_sparse());
  CHECK_EQ(fv.nnz(), size_t{3});
  CHECK_EQ(fv.ids()[2], 99u);
  CHECK_NEAR(fv.values()[2], -4.0f, 1e-6);
  CHECK_NEAR(fv.Dot(weights.data(), weights.size()), sparse_dot, 1e-6);
  std::printf("sparse round-trip: PASS\n");
}

static void TestAssignCountsAndConcat() {
  FeatureVector a, b, cat;
  std::vector<uint32_t> hits = {5, 1, 5, 5, 2};
  a.AssignCounts(hits, 10);
  CHECK_EQ(a.nnz(), size_t{3});
  CHECK_EQ(a.ids()[0], 1u);
  CHECK_NEAR(a.values()[2], 3.0f, 1e-6);  // id 5 hit three times.

  hits = {0, 4, 0};
  b.AssignCounts(hits, 6);
  cat.AssignConcat(a, b, /*b_offset=*/10);
  CHECK_EQ(cat.dim(), size_t{16});
  CHECK_EQ(cat.nnz(), size_t{5});
  CHECK_EQ(cat.ids()[3], 10u);  // b's id 0, rebased.
  CHECK_NEAR(cat.values()[3], 2.0f, 1e-6);
  CHECK_EQ(cat.ids()[4], 14u);
  std::printf("counts + concat: PASS\n");
}

static void TestPooledStorageReuse() {
  VectorPool pool;
  {
    FeatureVector fv(&pool);
    fv.MutableDense(512);
    CHECK(fv.value_capacity() >= 512);
    fv.ReleaseStorage();  // Lease returns to the pool.
    CHECK_EQ(fv.value_capacity(), size_t{0});
  }
  const VectorPool::Stats after_release = pool.GetStats();
  CHECK(after_release.released >= 1);

  // A second vector's first growth is served from the free list, and a warm
  // vector re-densified at the same size does not re-lease.
  FeatureVector fv2(&pool);
  fv2.MutableDense(256);
  const VectorPool::Stats after_acquire = pool.GetStats();
  CHECK(after_acquire.hits >= 1);
  const size_t cap = fv2.value_capacity();
  CHECK(cap >= 512);  // The recycled 512-float lease.
  fv2.Reset();
  fv2.MutableDense(256);
  CHECK_EQ(fv2.value_capacity(), cap);  // No new lease, warm buffer reused.
  const VectorPool::Stats after_reuse = pool.GetStats();
  CHECK_EQ(after_reuse.hits, after_acquire.hits);
  fv2.ReleaseStorage();
  std::printf("pooled-storage reuse: PASS\n");
}

// Collision-heavy HashDict: hundreds of keys whose mixed hash lands in the
// same bucket of a 1024-slot table, forcing one long linear-probe chain.
static void TestHashDictCollisions() {
  const size_t mask = 1023;
  std::vector<uint64_t> colliders;
  uint64_t candidate = 1;
  while (colliders.size() < 256) {
    if ((SplitMix64(candidate) & mask) == 0) {
      colliders.push_back(candidate);
    }
    ++candidate;
  }
  HashDict dict;
  dict.Reserve(512);  // 1024 slots at the 0.7 load factor.
  for (size_t i = 0; i < colliders.size(); ++i) {
    CHECK(dict.Insert(colliders[i], static_cast<uint32_t>(i)));
  }
  CHECK_EQ(dict.size(), colliders.size());
  for (size_t i = 0; i < colliders.size(); ++i) {
    dict.Prefetch(colliders[i]);  // Hint must be safe on any key.
    CHECK_EQ(dict.Find(colliders[i]), static_cast<int64_t>(i));
    CHECK(!dict.Insert(colliders[i], 0));  // Duplicate insert is rejected.
  }
  // Misses that hash into the cluster must walk the whole chain and still
  // terminate at the trailing empty slot.
  size_t probed_misses = 0;
  while (probed_misses < 64) {
    if ((SplitMix64(candidate) & mask) == 0) {
      dict.Prefetch(candidate);
      CHECK_EQ(dict.Find(candidate), int64_t{-1});
      ++probed_misses;
    }
    ++candidate;
  }
  std::printf("hash-dict collisions: PASS\n");
}

// Growth path: start tiny so thousands of inserts force repeated rehash
// cycles; every key must survive every rebuild.
static void TestHashDictGrowth() {
  HashDict dict;  // No Reserve: first insert builds the minimum table.
  Rng rng(77);
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 5000; ++i) {
    uint64_t k = rng.NextU64();
    if (k == 0) {
      k = 1;
    }
    keys.push_back(k);
  }
  size_t unique = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (dict.Insert(keys[i], static_cast<uint32_t>(i))) {
      ++unique;
    }
  }
  CHECK_EQ(dict.size(), unique);
  for (size_t i = 0; i < keys.size(); ++i) {
    CHECK(dict.Find(keys[i]) >= 0);
  }
  size_t enumerated = 0;
  dict.ForEach([&enumerated](uint64_t, uint32_t) { ++enumerated; });
  CHECK_EQ(enumerated, unique);
  std::printf("hash-dict growth: PASS\n");
}

int main() {
  TestSparseRoundTrip();
  TestAssignCountsAndConcat();
  TestPooledStorageReuse();
  TestHashDictCollisions();
  TestHashDictGrowth();
  std::printf("feature_vector_test: PASS\n");
  return 0;
}
