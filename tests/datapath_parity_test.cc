// Golden-parity suite for the operator data path: every execution variant —
// scalar-forced, dispatched (SIMD when built+supported), sparse-fused,
// unfused dense, and batch-major — must score within 1e-5 of the scalar
// black-box reference for every SA/AC workload plan. This is the contract
// that lets the Oven and Runtime pick representations and kernels freely.
#include <cstdio>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/blackbox/blackbox_model.h"
#include "src/common/serialize.h"
#include "src/flour/flour.h"
#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

// Pre-featurizes `text` into the BinaryRecord wire encoding for pipeline
// `index`, or returns "" if the workload has no binary encoding for it.
using MakeBinary = std::function<std::string(size_t, const std::string&)>;

// The optimizer configurations that exercise each data-path variant.
std::vector<std::pair<const char*, OptimizerOptions>> Configs() {
  OptimizerOptions full;  // Push (SA) / fused featurize (AC).
  OptimizerOptions sparse_fused;
  sparse_fused.enable_linear_push = false;  // Forces kSparseLinear on SA.
  OptimizerOptions sparse_unmerged = sparse_fused;
  sparse_unmerged.enable_stage_merge = false;
  OptimizerOptions unfused;  // Materialized Concat + Linear, no rewrites.
  unfused.enable_linear_push = false;
  unfused.enable_stage_merge = false;
  unfused.enable_inline = false;
  unfused.enable_sparse_fuse = false;
  return {{"full", full},
          {"sparse-fused", sparse_fused},
          {"sparse-unmerged", sparse_unmerged},
          {"unfused", unfused}};
}

template <typename Workload>
void CheckFamily(const Workload& workload, uint64_t seed, bool is_dense,
                 const MakeBinary& make_binary) {
  ObjectStore store;
  FlourContext flour(&store);
  VectorPool pool;
  ExecContext ctx(&pool);
  Rng rng(seed);
  const auto configs = Configs();

  for (size_t spec_idx = 0; spec_idx < workload.pipelines().size();
       ++spec_idx) {
    const auto& spec = workload.pipelines()[spec_idx];
    // Golden reference: the black-box operator-at-a-time execution on the
    // forced-scalar backend.
    auto model = BlackBoxModel::Load(SaveModelImage(spec), BlackBoxOptions());
    CHECK(model.ok());
    auto program = flour.FromPipeline(spec);
    std::vector<std::shared_ptr<ModelPlan>> plans;
    for (const auto& [name, opts] : configs) {
      CompileOptions copts;
      copts.optimizer = opts;
      auto plan = CompilePlan(*program, spec.name, copts);
      CHECK_MSG(plan.ok(), "compile %s/%s", spec.name.c_str(), name);
      plans.push_back(*plan);
    }

    std::vector<std::string> inputs;
    for (int i = 0; i < 6; ++i) {
      inputs.push_back(workload.SampleInput(rng));
    }
    std::vector<float> golden;
    SetForceScalarKernels(true);
    for (const auto& input : inputs) {
      auto expected = (*model)->Predict(input);
      CHECK(expected.ok());
      golden.push_back(*expected);
    }

    for (const bool force_scalar : {true, false}) {
      SetForceScalarKernels(force_scalar);
      // Per-record execution, every plan variant.
      for (size_t p = 0; p < plans.size(); ++p) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          auto got = ExecutePlan(*plans[p], inputs[i], ctx);
          CHECK_MSG(got.ok(), "%s/%s", spec.name.c_str(), configs[p].first);
          CHECK_NEAR(*got, golden[i], 1e-5);
        }
      }
      // Batch-major execution (dense plans take the SoA path; text plans
      // must fall back bit-for-bit).
      std::vector<float> scores(inputs.size(), 0.0f);
      Status first_error;
      const size_t failed = ExecutePlanBatch(
          *plans[0], inputs.data(), inputs.size(), scores.data(), ctx,
          &first_error);
      CHECK_MSG(failed == 0, "batch failed: %s",
                first_error.ToString().c_str());
      for (size_t i = 0; i < inputs.size(); ++i) {
        CHECK_NEAR(scores[i], golden[i], 1e-5);
      }
    }
    SetForceScalarKernels(false);

    // BinaryRecord twins of the same inputs: the zero-parse wire format
    // must hit the same goldens through every plan variant, per-record and
    // batch-major, on both kernel backends.
    std::vector<std::string> binaries;
    for (const auto& input : inputs) {
      binaries.push_back(make_binary(spec_idx, input));
    }
    for (const bool force_scalar : {true, false}) {
      SetForceScalarKernels(force_scalar);
      for (size_t p = 0; p < plans.size(); ++p) {
        for (size_t i = 0; i < binaries.size(); ++i) {
          auto got = ExecutePlan(*plans[p], binaries[i], ctx);
          CHECK_MSG(got.ok(), "binary %s/%s", spec.name.c_str(),
                    configs[p].first);
          CHECK_NEAR(*got, golden[i], 1e-5);
        }
      }
      std::vector<float> scores(binaries.size(), 0.0f);
      Status first_error;
      const size_t failed = ExecutePlanBatch(
          *plans[0], binaries.data(), binaries.size(), scores.data(), ctx,
          &first_error);
      CHECK_MSG(failed == 0, "binary batch failed: %s",
                first_error.ToString().c_str());
      for (size_t i = 0; i < binaries.size(); ++i) {
        CHECK_NEAR(scores[i], golden[i], 1e-5);
      }
    }
    SetForceScalarKernels(false);

    if (is_dense) {
      // A batch containing an invalid record must fall back to per-record
      // attribution: valid records still score, invalid ones fail.
      SetForceScalarKernels(false);
      std::vector<std::string> mixed = {inputs[0], "1.0,2.0", inputs[1]};
      std::vector<float> scores(mixed.size(), -1.0f);
      Status first_error;
      const size_t failed = ExecutePlanBatch(*plans[0], mixed.data(),
                                             mixed.size(), scores.data(), ctx,
                                             &first_error);
      CHECK_EQ(failed, size_t{1});
      CHECK(!first_error.ok());
      CHECK_NEAR(scores[0], golden[0], 1e-5);
      CHECK_NEAR(scores[1], 0.0f, 1e-9);
      CHECK_NEAR(scores[2], golden[1], 1e-5);

      // Same attribution for a binary record whose validity bit is clear:
      // it is masked out of the SoA gather, neighbors score untouched, and
      // the per-record failure flags name exactly the masked lane.
      std::vector<float> values;
      CHECK(ParseDenseInput(inputs[1], &values) == values.size() &&
            !values.empty());
      const std::string invalid =
          EncodeDenseRecord(values.data(), values.size(), /*valid=*/false);
      std::vector<std::string> bmixed = {binaries[0], invalid, binaries[1]};
      std::vector<float> bscores(bmixed.size(), -1.0f);
      std::vector<uint8_t> flags(bmixed.size(), 0xEE);
      Status berror;
      const size_t bfailed =
          ExecutePlanBatch(*plans[0], bmixed.data(), bmixed.size(),
                           bscores.data(), ctx, &berror, flags.data());
      CHECK_EQ(bfailed, size_t{1});
      CHECK(!berror.ok());
      CHECK_EQ(flags[0], uint8_t{0});
      CHECK_EQ(flags[1], uint8_t{1});
      CHECK_EQ(flags[2], uint8_t{0});
      CHECK_NEAR(bscores[0], golden[0], 1e-5);
      CHECK_NEAR(bscores[1], 0.0f, 1e-9);
      CHECK_NEAR(bscores[2], golden[1], 1e-5);
    }
  }
}

// SparseDot unit parity: the dispatched kernel (AVX2 masked gather where
// built+supported) must match the scalar backend exactly — double
// accumulation in both — and ids at or beyond w_dim, including hostile
// near-UINT32_MAX values, must contribute nothing and touch no memory
// (the ASan job is the witness for the latter).
void CheckSparseDotUnit() {
  Rng rng(777);
  std::vector<float> weights(1000);
  for (float& w : weights) {
    w = static_cast<float>(rng.Normal());
  }
  for (const size_t nnz : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                           size_t{500}}) {
    std::vector<uint32_t> ids;
    std::vector<float> vals;
    uint32_t next = 0;
    for (size_t i = 0; i < nnz; ++i) {
      next += 1 + static_cast<uint32_t>(rng.UniformInt(5));
      ids.push_back(next);
      vals.push_back(static_cast<float>(rng.Normal()));
    }
    for (const size_t w_dim : {weights.size(), size_t{256}, size_t{3}}) {
      const double ref = internal::SparseDotScalar(ids.data(), vals.data(),
                                                   nnz, weights.data(), w_dim);
      const double got =
          SparseDot(ids.data(), vals.data(), nnz, weights.data(), w_dim);
      CHECK_NEAR(got, ref, 1e-12);
    }
  }
  // Hostile ids against a tiny weight array: everything out of range, the
  // top ones chosen to break a signed or wrapping index computation.
  const std::vector<uint32_t> hostile = {3,          4,          1000,
                                         0x7FFFFFFF, 0x80000000, 0xFFFFFFFF};
  const std::vector<float> hvals(hostile.size(), 2.0f);
  std::vector<float> tiny = {1.0f, 1.0f, 1.0f};
  const double got = SparseDot(hostile.data(), hvals.data(), hostile.size(),
                               tiny.data(), tiny.size());
  CHECK_NEAR(got, 0.0, 1e-12);
  const double ref = internal::SparseDotScalar(
      hostile.data(), hvals.data(), hostile.size(), tiny.data(), tiny.size());
  CHECK_NEAR(ref, 0.0, 1e-12);
  std::printf("sparse-dot unit parity: PASS\n");
}

// A linear model narrower than the concat space is legal (missing weights
// read as zero); binding and every execution path must handle it without
// walking past the weight array.
void CheckShortWeights() {
  SaWorkloadOptions opts;
  opts.num_pipelines = 1;
  opts.char_dict_entries = 300;
  opts.word_dict_entries = 100;
  opts.vocabulary_size = 200;
  const auto sa = SaWorkload::Generate(opts);
  PipelineSpec spec = sa.pipelines()[0];
  for (auto& node : spec.nodes) {
    if (node.params->kind() == OpKind::kLinearBinary) {
      auto short_lin = std::make_shared<LinearBinaryParams>();
      const auto& full =
          static_cast<const LinearBinaryParams&>(*node.params);
      short_lin->weights.assign(full.weights.begin(),
                                full.weights.begin() + 5);
      short_lin->bias = full.bias;
      short_lin->Finalize();
      node.params = short_lin;
    }
  }
  auto model = BlackBoxModel::Load(SaveModelImage(spec), BlackBoxOptions());
  CHECK(model.ok());
  ObjectStore store;
  FlourContext flour(&store);
  VectorPool pool;
  ExecContext ctx(&pool);
  auto program = flour.FromPipeline(spec);
  Rng rng(99);
  for (const auto& [name, opts2] : Configs()) {
    CompileOptions copts;
    copts.optimizer = opts2;
    auto plan = CompilePlan(*program, "short", copts);
    CHECK(plan.ok());
    for (int i = 0; i < 3; ++i) {
      const std::string input = sa.SampleInput(rng);
      auto expected = (*model)->Predict(input);
      auto got = ExecutePlan(**plan, input, ctx);
      CHECK(expected.ok());
      CHECK_MSG(got.ok(), "short-weights %s", name);
      CHECK_NEAR(*got, *expected, 1e-5);
    }
  }
  std::printf("short-weights parity: PASS\n");
}

}  // namespace

int main() {
  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = 6;
  sa_opts.char_dict_entries = 600;
  sa_opts.word_dict_entries = 200;
  sa_opts.vocabulary_size = 400;
  const auto sa = SaWorkload::Generate(sa_opts);
  CheckFamily(sa, 4321, /*is_dense=*/false,
              [&](size_t index, const std::string& text) {
                return sa.BinaryFromText(text, index);
              });

  AcWorkloadOptions ac_opts;
  ac_opts.num_pipelines = 5;
  ac_opts.featurizer_trees = 12;
  ac_opts.featurizer_depth = 5;
  ac_opts.final_trees = 8;
  ac_opts.final_depth = 4;
  CheckFamily(AcWorkload::Generate(ac_opts), 8765, /*is_dense=*/true,
              [](size_t, const std::string& text) {
                return AcWorkload::BinaryFromText(text);
              });
  CheckShortWeights();
  CheckSparseDotUnit();

  std::printf("datapath_parity_test: PASS (backend %s)\n",
              KernelBackendName(ActiveKernelBackend()));
  return 0;
}
