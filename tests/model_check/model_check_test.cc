// Deterministic model-check suite for src/common/lockfree.h, the lock-free
// circuit breaker in src/serving/health.h, the RCU snapshot cell in
// src/common/rcu.h, and the versioned-lifecycle primitives in
// src/serving/lifecycle_gate.h.
//
// Three tiers:
//  1. Checker self-tests: exhaustive (DFS) litmus runs proving the model
//     itself finds races, staleness, and deadlocks — and stays quiet on
//     correct code.
//  2. Clean sweeps: each production structure run under seeded-random
//     exploration with its declared memory orders; any failure here is a
//     real concurrency bug (or a model false positive — both block the PR).
//  3. Seeded-mutation regressions: every mutation weakens exactly one
//     tagged memory order to relaxed (or enables one tagged structural bug)
//     and the checker MUST find a failing interleaving. This pins the
//     checker's detection power: if a future refactor silently defeats the
//     harness, these turn red.
//
// All seeds are fixed; runs are reproducible bit-for-bit.

#include "tests/model_check/mc_runtime.h"
// mc_runtime.h defines the PRETZEL_* seam; lockfree.h must come after it.
#include "src/common/lockfree.h"
// Header-only and built on the same seam, so the packed-word circuit
// breaker runs under the model too.
#include "src/serving/health.h"
// The routing-table snapshot cell (epoch-based RCU) — same seam.
#include "src/common/rcu.h"
// Versioned-lifecycle primitives (inflight gate + canary split) — same seam.
#include "src/serving/lifecycle_gate.h"

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "tests/test_util.h"

namespace pretzel {
namespace {

constexpr uint64_t kSeed = 0xC0FFEEull;

// --- Tier 1: checker self-tests ---------------------------------------------

// Message-passing litmus. With a release store the data write is published
// to the acquiring reader; with a relaxed store the reader can observe the
// flag yet race on the data. g_mp_relaxed selects the broken variant.
bool g_mp_relaxed = false;

void LitmusMessagePassing() {
  auto data = std::make_shared<mc::Var<int>>(0);
  auto ready = std::make_shared<mc::Atomic<int>>(0);
  mc::Go({
      [data, ready] {
        *data = 42;
        ready->store(1, g_mp_relaxed ? mc::kRelaxed : mc::kRelease);
      },
      [data, ready] {
        if (ready->load(mc::kAcquire) == 1) {
          const int v = *data;
          mc::Check(v == 42, "litmus: published data not visible");
        }
      },
  });
}

// Classic AB/BA lock-order inversion; the scheduler's no-runnable-thread
// detector must flag it.
void LitmusAbbaDeadlock() {
  auto a = std::make_shared<mc::Mutex>();
  auto b = std::make_shared<mc::Mutex>();
  mc::Go({
      [a, b] {
        mc::LockGuard la(*a);
        mc::LockGuard lb(*b);
      },
      [a, b] {
        mc::LockGuard lb(*b);
        mc::LockGuard la(*a);
      },
  });
}

// Stale reads: with only relaxed orders, a reader polling a flag written
// once by another thread may legitimately never see it... but a seq_cst
// read must. This checks the staleness machinery both ways.
void LitmusSeqCstReadsLatest() {
  auto x = std::make_shared<mc::Atomic<int>>(0);
  mc::Go({
      [x] { x->store(7, mc::kSeqCst); },
      [x] {
        // Runs after/interleaved with the writer; if the store already
        // executed, seq_cst must not serve the stale initial value.
        const int before = x->load(mc::kRelaxed);
        const int after = x->load(mc::kSeqCst);
        if (before == 7) {
          mc::Check(after == 7, "litmus: seq_cst load served a stale value");
        }
      },
  });
}

void RunSelfTests() {
  g_mp_relaxed = false;
  auto r = mc::ExploreDfs(2000000, "", LitmusMessagePassing);
  CHECK_MSG(!r.failed, "litmus MP (release) must pass clean");
  std::printf("[mc] litmus MP clean: %ld interleavings, 0 failures\n", r.runs);

  g_mp_relaxed = true;
  r = mc::ExploreDfs(2000000, "", LitmusMessagePassing);
  CHECK_MSG(r.failed, "litmus MP (relaxed) race must be detected");
  std::printf("[mc] litmus MP relaxed: race found in %ld runs (%s)\n", r.runs,
              r.message.c_str());
  g_mp_relaxed = false;

  r = mc::ExploreDfs(2000000, "", LitmusAbbaDeadlock);
  CHECK_MSG(r.failed, "litmus ABBA deadlock must be detected");
  std::printf("[mc] litmus ABBA: %s (run %ld)\n", r.message.c_str(), r.runs);

  r = mc::ExploreDfs(2000000, "", LitmusSeqCstReadsLatest);
  CHECK_MSG(!r.failed, "litmus seq_cst-reads-latest must pass clean");
  std::printf("[mc] litmus seq_cst: %ld interleavings, 0 failures\n", r.runs);
}

// --- Tier 2/3 scenarios ------------------------------------------------------

// BoundedMpmcRing as SPSC with capacity 2 and 3 items: item 3 reuses cell 0,
// so the producer's wrap-around seq acquire (vs the consumer's pop release)
// is on the hot path, alongside both publication edges.
void RingSpscScenario() {
  auto ring = std::make_shared<BoundedMpmcRing<uint64_t>>(2);
  auto got = std::make_shared<std::vector<uint64_t>>();
  mc::Go({
      [ring] {
        for (uint64_t v = 1; v <= 3; ++v) {
          uint64_t x = v;
          while (!ring->TryPush(std::move(x))) {
            // Full: consumer hasn't drained yet. TryPush yields internally.
          }
        }
      },
      [ring, got] {
        while (got->size() < 3) {
          uint64_t v = 0;
          if (ring->TryPop(&v)) got->push_back(v);
        }
      },
  });
  if (mc::Pruned() || mc::Failed()) return;
  mc::Check(got->size() == 3, "ring spsc: wrong pop count");
  for (size_t i = 0; i < got->size(); ++i) {
    mc::Check((*got)[i] == i + 1, "ring spsc: FIFO violated");
  }
}

// BoundedMpmcRing as MPMC: 2 producers x 2 items, 2 consumers. Checks
// exactly-once delivery and per-producer FIFO within each consumer's
// stream (the strongest order MPMC guarantees).
void RingMpmcScenario() {
  auto ring = std::make_shared<BoundedMpmcRing<uint64_t>>(2);
  auto popped = std::make_shared<mc::Atomic<int>>(0);
  auto got0 = std::make_shared<std::vector<uint64_t>>();
  auto got1 = std::make_shared<std::vector<uint64_t>>();
  auto producer = [ring](uint64_t base) {
    return [ring, base] {
      for (uint64_t k = 0; k < 2; ++k) {
        uint64_t x = base + k;
        while (!ring->TryPush(std::move(x))) {
        }
      }
    };
  };
  auto consumer = [ring, popped](std::shared_ptr<std::vector<uint64_t>> got) {
    return [ring, popped, got] {
      for (;;) {
        if (popped->load(mc::kSeqCst) >= 4) break;
        uint64_t v = 0;
        if (ring->TryPop(&v)) {
          got->push_back(v);
          popped->fetch_add(1, mc::kSeqCst);
        }
      }
    };
  };
  mc::Go({producer(100), producer(200), consumer(got0), consumer(got1)});
  if (mc::Pruned() || mc::Failed()) return;
  std::vector<uint64_t> all(*got0);
  all.insert(all.end(), got1->begin(), got1->end());
  mc::Check(all.size() == 4, "ring mpmc: wrong total pop count");
  int seen[2][2] = {{0, 0}, {0, 0}};
  for (uint64_t v : all) {
    const int p = v >= 200 ? 1 : 0;
    const uint64_t k = v % 100;
    mc::Check(k < 2 && (v == 100 + k || v == 200 + k),
              "ring mpmc: foreign value popped");
    seen[p][k]++;
  }
  for (auto& row : seen) {
    for (int c : row) mc::Check(c == 1, "ring mpmc: exactly-once violated");
  }
  for (const auto& got : {got0, got1}) {
    uint64_t last[2] = {0, 0};
    for (uint64_t v : *got) {
      const int p = v >= 200 ? 1 : 0;
      mc::Check(last[p] == 0 || v > last[p], "ring mpmc: per-producer FIFO");
      last[p] = v;
    }
  }
}

// IndexStack: two threads cycling pop -> exclusive-ownership assert ->
// payload write -> release -> push. A stale next_ read (the payoff of any
// weakened head/CAS ordering) lets both threads pop the same index, which
// the owned[] exchange discipline catches immediately.
void StackScenario() {
  auto stack = std::make_shared<IndexStack>(3);
  auto owned = std::make_shared<std::array<mc::Atomic<uint32_t>, 3>>();
  auto slot = std::make_shared<std::array<mc::Var<uint64_t>, 3>>();
  for (uint32_t i = 0; i < 3; ++i) stack->Push(i);
  auto worker = [stack, owned, slot](uint64_t tag) {
    return [stack, owned, slot, tag] {
      for (uint64_t k = 0; k < 3; ++k) {
        uint32_t idx = 0;
        while (!stack->TryPop(&idx)) {
        }
        const uint32_t was = (*owned)[idx].exchange(1, mc::kSeqCst);
        mc::Check(was == 0, "stack: index popped by two owners");
        (*slot)[idx] = tag * 16 + k;
        const uint32_t back = (*owned)[idx].exchange(0, mc::kSeqCst);
        mc::Check(back == 1, "stack: ownership lost while held");
        stack->Push(idx);
      }
    };
  };
  mc::Go({worker(1), worker(2)});
  if (mc::Pruned() || mc::Failed()) return;
  uint32_t a = 0, b = 0, c = 0;
  mc::Check(stack->TryPop(&a) && stack->TryPop(&b) && stack->TryPop(&c),
            "stack: indices lost");
  mc::Check(a != b && b != c && a != c, "stack: duplicate indices");
  uint32_t d = 0;
  mc::Check(!stack->TryPop(&d), "stack: phantom index");
}

// MpscIntrusiveQueue: two producers, one consumer, payloads under race
// detection. Transient-empty pops are expected (a producer mid-push); the
// consumer simply revisits, and nothing may be lost or reordered
// per-producer. The consumer also recycles the first node it pops (re-push
// with a new payload, as the Runtime's event pools do) — intrusive-queue
// bugs that only bite on node reuse (e.g. a skipped next-pointer reset)
// need that churn to surface.
struct McNode : MpscNode {
  mc::Var<uint64_t> payload{0};
};

void MpscScenario() {
  auto q = std::make_shared<MpscIntrusiveQueue>();
  auto nodes = std::make_shared<std::array<McNode, 4>>();
  auto got = std::make_shared<std::vector<uint64_t>>();
  auto producer = [q, nodes](int p) {
    return [q, nodes, p] {
      for (int k = 0; k < 2; ++k) {
        McNode* n = &(*nodes)[p * 2 + k];
        n->payload = static_cast<uint64_t>(p) * 100 + k + 1;
        q->Push(n);
      }
    };
  };
  mc::Go({
      producer(0),
      producer(1),
      [q, got] {
        bool recycled = false;
        while (got->size() < 5) {
          MpscNode* n = q->TryPop();
          if (n == nullptr) continue;
          McNode* node = static_cast<McNode*>(n);
          const uint64_t v = node->payload;
          got->push_back(v);
          if (!recycled) {
            recycled = true;
            node->payload = v + 1000;
            q->Push(node);  // Push is legal from any thread, consumer included.
          }
        }
      },
  });
  if (mc::Pruned() || mc::Failed()) return;
  mc::Check(got->size() == 5, "mpsc: wrong pop count");
  int seen[2][2] = {{0, 0}, {0, 0}};
  int recycled_seen = 0;
  uint64_t last[2] = {0, 0};
  for (uint64_t v : *got) {
    if (v >= 1000) {
      ++recycled_seen;
      mc::Check(v == (*got)[0] + 1000, "mpsc: wrong recycled payload");
      continue;
    }
    const int p = v >= 100 ? 1 : 0;
    const int k = static_cast<int>(v % 100) - 1;
    mc::Check(k >= 0 && k < 2, "mpsc: foreign value popped");
    seen[p][k]++;
    mc::Check(last[p] == 0 || v > last[p], "mpsc: per-producer FIFO violated");
    last[p] = v;
  }
  for (auto& row : seen) {
    for (int c : row) mc::Check(c == 1, "mpsc: exactly-once violated");
  }
  mc::Check(recycled_seen == 1, "mpsc: recycled node not delivered once");
  mc::Check(q->TryPop() == nullptr, "mpsc: phantom node after drain");
}

// EventCount: the check-then-sleep protocol from the header comment. Any
// lost wakeup leaves the waiter blocked with the notifier done — caught by
// the deadlock detector.
void EventCountScenario() {
  auto ec = std::make_shared<EventCount>();
  auto flag = std::make_shared<mc::Atomic<int>>(0);
  auto resumed_set = std::make_shared<bool>(false);
  mc::Go({
      [ec, flag] {
        flag->store(1, mc::kSeqCst);
        ec->NotifyOne();
      },
      [ec, flag, resumed_set] {
        if (flag->load(mc::kSeqCst) != 1) {
          const uint64_t t = ec->PrepareWait();
          if (flag->load(mc::kSeqCst) == 1) {
            ec->CancelWait();
          } else {
            ec->Wait(t);
          }
        }
        *resumed_set = (flag->load(mc::kSeqCst) == 1);
      },
  });
  if (mc::Pruned() || mc::Failed()) return;
  mc::Check(*resumed_set, "eventcount: waiter resumed without the flag set");
}

// CircuitBreaker trip visibility: the reopen deadline is stored relaxed and
// published by the trip CAS's release. A reader that observes state=open must
// therefore see the fresh deadline; weakening the trip CAS (mutation
// brk_trip_cas) lets it pair kOpen with the STALE deadline (0), flip to
// half-open mid-cooldown, and hand out a probe the moment the shard tripped.
// A reader may still legitimately see the stale CLOSED word (no edge exists),
// so the invariant is conditional: admitted + final state half-open is the
// only impossible pairing — Allow() at t=50 against a t=110 deadline can
// never have taken the open -> half-open path itself.
void BreakerTripVisibilityScenario() {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 1;
  opt.cooldown_us = 100;
  opt.probe_quota = 1;
  auto brk = std::make_shared<CircuitBreaker>(opt);
  auto admitted = std::make_shared<bool>(false);
  mc::Go({
      [brk] { brk->OnFailure(10); },  // Trips: open, reopen at t=110.
      [brk, admitted] { *admitted = brk->Allow(50); },  // Inside cooldown.
  });
  if (mc::Pruned() || mc::Failed()) return;
  mc::Check(!(*admitted && brk->state() == CircuitBreaker::State::kHalfOpen),
            "breaker: probe granted inside the cooldown (stale reopen_at)");
  mc::Check(brk->trips() == 1, "breaker: trip not recorded");
}

// Deterministic probe lifecycle: trip -> reject inside cooldown -> exactly
// one probe after it -> success closes. Mutation brk_halfopen_keep_tokens
// flips to half-open with zero tokens, so the post-cooldown Allow() that
// must grant the probe returns false forever (liveness: can never close).
void BreakerProbeLifecycleScenario() {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 1;
  opt.cooldown_us = 100;
  opt.probe_quota = 1;
  auto brk = std::make_shared<CircuitBreaker>(opt);
  mc::Go({[brk] {
    brk->OnFailure(10);  // Trips: reopen at t=110.
    mc::Check(!brk->Allow(50), "breaker: admitted inside the cooldown");
    mc::Check(brk->Allow(150), "breaker: cooldown over but no probe granted");
    mc::Check(!brk->Allow(150), "breaker: second probe beyond the quota");
    brk->OnSuccess(150);
    mc::Check(brk->state() == CircuitBreaker::State::kClosed,
              "breaker: probe quota met but still not closed");
    mc::Check(brk->Allow(151), "breaker: closed but rejecting");
  }});
}

// Deterministic failed-probe path: a probe that fails must restart the
// cooldown from NOW. Mutation brk_reopen_refresh_skip leaves the already
// elapsed deadline in place, so the very next Allow() grants a fresh probe
// with no cooldown at all (a flapping shard gets hammered).
void BreakerReopenRefreshScenario() {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 1;
  opt.cooldown_us = 100;
  opt.probe_quota = 2;
  auto brk = std::make_shared<CircuitBreaker>(opt);
  mc::Go({[brk] {
    brk->OnFailure(10);  // Trips: reopen at t=110.
    mc::Check(brk->Allow(150), "breaker: cooldown over but no probe granted");
    brk->OnFailure(150);  // Failed probe: back to open, reopen at t=250.
    mc::Check(!brk->Allow(200),
              "breaker: failed probe did not restart the cooldown");
    mc::Check(brk->Allow(260), "breaker: refreshed cooldown over, no probe");
  }});
}

// Probe-token return: a probe whose outcome delivers no health verdict
// (backpressure, caller error, arrived-already-expired) must hand its token
// back, or half-open wedges — every token burned, no verdict ever in
// flight, Allow() false forever, the shard blackholed. Mutation
// brk_abandon_drop_token swallows the token (the pre-fix bug): the
// post-abandon Allow() that must re-grant a probe returns false, and the
// breaker can never close. Also pins the cap: a closed-era straggler
// abandoning on top of a full quota must not mint extra tokens.
void BreakerProbeAbandonScenario() {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 1;
  opt.cooldown_us = 100;
  opt.probe_quota = 1;
  auto brk = std::make_shared<CircuitBreaker>(opt);
  mc::Go({[brk] {
    brk->OnFailure(10);  // Trips: reopen at t=110.
    // Straggler abandons while OPEN: no token state to touch.
    brk->OnProbeAbandoned(120);
    mc::Check(brk->Allow(150), "breaker: cooldown over but no probe granted");
    // The probe above claimed the only token and ended verdictless: the
    // abandon must return it, or no probe can ever run again.
    brk->OnProbeAbandoned(150);
    mc::Check(brk->Allow(151), "breaker: abandoned probe token not returned");
    // Quota outstanding again; a further abandon must cap at the quota.
    brk->OnProbeAbandoned(151);
    brk->OnProbeAbandoned(151);
    mc::Check(brk->state() == CircuitBreaker::State::kHalfOpen,
              "breaker: abandon left half-open");
    brk->OnSuccess(152);
    mc::Check(brk->state() == CircuitBreaker::State::kClosed,
              "breaker: re-granted probe's success did not close");
  }});
}

// RcuCell snapshot swap (src/common/rcu.h), the routing-table discipline:
// a reader pins a snapshot while a writer publishes a replacement and
// reclaims the retired one after the grace period. The invariant is
// use-after-reclaim freedom: a guard's snapshot is never marked freed while
// the guard is live. Reclamation is modeled by per-table freed flags (the
// scenario never really deletes under the reader), so a violation is a
// failed Check, not UB. kSlots=1 keeps the state space tight — slot choice
// is a perf spread, not a correctness axis.
//
// The memory-order claim is Dekker-shaped (store-buffering): the reader's
// enter bump and the writer's counter reads race on separate locations, so
// seq_cst carries the proof. Mutations: rcu_skip_grace reclaims without any
// wait; rcu_sync_in_load lets the writer's wait loop read a stale zero
// enter count under a live reader. Two weakenings are analyzed and
// excluded rather than seeded: the reader's enter bump (rcu_read_enter)
// is an RMW, which the model (like real coherence) serves from the latest
// value regardless of declared order; and the reader's pointer load
// (rcu_read_ptr_load) became provably benign once reader validation
// landed — the validation load reads-from the epoch RMW chain, so the
// reader happens-after every exchange up to the epoch it observed, and
// coherence then pins the pointer load (at ANY order) to the
// current-or-next snapshot, both of whose retirers are ordered behind the
// reader's registration (full derivation in rcu.h). A single swap also
// cannot reach the two-exchange straggler reclaim; RcuTwoSwapScenario
// below covers it (and detects rcu_skip_validate).
struct RcuTable {
  int gen;  // Identity: which freed[] flag models this table's reclamation.
};

void RcuSwapScenario() {
  auto* table_a = new RcuTable{0};
  auto* table_b = new RcuTable{1};
  auto cell = std::make_shared<RcuCell<RcuTable, 1>>(table_a);
  auto freed = std::make_shared<std::array<mc::Atomic<int>, 2>>();
  mc::Go({
      [cell, table_b, freed] {
        const RcuTable* old = cell->Exchange(table_b);
        // Grace period over: the writer is entitled to reclaim `old`.
        (*freed)[old->gen].store(1, mc::kSeqCst);
      },
      [cell, freed] {
        auto guard = cell->Read();
        mc::Check((*freed)[guard->gen].load(mc::kSeqCst) == 0,
                  "rcu: snapshot reclaimed under a live reader");
      },
  });
  // Cleanup (runs even on pruned runs; single-threaded now): the cell's
  // destructor frees whichever table it currently holds, we free the other.
  const RcuTable* current = cell->Read().get();
  delete (current == table_a ? table_b : table_a);
}

// Two consecutive Exchanges against one straggling reader — the
// interleaving a single swap cannot reach, and exactly what a replication
// maintenance scan produces (back-to-back publishes). Pre-validation
// hazard: the reader loads the epoch (parity 0) and stalls; writer's first
// Exchange swaps, bumps, sees in[0]==out[0] (the straggler never bumped)
// and reclaims table 0; the straggler resumes, registers under parity 0
// UNOBSERVED, and loads table 1; the second Exchange retires table 1 but
// waits only on parity 1 — reclaiming table 1 under the live reader. The
// validation re-read in Read() closes the window: the straggler notices
// the parity moved, retires its parity-0 registration, and re-registers
// under parity 1, which the second Exchange's grace wait does cover.
// Mutation rcu_skip_validate restores the pre-fix algorithm and must trip
// the freed-under-reader Check here.
void RcuTwoSwapScenario() {
  auto* t0 = new RcuTable{0};
  auto* t1 = new RcuTable{1};
  auto* t2 = new RcuTable{2};
  auto cell = std::make_shared<RcuCell<RcuTable, 1>>(t0);
  auto freed = std::make_shared<std::array<mc::Atomic<int>, 3>>();
  mc::Go({
      [cell, t1, t2, freed] {
        const RcuTable* a = cell->Exchange(t1);
        (*freed)[a->gen].store(1, mc::kSeqCst);
        const RcuTable* b = cell->Exchange(t2);
        (*freed)[b->gen].store(1, mc::kSeqCst);
      },
      [cell, freed] {
        auto guard = cell->Read();
        mc::Check((*freed)[guard->gen].load(mc::kSeqCst) == 0,
                  "rcu: snapshot reclaimed under a straggling reader "
                  "across two exchanges");
      },
  });
  // Cleanup (single-threaded now; pruned runs may stop after either
  // exchange): the cell's destructor frees the table it holds, we free the
  // other two.
  const RcuTable* current = cell->Read().get();
  for (RcuTable* t : {t0, t1, t2}) {
    if (t != current) {
      delete t;
    }
  }
}

// VersionGate (src/serving/lifecycle_gate.h), the epoch side of version
// retirement: a request Enter()s the gate of the version it routed to while
// the retirer Close()s the gate and AwaitDrain()s before reclaiming the
// version's plan and ObjectStore blobs. The claim is store-buffering-shaped
// (like RCU's): the reader's inflight bump and closed-flag check race the
// retirer's closed store and inflight read on separate locations, so both
// sides run seq_cst — either the request sees closed and backs out, or the
// drain sees the bump and waits. Reclamation is modeled by a freed flag; an
// admitted request observing freed==1 is the use-after-reclaim. Mutations:
// lc_skip_drain (retirer never waits), lc_drain_inflight (drain's inflight
// load weakened to relaxed — a stale zero starts reclamation under a live
// reader), lc_enter_closed (admission's closed check weakened to relaxed —
// a stale "open" admits a request after the drain already saw zero).
void VersionSwapScenario() {
  auto gate = std::make_shared<VersionGate>();
  auto freed = std::make_shared<mc::Atomic<int>>(0);
  mc::Go({
      [gate, freed] {
        // Retirer: the routing table no longer hands out this version
        // (modeled by going straight to Close — the scenario's reader
        // stands for the straggler that routed before the swap).
        gate->Close();
        gate->AwaitDrain();
        (*freed).store(1, mc::kSeqCst);
      },
      [gate, freed] {
        if (gate->Enter()) {
          mc::Check((*freed).load(mc::kSeqCst) == 0,
                    "lifecycle: version reclaimed under an admitted request");
          gate->Exit();
        }
      },
  });
  if (mc::Pruned() || mc::Failed()) return;
  mc::Check(gate->Drained(), "lifecycle: closed, exited gate not drained");
}

// CanarySplit publication, message-passing-shaped: Publish() stores the
// target version (relaxed) then the fraction (release); Load() acquires the
// fraction and reads the target relaxed. A reader acting on a nonzero
// fraction must see the version that fraction was published FOR — routing
// canary traffic at the new fraction to a stale target would send it to a
// version whose gate may already be draining. Mutation lc_fraction_publish
// weakens the fraction store to relaxed, letting the reader pair the new
// fraction with target 0.
void CanarySplitScenario() {
  auto split = std::make_shared<CanarySplit>();
  mc::Go({
      [split] { split->Publish(100, 42); },
      [split] {
        const CanarySplit::Split s = split->Load();
        if (s.fraction_bp != 0) {
          mc::Check(s.target == 42,
                    "canary: fraction observed without its target version");
        }
      },
  });
}

// --- Drivers -----------------------------------------------------------------

struct CleanCase {
  const char* name;
  void (*scenario)();
  long runs;
};

struct MutationCase {
  const char* name;  // PRETZEL_MO tag or PRETZEL_LF_MUTATION name.
  void (*scenario)();
};

const CleanCase kClean[] = {
    {"ring_spsc", RingSpscScenario, 1500},
    {"ring_mpmc", RingMpmcScenario, 600},
    {"index_stack", StackScenario, 1000},
    {"mpsc_queue", MpscScenario, 1200},
    {"event_count", EventCountScenario, 2000},
    {"breaker_trip_visibility", BreakerTripVisibilityScenario, 1500},
    {"breaker_probe_lifecycle", BreakerProbeLifecycleScenario, 20},
    {"breaker_reopen_refresh", BreakerReopenRefreshScenario, 20},
    {"breaker_probe_abandon", BreakerProbeAbandonScenario, 20},
    {"rcu_snapshot_swap", RcuSwapScenario, 1500},
    {"rcu_two_exchange_straggler", RcuTwoSwapScenario, 1500},
    {"lifecycle_version_swap", VersionSwapScenario, 1500},
    {"lifecycle_canary_split", CanarySplitScenario, 1500},
};

// >= 3 seeded mutations per structure; each weakens one tagged order to
// relaxed (or enables a tagged structural bug) and must be caught.
const MutationCase kMutations[] = {
    // BoundedMpmcRing.
    {"ring_push_seq_load", RingSpscScenario},
    {"ring_push_seq_store", RingSpscScenario},
    {"ring_pop_seq_load", RingSpscScenario},
    // IndexStack.
    {"stack_push_cas_ok", StackScenario},
    {"stack_pop_head_load", StackScenario},
    {"stack_pop_cas_fail", StackScenario},
    // MpscIntrusiveQueue.
    {"mpsc_push_link", MpscScenario},
    {"mpsc_pop_next_load", MpscScenario},
    {"mpsc_push_skip_clear", MpscScenario},
    // EventCount.
    {"ec_notify_waiters_load", EventCountScenario},
    {"ec_notify_skip_bump", EventCountScenario},
    {"ec_notify_skip_mutex", EventCountScenario},
    // CircuitBreaker (src/serving/health.h).
    {"brk_trip_cas", BreakerTripVisibilityScenario},
    {"brk_halfopen_keep_tokens", BreakerProbeLifecycleScenario},
    {"brk_reopen_refresh_skip", BreakerReopenRefreshScenario},
    {"brk_abandon_drop_token", BreakerProbeAbandonScenario},
    // RcuCell (src/common/rcu.h). rcu_read_enter and rcu_read_ptr_load are
    // analyzed-and-excluded, not seeded — see the RcuSwapScenario comment.
    {"rcu_skip_grace", RcuSwapScenario},
    {"rcu_sync_in_load", RcuSwapScenario},
    // Structural: drops the reader's post-registration epoch validation,
    // restoring the pre-fix algorithm; only the two-exchange scenario can
    // reach the resulting straggler reclaim.
    {"rcu_skip_validate", RcuTwoSwapScenario},
    // VersionGate / CanarySplit (src/serving/lifecycle_gate.h).
    {"lc_skip_drain", VersionSwapScenario},
    {"lc_drain_inflight", VersionSwapScenario},
    {"lc_enter_closed", VersionSwapScenario},
    {"lc_fraction_publish", CanarySplitScenario},
};

constexpr long kMutationRunCap = 30000;

}  // namespace
}  // namespace pretzel

int main() {
  using namespace pretzel;

  RunSelfTests();

  for (const CleanCase& c : kClean) {
    const auto r = mc::ExploreRandom(c.runs, kSeed, "", c.scenario);
    if (r.failed) {
      std::printf("[mc] CLEAN %s FAILED after %ld runs: %s\n", c.name, r.runs,
                  r.message.c_str());
    } else {
      std::printf("[mc] clean %s: %ld runs ok (%ld pruned)\n", c.name, r.runs,
                  r.pruned);
    }
    CHECK_MSG(!r.failed, c.name);
  }

  for (const MutationCase& m : kMutations) {
    const auto r = mc::ExploreRandom(kMutationRunCap, kSeed, m.name,
                                     m.scenario);
    if (r.failed) {
      std::printf("[mc] mutation %-24s detected in %5ld runs: %s\n", m.name,
                  r.runs, r.message.c_str());
    } else {
      std::printf("[mc] mutation %-24s NOT DETECTED in %ld runs\n", m.name,
                  r.runs);
    }
    CHECK_MSG(r.failed, m.name);
  }

  std::printf("model_check_test: all checks passed\n");
  return 0;
}
