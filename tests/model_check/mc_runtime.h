// Relacy-lite deterministic model checker for the lock-free primitives in
// src/common/lockfree.h.
//
// Include THIS header before lockfree.h in a PRETZEL_MODEL_CHECK build: it
// defines the PRETZEL_ATOMIC / PRETZEL_MO / PRETZEL_LF_* seam macros so the
// production structures compile against the modeled primitives below instead
// of the std:: forms, with zero source changes.
//
// Model:
//  - Virtual threads are real std::threads run one-at-a-time under a token
//    (one global mutex+condvar); every atomic access is a scheduling point,
//    so an Explorer controls the full interleaving.
//  - Each thread carries a vector clock; every modeled atomic keeps its full
//    store history. A relaxed/acquire load may read any stale store not yet
//    overwritten in the reader's happens-before past (coherence-per-location
//    enforced via per-thread read/write floors); the staleness choice is an
//    exploration point. Acquire joins the chosen store's release clock; RMWs
//    always read the latest store and continue release sequences.
//  - seq_cst is modeled as acquire+release plus must-read-latest. There is
//    deliberately NO global SC order: a total-order clock would introduce
//    happens-before edges real C++ does not have and mask real bugs (e.g. a
//    weakened EventCount waiters load could never read stale). The model is
//    thus slightly stronger than ISO seq_cst in ways that can hide bugs but
//    never invent them: no false positives.
//  - Var<T> wraps non-atomic data with pure clock-based race detection (no
//    scheduling points; unordered accesses are flagged whenever the second
//    one executes).
//  - mc::Mutex / mc::CondVar model lost wakeups faithfully: notify on an
//    empty waitlist is a no-op, and the predicate-false -> sleep window is a
//    scheduling point (the mutex is still held there, exactly as with
//    std::condition_variable).
//  - Deadlock (no runnable thread, not all done) fails the run; runs past
//    the step bound are pruned (neither pass nor fail).
//
// Explorers: DfsExplorer enumerates interleavings exhaustively (tiny litmus
// tests only — the tree is exponential); RandomExplorer drives seeded random
// walks, which is how the structure scenarios and the seeded-mutation
// regression suite run.
#ifndef PRETZEL_TESTS_MODEL_CHECK_MC_RUNTIME_H_
#define PRETZEL_TESTS_MODEL_CHECK_MC_RUNTIME_H_

#ifndef PRETZEL_MODEL_CHECK
#error "mc_runtime.h is only meaningful in PRETZEL_MODEL_CHECK builds"
#endif

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pretzel {
namespace mc {

// Slot kMainTid is the pseudo-thread for code running outside Go() (setup
// before the threads spawn, post-join checks after). Go() seeds every
// virtual thread's clock from the main clock and joins them back at the
// end, so setup writes happen-before all threads and all thread writes
// happen-before the post-checks.
inline constexpr int kMaxThreads = 8;
inline constexpr int kMainTid = kMaxThreads - 1;

struct Clock {
  uint64_t v[kMaxThreads] = {0};

  void Join(const Clock& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.v[i] > v[i]) v[i] = o.v[i];
    }
  }
  // Has this clock seen thread `tid` up to (at least) `tick`?
  bool Covers(int tid, uint64_t tick) const { return v[tid] >= tick; }
};

enum MemOrder : int { kRelaxed, kAcquire, kRelease, kAcqRel, kSeqCst };
// Aliases matching the spellings PRETZEL_MO pastes (relaxed, acquire, ...).
inline constexpr MemOrder k_relaxed = kRelaxed;
inline constexpr MemOrder k_acquire = kAcquire;
inline constexpr MemOrder k_release = kRelease;
inline constexpr MemOrder k_acq_rel = kAcqRel;
inline constexpr MemOrder k_seq_cst = kSeqCst;

inline bool HasAcquire(MemOrder o) {
  return o == kAcquire || o == kAcqRel || o == kSeqCst;
}
inline bool HasRelease(MemOrder o) {
  return o == kRelease || o == kAcqRel || o == kSeqCst;
}

// Thrown inside virtual threads to unwind them when a run is discarded
// (prune / drain-after-failure) or has already recorded its failure.
struct AbortRunError {};
struct FailRunError {};

class Explorer {
 public:
  virtual ~Explorer() = default;
  // Pick one of n alternatives at this decision point (n >= 2).
  virtual int Choose(int n) = 0;
  // Advance to the next run; false = state space exhausted.
  virtual bool NextRun() = 0;
};

class Sim {
 public:
  static Sim& Get() {
    static Sim s;
    return s;
  }

  void Reset(Explorer* ex, std::string mutation) {
    explorer_ = ex;
    mutation_ = std::move(mutation);
    for (auto& t : threads_) {
      t.fn = nullptr;
      t.state = St::kUnused;
      t.wait_obj = nullptr;
      t.clock = Clock{};
    }
    main_clock_ = Clock{};
    nthreads_ = 0;
    steps_ = 0;
    failed_ = false;
    pruned_ = false;
    aborting_ = false;
    fail_msg_.clear();
  }

  bool IsMutation(const char* tag) const { return mutation_ == tag; }
  bool InSimThread() const { return tls_tid_ >= 0; }
  int Tid() const { return InSimThread() ? tls_tid_ : kMainTid; }
  Clock& MyClock() {
    return InSimThread() ? threads_[tls_tid_].clock : main_clock_;
  }
  // Advance this thread's own component; every modeled op gets a unique
  // timestamp, snapshotted into store entries and access records.
  uint64_t Tick() {
    Clock& c = MyClock();
    return ++c.v[Tid()];
  }

  // Exploration decision. n<=1 is free (never consumes explorer state, so
  // DFS paths stay compact and deterministic).
  int ChooseIdx(int n) {
    if (n <= 1) return 0;
    return explorer_->Choose(n);
  }

  // Yield the token back to the scheduler; resume when rescheduled.
  void SchedPoint() {
    if (!InSimThread()) return;  // Main runs only while no thread does.
    // An instrumented op inside a destructor running during exception
    // unwind (e.g. an RAII read-guard's exit bump after a failed Check, or
    // during abort drain) must not re-enter the scheduler: Pass could
    // throw a second exception mid-unwind and terminate. Executing the op
    // inline on the held token is safe — a run that is unwinding is
    // already failed or void.
    if (std::uncaught_exceptions() > 0) return;
    Pass(St::kReady, nullptr);
  }

  // Park until WakeAll(obj)/WakeThread marks us ready again.
  void BlockOn(void* obj) {
    if (!InSimThread()) {
      std::fprintf(stderr, "mc: BlockOn outside a sim thread\n");
      std::abort();
    }
    Pass(St::kBlocked, obj);
  }

  void WakeAll(void* obj) {
    std::lock_guard<std::mutex> lk(m_);
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].state == St::kBlocked && threads_[i].wait_obj == obj) {
        threads_[i].state = St::kReady;
      }
    }
  }

  void WakeThread(int t) {
    std::lock_guard<std::mutex> lk(m_);
    if (threads_[t].state == St::kBlocked) {
      threads_[t].state = St::kReady;
    }
  }

  // Record the run's (first) failure. In a sim thread this also unwinds it.
  void Fail(std::string msg) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (!failed_) {
        failed_ = true;
        fail_msg_ = std::move(msg);
      }
    }
    if (InSimThread()) throw FailRunError{};
  }

  bool failed() const { return failed_; }
  bool pruned() const { return pruned_; }
  bool aborting() const { return aborting_; }
  const std::string& fail_message() const { return fail_msg_; }

  // Run the virtual threads to completion under explorer control.
  void Go(std::vector<std::function<void()>> fns) {
    const int n = static_cast<int>(fns.size());
    if (n > kMainTid) {
      std::fprintf(stderr, "mc: too many threads (%d > %d)\n", n, kMainTid);
      std::abort();
    }
    nthreads_ = n;
    for (int i = 0; i < n; ++i) {
      threads_[i].state = St::kReady;
      threads_[i].wait_obj = nullptr;
      threads_[i].clock = main_clock_;  // Setup happens-before every thread.
    }
    std::vector<std::thread> os;
    os.reserve(n);
    for (int i = 0; i < n; ++i) {
      os.emplace_back([this, i, fn = std::move(fns[i])]() {
        tls_tid_ = i;
        {
          std::unique_lock<std::mutex> lk(m_);
          cv_.wait(lk, [&] { return active_ == i; });
        }
        if (!aborting_) {
          try {
            fn();
          } catch (const AbortRunError&) {
          } catch (const FailRunError&) {
          }
        }
        {
          std::lock_guard<std::mutex> lk(m_);
          threads_[i].state = St::kDone;
          active_ = -1;
          cv_.notify_all();
        }
        tls_tid_ = -1;
      });
    }
    {
      std::unique_lock<std::mutex> lk(m_);
      for (;;) {
        if (failed_) aborting_ = true;
        std::vector<int> ready;
        bool all_done = true;
        int nondone = -1;
        for (int i = 0; i < n; ++i) {
          if (threads_[i].state != St::kDone) {
            all_done = false;
            if (nondone < 0) nondone = i;
          }
          if (threads_[i].state == St::kReady) ready.push_back(i);
        }
        if (all_done) break;
        int pick;
        if (aborting_) {
          // Drain: hand the token to anyone not done (blocked threads
          // included); they unwind via AbortRunError at their next resume.
          pick = ready.empty() ? nondone : ready[0];
        } else if (ready.empty()) {
          std::string msg = "deadlock: no runnable thread; blocked = {";
          bool first = true;
          for (int i = 0; i < n; ++i) {
            if (threads_[i].state == St::kBlocked) {
              if (!first) msg += ",";
              msg += std::to_string(i);
              first = false;
            }
          }
          msg += "}";
          failed_ = true;
          fail_msg_ = msg;
          aborting_ = true;
          pick = nondone;
        } else if (++steps_ > kMaxSteps) {
          pruned_ = true;  // Unfair schedule (e.g. starved CAS loop): prune.
          aborting_ = true;
          pick = ready[0];
        } else {
          const int c = ready.size() <= 1
                            ? 0
                            : explorer_->Choose(static_cast<int>(ready.size()));
          pick = ready[static_cast<size_t>(c)];
        }
        active_ = pick;
        cv_.notify_all();
        cv_.wait(lk, [&] { return active_ == -1; });
      }
      active_ = -2;
    }
    for (auto& t : os) t.join();
    // Every thread's work happens-before the post-join checks.
    for (int i = 0; i < n; ++i) main_clock_.Join(threads_[i].clock);
  }

 private:
  enum class St { kUnused, kReady, kRunning, kBlocked, kDone };
  struct ThreadRec {
    std::function<void()> fn;
    St state = St::kUnused;
    void* wait_obj = nullptr;
    Clock clock;
  };

  void Pass(St rest_state, void* obj) {
    std::unique_lock<std::mutex> lk(m_);
    const int me = tls_tid_;
    threads_[me].state = rest_state;
    threads_[me].wait_obj = obj;
    active_ = -1;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == me; });
    threads_[me].state = St::kRunning;
    threads_[me].wait_obj = nullptr;
    if (aborting_) throw AbortRunError{};
  }

  static constexpr long kMaxSteps = 20000;

  ThreadRec threads_[kMaxThreads];
  Clock main_clock_;
  int nthreads_ = 0;

  std::mutex m_;
  std::condition_variable cv_;
  int active_ = -2;  // -2 idle, -1 scheduler owns token, >=0 thread tid.

  Explorer* explorer_ = nullptr;
  std::string mutation_;
  long steps_ = 0;
  bool failed_ = false;
  bool pruned_ = false;
  bool aborting_ = false;
  std::string fail_msg_;

  static thread_local int tls_tid_;
};

inline thread_local int Sim::tls_tid_ = -1;

// Seam hooks -----------------------------------------------------------------

// PRETZEL_MO(tag, order): the active mutation weakens exactly the op whose
// tag it names to relaxed; every other op keeps its declared order.
inline MemOrder OrderFor(const char* tag, MemOrder declared) {
  return Sim::Get().IsMutation(tag) ? kRelaxed : declared;
}

inline bool MutationEnabled(const char* name) {
  return Sim::Get().IsMutation(name);
}

inline void Check(bool ok, const char* msg) {
  Sim& sim = Sim::Get();
  if (ok || sim.pruned()) return;  // Pruned runs assert nothing.
  sim.Fail(msg);
}

}  // namespace mc
}  // namespace pretzel

// The seam consumed by src/common/lockfree.h.
#define PRETZEL_ATOMIC(T) ::pretzel::mc::Atomic<T>
#define PRETZEL_MC_VAR(T) ::pretzel::mc::Var<T>
#define PRETZEL_MO(tag, order) \
  ::pretzel::mc::OrderFor(#tag, ::pretzel::mc::k_##order)
#define PRETZEL_LF_MUTEX ::pretzel::mc::Mutex
#define PRETZEL_LF_CONDVAR ::pretzel::mc::CondVar
#define PRETZEL_LF_UNIQUE_LOCK ::pretzel::mc::UniqueLock
#define PRETZEL_LF_LOCK_GUARD ::pretzel::mc::LockGuard
#define PRETZEL_LF_MUTATION(name) (::pretzel::mc::MutationEnabled(#name))
// Destructors doing instrumented ops must let AbortRunError out (the
// scheduler unwinds threads through Pass); dtors during an in-flight
// unwind are covered by SchedPoint's uncaught-exception inline path.
#define PRETZEL_LF_DTOR_NOEXCEPT noexcept(false)

namespace pretzel {
namespace mc {

// Modeled std::atomic. Keeps the whole store history for the run; loads may
// be served stale under explorer control, within coherence.
template <typename T>
class Atomic {
 public:
  Atomic() : Atomic(T{}) {}
  Atomic(T v) {  // NOLINT(google-explicit-constructor): mirrors std::atomic.
    entries_.push_back(Entry{v, Clock{}, -1, 0});
  }
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(MemOrder mo) const {
    Sim& sim = Sim::Get();
    sim.SchedPoint();
    const int tid = sim.Tid();
    sim.Tick();
    const size_t latest = entries_.size() - 1;
    size_t chosen = latest;
    if (mo != kSeqCst) {
      // Candidates, newest first: stop offering older stores once we pass a
      // store this thread already happens-after (coherence forbids reading
      // anything it overwrote). The candidate itself stays readable.
      const Clock& my = sim.MyClock();
      std::vector<size_t> cand;
      bool hb_newer = false;
      for (size_t j = latest + 1; j-- > floor_[tid];) {
        const Entry& e = entries_[j];
        if (hb_newer) break;
        cand.push_back(j);
        if (e.tid >= 0 && my.Covers(e.tid, e.self_tick)) hb_newer = true;
        if (j == 0) break;
      }
      chosen = cand[static_cast<size_t>(
          sim.ChooseIdx(static_cast<int>(cand.size())))];
    }
    const Entry& e = entries_[chosen];
    if (HasAcquire(mo)) sim.MyClock().Join(e.sync);
    if (chosen > floor_[tid]) floor_[tid] = chosen;
    return e.value;
  }

  void store(T v, MemOrder mo) {
    Sim& sim = Sim::Get();
    sim.SchedPoint();
    const int tid = sim.Tid();
    const uint64_t tick = sim.Tick();
    Entry e{v, Clock{}, tid, tick};
    if (HasRelease(mo)) e.sync = sim.MyClock();
    entries_.push_back(e);
    floor_[tid] = entries_.size() - 1;
  }

  T fetch_add(T d, MemOrder mo) {
    return Rmw(mo, [d](T old) { return static_cast<T>(old + d); });
  }
  T fetch_sub(T d, MemOrder mo) {
    return Rmw(mo, [d](T old) { return static_cast<T>(old - d); });
  }
  T exchange(T v, MemOrder mo) {
    return Rmw(mo, [v](T) { return v; });
  }

  bool compare_exchange_weak(T& expected, T desired, MemOrder ok,
                             MemOrder fail) {
    // Modeled as strong (no spurious failure): a strict subset of weak
    // behaviors, so no false positives; retry loops still get exercised via
    // genuine interference.
    Sim& sim = Sim::Get();
    sim.SchedPoint();
    const int tid = sim.Tid();
    const uint64_t tick = sim.Tick();
    const Entry prev = entries_.back();  // RMWs always see the latest store.
    if (prev.value == expected) {
      if (HasAcquire(ok)) sim.MyClock().Join(prev.sync);
      Entry e{desired, Clock{}, tid, tick};
      if (HasRelease(ok)) {
        e.sync = prev.sync;
        e.sync.Join(sim.MyClock());
      } else {
        e.sync = prev.sync;  // Release-sequence continuation.
      }
      entries_.push_back(e);
      floor_[tid] = entries_.size() - 1;
      return true;
    }
    expected = prev.value;
    if (HasAcquire(fail)) sim.MyClock().Join(prev.sync);
    floor_[tid] = entries_.size() - 1;  // We observed the latest store.
    return false;
  }
  bool compare_exchange_weak(T& expected, T desired, MemOrder ok) {
    return compare_exchange_weak(expected, desired, ok, FailOrderOf(ok));
  }
  bool compare_exchange_strong(T& expected, T desired, MemOrder ok,
                               MemOrder fail) {
    return compare_exchange_weak(expected, desired, ok, fail);
  }
  bool compare_exchange_strong(T& expected, T desired, MemOrder ok) {
    return compare_exchange_weak(expected, desired, ok);
  }

 private:
  struct Entry {
    T value;
    Clock sync;          // Release clock riding this store (empty if relaxed).
    int tid;             // -1: pre-Sim initial value.
    uint64_t self_tick;  // Storer's own clock component at the store.
  };

  static MemOrder FailOrderOf(MemOrder ok) {
    if (ok == kAcqRel) return kAcquire;
    if (ok == kRelease) return kRelaxed;
    return ok;
  }

  template <typename F>
  T Rmw(MemOrder mo, F f) {
    Sim& sim = Sim::Get();
    sim.SchedPoint();
    const int tid = sim.Tid();
    const uint64_t tick = sim.Tick();
    const Entry prev = entries_.back();  // RMWs always see the latest store.
    if (HasAcquire(mo)) sim.MyClock().Join(prev.sync);
    Entry e{f(prev.value), Clock{}, tid, tick};
    if (HasRelease(mo)) {
      e.sync = prev.sync;
      e.sync.Join(sim.MyClock());
    } else {
      // Relaxed/acquire RMW continues the release sequence: readers of this
      // store still synchronize with the head release.
      e.sync = prev.sync;
    }
    entries_.push_back(e);
    floor_[tid] = entries_.size() - 1;
    return prev.value;
  }

  mutable std::vector<Entry> entries_;
  mutable size_t floor_[kMaxThreads] = {0};
};

// Non-atomic data with pure vector-clock race detection. No scheduling
// points: an unordered pair of accesses is flagged whenever the second one
// executes, regardless of how the explorer happened to interleave them.
template <typename T>
class Var {
 public:
  Var() : val_{} {}
  Var(const T& v) : val_(v) {}  // NOLINT(google-explicit-constructor)
  Var(const Var&) = delete;
  Var& operator=(const Var&) = delete;

  Var& operator=(T v) {
    RecordWrite();
    val_ = std::move(v);
    return *this;
  }
  operator T() const {  // NOLINT(google-explicit-constructor)
    RecordRead();
    return val_;
  }

 private:
  void RecordWrite() {
    Sim& sim = Sim::Get();
    const int tid = sim.Tid();
    const Clock& my = sim.MyClock();
    if (wtid_ >= 0 && wtid_ != tid && !my.Covers(wtid_, wtick_)) {
      sim.Fail("data race: write/write on non-atomic");
      return;
    }
    for (int t = 0; t < kMaxThreads; ++t) {
      if (t != tid && rtick_[t] != 0 && !my.Covers(t, rtick_[t])) {
        sim.Fail("data race: write concurrent with read on non-atomic");
        return;
      }
    }
    const uint64_t tick = sim.Tick();
    wtid_ = tid;
    wtick_ = tick;
    // Prior reads happen-before this (race-checked) write; future accesses
    // need only be checked against the write.
    for (auto& r : rtick_) r = 0;
  }

  void RecordRead() const {
    Sim& sim = Sim::Get();
    const int tid = sim.Tid();
    const Clock& my = sim.MyClock();
    if (wtid_ >= 0 && wtid_ != tid && !my.Covers(wtid_, wtick_)) {
      sim.Fail("data race: read concurrent with write on non-atomic");
      return;
    }
    rtick_[tid] = sim.Tick();
  }

  T val_;
  mutable int wtid_ = -1;
  mutable uint64_t wtick_ = 0;
  mutable uint64_t rtick_[kMaxThreads] = {0};
};

// Modeled mutex: ownership + happens-before via a release clock, blocking
// via the scheduler (a blocked thread is unrunnable, so mutex deadlocks are
// caught by the no-runnable-thread detector).
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    Sim& sim = Sim::Get();
    if (!sim.InSimThread()) {  // Setup/teardown: trivially uncontended.
      owner_ = kMainTid;
      return;
    }
    sim.SchedPoint();
    while (owner_ != kFree) sim.BlockOn(this);
    owner_ = sim.Tid();
    sim.Tick();
    sim.MyClock().Join(release_clock_);
  }

  void unlock() {
    Sim& sim = Sim::Get();
    if (!sim.InSimThread()) {
      owner_ = kFree;
      return;
    }
    sim.Tick();
    release_clock_.Join(sim.MyClock());
    owner_ = kFree;
    sim.WakeAll(this);
  }

 private:
  static constexpr int kFree = -1;
  int owner_ = kFree;
  Clock release_clock_;
};

class UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) : m_(&m) { m_->lock(); }
  ~UniqueLock() { m_->unlock(); }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  Mutex* mutex() { return m_; }

 private:
  Mutex* m_;
};

class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

// Modeled condition variable. Faithful in the two ways that matter for
// lost-wakeup bugs: (1) notify with an empty waitlist is a no-op; (2) the
// window between the predicate evaluating false and the atomic
// enqueue+unlock+sleep is a scheduling point (the waiter still holds the
// mutex there, so only lockless notifiers can interleave — exactly the
// real-hardware hazard). Spurious wakeups and timeouts are not modeled
// (both only ADD wakeups, so omitting them cannot hide a lost wakeup).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    Sim& sim = Sim::Get();
    if (!sim.InSimThread()) {
      std::fprintf(stderr, "mc: CondVar::wait outside a sim thread\n");
      std::abort();
    }
    while (!pred()) {
      sim.SchedPoint();  // The check-then-sleep window.
      waiters_.push_back(sim.Tid());
      lk.mutex()->unlock();  // Enqueue+unlock+sleep: atomic (no sched point).
      sim.BlockOn(this);
      lk.mutex()->lock();
    }
  }

  // Timeouts are not modeled: behaves as an untimed wait and reports
  // "notified". Nothing in the model-check scenarios relies on deadlines.
  template <typename TimePoint, typename Pred>
  bool wait_until(UniqueLock& lk, const TimePoint&, Pred pred) {
    wait(lk, std::move(pred));
    return true;
  }

  void notify_one() {
    Sim& sim = Sim::Get();
    if (waiters_.empty()) return;  // Lost wakeup, modeled faithfully.
    const int i = sim.ChooseIdx(static_cast<int>(waiters_.size()));
    const int t = waiters_[static_cast<size_t>(i)];
    waiters_.erase(waiters_.begin() + i);
    sim.WakeThread(t);
  }

  void notify_all() {
    Sim& sim = Sim::Get();
    for (int t : waiters_) sim.WakeThread(t);
    waiters_.clear();
  }

 private:
  std::vector<int> waiters_;
};

// Explorers ------------------------------------------------------------------

class RandomExplorer : public Explorer {
 public:
  explicit RandomExplorer(uint64_t seed) : seed_(seed) { Reseed(); }

  int Choose(int n) override {
    // xorshift64*.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return static_cast<int>((state_ * 0x2545F4914F6CDD1Dull) %
                            static_cast<uint64_t>(n));
  }
  bool NextRun() override {
    ++seed_;
    Reseed();
    return true;  // Never exhausts; the driver bounds the run count.
  }
  uint64_t seed() const { return seed_; }

 private:
  void Reseed() {
    // splitmix64 of the seed, so adjacent seeds give unrelated walks.
    uint64_t z = seed_ + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    state_ = (z ^ (z >> 31)) | 1;
  }

  uint64_t seed_;
  uint64_t state_ = 1;
};

// Depth-first enumeration of every decision sequence. Only viable for tiny
// litmus scenarios; the tree is exponential in scheduling points.
class DfsExplorer : public Explorer {
 public:
  int Choose(int n) override {
    if (depth_ < path_.size()) {
      return path_[depth_++].choice;
    }
    path_.push_back({0, n});
    ++depth_;
    return 0;
  }
  bool NextRun() override {
    depth_ = 0;
    while (!path_.empty() && path_.back().choice + 1 >= path_.back().fanout) {
      path_.pop_back();
    }
    if (path_.empty()) return false;
    ++path_.back().choice;
    return true;
  }

 private:
  struct Node {
    int choice;
    int fanout;
  };
  std::vector<Node> path_;
  size_t depth_ = 0;
};

// Drivers --------------------------------------------------------------------

inline void Go(std::vector<std::function<void()>> fns) {
  Sim::Get().Go(std::move(fns));
}

inline bool Failed() { return Sim::Get().failed(); }
inline bool Pruned() { return Sim::Get().pruned(); }

struct ExploreResult {
  bool failed = false;
  std::string message;
  long runs = 0;    // Runs executed (including the failing one).
  long pruned = 0;  // Runs cut by the step bound (neither pass nor fail).
};

// Run `scenario` repeatedly under `ex` until a failure, exhaustion, or
// `max_runs`. The scenario constructs fresh structures, calls mc::Go with
// its thread bodies, and asserts invariants with mc::Check (post-join checks
// included).
inline ExploreResult Explore(Explorer& ex, long max_runs,
                             const std::string& mutation,
                             const std::function<void()>& scenario) {
  Sim& sim = Sim::Get();
  ExploreResult r;
  for (long i = 0; i < max_runs; ++i) {
    sim.Reset(&ex, mutation);
    scenario();
    r.runs = i + 1;
    if (sim.failed()) {
      r.failed = true;
      r.message = sim.fail_message();
      return r;
    }
    if (sim.pruned()) ++r.pruned;
    if (!ex.NextRun()) break;
  }
  return r;
}

inline ExploreResult ExploreRandom(long runs, uint64_t seed,
                                   const std::string& mutation,
                                   const std::function<void()>& scenario) {
  RandomExplorer ex(seed);
  return Explore(ex, runs, mutation, scenario);
}

inline ExploreResult ExploreDfs(long max_runs, const std::string& mutation,
                                const std::function<void()>& scenario) {
  DfsExplorer ex;
  return Explore(ex, max_runs, mutation, scenario);
}

}  // namespace mc
}  // namespace pretzel

#endif  // PRETZEL_TESTS_MODEL_CHECK_MC_RUNTIME_H_
