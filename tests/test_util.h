// Tiny assert-style test harness: CHECK macros that print and abort with
// context. Tests are plain executables registered with ctest; exit 0 = pass.
#ifndef PRETZEL_TESTS_TEST_UTIL_H_
#define PRETZEL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>

#define CHECK_MSG(cond, ...)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n  ", __FILE__, \
                   __LINE__, #cond);                                  \
      std::fprintf(stderr, __VA_ARGS__);                              \
      std::fprintf(stderr, "\n");                                     \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#define CHECK(cond) CHECK_MSG(cond, "%s", "")

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    if (!((a) == (b))) {                                                     \
      std::fprintf(stderr, "CHECK_EQ failed at %s:%d: %s == %s\n", __FILE__, \
                   __LINE__, #a, #b);                                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define CHECK_NEAR(a, b, eps)                                             \
  do {                                                                    \
    const double _a = (a);                                                \
    const double _b = (b);                                                \
    if (!(std::fabs(_a - _b) <= (eps))) {                                 \
      std::fprintf(stderr,                                                \
                   "CHECK_NEAR failed at %s:%d: %s=%g vs %s=%g (eps %g)\n", \
                   __FILE__, __LINE__, #a, _a, #b, _b, (double)(eps));    \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // PRETZEL_TESTS_TEST_UTIL_H_
