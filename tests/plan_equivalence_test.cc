// The load-bearing correctness test: every optimizer configuration of every
// PRETZEL plan must score exactly like the operator-at-a-time black-box
// execution of the same pipeline, for both workload families.
#include <string>
#include <vector>

#include "src/blackbox/blackbox_model.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

template <typename Workload>
void CheckFamily(const Workload& workload, uint64_t seed,
                 size_t expect_full_stages, bool push_applies) {
  ObjectStore store;
  FlourContext flour(&store);
  VectorPool pool;
  ExecContext ctx(&pool);

  OptimizerOptions full;
  OptimizerOptions no_push = full;
  no_push.enable_linear_push = false;
  OptimizerOptions no_merge = full;
  no_merge.enable_stage_merge = false;
  OptimizerOptions no_inline = full;
  no_inline.enable_inline = false;
  OptimizerOptions none;
  none.enable_linear_push = false;
  none.enable_stage_merge = false;
  none.enable_inline = false;
  const std::vector<OptimizerOptions> configs = {full, no_push, no_merge,
                                                 no_inline, none};

  Rng rng(seed);
  for (const auto& spec : workload.pipelines()) {
    auto model = BlackBoxModel::Load(SaveModelImage(spec), BlackBoxOptions());
    CHECK(model.ok());
    auto program = flour.FromPipeline(spec);

    std::vector<std::shared_ptr<ModelPlan>> plans;
    for (size_t c = 0; c < configs.size(); ++c) {
      CompileOptions copts;
      copts.optimizer = configs[c];
      copts.aot_compile = c % 2 == 0;  // Exercise both binding modes.
      auto plan = CompilePlan(*program, spec.name, copts);
      CHECK(plan.ok());
      plans.push_back(*plan);
    }
    // The full optimizer collapses the plan; disabling rewrites keeps more
    // stages alive.
    CHECK_EQ(plans[0]->NumStages(), expect_full_stages);
    if (push_applies) {  // The linear push only exists for linear finals.
      CHECK(plans[1]->NumStages() > plans[0]->NumStages());
    }
    CHECK(plans[4]->NumStages() > plans[0]->NumStages());

    for (int i = 0; i < 5; ++i) {
      const std::string input = workload.SampleInput(rng);
      auto expected = (*model)->Predict(input);
      CHECK(expected.ok());
      for (const auto& plan : plans) {
        auto got = ExecutePlan(*plan, input, ctx);
        CHECK(got.ok());
        CHECK_NEAR(*got, *expected, 1e-5);
      }
    }
  }
}

int main() {
  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = 8;
  sa_opts.char_dict_entries = 600;
  sa_opts.word_dict_entries = 200;
  sa_opts.vocabulary_size = 400;
  CheckFamily(SaWorkload::Generate(sa_opts), 1234, /*expect_full_stages=*/1,
              /*push_applies=*/true);

  AcWorkloadOptions ac_opts;
  ac_opts.num_pipelines = 6;
  ac_opts.featurizer_trees = 12;
  ac_opts.featurizer_depth = 5;
  ac_opts.final_trees = 8;
  ac_opts.final_depth = 4;
  CheckFamily(AcWorkload::Generate(ac_opts), 5678, /*expect_full_stages=*/2,
              /*push_applies=*/false);

  std::printf("plan_equivalence_test: PASS\n");
  return 0;
}
