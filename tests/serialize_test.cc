// BinaryRecord wire format: round-trips, structural rejection (truncated,
// oversized, corrupt, non-finite, unsorted), misaligned-buffer handling,
// batch framing, a deterministic mutation fuzz pass (ASan/TSan builds run
// this test, so out-of-bounds reads in the validator would be caught), and
// the end-to-end contract: a binary record must score identically (1e-6) to
// its text twin on every SA/AC plan under every optimizer config, through
// the per-record, batch, and Runtime entry points.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serialize.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/runtime/runtime.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"
#include "tests/test_util.h"

using namespace pretzel;

namespace {

std::vector<std::pair<const char*, OptimizerOptions>> Configs() {
  OptimizerOptions full;
  OptimizerOptions sparse_fused;
  sparse_fused.enable_linear_push = false;
  OptimizerOptions sparse_unmerged = sparse_fused;
  sparse_unmerged.enable_stage_merge = false;
  OptimizerOptions unfused;
  unfused.enable_linear_push = false;
  unfused.enable_stage_merge = false;
  unfused.enable_inline = false;
  unfused.enable_sparse_fuse = false;
  return {{"full", full},
          {"sparse-fused", sparse_fused},
          {"sparse-unmerged", sparse_unmerged},
          {"unfused", unfused}};
}

void TestDenseRoundTrip() {
  const std::vector<float> values = {1.5f, -2.25f, 0.0f, 3.0e-7f, 40.0f};
  const std::string record = EncodeDenseRecord(values.data(), values.size());
  CHECK(IsBinaryRecord(record));
  CHECK(!IsBinaryRecord("1.5,-2.25,0.0"));
  CHECK(!IsBinaryRecord(""));

  BinaryRecordView view;
  CHECK(ParseBinaryRecord(record, &view).ok());
  CHECK(view.format == BinaryRecordFormat::kDense);
  CHECK(view.valid);
  CHECK_EQ(view.dim, values.size());
  CHECK_EQ(view.nnz, values.size());
  CHECK_EQ(view.record_size, record.size());
  // std::string data is at least 8-aligned (SSO) or 16-aligned (heap), and
  // the header is 16 bytes, so a whole-string record's payload is aligned.
  CHECK(view.aligned);
  CHECK(view.values != nullptr);
  for (size_t i = 0; i < values.size(); ++i) {
    CHECK_EQ(view.values[i], values[i]);
  }

  // The validity bit is carried, not enforced, by the parser.
  const std::string invalid =
      EncodeDenseRecord(values.data(), values.size(), /*valid=*/false);
  CHECK(ParseBinaryRecord(invalid, &view).ok());
  CHECK(!view.valid);
}

void TestSparseRoundTrip() {
  const std::vector<uint32_t> ids = {0, 3, 7, 90, 99};
  const std::vector<float> vals = {1.0f, 2.0f, 1.0f, 4.5f, -1.0f};
  const std::string record =
      EncodeSparseRecord(ids.data(), vals.data(), ids.size(), /*dim=*/100);
  CHECK(IsBinaryRecord(record));

  BinaryRecordView view;
  CHECK(ParseBinaryRecord(record, &view).ok());
  CHECK(view.format == BinaryRecordFormat::kSparse);
  CHECK(view.valid);
  CHECK_EQ(view.dim, 100u);
  CHECK_EQ(view.nnz, ids.size());
  CHECK(view.aligned);
  for (size_t i = 0; i < ids.size(); ++i) {
    CHECK_EQ(view.ids[i], ids[i]);
    CHECK_EQ(view.values[i], vals[i]);
  }

  // nnz == 0 is a legal (all-zero) sparse vector.
  const std::string empty = EncodeSparseRecord(nullptr, nullptr, 0, 100);
  CHECK(ParseBinaryRecord(empty, &view).ok());
  CHECK_EQ(view.nnz, 0u);
}

void TestRejection() {
  const std::vector<float> values = {1.0f, 2.0f, 3.0f};
  const std::string good = EncodeDenseRecord(values.data(), values.size());
  BinaryRecordView view;

  // Truncated: inside the header, and inside the payload.
  for (size_t n = 0; n < good.size(); ++n) {
    CHECK(!ParseBinaryRecord(std::string_view(good).substr(0, n), &view).ok());
  }
  // Oversized buffer is rejected unless the caller asked for trailing data.
  CHECK(!ParseBinaryRecord(good + "x", &view).ok());
  CHECK(ParseBinaryRecord(good + "x", &view, /*allow_trailing=*/true).ok());

  const auto corrupt = [&](size_t offset, uint8_t byte) {
    std::string bad = good;
    bad[offset] = static_cast<char>(byte);
    return ParseBinaryRecord(bad, &view);
  };
  CHECK(!corrupt(0, 0x00).ok());   // Magic.
  CHECK(!corrupt(4, 0x09).ok());   // Unknown format tag.
  CHECK(!corrupt(5, 0x83).ok());   // Unknown flag bits.
  CHECK(!corrupt(6, 0x01).ok());   // Reserved must be zero.
  CHECK(!corrupt(8, 0xFF).ok());   // dim no longer matches the payload.
  CHECK(!corrupt(12, 0x04).ok());  // Dense nnz != dim.
  CHECK(!corrupt(11, 0x7F).ok());  // dim beyond the wire cap.

  // Non-finite payload values are rejected up front, not discovered by a
  // kernel. Bit patterns: quiet NaN and +Inf.
  for (const uint32_t bits : {0x7FC00000u, 0x7F800000u}) {
    std::string bad = good;
    std::memcpy(bad.data() + sizeof(BinaryRecordHeader), &bits, 4);
    CHECK(!ParseBinaryRecord(bad, &view).ok());
  }

  // Sparse structural invariants: ids strictly ascending, each < dim.
  const std::vector<float> svals = {1.0f, 1.0f};
  for (const std::vector<uint32_t>& bad_ids :
       {std::vector<uint32_t>{5, 5}, {7, 3}, {1, 100}}) {
    const std::string bad = EncodeSparseRecord(bad_ids.data(), svals.data(),
                                               bad_ids.size(), /*dim=*/100);
    CHECK(!ParseBinaryRecord(bad, &view).ok());
  }
  // Sparse nnz > dim can't even size a payload.
  const std::vector<uint32_t> two_ids = {0, 1};
  const std::string bad =
      EncodeSparseRecord(two_ids.data(), svals.data(), 2, /*dim=*/1);
  CHECK(!ParseBinaryRecord(bad, &view).ok());
}

void TestMisaligned() {
  const std::vector<float> values = {4.0f, 5.0f, 6.0f, 7.0f};
  const std::string record = EncodeDenseRecord(values.data(), values.size());
  const std::vector<uint32_t> sids = {2, 9};
  const std::vector<float> svals = {1.0f, 3.0f};
  const std::string sparse =
      EncodeSparseRecord(sids.data(), svals.data(), sids.size(), /*dim=*/16);

  // Records sliced at an odd offset out of a larger buffer: the view must
  // report misalignment instead of handing out unusable pointers, and the
  // staging copies must recover the payload exactly.
  std::string buffer = "x" + record + sparse;
  std::string_view dense_slice(buffer.data() + 1, record.size());
  BinaryRecordView view;
  CHECK(ParseBinaryRecord(dense_slice, &view).ok());
  CHECK(!view.aligned);
  CHECK(view.values == nullptr);
  std::vector<float> staged(view.dim);
  CopyDenseValues(view, staged.data());
  for (size_t i = 0; i < values.size(); ++i) {
    CHECK_EQ(staged[i], values[i]);
  }

  std::string_view sparse_slice(buffer.data() + 1 + record.size(),
                                sparse.size());
  CHECK(ParseBinaryRecord(sparse_slice, &view).ok());
  CHECK(!view.aligned);
  std::vector<uint32_t> sidso(view.nnz);
  std::vector<float> svalso(view.nnz);
  CopySparsePayload(view, sidso.data(), svalso.data());
  for (size_t i = 0; i < sids.size(); ++i) {
    CHECK_EQ(sidso[i], sids[i]);
    CHECK_EQ(svalso[i], svals[i]);
  }
}

void TestSplitBatch() {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<uint32_t> bids = {1, 5};
  const std::vector<float> bvals = {1.0f, 2.0f};
  const std::string ra = EncodeDenseRecord(a.data(), a.size());
  const std::string rb =
      EncodeSparseRecord(bids.data(), bvals.data(), bids.size(), /*dim=*/8);

  std::vector<std::string_view> records;
  const std::string framed = ra + rb + ra;  // Views alias this buffer.
  CHECK(SplitBinaryBatch(framed, &records).ok());
  CHECK_EQ(records.size(), size_t{3});
  CHECK_EQ(records[0].size(), ra.size());
  CHECK_EQ(records[1].size(), rb.size());
  CHECK(records[0] == ra && records[1] == rb && records[2] == ra);

  CHECK(SplitBinaryBatch("", &records).ok());
  CHECK(records.empty());
  // A torn tail or trailing garbage rejects the whole buffer.
  CHECK(!SplitBinaryBatch(ra + rb.substr(0, rb.size() - 2), &records).ok());
  CHECK(!SplitBinaryBatch(ra + "junk", &records).ok());
}

// Binary-vs-text score parity on every plan variant: the binary encoding of
// a sampled input must score within 1e-6 of the text encoding through
// ExecutePlan, through a mixed-format ExecutePlanBatch, and the batch path
// must mask (not fail around) records whose validity bit is clear.
template <typename Workload, typename BinaryFromTextFn>
void CheckWirePairParity(const Workload& workload, uint64_t seed,
                         bool is_dense, BinaryFromTextFn binary_from_text) {
  ObjectStore store;
  FlourContext flour(&store);
  VectorPool pool;
  ExecContext ctx(&pool);
  Rng rng(seed);
  const auto configs = Configs();

  for (size_t pi = 0; pi < workload.pipelines().size(); ++pi) {
    const auto& spec = workload.pipelines()[pi];
    auto program = flour.FromPipeline(spec);
    std::vector<std::string> texts, binaries;
    for (int i = 0; i < 5; ++i) {
      texts.push_back(workload.SampleInput(rng));
      binaries.push_back(binary_from_text(texts.back(), pi));
    }
    for (const auto& [name, opts] : configs) {
      CompileOptions copts;
      copts.optimizer = opts;
      auto plan = CompilePlan(*program, spec.name, copts);
      CHECK_MSG(plan.ok(), "compile %s/%s", spec.name.c_str(), name);

      std::vector<float> text_scores;
      for (size_t i = 0; i < texts.size(); ++i) {
        auto text_score = ExecutePlan(**plan, texts[i], ctx);
        auto bin_score = ExecutePlan(**plan, binaries[i], ctx);
        CHECK_MSG(text_score.ok(), "%s/%s text", spec.name.c_str(), name);
        CHECK_MSG(bin_score.ok(), "%s/%s binary", spec.name.c_str(), name);
        CHECK_NEAR(*bin_score, *text_score, 1e-6);
        text_scores.push_back(*text_score);
      }

      // Mixed text/binary batch: same scores, no failures.
      std::vector<std::string_view> mixed;
      for (size_t i = 0; i < texts.size(); ++i) {
        mixed.push_back(i % 2 == 0 ? std::string_view(binaries[i])
                                   : std::string_view(texts[i]));
      }
      std::vector<float> scores(mixed.size(), -1.0f);
      Status first_error;
      size_t failed =
          ExecutePlanBatch(**plan, mixed.data(), mixed.size(), scores.data(),
                           ctx, &first_error);
      CHECK_MSG(failed == 0, "mixed batch: %s", first_error.ToString().c_str());
      for (size_t i = 0; i < scores.size(); ++i) {
        // 1e-5 across the batch-major/per-record kernel boundary (the
        // existing parity suite's bound); the wire formats themselves are
        // compared at 1e-6 above.
        CHECK_NEAR(scores[i], text_scores[i], 1e-5);
      }

      if (is_dense) {
        // A cleared validity bit masks the record out of the SoA batch with
        // individual attribution; its neighbors still run batch-major.
        BinaryRecordView view;
        CHECK(ParseBinaryRecord(binaries[0], &view).ok());
        std::vector<float> vals(view.dim);
        CopyDenseValues(view, vals.data());
        const std::string masked =
            EncodeDenseRecord(vals.data(), vals.size(), /*valid=*/false);
        std::vector<std::string_view> batch = {binaries[0], masked,
                                               binaries[1]};
        std::vector<float> mscore(batch.size(), -1.0f);
        std::vector<uint8_t> flags(batch.size(), 0xEE);
        Status err;
        failed = ExecutePlanBatch(**plan, batch.data(), batch.size(),
                                  mscore.data(), ctx, &err, flags.data());
        CHECK_EQ(failed, size_t{1});
        CHECK(!err.ok());
        CHECK_EQ(flags[0], uint8_t{0});
        CHECK_EQ(flags[1], uint8_t{1});
        CHECK_EQ(flags[2], uint8_t{0});
        CHECK_NEAR(mscore[0], text_scores[0], 1e-5);
        CHECK_NEAR(mscore[1], 0.0f, 1e-9);
        CHECK_NEAR(mscore[2], text_scores[1], 1e-5);
      }
    }
  }
}

// The Runtime entry points: PredictBinary (single and framed batch) against
// text Predict on the same registered plan.
void TestRuntimeBinaryPath() {
  AcWorkloadOptions opts;
  opts.num_pipelines = 2;
  opts.featurizer_trees = 8;
  opts.featurizer_depth = 4;
  opts.final_trees = 6;
  opts.final_depth = 3;
  auto ac = AcWorkload::Generate(opts);

  ObjectStore store;
  FlourContext flour(&store);
  RuntimeOptions ropts;
  ropts.num_executors = 2;
  Runtime runtime(&store, ropts);
  auto program = flour.FromPipeline(ac.pipelines()[0]);
  auto plan = Plan(*program, ac.pipelines()[0].name);
  CHECK(plan.ok());
  auto id = runtime.Register(*plan);
  CHECK(id.ok());

  Rng rng(31);
  std::string frame;
  std::vector<float> text_scores;
  for (int i = 0; i < 12; ++i) {
    const std::string text = ac.SampleInput(rng);
    const std::string binary = AcWorkload::BinaryFromText(text);
    auto text_score = runtime.Predict(*id, text);
    auto bin_score = runtime.PredictBinary(
        *id, std::span<const uint8_t>(
                 reinterpret_cast<const uint8_t*>(binary.data()),
                 binary.size()));
    CHECK(text_score.ok() && bin_score.ok());
    CHECK_NEAR(*bin_score, *text_score, 1e-6);
    frame += binary;
    text_scores.push_back(*text_score);
  }

  // Framed batch: one contiguous wire buffer, scores in record order.
  std::vector<float> out(text_scores.size(), -1.0f);
  Status status = runtime.PredictBinary(
      *id,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(frame.data()),
                               frame.size()),
      /*max_batch=*/4, std::span<float>(out));
  CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  for (size_t i = 0; i < out.size(); ++i) {
    CHECK_NEAR(out[i], text_scores[i], 1e-5);
  }

  // A torn frame is rejected before anything executes.
  status = runtime.PredictBinary(
      *id,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(frame.data()),
                               frame.size() - 3),
      /*max_batch=*/4, std::span<float>(out));
  CHECK(!status.ok());
}

// Deterministic mutation fuzz: corrupt valid records (byte flips,
// truncations, extensions) and require the validator and executor to reject
// or score without reading out of bounds (the ASan job runs this test).
void TestMutationFuzz() {
  AcWorkloadOptions opts;
  opts.num_pipelines = 1;
  opts.featurizer_trees = 6;
  opts.featurizer_depth = 4;
  opts.final_trees = 4;
  opts.final_depth = 3;
  opts.input_dim = 12;
  auto ac = AcWorkload::Generate(opts);
  ObjectStore store;
  FlourContext flour(&store);
  auto program = flour.FromPipeline(ac.pipelines()[0]);
  auto plan = Plan(*program, "fuzz");
  CHECK(plan.ok());
  VectorPool pool;
  ExecContext ctx(&pool);

  Rng rng(0xF022);
  const std::vector<uint32_t> sids = {1, 4, 9, 11};
  const std::vector<float> svals = {1.0f, 2.0f, 1.0f, 1.0f};
  std::vector<float> dvals(12);
  for (float& v : dvals) {
    v = static_cast<float>(rng.Normal());
  }
  const std::string seeds[] = {
      EncodeDenseRecord(dvals.data(), dvals.size()),
      EncodeSparseRecord(sids.data(), svals.data(), sids.size(), /*dim=*/12),
  };
  size_t parsed = 0, rejected = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string record = seeds[iter % 2];
    const size_t mutations = 1 + rng.UniformInt(3);
    for (size_t m = 0; m < mutations; ++m) {
      switch (rng.UniformInt(4)) {
        case 0:  // Byte flip.
          record[rng.UniformInt(record.size())] =
              static_cast<char>(rng.UniformInt(256));
          break;
        case 1:  // Truncate.
          record.resize(rng.UniformInt(record.size() + 1));
          break;
        case 2:  // Extend with junk.
          record.append(1 + rng.UniformInt(8), static_cast<char>(0xAB));
          break;
        default:  // Header-field flip (the interesting rejections).
          if (record.size() >= 16) {
            record[rng.UniformInt(16)] =
                static_cast<char>(rng.UniformInt(256));
          }
          break;
      }
      if (record.empty()) {
        break;
      }
    }
    BinaryRecordView view;
    if (ParseBinaryRecord(record, &view).ok()) {
      ++parsed;
    } else {
      ++rejected;
    }
    // The executor must also never crash: it either rejects the bytes or
    // scores them (a mutation can leave a structurally valid record).
    (void)ExecutePlan(**plan, record, ctx);
    std::vector<std::string_view> records;
    (void)SplitBinaryBatch(record, &records);
  }
  // Sanity: the fuzz actually exercised both outcomes.
  CHECK(parsed > 0);
  CHECK(rejected > 0);
  std::printf("mutation fuzz: %zu parsed, %zu rejected\n", parsed, rejected);
}

}  // namespace

int main() {
  TestDenseRoundTrip();
  TestSparseRoundTrip();
  TestRejection();
  TestMisaligned();
  TestSplitBatch();

  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = 4;
  sa_opts.char_dict_entries = 500;
  sa_opts.word_dict_entries = 150;
  sa_opts.vocabulary_size = 300;
  const auto sa = SaWorkload::Generate(sa_opts);
  CheckWirePairParity(sa, 1212, /*is_dense=*/false,
                      [&](const std::string& text, size_t pi) {
                        return sa.BinaryFromText(text, pi);
                      });

  AcWorkloadOptions ac_opts;
  ac_opts.num_pipelines = 3;
  ac_opts.featurizer_trees = 10;
  ac_opts.featurizer_depth = 4;
  ac_opts.final_trees = 6;
  ac_opts.final_depth = 3;
  const auto ac = AcWorkload::Generate(ac_opts);
  CheckWirePairParity(ac, 3434, /*is_dense=*/true,
                      [&](const std::string& text, size_t) {
                        return AcWorkload::BinaryFromText(text);
                      });

  TestRuntimeBinaryPath();
  TestMutationFuzz();

  std::printf("serialize_test: PASS\n");
  return 0;
}
