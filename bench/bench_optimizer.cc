// Optimizer-rule ablations (design choices of Section 4.1.2): hot SA latency
// and plan shape with individual Oven rules disabled. Quantifies what each
// rewrite buys: linear push-through-Concat (the signature SA optimization),
// stage merging / CSE, and singleton inlining. Also reports plan compilation
// cost (the off-line phase is cheap enough to run at deployment).
#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {
namespace {

struct AblationPoint {
  double hot_ns = 0.0;
  double stages = 0.0;        // Mean alive stages per plan.
  double compile_ms = 0.0;    // Total compile time of the suite.
};

AblationPoint Measure(const SaWorkload& sa, const OptimizerOptions& opts,
                      int hot_preds, uint64_t seed) {
  AblationPoint point;
  ObjectStore store;
  FlourContext ctx(&store);
  CompileOptions copts;
  copts.optimizer = opts;

  std::vector<std::shared_ptr<ModelPlan>> plans;
  const int64_t c0 = NowNs();
  for (const auto& spec : sa.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    auto plan = CompilePlan(*program, spec.name, copts);
    if (plan.ok()) {
      point.stages += static_cast<double>((*plan)->NumStages());
      plans.push_back(*plan);
    }
  }
  point.compile_ms = static_cast<double>(NowNs() - c0) / 1e6;
  point.stages /= static_cast<double>(plans.size());

  Rng rng(seed);
  std::vector<std::string> inputs;
  for (int i = 0; i < hot_preds; ++i) {
    inputs.push_back(sa.SampleInput(rng));
  }
  VectorPool pool;
  ExecContext exec(&pool);
  // Warm.
  for (const auto& plan : plans) {
    (void)ExecutePlan(*plan, inputs[0], exec);
  }
  SampleStats per_pred;
  for (const auto& plan : plans) {
    const int64_t t0 = NowNs();
    for (const auto& input : inputs) {
      (void)ExecutePlan(*plan, input, exec);
    }
    per_pred.Add(static_cast<double>(NowNs() - t0) / hot_preds);
  }
  point.hot_ns = per_pred.Mean();
  return point;
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Optimizer ablations",
              "Effect of individual Oven rules on SA plans (Section 4.1.2)");
  auto sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 60));
  auto sa = SaWorkload::Generate(sa_opts);
  const int hot_preds = static_cast<int>(flags.GetInt("hot_preds", 50));

  OptimizerOptions full;
  OptimizerOptions no_push = full;
  no_push.enable_linear_push = false;
  OptimizerOptions no_merge = full;
  no_merge.enable_stage_merge = false;
  OptimizerOptions no_inline = full;
  no_inline.enable_inline = false;

  // Untimed warm pass (page in the shared dictionaries).
  (void)Measure(sa, full, 5, 9000);

  struct Row {
    const char* name;
    OptimizerOptions opts;
  } rows[] = {
      {"full optimizer", full},
      {"no linear push", no_push},
      {"no stage merge", no_merge},
      {"no inlining", no_inline},
  };
  AblationPoint base;
  std::printf("  %-18s %-12s %-14s %-12s %-10s\n", "configuration", "stages",
              "hot latency", "compile", "vs full");
  for (const auto& row : rows) {
    auto point = Measure(sa, row.opts, hot_preds, 9001);
    if (row.name == rows[0].name) {
      base = point;
    }
    std::printf("  %-18s %-12.1f %-14s %-12.1fms %.2fx\n", row.name, point.stages,
                FormatDurationNs(point.hot_ns).c_str(), point.compile_ms,
                point.hot_ns / base.hot_ns);
  }

  auto no_push_point = Measure(sa, no_push, hot_preds, 9001);
  ShapeCheck(no_push_point.hot_ns > base.hot_ns,
             "pushing the linear model through Concat speeds up SA plans "
             "(paper: 'several times faster than the ML.Net version')");
  ShapeCheck(no_push_point.stages > base.stages,
             "without the push, plans keep the Concat (+ model) stages");
  return 0;
}
