// Figure 8: cumulative memory usage of the four serving configurations
// (ML.Net + Clipper, ML.Net, PRETZEL without Object Store, PRETZEL) while
// loading the full pipeline suites, plus total model-load times (Section
// 5.1's 2.8s vs 270s observation). Memory is explicit byte accounting of
// parameters + per-model runtime + per-container overhead — not RSS.
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/store/model_loader.h"
#include "src/runtime/runtime.h"

namespace pretzel {
namespace {

struct CumulativeCurve {
  std::vector<size_t> bytes_at_model;  // Cumulative bytes after model i.
  int64_t load_time_ns = 0;

  size_t total() const { return bytes_at_model.empty() ? 0 : bytes_at_model.back(); }
};

// Black-box configurations: every model owns a private parameter copy.
template <typename Workload>
CumulativeCurve MeasureBlackBoxMemory(const Workload& workload,
                                      size_t per_container_overhead) {
  CumulativeCurve curve;
  BlackBoxOptions options;
  options.per_model_runtime_bytes = kPerModelRuntimeBytes;
  std::vector<std::unique_ptr<BlackBoxModel>> loaded;  // Keep everything live.
  size_t cumulative = 0;
  std::vector<std::string> images;
  for (const auto& spec : workload.pipelines()) {
    images.push_back(SaveModelImage(spec));
  }
  const int64_t t0 = NowNs();
  for (const std::string& image : images) {
    auto model = BlackBoxModel::Load(image, options);
    if (!model.ok()) {
      continue;
    }
    cumulative += (*model)->MemoryBytes() + per_container_overhead;
    curve.bytes_at_model.push_back(cumulative);
    loaded.push_back(std::move(*model));
  }
  curve.load_time_ns = NowNs() - t0;
  return curve;
}

// PRETZEL configurations: parameters interned through the Object Store
// (dedup on or off).
template <typename Workload>
CumulativeCurve MeasurePretzelMemory(const Workload& workload, bool dedup) {
  CumulativeCurve curve;
  ObjectStore::Options sopts;
  sopts.dedup_enabled = dedup;
  ObjectStore store(sopts);
  FlourContext ctx(&store);
  std::vector<std::shared_ptr<ModelPlan>> plans;
  size_t plan_overhead = 0;
  size_t no_dedup_params = 0;
  // Serialize outside the timed section (images exist on disk in practice).
  std::vector<std::string> images;
  for (const auto& spec : workload.pipelines()) {
    images.push_back(SaveModelImage(spec));
  }
  const int64_t t0 = NowNs();
  for (const std::string& image : images) {
    // PRETZEL's off-line phase starts from the same serialized images but
    // loads parameters through the Object Store: blobs with known checksums
    // are never deserialized again.
    auto reloaded = LoadModelImageWithStore(image, &store);
    if (!reloaded.ok()) {
      continue;
    }
    auto program = ctx.FromPipeline(*reloaded);
    auto plan = Plan(*program, reloaded->name);
    if (!plan.ok()) {
      continue;
    }
    plan_overhead += (*plan)->OverheadBytes();
    if (!dedup) {
      no_dedup_params += (*plan)->ParameterBytes();
    }
    plans.push_back(*plan);
    const size_t params = dedup ? store.TotalBytes() : no_dedup_params;
    curve.bytes_at_model.push_back(params + plan_overhead);
  }
  curve.load_time_ns = NowNs() - t0;
  return curve;
}

void PrintCurve(const char* label, const CumulativeCurve& curve) {
  std::printf("  %-24s total=%-10s load_time=%s\n", label,
              FormatBytes(curve.total()).c_str(),
              FormatDurationNs(curve.load_time_ns).c_str());
  const size_t n = curve.bytes_at_model.size();
  std::printf("    cumulative:");
  for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 10)) {
    std::printf(" [%zu]=%s", i + 1, FormatBytes(curve.bytes_at_model[i]).c_str());
  }
  std::printf(" [%zu]=%s\n", n, FormatBytes(curve.total()).c_str());
}

template <typename Workload>
void RunCategory(const char* name, const Workload& workload) {
  std::printf("  --- %s ---\n", name);
  auto clipper = MeasureBlackBoxMemory(workload, kContainerOverheadBytes);
  auto mlnet = MeasureBlackBoxMemory(workload, 0);
  auto pretzel_nostore = MeasurePretzelMemory(workload, /*dedup=*/false);
  auto pretzel = MeasurePretzelMemory(workload, /*dedup=*/true);

  PrintCurve("ML.Net + Clipper", clipper);
  PrintCurve("ML.Net", mlnet);
  PrintCurve("PRETZEL (no ObjStore)", pretzel_nostore);
  PrintCurve("PRETZEL", pretzel);

  const double vs_mlnet =
      static_cast<double>(mlnet.total()) / std::max<size_t>(pretzel.total(), 1);
  const double vs_clipper =
      static_cast<double>(clipper.total()) / std::max<size_t>(pretzel.total(), 1);
  std::printf("  PRETZEL memory saving: %.1fx vs ML.Net, %.1fx vs Clipper\n",
              vs_mlnet, vs_clipper);
  ShapeCheck(vs_mlnet > 4.0,
             "PRETZEL uses several times less memory than ML.Net (paper: 25x AC)");
  ShapeCheck(clipper.total() > mlnet.total(),
             "containerization costs extra memory over plain ML.Net (paper: 2.5x)");
  ShapeCheck(pretzel_nostore.total() > pretzel.total() * 2,
             "without the Object Store, PRETZEL's footprint approaches ML.Net's");
  ShapeCheck(pretzel.load_time_ns < mlnet.load_time_ns,
             "PRETZEL loads the suite faster (paper: 2.8s vs 270s on AC)");
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 8", "Cumulative memory of 4 serving configurations, SA & AC");
  auto sa = SaWorkload::Generate(DefaultSaOptions(flags));
  RunCategory("Sentiment Analysis (SA)", sa);
  auto ac = AcWorkload::Generate(DefaultAcOptions(flags));
  RunCategory("Attendee Count (AC)", ac);
  return 0;
}
