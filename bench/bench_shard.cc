// Sharded serving layer: aggregate throughput and tail latency of the
// ShardRouter stack as the shard count grows, under Zipf-skewed popularity
// (the regime where one hot plan's shard bounds the win).
//
// Protocol: for shards in {1, 2, 4}, build a ShardRouter (one executor per
// shard by default — shards are the scaling axis, not executors), place the
// SA suite by jump hash, and drive it through a ShardedBackend with P
// producer threads replaying a Zipf model sequence (load_gen) closed-loop
// with a bounded window each. Throughput is completed predictions/second
// (best of N reps); latency is submit->completion, sampled, p99 reported as
// the median across reps. Every shard's Runtime, ObjectStore segment, and
// SubPlanCaches are private, so added shards contend on nothing — on
// parallel hardware the aggregate must scale, Zipf hot-shard skew and all.
//
// Also reported (deterministic): the segment-vs-global intern trade-off at
// the max shard count — per-segment residency duplicates shared
// dictionaries per shard, router-global intern keeps one copy.
//
// Replication phase: at the max shard count, the same Zipf stream is driven
// with hot-plan replication off vs on (equal cores). The maintenance scan
// must find the head of the distribution from routed-traffic shares,
// replicate it, and power-of-two-choices routing over replica queue-delay
// EWMAs must flatten the hot-shard imbalance without costing throughput; a
// uniform stream is the control (no replication, no overhead).
#include <algorithm>
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/serving/shard_router.h"
#include "src/serving/sharded_backend.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

struct SweepResult {
  double events_per_sec = 0.0;
  double p99_us = 0.0;
};

// One closed-loop drive: `producers` threads submit `sequence` round-robin
// slices through `backend`, each with at most `window` outstanding.
SweepResult Drive(ShardedBackend& backend,
                  const std::vector<std::string>& names,
                  const std::vector<std::string>& inputs,
                  const std::vector<size_t>& sequence, size_t producers,
                  size_t window) {
  constexpr size_t kLatencySampleEvery = 16;
  std::atomic<size_t> completed{0};
  std::atomic<size_t> failed{0};
  std::mutex stats_mu;
  SampleStats latency_ns;
  const size_t per_producer = sequence.size() / producers;
  const size_t total = per_producer * producers;
  const int64_t t0 = NowNs();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      SampleStats local_lat;
      std::atomic<size_t> outstanding{0};
      for (size_t i = 0; i < per_producer; ++i) {
        while (outstanding.load(std::memory_order_relaxed) >= window) {
          std::this_thread::yield();
        }
        const size_t m = sequence[p * per_producer + i];
        outstanding.fetch_add(1, std::memory_order_relaxed);
        const bool sample = i % kLatencySampleEvery == 0;
        const int64_t submit = sample ? NowNs() : 0;
        backend.PredictAsync(
            names[m], inputs[m],
            [&completed, &failed, &outstanding, &stats_mu, &local_lat, sample,
             submit](Result<float> r) {
              if (!r.ok()) {
                failed.fetch_add(1, std::memory_order_relaxed);
              }
              if (sample) {
                // The producer owns local_lat until its drain completes, and
                // completions for one producer's requests can race each
                // other; the stats mutex covers both.
                std::lock_guard<std::mutex> lock(stats_mu);
                local_lat.Add(static_cast<double>(NowNs() - submit));
              }
              // release/acquire pairs with the drain loops below: the
              // counters are also the lifetime handshake for this stack
              // frame, so the last callback must happen-before its reuse.
              outstanding.fetch_sub(1, std::memory_order_release);
              completed.fetch_add(1, std::memory_order_release);
            });
      }
      // Drain this producer's window so `outstanding` and `local_lat`
      // outlive every callback referencing them.
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      for (const double s : local_lat.samples()) {
        latency_ns.Add(s);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  while (completed.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }
  const double seconds = static_cast<double>(NowNs() - t0) / 1e9;
  if (failed.load() > 0) {
    std::printf("  WARNING: %zu failed predictions\n", failed.load());
  }
  SweepResult result;
  // Shed (failed) submissions are not served work; counting them would
  // inflate exactly the overloaded cells the sweep compares.
  result.events_per_sec =
      static_cast<double>(total - failed.load()) / seconds;
  result.p99_us = latency_ns.P99() / 1e3;
  return result;
}

std::unique_ptr<ShardRouter> BuildRouter(
    const SaWorkload& sa, size_t num_shards, size_t shard_executors,
    size_t max_batch, ShardRouterOptions::InternScope scope,
    const ReplicationOptions& replication = {}) {
  ShardRouterOptions opts;
  opts.num_shards = num_shards;
  opts.runtime.num_executors = shard_executors;
  opts.runtime.default_max_batch = max_batch;
  opts.intern_scope = scope;
  opts.replication = replication;
  auto router = std::make_unique<ShardRouter>(opts);
  for (const auto& spec : sa.pipelines()) {
    auto placement = router->Place(spec);
    if (!placement.ok()) {
      std::printf("  FATAL: place %s: %s\n", spec.name.c_str(),
                  placement.status().ToString().c_str());
      std::exit(1);
    }
  }
  return router;
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Shard scaling",
              "Consistent-hash router over N Runtime shards, Zipf-skewed "
              "closed-loop drive");

  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 16));
  sa_opts.char_dict_entries =
      static_cast<size_t>(flags.GetInt("char_entries", 600));
  sa_opts.word_dict_entries =
      static_cast<size_t>(flags.GetInt("word_entries", 200));
  sa_opts.vocabulary_size = static_cast<size_t>(flags.GetInt("vocab", 400));
  auto sa = SaWorkload::Generate(sa_opts);

  const size_t shard_executors =
      static_cast<size_t>(flags.GetInt("shard_executors", 1));
  // Deep windows keep every shard's executor busy between wakeups (a
  // parked-executor convoy on timesliced hosts would measure the scheduler,
  // not the sharding).
  const size_t events = static_cast<size_t>(flags.GetInt("events", 24000));
  const size_t window = static_cast<size_t>(flags.GetInt("window", 512));
  const size_t producers = static_cast<size_t>(flags.GetInt("producers", 4));
  const size_t max_batch = static_cast<size_t>(flags.GetInt("max_batch", 64));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double zipf = static_cast<double>(flags.GetInt("zipf_x100", 120)) / 100.0;

  Rng rng(7001);
  std::vector<std::string> names;
  std::vector<std::string> inputs;
  for (const auto& spec : sa.pipelines()) {
    names.push_back(spec.name);
    inputs.push_back(sa.SampleInput(rng));
  }
  // The Zipf model stream (rank 0 hottest), shared across shard counts so
  // every cell serves the identical request mix.
  const std::vector<size_t> sequence =
      ZipfModelSequence(names.size(), events, zipf, 7002);

  BenchJson json("shard");
  json.Add("pipelines", static_cast<double>(names.size()));
  json.Add("events", static_cast<double>(events));
  json.Add("producers", static_cast<double>(producers));
  json.Add("window", static_cast<double>(window));
  json.Add("shard_executors", static_cast<double>(shard_executors));
  json.Add("zipf_alpha", zipf);

  std::printf(
      "\n  %zu pipelines, Zipf(%.2f), %zu events, %zu producers, window %zu,\n"
      "  %zu executor(s)/shard, best of %d\n\n",
      names.size(), zipf, events, producers, window, shard_executors, reps);
  std::printf("  %-8s %16s %14s %12s\n", "shards", "aggregate ev/s", "p99 lat",
              "vs 1 shard");

  // All cells are built up front and the reps interleave shard counts, so a
  // drifting host-load phase hits every cell instead of skewing one ratio
  // (best-of-N throughput; median-of-N p99).
  const size_t shard_counts[] = {1, 2, 4};
  std::unique_ptr<ShardRouter> routers[3];
  std::unique_ptr<ShardedBackend> backends[3];
  for (int cell = 0; cell < 3; ++cell) {
    routers[cell] =
        BuildRouter(sa, shard_counts[cell], shard_executors, max_batch,
                    ShardRouterOptions::InternScope::kPerSegment);
    backends[cell] = std::make_unique<ShardedBackend>(routers[cell].get());
    // Warm: bind every plan and touch every shard's caches.
    for (const auto& name : names) {
      (void)backends[cell]->Predict(name, inputs[0]);
    }
  }
  double eps[3] = {0, 0, 0};
  double p99[3] = {0, 0, 0};
  SampleStats p99s[3];
  for (int rep = 0; rep < reps; ++rep) {
    for (int cell = 0; cell < 3; ++cell) {
      SweepResult r =
          Drive(*backends[cell], names, inputs, sequence, producers, window);
      eps[cell] = std::max(eps[cell], r.events_per_sec);
      p99s[cell].Add(r.p99_us);
    }
  }
  for (int cell = 0; cell < 3; ++cell) {
    const size_t shards = shard_counts[cell];
    p99[cell] = p99s[cell].Median();
    std::printf("  %-8zu %16.0f %14s %11.2fx\n", shards, eps[cell],
                FormatDurationNs(p99[cell] * 1e3).c_str(),
                eps[cell] / eps[0]);
    const std::string prefix = "s" + std::to_string(shards) + "_";
    json.Add(prefix + "eps", eps[cell]);
    json.Add(prefix + "p99_us", p99[cell]);
    // Cross-shard snapshot sanity: the merged fold must account for every
    // completed prediction (enqueued across all shards and reps + warm).
    const ShardedMetrics metrics = routers[cell]->GetMetrics();
    uint64_t enqueued = 0;
    for (const auto& pm : metrics.merged.plans) {
      enqueued += pm.enqueued_events + pm.inline_predictions;
    }
    json.Add(prefix + "merged_events", static_cast<double>(enqueued));
    json.Add(prefix + "dropped",
             static_cast<double>(backends[cell]->dropped()));
    // The hot-shard bound: under Zipf skew the hottest plan's shard carries
    // a disproportionate share of the queue delay, which is exactly what
    // caps the multi-shard win. Imbalance is max/mean of the per-shard
    // event-weighted queue-delay EWMAs (1.0 = balanced).
    if (shards > 1) {
      std::printf(
          "           load imbalance %.2fx (hot shard %zu: %.0f us mean "
          "queue-delay EWMA vs %.0f us shard mean)\n",
          metrics.queue_delay_imbalance, metrics.hottest_shard,
          metrics.max_shard_queue_delay_us, metrics.mean_shard_queue_delay_us);
    }
    json.Add(prefix + "queue_delay_imbalance", metrics.queue_delay_imbalance);
    json.Add(prefix + "hot_shard", static_cast<double>(metrics.hottest_shard));
    json.Add(prefix + "hot_shard_delay_us", metrics.max_shard_queue_delay_us);
  }

  // Deterministic residency comparison at max shards: per-segment intern
  // duplicates cross-shard-shared dictionaries; router-global keeps one.
  const size_t max_shards = shard_counts[2];
  auto segmented = BuildRouter(sa, max_shards, shard_executors, max_batch,
                               ShardRouterOptions::InternScope::kPerSegment);
  auto global = BuildRouter(sa, max_shards, shard_executors, max_batch,
                            ShardRouterOptions::InternScope::kGlobal);
  const size_t seg_bytes = segmented->GetMetrics().store_bytes;
  const size_t glo_bytes = global->GetMetrics().store_bytes;
  std::printf("\n  resident params at %zu shards: per-segment %.2f MB, "
              "router-global %.2f MB (%.2fx)\n",
              max_shards, seg_bytes / 1e6, glo_bytes / 1e6,
              static_cast<double>(seg_bytes) / static_cast<double>(glo_bytes));
  json.Add("per_segment_store_bytes", static_cast<double>(seg_bytes));
  json.Add("global_store_bytes", static_cast<double>(glo_bytes));

  std::printf("\n");
  const double speedup4 = eps[2] / eps[0];
  const double tail_ratio4 = p99[2] / std::max(p99[0], 1e-9);
  // Aggregate-throughput scaling needs hardware that can actually run the
  // extra shards' executors in parallel; on a 1-core host the shards
  // timeslice one core and the check degrades to a no-regression guard.
  const bool parallel_host = std::thread::hardware_concurrency() >= 2;
  bool pass;
  if (parallel_host) {
    pass = ShapeCheck(
        speedup4 >= 1.3,
        "4 independent shards sustain >= 1.3x single-shard aggregate "
        "throughput under Zipf skew (nothing shared cross-shard)");
  } else {
    std::printf(
        "  NOTE: single-core host; extra shards cannot run in parallel, so "
        "the 1.3x\n  aggregate claim is unobservable here. Timeslicing 3 "
        "extra executor threads\n  on one core costs a real 20-30%% "
        "(context switches + thinner per-executor\n  batching), so the "
        "check degrades to a no-collapse guard: it catches\n  accidental "
        "cross-shard coupling (which would convoy), not scaling.\n");
    pass = ShapeCheck(
        speedup4 >= 0.65,
        "[1-core fallback] 4-shard aggregate stays within 35% of "
        "single-shard (routing + timeslicing overhead only, no cross-shard "
        "contention)");
  }
  pass &= ShapeCheck(
      tail_ratio4 <= 2.0,
      "4-shard p99 latency is no worse than 2x single-shard (per-shard "
      "queues split the backlog, not multiply it)");
  pass &= ShapeCheck(
      glo_bytes < seg_bytes,
      "router-global intern is a strict residency win over per-segment "
      "(shared dictionaries land on > 1 shard)");
  // ---- Hot-plan replication phase ---------------------------------------
  // Same Zipf stream, fixed max_shards, equal cores either way: replication
  // OFF pins the head of the distribution to one shard (jump hash), ON lets
  // the maintenance scan detect it from routed-traffic shares, replicate it,
  // and route it power-of-two-choices over the replicas' live queue-delay
  // EWMAs. The claim under test is the balanced-allocations one: p2c over
  // even two replicas flattens the hot-shard queue-delay imbalance. A
  // uniform (alpha = 0) stream is the control — no plan crosses the hotness
  // threshold, so replication must stay quiet and cost nothing.
  ReplicationOptions rep_opts;
  rep_opts.enabled = true;  // scan_interval_us stays 0: scans run inline.
  const std::vector<double> shares = ZipfExpectedShares(names.size(), zipf);
  std::printf("\n  hot-plan replication at %zu shards: Zipf(%.2f) head share "
              "%.3f, hot threshold %.3f\n",
              max_shards, zipf, shares[0], rep_opts.hot_share_threshold);
  auto rep_off = BuildRouter(sa, max_shards, shard_executors, max_batch,
                             ShardRouterOptions::InternScope::kPerSegment);
  auto rep_on = BuildRouter(sa, max_shards, shard_executors, max_batch,
                            ShardRouterOptions::InternScope::kPerSegment,
                            rep_opts);
  auto backend_off = std::make_unique<ShardedBackend>(rep_off.get());
  auto backend_on = std::make_unique<ShardedBackend>(rep_on.get());
  for (const auto& name : names) {
    (void)backend_off->Predict(name, inputs[0]);
    (void)backend_on->Predict(name, inputs[0]);
  }
  // Warm drive: enough traffic for one full detection interval, then scan.
  // Replicas must exist BEFORE the measured reps — the phase measures p2c
  // routing over a replicated head, not detection latency.
  const size_t warm_events = std::min<size_t>(sequence.size(), 4096);
  const std::vector<size_t> warm_seq(sequence.begin(),
                                     sequence.begin() + warm_events);
  (void)Drive(*backend_off, names, inputs, warm_seq, producers, window);
  (void)Drive(*backend_on, names, inputs, warm_seq, producers, window);
  const MaintenanceReport scan = rep_on->MaintainReplication();
  const size_t head_replicas = rep_on->Replicas(names[0]).size();
  std::printf("  detector: scanned %zu plans over %zu routed requests; "
              "+%zu replicas (head -> %zu shard(s))\n",
              scan.plans_scanned, static_cast<size_t>(scan.interval_requests),
              scan.replications, head_replicas);
  double rep_eps[2] = {0, 0};  // [0] = off, [1] = on.
  for (int rep = 0; rep < reps; ++rep) {
    rep_eps[0] = std::max(
        rep_eps[0],
        Drive(*backend_off, names, inputs, sequence, producers, window)
            .events_per_sec);
    rep_eps[1] = std::max(
        rep_eps[1],
        Drive(*backend_on, names, inputs, sequence, producers, window)
            .events_per_sec);
    // Keep the replica set tracking the (stationary) shares between reps —
    // in production this is the background scan thread.
    (void)rep_on->MaintainReplication();
  }
  const ShardedMetrics rm_off = rep_off->GetMetrics();
  const ShardedMetrics rm_on = rep_on->GetMetrics();
  std::printf("  %-8s %16s %14s\n", "repl", "aggregate ev/s", "imbalance");
  std::printf("  %-8s %16.0f %13.2fx\n", "off", rep_eps[0],
              rm_off.queue_delay_imbalance);
  std::printf("  %-8s %16.0f %13.2fx   (%zu plan(s) replicated, %zu "
              "activations)\n",
              "on", rep_eps[1], rm_on.queue_delay_imbalance,
              rm_on.replicated_plans,
              static_cast<size_t>(rm_on.replications));
  json.Add("rep_off_eps", rep_eps[0]);
  json.Add("rep_on_eps", rep_eps[1]);
  json.Add("rep_off_imbalance", rm_off.queue_delay_imbalance);
  json.Add("rep_on_imbalance", rm_on.queue_delay_imbalance);
  json.Add("rep_head_replicas", static_cast<double>(head_replicas));
  json.Add("rep_replicated_plans", static_cast<double>(rm_on.replicated_plans));
  json.Add("rep_replications", static_cast<double>(rm_on.replications));
  // How p2c actually split the head's traffic: the minority replica's share
  // of the head's routed requests (0.5 = perfectly split, 0 = collapse).
  double head_min_share = 1.0;
  for (const auto& pr : rm_on.plan_replicas) {
    if (pr.name != names[0]) {
      continue;
    }
    uint64_t total = 0;
    uint64_t min_routed = ~uint64_t{0};
    size_t active = 0;
    for (const auto& r : pr.replicas) {
      total += r.routed;
      if (r.active) {
        ++active;
        min_routed = std::min(min_routed, r.routed);
      }
    }
    if (active >= 2 && total > 0) {
      head_min_share =
          static_cast<double>(min_routed) / static_cast<double>(total);
    }
    std::printf("  head split: minority replica carried %.0f%% of the "
                "head's %zu routed requests\n",
                head_min_share * 100.0, static_cast<size_t>(total));
  }
  json.Add("rep_head_min_share", head_min_share);

  if (shares[0] >= rep_opts.hot_share_threshold) {
    pass &= ShapeCheck(
        head_replicas >= 2,
        "hotness detector replicates the Zipf head (rank-0 expected share "
        "clears the hot threshold)");
  } else {
    std::printf("  NOTE: rank-0 expected share %.3f is below the hot "
                "threshold at this\n  pipeline count / alpha; detector check "
                "skipped.\n", shares[0]);
  }
  if (parallel_host) {
    pass &= ShapeCheck(
        rm_on.queue_delay_imbalance < rm_off.queue_delay_imbalance,
        "p2c over replicas strictly reduces hot-shard queue-delay imbalance "
        "under Zipf skew");
    pass &= ShapeCheck(
        rep_eps[1] >= 0.90 * rep_eps[0],
        "replication does not regress aggregate throughput under skew "
        "(replicas split the head's queue)");
  } else {
    // One core: every executor timeslices the same CPU, so queue delay
    // measures the scheduler's round-robin, not routing quality — the
    // off-cell's own imbalance swings ~30% run to run. What IS observable
    // here is the routing decision itself: p2c over live queue delays must
    // actually use both replicas (a collapse onto one — e.g. comparing a
    // stale signal — would show the minority share near zero).
    std::printf("  NOTE: single-core host; queue-delay imbalance is "
                "scheduler-dominated here,\n  so the strict imbalance "
                "reduction is unobservable. The fallback checks the\n  "
                "routing decision instead: p2c must split the head across "
                "its replicas.\n");
    pass &= ShapeCheck(
        head_replicas >= 2 && head_min_share >= 0.05,
        "[1-core fallback] p2c splits the head across its replicas "
        "(minority replica carries >= 5% — no collapse onto one copy; on "
        "one core the steady-state EWMAs legitimately favor the less-loaded "
        "replica shard)");
    pass &= ShapeCheck(
        rep_eps[1] >= 0.65 * rep_eps[0],
        "[1-core fallback] replicated routing sustains >= 0.65x of "
        "single-placement throughput (p2c + extra registration overhead "
        "only)");
  }

  // Uniform control: same machinery, no skew. The detector must stay quiet
  // (every share sits below the hot threshold) and the p2c/maintenance
  // plumbing must be free when cold.
  const std::vector<size_t> uniform_seq =
      ZipfModelSequence(names.size(), events, 0.0, 7003);
  auto uni_off = BuildRouter(sa, max_shards, shard_executors, max_batch,
                             ShardRouterOptions::InternScope::kPerSegment);
  auto uni_on = BuildRouter(sa, max_shards, shard_executors, max_batch,
                            ShardRouterOptions::InternScope::kPerSegment,
                            rep_opts);
  auto ubackend_off = std::make_unique<ShardedBackend>(uni_off.get());
  auto ubackend_on = std::make_unique<ShardedBackend>(uni_on.get());
  for (const auto& name : names) {
    (void)ubackend_off->Predict(name, inputs[0]);
    (void)ubackend_on->Predict(name, inputs[0]);
  }
  double uni_eps[2] = {0, 0};
  for (int rep = 0; rep < reps; ++rep) {
    uni_eps[0] = std::max(
        uni_eps[0],
        Drive(*ubackend_off, names, inputs, uniform_seq, producers, window)
            .events_per_sec);
    uni_eps[1] = std::max(
        uni_eps[1],
        Drive(*ubackend_on, names, inputs, uniform_seq, producers, window)
            .events_per_sec);
    (void)uni_on->MaintainReplication();
  }
  const ShardedMetrics um_on = uni_on->GetMetrics();
  const double uniform_ratio = uni_eps[1] / std::max(uni_eps[0], 1e-9);
  std::printf("  uniform control: off %.0f ev/s, on %.0f ev/s (%.2fx), "
              "%zu replication(s)\n",
              uni_eps[0], uni_eps[1], uniform_ratio,
              static_cast<size_t>(um_on.replications));
  json.Add("rep_uniform_off_eps", uni_eps[0]);
  json.Add("rep_uniform_on_eps", uni_eps[1]);
  json.Add("rep_uniform_replications",
           static_cast<double>(um_on.replications));
  if (1.0 / static_cast<double>(names.size()) <
      rep_opts.hot_share_threshold) {
    pass &= ShapeCheck(
        um_on.replications == 0,
        "uniform traffic stays unreplicated (no plan crosses the hotness "
        "threshold)");
  }
  pass &= ShapeCheck(
      uniform_ratio >= 0.85,
      "replication machinery is free when cold: uniform-workload throughput "
      "within 15% of replication-off");

  json.Add("speedup_4_shards", speedup4);
  json.Add("p99_ratio_4_shards", tail_ratio4);
  json.Add("parallel_host", parallel_host ? "true" : "false");
  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
