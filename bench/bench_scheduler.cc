// Event-driven per-plan scheduler (Section 5.4): two properties the
// single-shared-FIFO design could not provide, measured under Zipf load.
//
//  1. Isolation: with the shared pool saturated by a continuous stream of
//     10k-record batches, p99 of synchronous predictions to a RESERVED plan
//     stays within a small factor of its unloaded p99 (Section 5.4.1 —
//     reservations now cover sync traffic, not just batches).
//  2. Adaptive coalescing: under high offered load of single-prediction
//     events, per-plan coalescing (max_batch > 1) beats one-request-per-
//     event dispatch on throughput by amortizing queue/wakeup costs.
//
//  3. Coalescing composes with the batch-major data path: dense-family
//     coalesced singles execute through the SoA batch kernels
//     (batch_major) instead of the per-event loop, and that beats the
//     per-record coalesced drain on parallel hosts.
//
// Also prints the serving-path sub-plan cache effectiveness (the Figure-10
// optimization, now owned by the Runtime's executors).
#include <atomic>
#include <condition_variable>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

struct Harness {
  ObjectStore store;
  std::unique_ptr<Runtime> runtime;
  std::vector<Runtime::PlanId> ids;

  void Build(const SaWorkload& sa, const RuntimeOptions& opts,
             size_t reserve_first_cores) {
    runtime = std::make_unique<Runtime>(&store, opts);
    FlourContext flour(&store);
    for (size_t i = 0; i < sa.pipelines().size(); ++i) {
      auto program = flour.FromPipeline(sa.pipelines()[i]);
      PlanRegistration reg;
      if (i == 0) {
        reg.reserve_cores = reserve_first_cores;
      }
      ids.push_back(*runtime->Register(*Plan(*program, sa.pipelines()[i].name), reg));
    }
  }
};

// Paced synchronous predictions against one plan; returns the latency
// distribution. Pacing keeps this latency-sensitive traffic open-loop-ish:
// each request arrives at an idle moment of its dedicated executor.
SampleStats MeasureSyncLatency(Runtime& runtime, Runtime::PlanId id,
                               const std::string& input, int n,
                               int64_t pace_us) {
  SampleStats stats;
  for (int i = 0; i < n; ++i) {
    const int64_t t0 = NowNs();
    auto r = runtime.Predict(id, input);
    if (r.ok()) {
      stats.Add(static_cast<double>(NowNs() - t0));
    }
    SleepUs(pace_us);
  }
  return stats;
}

// Continuously keeps `depth` batches of `records` records outstanding
// against the unreserved plans (Zipf-weighted) until told to stop.
class Saturator {
 public:
  Saturator(Runtime& runtime, const std::vector<Runtime::PlanId>& ids,
            const std::vector<std::string>& inputs, size_t records,
            size_t depth)
      : runtime_(runtime), ids_(ids), inputs_(inputs), records_(records) {
    for (size_t i = 0; i < depth; ++i) {
      Submit(i);
    }
  }

  void Stop() {
    stop_.store(true);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return outstanding_ == 0; });
  }

  size_t batches_run() const { return batches_.load(); }

 private:
  void Submit(size_t seed) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
    }
    // Zipf-ish: favor the first unreserved plans, like the head of a
    // popularity distribution.
    const size_t m = seed % 3 % ids_.size();
    std::vector<std::string> inputs(records_, inputs_[m]);
    Status st = runtime_.PredictBatchAsync(
        ids_[m], std::move(inputs),
        [this, seed](Status, std::span<const float>) {
          batches_.fetch_add(1);
          if (!stop_.load()) {
            Submit(seed + 1);
          }
          std::lock_guard<std::mutex> lock(mu_);
          if (--outstanding_ == 0) {
            cv_.notify_one();
          }
        },
        /*max_batch=*/64);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        cv_.notify_one();
      }
    }
  }

  Runtime& runtime_;
  const std::vector<Runtime::PlanId>& ids_;
  const std::vector<std::string>& inputs_;
  const size_t records_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> batches_{0};
  std::mutex mu_;
  size_t outstanding_ = 0;
  std::condition_variable cv_;
};

// Offered-load drain: pre-generated Zipf event stream of async singles.
// The (single) executor is first stalled with one long chunk quantum on
// `blocker_id` while every plan's queue is pre-filled, so the timed region
// — blocker completion to last single completion — measures pure
// dispatch+execution drain of a deep backlog, not submission interleave.
// That is exactly the regime adaptive coalescing targets: the per-dispatch
// scheduling cost is amortized over a coalesced run instead of being paid
// per event.
double DrainThroughput(Runtime& runtime, const std::vector<Runtime::PlanId>& ids,
                       const std::vector<std::string>& inputs,
                       const std::vector<LoadEvent>& schedule,
                       Runtime::PlanId blocker_id, const std::string& blocker_input,
                       size_t blocker_records) {
  std::atomic<size_t> pending{schedule.size()};
  std::atomic<int64_t> drain_start{0};
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> blocker(blocker_records, blocker_input);
  Status st = runtime.PredictBatchAsync(
      blocker_id, std::move(blocker),
      [&](Status status, std::span<const float>) {
        if (!status.ok()) {
          std::abort();
        }
        drain_start.store(NowNs());
      },
      /*max_batch=*/blocker_records);  // One chunk: one long quantum.
  if (!st.ok()) {
    std::abort();
  }
  for (const LoadEvent& event : schedule) {
    const size_t m = event.model_index;
    Status s = runtime.PredictAsync(ids[m], inputs[m], [&](Result<float> r) {
      if (!r.ok()) {
        std::abort();
      }
      if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
    if (!s.ok() && pending.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_one();
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending.load() == 0; });
  }
  const int64_t t1 = NowNs();
  // If the blocker outlived submission (the intended regime), the drain
  // started at its completion; otherwise fall back to whatever overlap
  // happened — identical protocol for both configs either way.
  const int64_t t0 = drain_start.load();
  return static_cast<double>(schedule.size()) /
         (static_cast<double>(t1 - t0) / 1e9);
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Scheduler", "Per-plan event scheduler: isolation + adaptive coalescing");

  auto sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 16));
  sa_opts.char_dict_entries = static_cast<size_t>(flags.GetInt("char_entries", 2000));
  sa_opts.word_dict_entries = static_cast<size_t>(flags.GetInt("word_entries", 600));
  sa_opts.vocabulary_size = static_cast<size_t>(flags.GetInt("vocab", 1200));
  auto sa = SaWorkload::Generate(sa_opts);
  const size_t executors = static_cast<size_t>(flags.GetInt("executors", 2));

  Rng rng(9001);
  std::vector<std::string> inputs;
  for (const auto& spec : sa.pipelines()) {
    (void)spec;
    inputs.push_back(sa.SampleInput(rng));
  }
  // Heavy input for the latency-sensitive plan: several sentences, so one
  // prediction is real work and the measured ratio reflects scheduling, not
  // wakeup noise.
  std::string heavy;
  for (int i = 0; i < static_cast<int>(flags.GetInt("heavy_concat", 16)); ++i) {
    heavy += sa.SampleInput(rng) + " ";
  }

  // ------------------------------------------------------------------
  // Part 1: reserved-plan isolation under shared-pool saturation.
  std::printf("\n-- Part 1: reservation isolation (Section 5.4.1) --\n");
  const int lat_samples = static_cast<int>(flags.GetInt("lat_samples", 500));
  const size_t batch_records = static_cast<size_t>(flags.GetInt("batch_records", 10000));
  double p99_ratio = 0.0;
  {
    Harness h;
    RuntimeOptions ropts;
    ropts.num_executors = executors;
    h.Build(sa, ropts, /*reserve_first_cores=*/1);

    // Warm the reserved path and its executor cache.
    for (int i = 0; i < 30; ++i) {
      (void)h.runtime->Predict(h.ids[0], heavy);
    }
    // Median-of-3 runs per phase: a single run's p99 on a shared host is a
    // scheduling fluke magnet in both directions.
    SampleStats u99, l99;
    SampleStats unloaded, loaded;
    for (int r = 0; r < 3; ++r) {
      unloaded = MeasureSyncLatency(*h.runtime, h.ids[0], heavy, lat_samples, 200);
      u99.Add(unloaded.P99());
    }
    std::vector<Runtime::PlanId> shared_ids(h.ids.begin() + 1, h.ids.end());
    Saturator saturator(*h.runtime, shared_ids, inputs, batch_records,
                        /*depth=*/2);
    // Only measure once the shared pool is visibly backlogged.
    for (int spin = 0; spin < 1000; ++spin) {
      size_t depth = 0;
      for (const PlanMetrics& pm : h.runtime->GetMetrics().plans) {
        if (!pm.reserved) {
          depth += pm.queue_depth;
        }
      }
      if (depth > 0) {
        break;
      }
      SleepUs(1000);
    }
    for (int r = 0; r < 3; ++r) {
      loaded = MeasureSyncLatency(*h.runtime, h.ids[0], heavy, lat_samples, 200);
      l99.Add(loaded.P99());
    }
    saturator.Stop();

    PrintCdfSummary("reserved, unloaded", unloaded);
    PrintCdfSummary("reserved, saturated pool", loaded);
    std::printf("  background: %zu batches x %zu records drained during run\n",
                saturator.batches_run(), batch_records);
    p99_ratio = l99.Median() / u99.Median();
    std::printf("  p99 (median of 3 runs): unloaded %s, loaded %s\n",
                FormatDurationNs(u99.Median()).c_str(),
                FormatDurationNs(l99.Median()).c_str());
    std::printf("  p99 ratio (loaded / unloaded): %.2fx\n", p99_ratio);
  }
  bool pass = ShapeCheck(
      p99_ratio < 5.0,
      "reserved-plan sync p99 under 10k-record batch saturation stays within "
      "5x of unloaded (Section 5.4.1 isolation covers sync traffic)");

  // ------------------------------------------------------------------
  // Part 2: adaptive coalescing under high offered Zipf load.
  std::printf("\n-- Part 2: adaptive batching under Zipf(2) offered load --\n");
  const size_t load_events = static_cast<size_t>(flags.GetInt("load_events", 60000));
  const int reps = static_cast<int>(flags.GetInt("reps", 4));
  auto schedule = GenerateLoadSchedule(sa.pipelines().size(), /*rps=*/1e6,
                                       static_cast<double>(load_events) / 1e6,
                                       /*zipf_alpha=*/2.0, 9002);
  // Two identical runtimes, differing only in batching policy. Interleaved
  // best-of-N reps: on a loaded host a single run's throughput is mostly an
  // OS-timeslicing roll; the best rep measures the scheduler, not the roll.
  // Both runtimes share the scheduler substrate (default: the shipped
  // lock-free one; --policy_lockfree=0 re-runs the comparison on the PR-2
  // mutex baseline) and differ only in batching policy. The lock-free vs
  // mutex substrate comparison itself lives in bench_contention.
  const bool policy_lockfree = flags.GetBool("policy_lockfree", true);
  Harness one_by_one;
  {
    RuntimeOptions ropts;
    ropts.num_executors = 1;  // Scheduling overhead, not parallelism, at test.
    ropts.default_max_batch = 1;  // One event per dispatch (the old model).
    ropts.lockfree_scheduler = policy_lockfree;
    one_by_one.Build(sa, ropts, 0);
  }
  Harness adaptive;
  {
    RuntimeOptions ropts;
    ropts.num_executors = 1;
    ropts.default_max_batch =
        static_cast<size_t>(flags.GetInt("max_batch", 64));
    ropts.default_max_delay_us = flags.GetInt("max_delay_us", 200);
    ropts.lockfree_scheduler = policy_lockfree;
    adaptive.Build(sa, ropts, 0);
  }
  // Warm both: bind every plan and populate the executor caches, so the
  // timed region measures steady-state serving.
  for (Harness* h : {&one_by_one, &adaptive}) {
    for (size_t m = 0; m < h->ids.size(); ++m) {
      (void)h->runtime->PredictBatch(h->ids[m], {inputs[m]}, 1);
    }
  }
  // Blocker sizing: long enough on this host that submission of the whole
  // schedule finishes while the executor is still inside the blocker
  // quantum (the drain then starts from a fully pre-filled backlog).
  const size_t blocker_records =
      static_cast<size_t>(flags.GetInt("blocker_records", 20000));
  double one_per_event = 0.0;
  double coalesced = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    one_per_event = std::max(
        one_per_event,
        DrainThroughput(*one_by_one.runtime, one_by_one.ids, inputs, schedule,
                        one_by_one.ids[0], heavy, blocker_records));
    coalesced = std::max(
        coalesced,
        DrainThroughput(*adaptive.runtime, adaptive.ids, inputs, schedule,
                        adaptive.ids[0], heavy, blocker_records));
  }
  double mean_batch = 0.0;
  SubPlanCache::Stats cache_stats;
  {
    const RuntimeMetrics m = adaptive.runtime->GetMetrics();
    double records = 0.0, dispatches = 0.0;
    for (const PlanMetrics& pm : m.plans) {
      records += static_cast<double>(pm.coalesced_singles);
      dispatches += static_cast<double>(pm.dispatches);
    }
    mean_batch = dispatches > 0 ? records / dispatches : 0.0;
    cache_stats = m.subplan_cache;
  }
  std::printf("  one-request-per-event: %10.0f events/s\n", one_per_event);
  std::printf("  adaptive coalescing:   %10.0f events/s (mean batch %.1f)\n",
              coalesced, mean_batch);
  std::printf("  coalescing speedup: %.2fx\n", coalesced / one_per_event);
  pass &= ShapeCheck(
      coalesced > 1.3 * one_per_event,
      "adaptive coalescing yields >= 1.3x throughput over one-request-per-"
      "event dispatch at high offered load");

  // ------------------------------------------------------------------
  // Serving-path sub-plan cache (Figure 10, now Runtime-owned).
  const double hit_rate =
      100.0 * static_cast<double>(cache_stats.hits) /
      static_cast<double>(std::max<uint64_t>(1, cache_stats.lookups));
  std::printf("\n  serving-path sub-plan cache: %llu lookups, %.1f%% hits\n",
              static_cast<unsigned long long>(cache_stats.lookups), hit_rate);
  pass &= ShapeCheck(cache_stats.hits > 0,
                     "sub-plan materialization cache is active (nonzero hits) "
                     "in a default serving run");

  // ------------------------------------------------------------------
  // Part 3: coalesced singles executing batch-major. Dense-family plans fed
  // binary-record singles: the scheduler coalesces them (PR-3 policy) and
  // the executor routes each coalesced group through ExecutePlanBatch's SoA
  // kernels instead of the per-event loop. Same drain protocol as Part 2,
  // same coalescing policy on both sides — the only difference is
  // batch_major execution of the coalesced group.
  std::printf("\n-- Part 3: batch-major execution of coalesced singles --\n");
  AcWorkloadOptions ac_opts = DefaultAcOptions(flags);
  ac_opts.num_pipelines = static_cast<size_t>(flags.GetInt("ac_pipelines", 4));
  const auto ac = AcWorkload::Generate(ac_opts);
  std::vector<std::string> ac_inputs;
  for (size_t m = 0; m < ac.pipelines().size(); ++m) {
    ac_inputs.push_back(ac.SampleInput(rng, WireFormat::kBinary, m));
  }
  const auto build_ac = [&](bool batch_major) {
    auto h = std::make_unique<Harness>();
    RuntimeOptions ropts;
    ropts.num_executors = 1;
    ropts.default_max_batch = static_cast<size_t>(flags.GetInt("max_batch", 64));
    ropts.default_max_delay_us = flags.GetInt("max_delay_us", 200);
    ropts.lockfree_scheduler = policy_lockfree;
    ropts.batch_major = batch_major;
    h->runtime = std::make_unique<Runtime>(&h->store, ropts);
    FlourContext flour(&h->store);
    for (const auto& spec : ac.pipelines()) {
      auto program = flour.FromPipeline(spec);
      h->ids.push_back(*h->runtime->Register(*Plan(*program, spec.name)));
    }
    for (size_t m = 0; m < h->ids.size(); ++m) {
      (void)h->runtime->PredictBatch(h->ids[m], {ac_inputs[m]}, 1);
    }
    return h;
  };
  auto per_record = build_ac(/*batch_major=*/false);
  auto batch_exec = build_ac(/*batch_major=*/true);
  auto ac_schedule = GenerateLoadSchedule(ac.pipelines().size(), /*rps=*/1e6,
                                          static_cast<double>(load_events) / 1e6,
                                          /*zipf_alpha=*/2.0, 9003);
  double per_record_eps = 0.0;
  double batch_exec_eps = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    per_record_eps = std::max(
        per_record_eps,
        DrainThroughput(*per_record->runtime, per_record->ids, ac_inputs,
                        ac_schedule, per_record->ids[0], ac_inputs[0],
                        blocker_records));
    batch_exec_eps = std::max(
        batch_exec_eps,
        DrainThroughput(*batch_exec->runtime, batch_exec->ids, ac_inputs,
                        ac_schedule, batch_exec->ids[0], ac_inputs[0],
                        blocker_records));
  }
  uint64_t batched_singles = 0;
  for (const PlanMetrics& pm : batch_exec->runtime->GetMetrics().plans) {
    batched_singles += pm.batched_singles;
  }
  const double batch_exec_speedup =
      per_record_eps > 0 ? batch_exec_eps / per_record_eps : 0.0;
  std::printf("  per-record coalesced:  %10.0f events/s\n", per_record_eps);
  std::printf("  batch-major coalesced: %10.0f events/s "
              "(%llu singles executed batch-major)\n",
              batch_exec_eps, static_cast<unsigned long long>(batched_singles));
  std::printf("  batch-execution speedup: %.2fx\n", batch_exec_speedup);
  pass &= ShapeCheck(batched_singles > 0,
                     "coalesced dense singles route through the batch-major "
                     "SoA path (batched_singles metric is live)");
  if (std::thread::hardware_concurrency() >= 2) {
    pass &= ShapeCheck(batch_exec_speedup >= 1.2,
                       "batch-major execution of coalesced singles >= 1.2x the "
                       "per-record coalesced drain");
  } else {
    // On a 1-core host the drain is timeslicing-dominated; guard against
    // regression instead of asserting the parallel-host margin.
    pass &= ShapeCheck(batch_exec_speedup >= 0.9,
                       "batch-major coalesced execution does not regress the "
                       "per-record drain on a 1-core host");
  }

  BenchJson json("scheduler");
  json.Add("isolation_p99_ratio", p99_ratio);
  json.Add("one_per_event_eps", one_per_event);
  json.Add("coalesced_eps", coalesced);
  json.Add("coalescing_speedup", coalesced / one_per_event);
  json.Add("mean_batch", mean_batch);
  json.Add("per_record_coalesced_eps", per_record_eps);
  json.Add("batch_major_coalesced_eps", batch_exec_eps);
  json.Add("batch_exec_speedup", batch_exec_speedup);
  json.Add("batched_singles", static_cast<double>(batched_singles));
  json.Add("subplan_cache_hit_pct", hit_rate);
  json.Add("policy_lockfree", policy_lockfree ? "true" : "false");
  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
