// Figure 12: batch throughput scaling with CPU cores, PRETZEL's batch engine
// vs the black-box baseline where each worker thread owns a private model
// replica (the paper's observation: per-thread copies defeat cache sharing
// and scaling). Sweeps cores from 1 up to the host's hardware threads; the
// paper's 13-core sweep needs a matching machine — on smaller hosts the
// sweep is clamped and the per-core comparison still holds.
#include <thread>

#include "bench/bench_util.h"
#include "src/blackbox/blackbox_server.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"

namespace pretzel {
namespace {

struct Throughput {
  double qps = 0.0;
};

// PRETZEL: all plans in one runtime; batch engine over `cores` executors.
template <typename Workload>
Throughput MeasurePretzel(const Workload& workload, size_t cores, size_t batch,
                          uint64_t seed) {
  ObjectStore store;
  FlourContext ctx(&store);
  RuntimeOptions opts;
  opts.num_executors = cores;
  Runtime runtime(&store, opts);
  std::vector<Runtime::PlanId> ids;
  for (const auto& spec : workload.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    ids.push_back(*runtime.Register(*Plan(*program, spec.name)));
  }
  Rng rng(seed);
  std::vector<std::string> inputs;
  for (size_t i = 0; i < batch; ++i) {
    inputs.push_back(workload.SampleInput(rng));
  }
  // Warm.
  (void)runtime.PredictBatch(ids[0], inputs, 64);
  size_t total = 0;
  const int64_t t0 = NowNs();
  for (auto id : ids) {
    auto r = runtime.PredictBatch(id, inputs, 64);
    if (r.ok()) {
      total += r->size();
    }
  }
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  return Throughput{static_cast<double>(total) / secs};
}

// Black-box: `cores` worker threads, each with its own model replicas
// (parameters duplicated per thread).
template <typename Workload>
Throughput MeasureBlackBox(const Workload& workload, size_t cores, size_t batch,
                           uint64_t seed) {
  BlackBoxOptions options;
  options.per_model_runtime_bytes = kPerModelRuntimeBytes;
  BlackBoxServer server(options);
  for (const auto& spec : workload.pipelines()) {
    (void)server.AddModelImage(spec.name, SaveModelImage(spec));
  }
  Rng rng(seed);
  std::vector<std::string> inputs;
  for (size_t i = 0; i < batch; ++i) {
    inputs.push_back(workload.SampleInput(rng));
  }
  const auto names = server.ModelNames();

  // Pre-create per-thread replicas (not timed: the baseline would have them
  // resident in steady state).
  std::vector<std::vector<std::unique_ptr<BlackBoxModel>>> replicas(cores);
  for (size_t t = 0; t < cores; ++t) {
    for (const auto& name : names) {
      auto r = server.CreateReplica(name);
      if (r.ok()) {
        replicas[t].push_back(std::move(*r));
      }
    }
  }

  std::atomic<size_t> total{0};
  const int64_t t0 = NowNs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < cores; ++t) {
    threads.emplace_back([&, t] {
      // Threads split the model set.
      for (size_t m = t; m < replicas[t].size(); m += cores) {
        for (const auto& input : inputs) {
          if (replicas[t][m]->Predict(input).ok()) {
            total.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const double secs = static_cast<double>(NowNs() - t0) / 1e9;
  return Throughput{static_cast<double>(total.load()) / secs};
}

template <typename Workload>
void RunCategory(const char* name, const Workload& workload, size_t batch,
                 const std::vector<size_t>& core_counts, uint64_t seed) {
  std::printf("  --- %s (batch=%zu, %zu models) ---\n", name, batch,
              workload.pipelines().size());
  std::printf("  %-8s %-16s %-16s %-10s\n", "cores", "PRETZEL QPS", "ML.Net QPS",
              "speedup");
  double p1 = 0.0, pN = 0.0, m1 = 0.0;
  for (size_t cores : core_counts) {
    auto pretzel = MeasurePretzel(workload, cores, batch, seed);
    auto mlnet = MeasureBlackBox(workload, cores, batch, seed);
    std::printf("  %-8zu %-16.0f %-16.0f %.2fx\n", cores, pretzel.qps, mlnet.qps,
                pretzel.qps / mlnet.qps);
    if (cores == core_counts.front()) {
      p1 = pretzel.qps;
      m1 = mlnet.qps;
    }
    pN = pretzel.qps;
  }
  ShapeCheck(p1 > m1, "PRETZEL outperforms ML.Net per core (paper: 2.6x SA, 10x AC)");
  if (core_counts.size() > 1) {
    const double scaling = pN / p1;
    std::printf("  PRETZEL scaling %zu->%zu cores: %.2fx (ideal %.1fx)\n",
                core_counts.front(), core_counts.back(), scaling,
                static_cast<double>(core_counts.back()) / core_counts.front());
    ShapeCheck(scaling > 0.6 * core_counts.back() / core_counts.front(),
               "PRETZEL throughput scales with cores (paper: linear)");
  } else {
    std::printf("  (single-core host: the paper's 1..13-core scaling sweep "
                "requires more hardware threads)\n");
  }
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 12", "Throughput scaling vs CPU cores, batch engine");

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> core_counts;
  for (size_t c : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{13}}) {
    if (c <= hw) {
      core_counts.push_back(c);
    }
  }
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 200));

  auto sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 40));
  auto sa = SaWorkload::Generate(sa_opts);
  RunCategory("Sentiment Analysis (SA)", sa, batch, core_counts, 4001);

  auto ac_opts = DefaultAcOptions(flags);
  ac_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 40));
  auto ac = AcWorkload::Generate(ac_opts);
  RunCategory("Attendee Count (AC)", ac, batch, core_counts, 4002);
  return 0;
}
