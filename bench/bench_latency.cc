// Figure 4 + Figure 5 + Figure 9: prediction latency.
//  - Fig. 4: cold vs hot latency CDF of the black-box (ML.Net-style) server
//    across the SA pipelines.
//  - Fig. 5: per-operator latency breakdown of one SA pipeline under
//    operator-at-a-time execution.
//  - Fig. 9: PRETZEL vs black-box latency CDFs (hot and cold) on SA and AC.
#include <map>

#include "bench/bench_util.h"
#include "src/blackbox/blackbox_server.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"

namespace pretzel {
namespace {

struct LatencyResult {
  SampleStats cold;
  SampleStats hot;
};

// Measures the black-box server: cold = first prediction (includes load),
// hot = mean of `hot_preds` predictions after warm-up.
template <typename Workload>
LatencyResult MeasureBlackBox(const Workload& workload, int warmup, int hot_preds,
                              uint64_t seed) {
  LatencyResult result;
  BlackBoxOptions options;
  options.per_model_runtime_bytes = kPerModelRuntimeBytes;
  BlackBoxServer server(options);
  for (const auto& spec : workload.pipelines()) {
    (void)server.AddModelImage(spec.name, SaveModelImage(spec));
  }
  Rng rng(seed);
  // Inputs are pre-generated: only serving time is measured.
  std::vector<std::string> inputs;
  for (int i = 0; i < warmup + hot_preds; ++i) {
    inputs.push_back(workload.SampleInput(rng));
  }
  for (const auto& spec : workload.pipelines()) {
    int64_t t0 = NowNs();
    bool was_cold = false;
    auto r = server.Predict(spec.name, inputs[0], &was_cold);
    if (!r.ok()) {
      std::fprintf(stderr, "blackbox %s failed: %s\n", spec.name.c_str(),
                   r.status().ToString().c_str());
      continue;
    }
    result.cold.Add(static_cast<double>(NowNs() - t0));
    for (int i = 0; i < warmup; ++i) {
      (void)server.Predict(spec.name, inputs[i]);
    }
    t0 = NowNs();
    for (int i = 0; i < hot_preds; ++i) {
      (void)server.Predict(spec.name, inputs[warmup + i]);
    }
    result.hot.Add(static_cast<double>(NowNs() - t0) / hot_preds);
  }
  return result;
}

// Measures PRETZEL through the request-response engine. Plans are compiled
// and registered off-line (the paper's two-phase deployment); cold = the
// first prediction after registration.
template <typename Workload>
LatencyResult MeasurePretzel(const Workload& workload, int warmup, int hot_preds,
                             uint64_t seed) {
  LatencyResult result;
  ObjectStore store;
  FlourContext ctx(&store);
  RuntimeOptions opts;
  opts.num_executors = 1;
  Runtime runtime(&store, opts);
  std::vector<Runtime::PlanId> ids;
  for (const auto& spec : workload.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    auto plan = Plan(*program, spec.name);
    auto id = runtime.Register(*plan);
    ids.push_back(*id);
  }
  Rng rng(seed);
  std::vector<std::string> inputs;
  for (int i = 0; i < warmup + hot_preds; ++i) {
    inputs.push_back(workload.SampleInput(rng));
  }
  for (size_t m = 0; m < ids.size(); ++m) {
    int64_t t0 = NowNs();
    auto r = runtime.Predict(ids[m], inputs[0]);
    if (!r.ok()) {
      std::fprintf(stderr, "pretzel %zu failed: %s\n", m,
                   r.status().ToString().c_str());
      continue;
    }
    result.cold.Add(static_cast<double>(NowNs() - t0));
    for (int i = 0; i < warmup; ++i) {
      (void)runtime.Predict(ids[m], inputs[i]);
    }
    t0 = NowNs();
    for (int i = 0; i < hot_preds; ++i) {
      (void)runtime.Predict(ids[m], inputs[warmup + i]);
    }
    result.hot.Add(static_cast<double>(NowNs() - t0) / hot_preds);
  }
  return result;
}

void PrintFigure5(const SaWorkload& sa, uint64_t seed) {
  PrintHeader("Figure 5", "Latency breakdown of one SA pipeline (operator-at-a-time)");
  BlackBoxOptions options;
  options.record_op_breakdown = true;
  auto model = BlackBoxModel::Load(SaveModelImage(sa.pipelines()[0]), options);
  if (!model.ok()) {
    std::fprintf(stderr, "load failed\n");
    return;
  }
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    (void)(*model)->Predict(sa.SampleInput(rng));
  }
  const auto& times = (*model)->op_times_ns();
  int64_t total = 0;
  for (int64_t t : times) {
    total += t;
  }
  double linear_pct = 0.0;
  std::map<std::string, double> shares;
  for (size_t i = 0; i < times.size(); ++i) {
    const auto& node = (*model)->spec().nodes[i];
    const double pct = 100.0 * times[i] / std::max<int64_t>(total, 1);
    shares[std::string(OpKindName(node.params->kind()))] += pct;
    if (node.params->kind() == OpKind::kLinearBinary) {
      linear_pct = pct;
    }
  }
  for (const auto& [op, pct] : shares) {
    std::printf("  %-20s %5.1f%%\n", op.c_str(), pct);
  }
  ShapeCheck(linear_pct < shares["CharNgram"] + shares["WordNgram"],
             "the ML model is a small fraction; featurizers dominate (paper: "
             "LogReg 0.3% vs Ngrams 57%)");
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  const int warmup = static_cast<int>(flags.GetInt("warmup", 10));
  const int hot_preds = static_cast<int>(flags.GetInt("hot_preds", 100));

  auto sa_opts = DefaultSaOptions(flags);
  auto ac_opts = DefaultAcOptions(flags);
  auto sa = SaWorkload::Generate(sa_opts);
  auto ac = AcWorkload::Generate(ac_opts);

  // --- Figure 4 ---
  PrintHeader("Figure 4", "Cold vs hot latency CDF, black-box server, SA pipelines");
  auto mlnet_sa = MeasureBlackBox(sa, warmup, hot_preds, 1001);
  PrintCdfSummary("ML.Net SA hot", mlnet_sa.hot);
  PrintCdfSummary("ML.Net SA cold", mlnet_sa.cold);
  PrintCdfSeries("ML.Net SA hot", mlnet_sa.hot, 10);
  PrintCdfSeries("ML.Net SA cold", mlnet_sa.cold, 10);
  ShapeCheck(mlnet_sa.cold.P99() > 3.0 * mlnet_sa.hot.P99(),
             "cold P99 is several times hot P99 (paper: 8.1ms vs 0.63ms)");
  ShapeCheck(mlnet_sa.cold.Max() > 10.0 * mlnet_sa.hot.P99(),
             "worst-case cold is orders off hot P99 (paper: 280ms vs 0.63ms)");

  // --- Figure 5 ---
  PrintFigure5(sa, 1002);

  // --- Figure 9 ---
  PrintHeader("Figure 9", "PRETZEL vs ML.Net latency (hot/cold), SA and AC");
  auto pretzel_sa = MeasurePretzel(sa, warmup, hot_preds, 1001);
  auto mlnet_ac = MeasureBlackBox(ac, warmup, hot_preds, 1003);
  auto pretzel_ac = MeasurePretzel(ac, warmup, hot_preds, 1003);

  std::printf("  [SA]\n");
  PrintCdfSummary("PRETZEL hot", pretzel_sa.hot);
  PrintCdfSummary("ML.Net  hot", mlnet_sa.hot);
  PrintCdfSummary("PRETZEL cold", pretzel_sa.cold);
  PrintCdfSummary("ML.Net  cold", mlnet_sa.cold);
  std::printf("  [AC]\n");
  PrintCdfSummary("PRETZEL hot", pretzel_ac.hot);
  PrintCdfSummary("ML.Net  hot", mlnet_ac.hot);
  PrintCdfSummary("PRETZEL cold", pretzel_ac.cold);
  PrintCdfSummary("ML.Net  cold", mlnet_ac.cold);

  const double sa_hot_speedup = mlnet_sa.hot.Median() / pretzel_sa.hot.Median();
  const double ac_hot_speedup = mlnet_ac.hot.Median() / pretzel_ac.hot.Median();
  const double sa_cold_speedup = mlnet_sa.cold.P99() / pretzel_sa.cold.P99();
  const double ac_cold_speedup = mlnet_ac.cold.P99() / pretzel_ac.cold.P99();
  std::printf("  speedups: SA hot(p50) %.1fx cold(p99) %.1fx | "
              "AC hot(p50) %.1fx cold(p99) %.1fx\n",
              sa_hot_speedup, sa_cold_speedup, ac_hot_speedup, ac_cold_speedup);
  // Hot-path note: the paper's 3.2x compares against managed ML.Net
  // (GC, virtual dispatch through .NET abstractions); our baseline is
  // native C++ sharing PRETZEL's numeric kernels, so only the execution-
  // model overheads (Value boxing, per-op buffers, Concat materialization)
  // separate the two and the hot gap is structurally smaller.
  ShapeCheck(sa_hot_speedup > 1.2,
             "PRETZEL beats ML.Net on SA hot median (paper: 3.2x vs managed runtime)");
  ShapeCheck(ac_hot_speedup > 0.9,
             "PRETZEL at least matches ML.Net on AC hot median (compute-bound)");
  ShapeCheck(sa_cold_speedup > 2.0,
             "PRETZEL beats ML.Net on SA cold P99 (paper: 9.8x)");
  ShapeCheck(ac_cold_speedup > 1.3,
             "PRETZEL beats ML.Net on AC cold P99 (paper: 5.7x)");
  const double mlnet_ratio = mlnet_sa.cold.P99() / mlnet_sa.hot.P99();
  const double pretzel_ratio = pretzel_sa.cold.P99() / pretzel_sa.hot.P99();
  ShapeCheck(pretzel_ratio < mlnet_ratio,
             "PRETZEL's cold/hot gap is smaller than ML.Net's (paper: 4.2x vs 13.3x)");
  return 0;
}
