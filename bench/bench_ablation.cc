// Section 5.2.1 ablations:
//  - AOT compilation: without it, stage binding is deferred to the first
//    prediction, inflating cold latency (paper: +1.6x SA, +4.2x AC).
//  - Vector pooling: without pooled buffers/contexts, allocation returns to
//    the data path (paper: hot +47.1%, cold +24.7%).
#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {
namespace {

struct AblationResult {
  SampleStats cold;
  SampleStats hot;
  // Per-plan means in generation order, for paired comparisons across
  // configurations (robust to machine drift between measurement passes).
  std::vector<double> hot_per_plan;
  std::vector<double> cold_per_plan;
};

// Median of pairwise ratios b[i]/a[i].
double PairedRatio(const std::vector<double>& a, const std::vector<double>& b) {
  SampleStats ratios;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] > 0) {
      ratios.Add(b[i] / a[i]);
    }
  }
  return ratios.empty() ? 0.0 : ratios.Median();
}

template <typename Workload>
AblationResult Measure(const Workload& workload, bool aot, bool pooling,
                       int hot_preds, uint64_t seed) {
  AblationResult result;
  ObjectStore store;
  FlourContext ctx(&store);
  CompileOptions copts;
  copts.aot_compile = aot;
  VectorPool::Options popts;
  popts.pooling_enabled = pooling;

  std::vector<std::shared_ptr<ModelPlan>> plans;
  for (const auto& spec : workload.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    auto plan = CompilePlan(*program, spec.name, copts);
    plans.push_back(*plan);
  }

  Rng rng(seed);
  VectorPool pool(popts);
  ExecContextPool ctx_pool(&pool, /*reuse_enabled=*/pooling);
  for (const auto& plan : plans) {
    const std::string input = workload.SampleInput(rng);
    // Cold: first prediction (includes lazy binding when AOT is off; a
    // fresh context models the unpooled path).
    int64_t t0 = NowNs();
    {
      auto exec = ctx_pool.Acquire();
      auto r = ExecutePlan(*plan, input, *exec);
      if (!r.ok()) {
        continue;
      }
      ctx_pool.Release(std::move(exec));
    }
    result.cold.Add(static_cast<double>(NowNs() - t0));
    result.cold_per_plan.push_back(static_cast<double>(NowNs() - t0));
    // Warm up, then hot.
    for (int i = 0; i < 10; ++i) {
      auto exec = ctx_pool.Acquire();
      (void)ExecutePlan(*plan, workload.SampleInput(rng), *exec);
      ctx_pool.Release(std::move(exec));
    }
    t0 = NowNs();
    for (int i = 0; i < hot_preds; ++i) {
      auto exec = ctx_pool.Acquire();
      (void)ExecutePlan(*plan, workload.SampleInput(rng), *exec);
      ctx_pool.Release(std::move(exec));
    }
    result.hot.Add(static_cast<double>(NowNs() - t0) / hot_preds);
    result.hot_per_plan.push_back(static_cast<double>(NowNs() - t0) / hot_preds);
  }
  return result;
}

template <typename Workload>
void RunCategory(const char* name, const Workload& workload, int hot_preds,
                 uint64_t seed) {
  std::printf("  --- %s ---\n", name);
  // Untimed warm pass: faults in the shared dictionaries/forests so the
  // first measured configuration is not penalized by cold page caches.
  (void)Measure(workload, /*aot=*/true, /*pooling=*/true, 5, seed);
  auto base = Measure(workload, /*aot=*/true, /*pooling=*/true, hot_preds, seed);
  auto no_aot = Measure(workload, /*aot=*/false, /*pooling=*/true, hot_preds, seed);
  auto no_pool = Measure(workload, /*aot=*/true, /*pooling=*/false, hot_preds, seed);

  PrintCdfSummary("baseline hot", base.hot);
  PrintCdfSummary("baseline cold", base.cold);
  PrintCdfSummary("no-AOT cold", no_aot.cold);
  PrintCdfSummary("no-pooling hot", no_pool.hot);
  PrintCdfSummary("no-pooling cold", no_pool.cold);

  // Paired per-plan ratios (median): each plan compares against itself, so
  // machine drift between the measurement passes cancels out.
  const double aot_cold_ratio = PairedRatio(base.cold_per_plan, no_aot.cold_per_plan);
  const double pool_hot_ratio = PairedRatio(base.hot_per_plan, no_pool.hot_per_plan);
  const double pool_cold_ratio =
      PairedRatio(base.cold_per_plan, no_pool.cold_per_plan);
  std::printf("  no-AOT cold inflation:     %.2fx (paper: 1.6x SA / 4.2x AC)\n",
              aot_cold_ratio);
  std::printf("  no-pooling hot inflation:  %.2fx (paper: +47.1%%)\n",
              pool_hot_ratio);
  std::printf("  no-pooling cold inflation: %.2fx (paper: +24.7%%)\n",
              pool_cold_ratio);
  ShapeCheck(aot_cold_ratio > 1.02, "disabling AOT inflates cold latency");
  ShapeCheck(pool_hot_ratio > 1.0 || pool_cold_ratio > 1.0,
             "disabling pooling inflates latency");
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  const int hot_preds = static_cast<int>(flags.GetInt("hot_preds", 50));
  PrintHeader("Section 5.2.1 ablations", "AOT compilation and vector pooling");
  auto sa = SaWorkload::Generate(DefaultSaOptions(flags));
  RunCategory("Sentiment Analysis (SA)", sa, hot_preds, 2001);
  auto ac = AcWorkload::Generate(DefaultAcOptions(flags));
  RunCategory("Attendee Count (AC)", ac, hot_preds, 2002);
  return 0;
}
