// Figure 13 + reservation scheduling (Section 5.4.1): heavy-load
// micro-benchmark. All models live in one PRETZEL instance; requests follow
// a Zipf(alpha=2) popularity distribution; half the models are
// latency-sensitive (batch 1), the rest arrive in batches. Reports system
// throughput and latency-sensitive latency as offered load increases, then
// repeats with one reserved model to show its latency stays flat.
#include <atomic>
#include <condition_variable>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

struct LoadPointResult {
  double offered_rps = 0.0;
  double achieved_qps = 0.0;       // Total records scored per second.
  double sensitive_mean_ms = 0.0;  // Latency-sensitive request latency.
  double reserved_mean_ms = 0.0;   // Reserved model's latency (if any).
};

struct HeavyLoadHarness {
  ObjectStore store;
  std::unique_ptr<Runtime> runtime;
  std::vector<Runtime::PlanId> ids;
  std::vector<std::string> sample_inputs;
  size_t reserved_model = SIZE_MAX;

  void Build(const SaWorkload& sa, size_t executors, bool reserve_first) {
    RuntimeOptions opts;
    opts.num_executors = executors;
    runtime = std::make_unique<Runtime>(&store, opts);
    FlourContext ctx(&store);
    Rng rng(5001);
    for (size_t i = 0; i < sa.pipelines().size(); ++i) {
      auto program = ctx.FromPipeline(sa.pipelines()[i]);
      auto plan = Plan(*program, sa.pipelines()[i].name);
      PlanRegistration reg;
      if (reserve_first && i == 0) {
        reg.reserve_cores = 1;
        reserved_model = 0;
      }
      ids.push_back(*runtime->Register(*plan, reg));
      sample_inputs.push_back(sa.SampleInput(rng));
    }
    // Warm every plan once.
    for (size_t i = 0; i < ids.size(); ++i) {
      (void)runtime->Predict(ids[i], sample_inputs[i]);
    }
  }

  LoadPointResult RunLoad(double rps, double duration_s, size_t big_batch) {
    auto schedule = GenerateLoadSchedule(ids.size(), rps, duration_s, 2.0, 5002);
    std::atomic<size_t> records{0};
    std::atomic<int64_t> sensitive_ns{0};
    std::atomic<size_t> sensitive_count{0};
    std::atomic<int64_t> reserved_ns{0};
    std::atomic<size_t> reserved_count{0};
    std::atomic<size_t> pending{schedule.size()};
    std::mutex mu;
    std::condition_variable cv;

    const int64_t start = NowNs();
    for (const auto& event : schedule) {
      // Open-loop pacing.
      const int64_t target = start + static_cast<int64_t>(event.arrival_seconds * 1e9);
      while (NowNs() < target) {
        std::this_thread::yield();
      }
      const size_t m = event.model_index;
      const bool sensitive = m % 2 == 0;  // Half the models are batch-1.
      const bool reserved = m == reserved_model;
      const size_t batch = sensitive ? 1 : big_batch;
      std::vector<std::string> inputs(batch, sample_inputs[m]);
      const int64_t submit = NowNs();
      Status st = runtime->PredictBatchAsync(
          ids[m], std::move(inputs),
          [&, submit, sensitive, reserved, batch](Status status,
                                                  std::span<const float>) {
            if (status.ok()) {
              records.fetch_add(batch, std::memory_order_relaxed);
              const int64_t lat = NowNs() - submit;
              if (sensitive) {
                sensitive_ns.fetch_add(lat, std::memory_order_relaxed);
                sensitive_count.fetch_add(1, std::memory_order_relaxed);
              }
              if (reserved) {
                reserved_ns.fetch_add(lat, std::memory_order_relaxed);
                reserved_count.fetch_add(1, std::memory_order_relaxed);
              }
            }
            if (pending.fetch_sub(1) == 1) {
              std::lock_guard<std::mutex> lock(mu);
              cv.notify_one();
            }
          },
          64);
      if (!st.ok()) {
        pending.fetch_sub(1);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return pending.load() == 0; });
    }
    const double elapsed_s = static_cast<double>(NowNs() - start) / 1e9;

    LoadPointResult result;
    result.offered_rps = rps;
    result.achieved_qps = static_cast<double>(records.load()) / elapsed_s;
    result.sensitive_mean_ms =
        sensitive_count.load() == 0
            ? 0.0
            : static_cast<double>(sensitive_ns.load()) / sensitive_count.load() / 1e6;
    result.reserved_mean_ms =
        reserved_count.load() == 0
            ? 0.0
            : static_cast<double>(reserved_ns.load()) / reserved_count.load() / 1e6;
    return result;
  }
};

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 13", "Heavy load: Zipf(2) skew, throughput + latency vs load");

  auto sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 60));
  auto sa = SaWorkload::Generate(sa_opts);
  const size_t executors = static_cast<size_t>(flags.GetInt(
      "executors", std::max(1u, std::thread::hardware_concurrency())));
  const double duration = flags.GetInt("duration_ms", 1500) / 1000.0;
  const size_t big_batch = static_cast<size_t>(flags.GetInt("big_batch", 50));

  // Offered load sweep. The paper sweeps to 500 rps against 16 cores; the
  // knee must sit inside the sweep, so scale the top end with a flag when
  // running on bigger machines.
  std::vector<double> loads;
  const double max_load = static_cast<double>(flags.GetInt("max_rps", 8000));
  for (double l = max_load / 16; l <= max_load; l *= 2) {
    loads.push_back(l);
  }

  {
    HeavyLoadHarness harness;
    harness.Build(sa, executors, /*reserve_first=*/false);
    std::printf("  %-12s %-16s %-20s\n", "offered rps", "achieved QPS",
                "sensitive mean (ms)");
    double first_lat = 0.0, last_lat = 0.0, best_qps = 0.0;
    for (double rps : loads) {
      auto r = harness.RunLoad(rps, duration, big_batch);
      std::printf("  %-12.0f %-16.0f %-20.2f\n", r.offered_rps, r.achieved_qps,
                  r.sensitive_mean_ms);
      if (rps == loads.front()) {
        first_lat = r.sensitive_mean_ms;
      }
      last_lat = r.sensitive_mean_ms;
      best_qps = std::max(best_qps, r.achieved_qps);
    }
    ShapeCheck(best_qps > loads.front(),
               "throughput grows with offered load before saturating");
    // The paper's claim is *graceful* latency under load (no Clipper-style
    // explosion). Since the per-plan event scheduler + serving-path
    // sub-plan caches landed, the sweep no longer saturates this runtime,
    // so the curve can stay flat (or dip as caches warm) instead of
    // rising; assert no-explosion rather than monotone growth.
    ShapeCheck(last_lat <= std::max(10.0 * first_lat, 1.0),
               "latency stays graceful (no explosion) as load increases");
  }

  PrintHeader("Section 5.4.1", "Reservation scheduling: reserved model under load");
  {
    HeavyLoadHarness harness;
    harness.Build(sa, executors, /*reserve_first=*/true);
    std::printf("  %-12s %-16s %-20s %-20s\n", "offered rps", "achieved QPS",
                "sensitive mean (ms)", "reserved mean (ms)");
    double reserved_first = 0.0, reserved_last = 0.0, shared_last = 0.0;
    for (double rps : loads) {
      auto r = harness.RunLoad(rps, duration, big_batch);
      std::printf("  %-12.0f %-16.0f %-20.2f %-20.2f\n", r.offered_rps,
                  r.achieved_qps, r.sensitive_mean_ms, r.reserved_mean_ms);
      if (rps == loads.front()) {
        reserved_first = r.reserved_mean_ms;
      }
      reserved_last = r.reserved_mean_ms;
      shared_last = r.sensitive_mean_ms;
    }
    ShapeCheck(reserved_last < shared_last || reserved_last < 4 * reserved_first,
               "the reserved model's latency does not degrade with load "
               "(paper: no degradation, up to 3 orders of magnitude better)");
  }
  return 0;
}
