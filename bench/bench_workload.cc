// Table 1 + Figure 3: workload characterization. Prints the pipeline suite
// characteristics (input kind, size ranges) and the operator-sharing
// histogram across the SA pipelines with per-version sizes, mirroring the
// published figure.
#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/ops/op_kind.h"

namespace pretzel {
namespace {

void PrintTable1(const SaWorkload& sa, const AcWorkload& ac) {
  PrintHeader("Table 1", "Characteristics of pipelines in experiments");
  auto size_range = [](const std::vector<PipelineSpec>& specs) {
    size_t lo = SIZE_MAX, hi = 0, sum = 0;
    for (const auto& s : specs) {
      const size_t b = s.ParameterBytes();
      lo = std::min(lo, b);
      hi = std::max(hi, b);
      sum += b;
    }
    return std::tuple<size_t, size_t, size_t>(lo, hi, sum / specs.size());
  };
  auto [sa_lo, sa_hi, sa_mean] = size_range(sa.pipelines());
  auto [ac_lo, ac_hi, ac_mean] = size_range(ac.pipelines());
  std::printf("  %-12s | %-28s | %-28s\n", "", "Sentiment Analysis (SA)",
              "Attendee Count (AC)");
  std::printf("  %-12s | %-28s | %-28s\n", "Input", "Plain text (variable length)",
              "Structured text (40 dims)");
  std::printf("  %-12s | %s - %s (mean %s)%-4s | %s - %s (mean %s)\n", "Size",
              FormatBytes(sa_lo).c_str(), FormatBytes(sa_hi).c_str(),
              FormatBytes(sa_mean).c_str(), "",
              FormatBytes(ac_lo).c_str(), FormatBytes(ac_hi).c_str(),
              FormatBytes(ac_mean).c_str());
  std::printf("  %-12s | %-28s | %-28s\n", "Featurizers",
              "N-grams with dictionaries", "PCA, KMeans, TreeFeaturizer");
  std::printf("  (paper: SA 50-100MB mean 70MB, AC 10KB-20MB mean 9MB;\n"
              "   sizes here are scaled down, ratios preserved)\n\n");
}

void PrintFigure3(const SaWorkload& sa) {
  PrintHeader("Figure 3", "Operator sharing across SA pipelines (count x size)");
  // Group each operator position by content checksum.
  struct VersionInfo {
    int count = 0;
    size_t bytes = 0;
  };
  std::map<std::string, std::map<uint64_t, VersionInfo>> by_op;
  for (const auto& spec : sa.pipelines()) {
    for (const auto& node : spec.nodes) {
      const std::string op(OpKindName(node.params->kind()));
      auto& v = by_op[op][node.params->ContentChecksum()];
      v.count++;
      v.bytes = node.params->HeapBytes();
    }
  }
  for (const auto& [op, versions] : by_op) {
    std::vector<VersionInfo> sorted;
    for (const auto& [ck, info] : versions) {
      sorted.push_back(info);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const VersionInfo& a, const VersionInfo& b) {
                return a.count > b.count;
              });
    std::printf("  %-20s %zu version(s):", op.c_str(), sorted.size());
    size_t shown = 0;
    for (const auto& v : sorted) {
      if (shown++ == 8) {
        std::printf(" ...");
        break;
      }
      std::printf("  %dx %s", v.count, FormatBytes(v.bytes).c_str());
    }
    std::printf("\n");
  }

  const auto& tok = by_op["Tokenizer"];
  const auto& cn = by_op["CharNgram"];
  const auto& wn = by_op["WordNgram"];
  const auto& lr = by_op["LinearBinary"];
  ShapeCheck(tok.size() == 1, "Tokenizer shared (same params) by all pipelines");
  ShapeCheck(cn.size() >= 2 && cn.size() <= 8,
             "CharNgram has only a handful of versions (paper: 7)");
  ShapeCheck(wn.size() >= 2 && wn.size() <= 8,
             "WordNgram has only a handful of versions (paper: 6)");
  ShapeCheck(lr.size() == sa.pipelines().size(),
             "Linear model weights are unique per pipeline (never shared)");
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  pretzel::BenchFlags flags(argc, argv);
  auto sa = pretzel::SaWorkload::Generate(pretzel::DefaultSaOptions(flags));
  auto ac = pretzel::AcWorkload::Generate(pretzel::DefaultAcOptions(flags));
  pretzel::PrintTable1(sa, ac);
  pretzel::PrintFigure3(sa);
  return 0;
}
