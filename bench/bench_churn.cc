// Model churn under load: the zero-downtime versioned lifecycle
// (Deploy -> canary -> Promote/Rollback -> epoch reclaim) exercised while
// the serving stack rides a flash crowd.
//
// Protocol: place the SA suite on a ShardRouter and replay the same
// open-loop flash-crowd schedule twice (deadlines propagated both times):
//
//   baseline: no lifecycle activity. Goodput is the control.
//   churn:    a control-plane thread continuously cycles models between
//             two variants (v-next swaps only the linear-weights node, so
//             every shared parameter interns against the resident blob),
//             holding each canary open under live traffic before
//             promoting it — with every fourth cycle aborted via
//             Rollback to keep the retire path hot.
//
// Every completion is checked against monolithic ground truth for BOTH
// variants: a score that matches neither is a torn read (a request that
// observed half a swap), and any NotFound/internal error is a routed
// request that caught a retired version. The paper-shaped claims: churn
// is invisible to the data plane (goodput within 10% of baseline on
// parallel hosts, zero torn scores, zero errors), a swap costs exactly
// the changed node's bytes (O(changed-params), not O(model)), retired
// versions leave the ObjectStore to the byte, and a canary that degrades
// (here: every canary-routed request blows its deadline inside the
// stack) is killed and rolled back by the health controller without
// operator action.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/serving/shard_router.h"
#include "src/workload/load_gen.h"
#include "src/workload/sa_workload.h"

namespace pretzel {
namespace {

struct DriveResult {
  double wall_s = 0.0;
  size_t good = 0;     // Completed within SLO, score matched a variant.
  size_t late = 0;     // Completed and matched, SLO missed.
  size_t shed = 0;     // Refused with ResourceExhausted (admission shed).
  size_t expired = 0;  // Dropped inside the stack with DeadlineExceeded.
  size_t torn = 0;     // Completed with a score matching NEITHER variant.
  size_t errors = 0;   // Any other failure (routed to a retired version).
  double p99_us = 0.0;
  double goodput = 0.0;  // good / wall_s.
};

// Replays `schedule` open-loop against `router` (already placed and warm).
// Each completion's score must equal the model's variant-A or variant-B
// ground truth bit for bit; anything else books as `torn`. Latency is
// measured from the scheduled arrival (dispatcher lag counts against the
// server), identically in both configurations.
DriveResult Drive(ShardRouter& router, const std::vector<std::string>& names,
                  const std::vector<std::string>& inputs,
                  const std::vector<float>& expect_a,
                  const std::vector<float>& expect_b,
                  const std::vector<LoadEvent>& schedule, int64_t slo_ns) {
  DriveResult result;
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  SampleStats latency_us;

  // Chunked open-loop pacing (see bench_resilience): all arrivals due in
  // each 1ms window go out flat-out, then the dispatcher sleeps to the
  // window edge, so a burst can actually outrun service.
  constexpr int64_t kWindowNs = 1'000'000;
  const int64_t t0 = NowNs();
  size_t accepted = 0;
  for (const LoadEvent& ev : schedule) {
    const int64_t target =
        t0 + static_cast<int64_t>(ev.arrival_seconds * 1e9);
    const int64_t window_start = (target - t0) / kWindowNs * kWindowNs + t0;
    const int64_t now = NowNs();
    if (now < window_start) {
      SleepUs((window_start - now) / 1000);
    }
    const int64_t deadline = target + slo_ns;
    const size_t m = ev.model_index;
    Status st = router.PredictAsync(
        names[m], inputs[m],
        [&, m, target, deadline](Result<float> r) {
          const int64_t done_ns = NowNs();
          std::lock_guard<std::mutex> lock(mu);
          if (r.ok()) {
            if (*r != expect_a[m] && *r != expect_b[m]) {
              ++result.torn;  // Neither version scores this: a torn read.
            } else {
              latency_us.Add(static_cast<double>(done_ns - target) / 1e3);
              if (done_ns <= deadline) {
                ++result.good;
              } else {
                ++result.late;
              }
            }
          } else if (r.status().IsResourceExhausted()) {
            ++result.shed;
          } else if (r.status().IsDeadlineExceeded()) {
            ++result.expired;
          } else {
            ++result.errors;
          }
          ++completed;
          cv.notify_all();
        },
        deadline);
    if (st.ok()) {
      ++accepted;
    } else {
      std::lock_guard<std::mutex> lock(mu);
      if (st.IsResourceExhausted()) {
        ++result.shed;
      } else if (st.IsDeadlineExceeded()) {
        ++result.expired;
      } else {
        ++result.errors;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == accepted; });
  }
  result.wall_s = static_cast<double>(NowNs() - t0) / 1e9;
  result.p99_us = latency_us.P99();
  result.goodput = static_cast<double>(result.good) / result.wall_s;
  return result;
}

void PrintDrive(const char* label, const DriveResult& r, size_t total) {
  std::printf(
      "  %-9s goodput %8.0f/s  good %6zu/%zu  late %5zu  shed %5zu  "
      "expired %5zu  torn %zu  err %zu  p99 %.0fus  wall %.2fs\n",
      label, r.goodput, r.good, total, r.late, r.shed, r.expired, r.torn,
      r.errors, r.p99_us, r.wall_s);
}

// What the lifecycle thread did while the churn drive ran.
struct ChurnStats {
  size_t cycles = 0;
  size_t promotes = 0;
  size_t rollbacks = 0;
  size_t killed_promotes = 0;  // Promote refused: health gate fired first.
  size_t deploy_failures = 0;
};

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("churn: zero-downtime model lifecycle under a flash crowd",
              "goodput and score integrity with continuous "
              "deploy/promote/rollback");

  SaWorkloadOptions wopts = DefaultSaOptions(flags);
  wopts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 12));
  const SaWorkload sa = SaWorkload::Generate(wopts);
  const size_t n = sa.pipelines().size();

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t shards = static_cast<size_t>(
      flags.GetInt("shards", std::min<size_t>(4, std::max<size_t>(1, hw / 2))));
  ShardRouterOptions sopts;
  sopts.num_shards = shards;
  sopts.runtime.num_executors = 1;
  // The burst blows deadlines inside the stack by design; those book as
  // shard faults, and a tripped breaker would failover-migrate plans and
  // perturb the byte accounting this bench asserts. The breaker is not
  // the subject here: park it.
  sopts.breaker.failure_threshold = 1 << 30;
  sopts.rollout.canary_fraction_bp =
      static_cast<uint32_t>(flags.GetInt("canary_bp", 2500));

  std::vector<std::string> names;
  for (const auto& spec : sa.pipelines()) {
    names.push_back(spec.name);
  }

  // One fixed long document per model (cost must dwarf dispatch cost).
  const size_t input_reps =
      static_cast<size_t>(flags.GetInt("input_reps", 25));
  Rng rng(17);
  std::vector<std::string> inputs;
  for (size_t m = 0; m < n; ++m) {
    std::string doc;
    for (size_t rep = 0; rep < input_reps; ++rep) {
      if (!doc.empty()) {
        doc += ' ';
      }
      doc += sa.SampleInput(rng);
    }
    inputs.push_back(std::move(doc));
  }

  // Variant B of every model: same pipeline, linear weights rotated from
  // the next model. Exactly one node changes, so a B-deploy must intern
  // every shared parameter and a settled A<->B<->A churn is byte-neutral.
  std::vector<PipelineSpec> spec_b;
  for (size_t m = 0; m < n; ++m) {
    PipelineSpec b = sa.pipelines()[m];
    b.nodes[4].params = sa.pipelines()[(m + 1) % n].nodes[4].params;
    spec_b.push_back(std::move(b));
  }

  // Monolithic ground truth for both variants of every model.
  std::vector<float> expect_a(n), expect_b(n);
  {
    ObjectStore ref_store;
    RuntimeOptions ropts;
    ropts.num_executors = 1;
    Runtime reference(&ref_store, ropts);
    FlourContext flour(&ref_store);
    for (size_t m = 0; m < n; ++m) {
      auto ida = reference.Register(
          *Plan(*flour.FromPipeline(sa.pipelines()[m]), "ref_a"));
      auto idb =
          reference.Register(*Plan(*flour.FromPipeline(spec_b[m]), "ref_b"));
      if (!ida.ok() || !idb.ok()) {
        std::printf("  reference compile failed\n");
        return 1;
      }
      expect_a[m] = *reference.Predict(*ida, inputs[m]);
      expect_b[m] = *reference.Predict(*idb, inputs[m]);
    }
  }

  // Calibrate the true async service rate on a throwaway router (see
  // bench_resilience for why a sync estimate undershoots).
  double capacity_rps;
  double lat_us;
  {
    ShardRouter probe(sopts);
    for (const auto& spec : sa.pipelines()) {
      if (!probe.Place(spec).ok()) {
        std::printf("  calibration place failed\n");
        return 1;
      }
    }
    for (size_t m = 0; m < n; ++m) {
      (void)probe.Predict(names[m], inputs[m]);  // Warm.
    }
    const size_t kCal = static_cast<size_t>(flags.GetInt("cal_events", 1500));
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    const int64_t c0 = NowNs();
    for (size_t i = 0; i < kCal; ++i) {
      const size_t m = i % n;
      Status st = probe.PredictAsync(names[m], inputs[m], [&](Result<float>) {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        cv.notify_all();
      });
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done >= kCal; });
    }
    const double cal_s = static_cast<double>(NowNs() - c0) / 1e9;
    capacity_rps = static_cast<double>(kCal) / cal_s;
    lat_us = 1e6 * static_cast<double>(shards) / capacity_rps;
  }

  const double util =
      static_cast<double>(flags.GetInt("util_pct", 45)) / 100.0;
  const double base_rps = util * capacity_rps;
  const double burst_x = static_cast<double>(flags.GetInt("burst_x", 4));
  const int64_t slo_us =
      flags.GetInt("slo_us", 0) > 0
          ? flags.GetInt("slo_us", 0)
          : static_cast<int64_t>(std::max(2000.0, 10.0 * lat_us));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 20000));

  FlashCrowdOptions fopts;
  fopts.num_models = n;
  fopts.base_rps = base_rps;
  fopts.duration_s =
      static_cast<double>(requests) / (base_rps * (2.0 + burst_x) / 3.0);
  fopts.burst_start_s = fopts.duration_s / 3.0;
  fopts.burst_duration_s = fopts.duration_s / 3.0;
  fopts.burst_x = burst_x;
  fopts.crowd_fraction = 0.7;
  fopts.crowd_model = 0;
  fopts.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const auto schedule = GenerateFlashCrowdSchedule(fopts);
  const int64_t slo_ns = slo_us * 1000;

  std::printf(
      "  %zu pipelines on %zu shards; calibrated %.0fus/pred (~%.0f rps "
      "capacity)\n  base %.0f rps, burst %.0fx middle third, SLO %lldus, "
      "%zu arrivals, canary %ubp\n\n",
      n, shards, lat_us, capacity_rps, base_rps, burst_x,
      static_cast<long long>(slo_us), schedule.size(),
      sopts.rollout.canary_fraction_bp);

  // ---- Baseline drive: same stack, no lifecycle activity.
  ShardRouter base_router(sopts);
  for (const auto& spec : sa.pipelines()) {
    if (!base_router.Place(spec).ok()) {
      std::printf("  place failed\n");
      return 1;
    }
  }
  for (size_t m = 0; m < n; ++m) {
    auto warm = base_router.Predict(names[m], inputs[m]);
    if (!warm.ok() || *warm != expect_a[m]) {
      std::printf("  warmup mismatch on %s\n", names[m].c_str());
      return 1;
    }
  }
  const DriveResult base = Drive(base_router, names, inputs, expect_a,
                                 expect_a, schedule, slo_ns);
  PrintDrive("baseline", base, schedule.size());

  // ---- Swap-cost demo on the now-idle baseline router: one B-deploy
  // whose donor weights live on a DIFFERENT shard's segment, so the store
  // must grow by exactly the changed node — every shared parameter is an
  // intern hit against the resident v1 blob. Rollback retires the canary
  // and the bytes leave to the byte.
  const size_t bytes0 = base_router.GetMetrics().store_bytes;
  const size_t home = base_router.ShardFor(names[0]);
  const PipelineSpec* donor = nullptr;
  for (size_t i = 1; i < n && donor == nullptr; ++i) {
    if (base_router.ShardFor(names[i]) != home) {
      donor = &sa.pipelines()[i];
    }
  }
  PipelineSpec demo = sa.pipelines()[0];
  size_t expected_delta = 0;
  if (donor != nullptr) {
    demo.nodes[4].params = donor->nodes[4].params;
    expected_delta = donor->nodes[4].params->HeapBytes();
  } else {
    // Single shard: every donor is already resident in the one segment,
    // so the swap is a pure intern hit (delta 0) — still O(changed).
    demo.nodes[4].params = sa.pipelines()[1].nodes[4].params;
  }
  bool swap_cost_ok = base_router.Deploy(demo).ok();
  const size_t bytes_deployed = base_router.GetMetrics().store_bytes;
  swap_cost_ok = swap_cost_ok && bytes_deployed == bytes0 + expected_delta;
  swap_cost_ok = swap_cost_ok && base_router.Rollback(names[0]).ok();
  const size_t bytes_rolled_back = base_router.GetMetrics().store_bytes;
  swap_cost_ok = swap_cost_ok && bytes_rolled_back == bytes0;
  std::printf(
      "  swap cost: %zu -> %zu bytes on deploy (changed node %zu), "
      "-> %zu on rollback\n",
      bytes0, bytes_deployed, expected_delta, bytes_rolled_back);

  // ---- Churn drive: identical schedule, plus a lifecycle thread cycling
  // models A->B->A with a rollback every fourth cycle.
  ShardRouter churn_router(sopts);
  for (const auto& spec : sa.pipelines()) {
    if (!churn_router.Place(spec).ok()) {
      std::printf("  place failed\n");
      return 1;
    }
  }
  for (size_t m = 0; m < n; ++m) {
    (void)churn_router.Predict(names[m], inputs[m]);  // Warm.
  }
  const size_t churn_bytes0 = churn_router.GetMetrics().store_bytes;

  std::atomic<bool> churn_stop{false};
  ChurnStats churn_stats;
  std::vector<bool> active_is_b(n, false);
  std::thread churner([&] {
    size_t cycle = 0;
    while (!churn_stop.load(std::memory_order_acquire)) {
      const size_t m = cycle % n;
      const PipelineSpec& next =
          active_is_b[m] ? sa.pipelines()[m] : spec_b[m];
      auto v = churn_router.Deploy(next);
      if (!v.ok()) {
        ++churn_stats.deploy_failures;
        ++cycle;
        continue;
      }
      // Hold the canary open long enough to take real traffic (capped so
      // smoke-scale drives still complete several cycles).
      const int64_t hold_until = NowNs() + 30'000'000;
      while (NowNs() < hold_until &&
             !churn_stop.load(std::memory_order_acquire)) {
        auto info = churn_router.VersionInfo(names[m]);
        if (!info.ok() || !info->rollout_in_flight ||
            info->canary_routed >= 16 || info->canary_fraction_bp == 0) {
          break;
        }
        SleepUs(2000);
      }
      ++churn_stats.cycles;
      if (cycle % 4 == 3) {
        if (churn_router.Rollback(names[m]).ok()) {
          ++churn_stats.rollbacks;
        }
      } else {
        Status p = churn_router.Promote(names[m]);
        if (p.ok()) {
          ++churn_stats.promotes;
          active_is_b[m] = !active_is_b[m];
        } else {
          // The health controller (or a racing auto-rollback) emptied the
          // rollout first; the canary is already gone.
          ++churn_stats.killed_promotes;
        }
      }
      ++cycle;
    }
  });
  const DriveResult churned = Drive(churn_router, names, inputs, expect_a,
                                    expect_b, schedule, slo_ns);
  churn_stop.store(true, std::memory_order_release);
  churner.join();
  PrintDrive("churn", churned, schedule.size());
  const ShardedMetrics cm = churn_router.GetMetrics();
  std::printf(
      "  lifecycle: %zu cycles, %zu promotes, %zu rollbacks "
      "(%llu auto), %zu kill-raced promotes, %zu deploy failures\n",
      churn_stats.cycles, churn_stats.promotes, churn_stats.rollbacks,
      static_cast<unsigned long long>(cm.auto_rollbacks),
      churn_stats.killed_promotes, churn_stats.deploy_failures);

  // Settle every model back to variant A (a same-spec deploy is a pure
  // intern-hit no-op) and verify the whole churn was byte-neutral: every
  // retired version's blobs left the store.
  for (size_t m = 0; m < n; ++m) {
    auto info = churn_router.VersionInfo(names[m]);
    if (info.ok() && info->rollout_in_flight) {
      (void)churn_router.Rollback(names[m]);
    }
    if (active_is_b[m]) {
      if (churn_router.Deploy(sa.pipelines()[m]).ok()) {
        (void)churn_router.Promote(names[m]);
      }
    }
  }
  const size_t churn_bytes_settled = churn_router.GetMetrics().store_bytes;
  std::printf("  store: %zu bytes pre-churn, %zu settled\n\n", churn_bytes0,
              churn_bytes_settled);

  // ---- Health-gated auto-rollback, deterministically provoked: a fresh
  // one-shard, one-executor router, a 50% canary deploy, then async
  // floods whose deadlines admit at submit but expire in the queue — the
  // same in-stack expiry the burst produces, concentrated. Every
  // canary-routed expiry books a version fault, the failure EWMA crosses
  // the gate, and the data path's kill switch zeroes the split; the
  // maintenance backstop then completes the teardown. No operator
  // Rollback() anywhere.
  bool ar_fired = false;
  bool ar_clean = false;
  uint64_t ar_count = 0;
  size_t ar_attempts = 0;
  {
    ShardRouterOptions aopts = sopts;
    aopts.num_shards = 1;
    aopts.rollout.canary_fraction_bp = 5000;
    aopts.rollout.min_canary_requests = 8;
    ShardRouter ar(aopts);
    if (!ar.Place(sa.pipelines()[0]).ok()) {
      std::printf("  auto-rollback place failed\n");
      return 1;
    }
    // Distinct inputs so no layer can answer from a cache ahead of the
    // deadline.
    std::vector<std::string> probes;
    for (size_t i = 0; i < 64; ++i) {
      probes.push_back(inputs[0] + " v" + std::to_string(i));
    }
    for (int i = 0; i < 3; ++i) {
      (void)ar.Predict(names[0], probes[static_cast<size_t>(i)]);  // Warm.
    }
    const int64_t m0 = NowNs();
    for (int i = 0; i < 5; ++i) {
      (void)ar.Predict(names[0], probes[static_cast<size_t>(i) % 64]);
    }
    const int64_t per_ns = std::max<int64_t>((NowNs() - m0) / 5, 1'000);
    // A flood of 64 on one executor builds ~64*per of queue delay; a
    // deadline of ~4*per admits everything at submit and expires most of
    // the flood at dispatch or between batch quanta.
    const int64_t budget_ns = std::min<int64_t>(
        std::max<int64_t>(4 * per_ns, 20'000), 10'000'000);
    const size_t ar_bytes0 = ar.GetMetrics().store_bytes;
    if (!ar.Deploy(spec_b[0]).ok()) {
      std::printf("  auto-rollback deploy failed\n");
      return 1;
    }
    for (size_t round = 0; round < 50; ++round) {
      auto info = ar.VersionInfo(names[0]);
      if (!info.ok()) {
        break;
      }
      if (!info->rollout_in_flight) {
        ar_fired = true;
        break;
      }
      if (info->canary_fraction_bp == 0) {
        // Kill switch fired on an executor thread; the periodic
        // maintenance scan is the backstop that finishes the teardown.
        (void)ar.MaintainReplication();
        continue;
      }
      std::mutex mu;
      std::condition_variable cv;
      size_t done = 0;
      size_t submitted = 0;
      for (size_t i = 0; i < 64; ++i) {
        Status st = ar.PredictAsync(
            names[0], probes[i],
            [&](Result<float>) {
              std::lock_guard<std::mutex> lock(mu);
              ++done;
              cv.notify_all();
            },
            NowNs() + budget_ns);
        if (st.ok()) {
          ++submitted;
        }
        ++ar_attempts;
      }
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == submitted; });
    }
    ar_count = ar.GetMetrics().auto_rollbacks;
    auto info = ar.VersionInfo(names[0]);
    auto sane = ar.Predict(names[0], inputs[0]);
    ar_clean = info.ok() && !info->rollout_in_flight &&
               info->active_version == 1 && sane.ok() &&
               *sane == expect_a[0] &&
               ar.GetMetrics().store_bytes == ar_bytes0;
    std::printf(
        "  auto-rollback: fired=%d after %zu degraded requests "
        "(auto_rollbacks=%llu, stable intact=%d)\n\n",
        ar_fired ? 1 : 0, ar_attempts,
        static_cast<unsigned long long>(ar_count), ar_clean ? 1 : 0);
  }

  const double ratio = churned.goodput / std::max(base.goodput, 1e-9);
  std::printf("  goodput ratio (churn / baseline): %.2fx\n\n", ratio);

  BenchJson json("churn");
  json.Add("pipelines", static_cast<double>(n));
  json.Add("shards", static_cast<double>(shards));
  json.Add("calibrated_latency_us", lat_us);
  json.Add("arrivals", static_cast<double>(schedule.size()));
  json.Add("slo_us", static_cast<double>(slo_us));
  json.Add("goodput_baseline", base.goodput);
  json.Add("goodput_churn", churned.goodput);
  json.Add("goodput_ratio", ratio);
  json.Add("p99_us_baseline", base.p99_us);
  json.Add("p99_us_churn", churned.p99_us);
  json.Add("torn_total", static_cast<double>(base.torn + churned.torn));
  json.Add("errors_total", static_cast<double>(base.errors + churned.errors));
  json.Add("churn_cycles", static_cast<double>(churn_stats.cycles));
  json.Add("churn_promotes", static_cast<double>(churn_stats.promotes));
  json.Add("churn_rollbacks", static_cast<double>(churn_stats.rollbacks));
  json.Add("drive_auto_rollbacks", static_cast<double>(cm.auto_rollbacks));
  json.Add("swap_delta_bytes", static_cast<double>(expected_delta));
  json.Add("store_bytes_prechurn", static_cast<double>(churn_bytes0));
  json.Add("store_bytes_settled", static_cast<double>(churn_bytes_settled));
  json.Add("auto_rollback_attempts", static_cast<double>(ar_attempts));

  bool pass = ShapeCheck(
      base.good + base.late + base.shed + base.expired + base.torn +
                  base.errors == schedule.size() &&
          churned.good + churned.late + churned.shed + churned.expired +
                  churned.torn + churned.errors == schedule.size(),
      "every arrival resolves exactly once in both runs (no drops, no "
      "double completions)");
  pass &= ShapeCheck(
      base.torn + churned.torn == 0 && base.errors + churned.errors == 0,
      "zero requests observe a torn or retired version: every completion "
      "matches one variant's monolithic ground truth bit for bit");
  pass &= ShapeCheck(
      churn_stats.cycles >= 1 &&
          churn_stats.promotes + churn_stats.rollbacks +
                  churn_stats.killed_promotes >= 1,
      "the lifecycle actually churned under load (>= 1 full "
      "deploy->promote/rollback cycle during the drive)");
  pass &= ShapeCheck(
      swap_cost_ok,
      "a version swap costs exactly the changed node's bytes "
      "(O(changed-params) interning) and a rollback returns the store to "
      "the byte");
  pass &= ShapeCheck(
      churn_bytes_settled == churn_bytes0,
      "after the churn settles, retired versions left the ObjectStore: "
      "resident bytes equal the pre-churn baseline exactly");
  pass &= ShapeCheck(
      ar_fired && ar_count >= 1 && ar_clean,
      "a degraded canary is killed by the health controller alone: "
      "auto-rollback fires, the stable version keeps serving, and the "
      "canary's bytes are reclaimed");

  const bool parallel_host = hw >= 2;
  const bool ratio_check = flags.GetBool("ratio_check", true);
  if (!ratio_check) {
    std::printf(
        "  NOTE: --ratio_check=0 (smoke scale); the goodput-ratio claim "
        "is only\n  observable at full scale, so it is reported but not "
        "checked.\n");
  } else if (parallel_host) {
    pass &= ShapeCheck(
        ratio >= 0.9,
        "continuous register/swap/retire stays invisible to the data "
        "plane: churn goodput within 10% of the no-churn baseline");
  } else {
    std::printf(
        "  NOTE: single-core host; compile bursts timeslice the one core "
        "with the\n  executors, so the 10%% claim is unobservable. Check "
        "degrades to a\n  no-collapse guard.\n");
    pass &= ShapeCheck(ratio >= 0.5,
                       "[1-core fallback] churn never collapses goodput "
                       "below 0.5x baseline");
  }
  json.Add("parallel_host", parallel_host ? "true" : "false");
  json.Add("ratio_checked", ratio_check ? "true" : "false");
  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
