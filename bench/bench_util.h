// Shared helpers for the figure/table reproduction harnesses: a small flag
// parser, standard workload scales, and table printing. Every bench binary
// prints the rows/series of its paper figure plus SHAPE-CHECK lines that
// verify the qualitative claims (who wins, by roughly what factor).
//
// Scale note: the paper's pipelines carry 59-83 MB n-gram dictionaries; the
// 250-copies baselines would need >> 32 GB here, so dictionaries are scaled
// down by default (--char_entries, --pipelines). Experiments report ratios,
// which the scaling preserves; see EXPERIMENTS.md.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/blackbox/blackbox_model.h"
#include "src/clipper/container.h"
#include "src/common/stats.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"

namespace pretzel {

// ---------------------------------------------------------------------------
// Flags: --name=value (integers) parsed from argv.

class BenchFlags {
 public:
  BenchFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        continue;
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        flags_.emplace_back(arg + 2, "1");
      } else {
        flags_.emplace_back(std::string(arg + 2, eq - arg - 2), eq + 1);
      }
    }
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    for (const auto& [k, v] : flags_) {
      if (k == name) {
        return std::atoll(v.c_str());
      }
    }
    return def;
  }

  bool GetBool(const std::string& name, bool def) const {
    return GetInt(name, def ? 1 : 0) != 0;
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
};

// ---------------------------------------------------------------------------
// Standard workload scales.

inline SaWorkloadOptions DefaultSaOptions(const BenchFlags& flags) {
  SaWorkloadOptions opts;
  opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 250));
  opts.char_dict_entries = static_cast<size_t>(flags.GetInt("char_entries", 8000));
  opts.word_dict_entries = static_cast<size_t>(flags.GetInt("word_entries", 2000));
  opts.vocabulary_size = static_cast<size_t>(flags.GetInt("vocab", 4000));
  return opts;
}

inline AcWorkloadOptions DefaultAcOptions(const BenchFlags& flags) {
  AcWorkloadOptions opts;
  opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 250));
  opts.featurizer_trees = static_cast<size_t>(flags.GetInt("feat_trees", 48));
  opts.featurizer_depth = static_cast<size_t>(flags.GetInt("feat_depth", 7));
  opts.final_trees = static_cast<size_t>(flags.GetInt("final_trees", 24));
  opts.final_depth = static_cast<size_t>(flags.GetInt("final_depth", 5));
  return opts;
}

// Memory constants for the baseline emulations (scaled with the workload;
// rationale in EXPERIMENTS.md).
inline constexpr size_t kPerModelRuntimeBytes = 512ull << 10;   // ML.Net runtime/model.
inline constexpr size_t kContainerOverheadBytes = 2ull << 20;   // Docker overhead.

// ---------------------------------------------------------------------------
// Output helpers.

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n  %s\n", experiment, description);
  std::printf("  host: %u hardware threads\n", std::thread::hardware_concurrency());
  std::printf("==============================================================\n");
}

inline void PrintCdfSummary(const char* label, const SampleStats& stats) {
  std::printf("  %-28s n=%-7zu p50=%-10s p99=%-10s worst=%s\n", label,
              stats.count(), FormatDurationNs(stats.Median()).c_str(),
              FormatDurationNs(stats.P99()).c_str(),
              FormatDurationNs(stats.Max()).c_str());
}

inline void PrintCdfSeries(const char* label, const SampleStats& stats,
                           size_t points = 20) {
  std::printf("  CDF %s:\n", label);
  for (const auto& [value, frac] : stats.Cdf(points)) {
    std::printf("    %6.2f%%  %s\n", frac * 100.0, FormatDurationNs(value).c_str());
  }
}

// A qualitative claim from the paper, verified against measured data.
inline bool ShapeCheck(bool condition, const char* claim) {
  std::printf("  SHAPE-CHECK %-4s %s\n", condition ? "PASS" : "FAIL", claim);
  return condition;
}

// ---------------------------------------------------------------------------
// Machine-readable results: a flat key -> number/string map written to
// BENCH_<name>.json in the working directory, so CI can archive each run
// and the perf trajectory accumulates across commits. Keys keep insertion
// order; values are numbers (%.6g) or minimally-escaped strings.

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Add("bench", name_);
    Add("hardware_threads",
        static_cast<double>(std::thread::hardware_concurrency()));
  }

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    quoted_.push_back(false);
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Escape(value));
    quoted_.push_back(true);
  }

  // Writes BENCH_<name>.json; prints the path (or the failure) either way.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("  bench-json: could not open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "%s\n  \"%s\": ", i == 0 ? "" : ",",
                   fields_[i].first.c_str());
      if (quoted_[i]) {
        std::fprintf(f, "\"%s\"", fields_[i].second.c_str());
      } else {
        std::fprintf(f, "%s", fields_[i].second.c_str());
      }
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("  bench-json: wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<bool> quoted_;
};

}  // namespace pretzel

#endif  // BENCH_BENCH_UTIL_H_
