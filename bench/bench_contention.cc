// Scheduler hot-path contention: lock-free (MPSC event rings + lock-free
// runnable rotation + eventcount parking) vs the PR-2 mutex baseline
// (every enqueue/dispatch serializes on the executor group's mutex), kept
// in-tree behind RuntimeOptions::lockfree_scheduler for exactly this
// comparison.
//
// Protocol: P producer threads submit async single predictions (a bounded
// sliding window each, so the queues stay hot without unbounded backlog)
// against a small plan set served by E executors; we measure completed
// events/second from first submit to last completion, best-of-N reps,
// sweeping P. Under the mutex baseline every producer and every executor
// pass through one lock per event — the convoy grows with P — while the
// lock-free path pays a few CASes and skips the kernel wakeup whenever the
// executors are already busy.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"

namespace pretzel {
namespace {

struct Harness {
  ObjectStore store;
  std::unique_ptr<Runtime> runtime;
  std::vector<Runtime::PlanId> ids;

  void Build(const SaWorkload& sa, const RuntimeOptions& opts) {
    runtime = std::make_unique<Runtime>(&store, opts);
    FlourContext flour(&store);
    for (const auto& spec : sa.pipelines()) {
      auto program = flour.FromPipeline(spec);
      ids.push_back(*runtime->Register(*Plan(*program, spec.name)));
    }
  }
};

struct CellResult {
  double events_per_sec = 0.0;
  SampleStats enqueue_ns;  // Sampled PredictAsync call latency.
};

// One measured cell: `producers` threads submit `events` async singles
// total through `runtime`, each with at most `window` outstanding. Returns
// completed events/second plus the sampled latency of the enqueue call
// itself — the op that rides the group mutex in the baseline and a few
// CASes in lock-free mode. Its tail shows producers blocking behind an
// executor's locked gather, a convoy that exists even when wall-clock
// throughput is core-limited.
CellResult MeasureEnqueueDispatch(Runtime& runtime,
                                  const std::vector<Runtime::PlanId>& ids,
                                  const std::vector<std::string>& inputs,
                                  size_t producers, size_t events,
                                  size_t window) {
  constexpr size_t kLatencySampleEvery = 16;
  std::atomic<size_t> completed{0};
  std::atomic<size_t> failed{0};
  std::mutex stats_mu;
  CellResult result;
  const size_t per_producer = events / producers;
  const size_t total = per_producer * producers;
  const int64_t t0 = NowNs();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      SampleStats local_lat;
      std::atomic<size_t> outstanding{0};
      for (size_t i = 0; i < per_producer; ++i) {
        while (outstanding.load(std::memory_order_relaxed) >= window) {
          std::this_thread::yield();
        }
        const size_t m = (p + i) % ids.size();
        outstanding.fetch_add(1, std::memory_order_relaxed);
        const bool sample = i % kLatencySampleEvery == 0;
        const int64_t enq0 = sample ? NowNs() : 0;
        Status st = runtime.PredictAsync(
            ids[m], inputs[m],
            [&completed, &failed, &outstanding](Result<float> r) {
              if (!r.ok()) {
                failed.fetch_add(1, std::memory_order_relaxed);
              }
              // release/acquire pairs with the drain loops below: the
              // counters are also the lifetime handshake for this stack
              // frame, so the last callback must happen-before its reuse.
              outstanding.fetch_sub(1, std::memory_order_release);
              completed.fetch_add(1, std::memory_order_release);
            });
        if (sample) {
          local_lat.Add(static_cast<double>(NowNs() - enq0));
        }
        if (!st.ok()) {
          outstanding.fetch_sub(1, std::memory_order_release);
          completed.fetch_add(1, std::memory_order_release);
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Drain this producer's window before exiting so `outstanding` (a
      // stack variable) outlives every callback that references it.
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      for (const double s : local_lat.samples()) {
        result.enqueue_ns.Add(s);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  while (completed.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }
  const double seconds = static_cast<double>(NowNs() - t0) / 1e9;
  if (failed.load() > 0) {
    std::printf("  WARNING: %zu failed predictions\n", failed.load());
  }
  result.events_per_sec = static_cast<double>(total) / seconds;
  return result;
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Contention",
              "Lock-free scheduler hot path vs PR-2 mutex baseline, "
              "producer-thread sweep");

  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 4));
  sa_opts.char_dict_entries =
      static_cast<size_t>(flags.GetInt("char_entries", 600));
  sa_opts.word_dict_entries =
      static_cast<size_t>(flags.GetInt("word_entries", 200));
  sa_opts.vocabulary_size = static_cast<size_t>(flags.GetInt("vocab", 400));
  auto sa = SaWorkload::Generate(sa_opts);

  const size_t executors = static_cast<size_t>(flags.GetInt("executors", 2));
  const size_t events = static_cast<size_t>(flags.GetInt("events", 60000));
  const size_t window = static_cast<size_t>(flags.GetInt("window", 256));
  const size_t max_producers =
      static_cast<size_t>(flags.GetInt("max_producers", 4));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));

  Rng rng(4242);
  std::vector<std::string> inputs;
  for (const auto& spec : sa.pipelines()) {
    (void)spec;
    inputs.push_back(sa.SampleInput(rng));
  }

  // Two runtimes, identical in every policy (executors, coalescing) except
  // the scheduler substrate.
  const auto build = [&](bool lockfree) {
    RuntimeOptions ropts;
    ropts.num_executors = executors;
    ropts.lockfree_scheduler = lockfree;
    ropts.default_max_batch = static_cast<size_t>(flags.GetInt("max_batch", 64));
    ropts.event_ring_capacity =
        static_cast<size_t>(flags.GetInt("ring_capacity", 1024));
    auto h = std::make_unique<Harness>();
    h->Build(sa, ropts);
    // Warm: bind every plan and populate the executor caches so the sweep
    // measures steady-state scheduling, not first-touch compilation.
    for (size_t m = 0; m < h->ids.size(); ++m) {
      (void)h->runtime->PredictBatch(h->ids[m], {inputs[m]}, 1);
    }
    return h;
  };
  auto mutex_harness = build(/*lockfree=*/false);
  auto lockfree_harness = build(/*lockfree=*/true);

  BenchJson json("contention");
  json.Add("executors", static_cast<double>(executors));
  json.Add("events", static_cast<double>(events));
  json.Add("window", static_cast<double>(window));

  std::printf("\n  %zu executors, %zu events/cell, window %zu, best of %d\n\n",
              executors, events, window, reps);
  std::printf("  %-10s %14s %14s %8s %14s %14s %8s\n", "producers",
              "mutex ev/s", "lockfree ev/s", "speedup", "mutex enq p99",
              "lockfree p99", "ratio");

  double speedup_at_max = 0.0;
  double tail_ratio_at_max = 0.0;
  for (size_t producers = 1; producers <= max_producers; producers *= 2) {
    // Interleaved best-of-N throughput (a single run on a shared host is
    // mostly an OS-timeslicing roll); median-of-N for the p99 tail, which
    // best-of would understate.
    double mutex_eps = 0.0;
    double lockfree_eps = 0.0;
    SampleStats mutex_p99s, lockfree_p99s;
    for (int rep = 0; rep < reps; ++rep) {
      CellResult m =
          MeasureEnqueueDispatch(*mutex_harness->runtime, mutex_harness->ids,
                                 inputs, producers, events, window);
      CellResult l = MeasureEnqueueDispatch(*lockfree_harness->runtime,
                                            lockfree_harness->ids, inputs,
                                            producers, events, window);
      mutex_eps = std::max(mutex_eps, m.events_per_sec);
      lockfree_eps = std::max(lockfree_eps, l.events_per_sec);
      mutex_p99s.Add(m.enqueue_ns.P99());
      lockfree_p99s.Add(l.enqueue_ns.P99());
    }
    const double speedup = lockfree_eps / mutex_eps;
    const double mutex_p99 = mutex_p99s.Median();
    const double lockfree_p99 = lockfree_p99s.Median();
    const double tail_ratio = mutex_p99 / lockfree_p99;
    std::printf("  %-10zu %14.0f %14.0f %7.2fx %14s %14s %7.2fx\n", producers,
                mutex_eps, lockfree_eps, speedup,
                FormatDurationNs(mutex_p99).c_str(),
                FormatDurationNs(lockfree_p99).c_str(), tail_ratio);
    const std::string prefix = "p" + std::to_string(producers) + "_";
    json.Add(prefix + "mutex_eps", mutex_eps);
    json.Add(prefix + "lockfree_eps", lockfree_eps);
    json.Add(prefix + "speedup", speedup);
    json.Add(prefix + "mutex_enqueue_p99_ns", mutex_p99);
    json.Add(prefix + "lockfree_enqueue_p99_ns", lockfree_p99);
    if (producers >= 4 || producers == max_producers) {
      speedup_at_max = std::max(speedup_at_max, speedup);
      tail_ratio_at_max = std::max(tail_ratio_at_max, tail_ratio);
    }
  }

  std::printf("\n");
  // The throughput claim needs hardware that can actually run >= 2 threads
  // at once: on a single-core host, waiters behind a short critical section
  // are never running in parallel, so a mutex cannot convoy and the two
  // substrates are wall-clock-equivalent by construction. There, the
  // contention the lock-free path removes shows up in the enqueue-call tail
  // (producers blocking behind an executor's locked gather) and the
  // throughput check degrades to a no-regression guard.
  const bool parallel_host = std::thread::hardware_concurrency() >= 2;
  bool pass;
  if (parallel_host) {
    pass = ShapeCheck(
        speedup_at_max >= 1.5,
        "lock-free enqueue+dispatch sustains >= 1.5x the mutex-baseline "
        "throughput at >= 4 producer threads");
  } else {
    std::printf(
        "  NOTE: single-core host; mutexes cannot convoy without parallelism, "
        "so the 1.5x\n  throughput claim is unobservable here and the check "
        "degrades to parity + tail.\n");
    pass = ShapeCheck(
        speedup_at_max >= 0.85,
        "[1-core fallback] lock-free enqueue+dispatch stays within 15% of the "
        "mutex baseline at max producers");
  }
  pass &= ShapeCheck(
      tail_ratio_at_max >= 2.0,
      "lock-free enqueue-call p99 beats the mutex baseline by >= 2x at max "
      "producers (no producer ever blocks behind a locked dispatch gather)");
  json.Add("speedup_at_max_producers", speedup_at_max);
  json.Add("enqueue_p99_ratio_at_max_producers", tail_ratio_at_max);
  json.Add("parallel_host", parallel_host ? "true" : "false");
  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
