// Figure 10: sub-plan materialization. Hot SA latency with and without the
// materialization cache, under a request mix where popular inputs repeat
// across similar pipelines (the regime the optimization targets). The paper
// reports ~2x average speedup for ~80% of SA pipelines, no regressions.
#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"

namespace pretzel {
namespace {

// Per-pipeline mean hot latency with an optional cache, over a shared set
// of inputs (the same inputs hit every pipeline, as A/B-tested variants of
// one service would see).
std::vector<double> MeasurePerPipeline(const SaWorkload& sa, SubPlanCache* cache,
                                       const std::vector<std::string>& inputs,
                                       int reps) {
  ObjectStore store;
  FlourContext ctx(&store);
  std::vector<std::shared_ptr<ModelPlan>> plans;
  for (const auto& spec : sa.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    plans.push_back(*Plan(*program, spec.name));
  }
  VectorPool pool;
  ExecContext exec(&pool);
  exec.subplan_cache = cache;

  // Warm: one pass over all plans and inputs (populates the cache).
  for (const auto& plan : plans) {
    for (const auto& input : inputs) {
      (void)ExecutePlan(*plan, input, exec);
    }
  }
  std::vector<double> mean_ns;
  for (const auto& plan : plans) {
    const int64_t t0 = NowNs();
    for (int r = 0; r < reps; ++r) {
      for (const auto& input : inputs) {
        (void)ExecutePlan(*plan, input, exec);
      }
    }
    mean_ns.push_back(static_cast<double>(NowNs() - t0) /
                      (reps * inputs.size()));
  }
  return mean_ns;
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 10", "SA hot latency with/without sub-plan materialization");
  auto sa_opts = DefaultSaOptions(flags);
  // Fewer pipelines, same sharing structure, keeps runtime modest.
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 100));
  auto sa = SaWorkload::Generate(sa_opts);

  Rng rng(3001);
  std::vector<std::string> inputs;
  for (int i = 0; i < static_cast<int>(flags.GetInt("inputs", 20)); ++i) {
    inputs.push_back(sa.SampleInput(rng));
  }
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  auto without = MeasurePerPipeline(sa, nullptr, inputs, reps);
  SubPlanCache cache(512ull << 20);
  auto with = MeasurePerPipeline(sa, &cache, inputs, reps);

  SampleStats speedups;
  size_t above_2x = 0;
  size_t regressions = 0;
  for (size_t i = 0; i < with.size(); ++i) {
    const double speedup = without[i] / with[i];
    speedups.Add(speedup);
    above_2x += speedup > 2.0 ? 1 : 0;
    regressions += speedup < 0.95 ? 1 : 0;
  }
  std::printf("  pipelines=%zu inputs=%zu reps=%d\n", with.size(), inputs.size(),
              reps);
  std::printf("  speedup: mean=%.2fx median=%.2fx p10=%.2fx p90=%.2fx\n",
              speedups.Mean(), speedups.Median(), speedups.Percentile(10),
              speedups.Percentile(90));
  std::printf("  pipelines with >2x speedup: %zu/%zu (paper: ~80%%)\n", above_2x,
              with.size());
  std::printf("  cache: %zu entries, %s, hit-rate %.1f%%\n", cache.NumEntries(),
              FormatBytes(cache.SizeBytes()).c_str(),
              100.0 * cache.GetStats().hits /
                  std::max<uint64_t>(1, cache.GetStats().lookups));
  ShapeCheck(speedups.Mean() > 1.5,
             "sub-plan materialization speeds up SA hot latency (paper: 2.0x avg)");
  ShapeCheck(regressions < with.size() / 10,
             "no meaningful performance deterioration (paper: none)");
  return 0;
}
