// Figure 11: end-to-end latency observed by a client. PRETZEL behind its
// FrontEnd (the paper's ASP.Net front-end) vs black-box containers behind
// the same FrontEnd (the paper's ML.Net + Clipper with a Redis front-end).
// Reports prediction-only latency next to client-observed latency so the
// client/server overhead is visible, as in the paper's figure.
#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/frontend/backends.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"

namespace pretzel {
namespace {

struct E2eResult {
  SampleStats prediction_only;
  SampleStats client_observed;
};

template <typename Workload>
E2eResult MeasurePretzel(const Workload& workload, int reqs_per_model,
                         int64_t network_delay_us, uint64_t seed) {
  E2eResult result;
  ObjectStore store;
  FlourContext ctx(&store);
  RuntimeOptions opts;
  opts.num_executors = 1;
  Runtime runtime(&store, opts);
  PretzelBackend backend(&runtime);
  std::vector<Runtime::PlanId> ids;
  for (const auto& spec : workload.pipelines()) {
    auto program = ctx.FromPipeline(spec);
    auto id = runtime.Register(*Plan(*program, spec.name));
    ids.push_back(*id);
    backend.AddRoute(spec.name, *id);
  }
  FrontEndOptions fopts;
  fopts.network_delay_us = network_delay_us;
  FrontEnd frontend(&backend, fopts);

  Rng rng(seed);
  for (size_t m = 0; m < ids.size(); ++m) {
    const std::string& name = workload.pipelines()[m].name;
    (void)runtime.Predict(ids[m], workload.SampleInput(rng));  // Warm.
    for (int i = 0; i < reqs_per_model; ++i) {
      const std::string input = workload.SampleInput(rng);
      int64_t t0 = NowNs();
      (void)runtime.Predict(ids[m], input);
      result.prediction_only.Add(static_cast<double>(NowNs() - t0));
      t0 = NowNs();
      (void)frontend.Request(name, input);
      result.client_observed.Add(static_cast<double>(NowNs() - t0));
    }
  }
  return result;
}

template <typename Workload>
E2eResult MeasureClipper(const Workload& workload, int reqs_per_model,
                         int64_t network_delay_us, int64_t rpc_delay_us,
                         uint64_t seed) {
  E2eResult result;
  ContainerOptions copts;
  copts.rpc_delay_us = rpc_delay_us;
  copts.container_overhead_bytes = kContainerOverheadBytes;
  copts.blackbox.per_model_runtime_bytes = kPerModelRuntimeBytes;
  ClipperCluster cluster(copts);
  for (const auto& spec : workload.pipelines()) {
    (void)cluster.Deploy(spec.name, SaveModelImage(spec));
  }
  ClipperBackend backend(&cluster);
  FrontEndOptions fopts;
  fopts.network_delay_us = network_delay_us;
  FrontEnd frontend(&backend, fopts);

  Rng rng(seed);
  for (const auto& spec : workload.pipelines()) {
    (void)cluster.Predict(spec.name, workload.SampleInput(rng));  // Warm.
    for (int i = 0; i < reqs_per_model; ++i) {
      const std::string input = workload.SampleInput(rng);
      int64_t t0 = NowNs();
      (void)cluster.Predict(spec.name, input);
      result.prediction_only.Add(static_cast<double>(NowNs() - t0));
      t0 = NowNs();
      (void)frontend.Request(spec.name, input);
      result.client_observed.Add(static_cast<double>(NowNs() - t0));
    }
  }
  return result;
}

template <typename Workload>
void RunCategory(const char* name, const Workload& workload, int reqs,
                 uint64_t seed) {
  // Network constants (documented in EXPERIMENTS.md): the FrontEnd hop is
  // 150us each way for both systems; Clipper pays an extra in-cluster RPC
  // hop of 100us each way, as its containers sit behind a second boundary.
  const int64_t kFrontendDelayUs = 150;
  const int64_t kClipperRpcUs = 100;
  std::printf("  --- %s ---\n", name);
  auto pretzel = MeasurePretzel(workload, reqs, kFrontendDelayUs, seed);
  auto clipper =
      MeasureClipper(workload, reqs, kFrontendDelayUs, kClipperRpcUs, seed);
  PrintCdfSummary("PRETZEL (prediction)", pretzel.prediction_only);
  PrintCdfSummary("PRETZEL (client-server)", pretzel.client_observed);
  PrintCdfSummary("ML.Net (in-container)", clipper.prediction_only);
  PrintCdfSummary("ML.Net+Clipper (client)", clipper.client_observed);
  ShapeCheck(pretzel.client_observed.P99() > pretzel.prediction_only.P99(),
             "client/server overhead dominates fast predictions (paper: 9x SA)");
  // Medians: single-core hosts add scheduler jitter to the sleeping IO
  // threads' tails, so P99 is unstable; the paper's P99 margin (4.3 vs
  // 9.3ms) is structural and shows up at the median here.
  ShapeCheck(clipper.client_observed.Median() > pretzel.client_observed.Median(),
             "PRETZEL end-to-end beats ML.Net+Clipper (paper: 4.3 vs 9.3ms P99)");
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 11", "End-to-end client latency: PRETZEL vs ML.Net+Clipper");
  const int reqs = static_cast<int>(flags.GetInt("reqs", 10));

  auto sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 30));
  auto sa = SaWorkload::Generate(sa_opts);
  RunCategory("Sentiment Analysis (SA)", sa, reqs, 6001);

  auto ac_opts = DefaultAcOptions(flags);
  ac_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 30));
  auto ac = AcWorkload::Generate(ac_opts);
  RunCategory("Attendee Count (AC)", ac, reqs, 6002);
  return 0;
}
